//! # synchro-tokens-repro — top-level facade
//!
//! A complete Rust reproduction of *"Eliminating Nondeterminism to
//! Enable Chip-Level Test of Globally-Asynchronous Locally-Synchronous
//! SoCs"* (Heath, Burleson, Harris — DATE 2004).
//!
//! This crate re-exports the whole workspace and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//! Start with [`synchro_tokens`] (the wrappers themselves), then
//! [`st_testkit`] (TAP/scan/debug) and [`st_bench`] (experiment
//! harness). See `README.md`, `DESIGN.md` and `EXPERIMENTS.md` at the
//! repository root.

pub use st_bench;
pub use st_cells;
pub use st_channel;
pub use st_clocking;
pub use st_sim;
pub use st_testkit;
pub use synchro_tokens;

/// Everything a downstream experiment typically needs.
pub mod prelude {
    pub use st_sim::prelude::*;
    pub use synchro_tokens::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reaches_every_crate() {
        // A compile-time smoke check that the re-exports stay wired.
        let _ = crate::st_cells::Table1::compute();
        let _ = crate::synchro_tokens::scenarios::producer_consumer_spec();
        let _ = crate::st_testkit::TapFsm::new();
    }
}
