//! A three-stage DSP-style pipeline (source → filter → sink), the
//! workload family that motivated early GALS escapement designs
//! (Nilsson & Torkelson's monolithic DSP clock generator, paper ref
//! [12]) — generalized by synchro-tokens to arbitrary dataflow profiles.
//!
//! The example runs the same pipeline under several physical-delay
//! corners and shows that the filter's and sink's I/O sequences are
//! bit-identical in local-cycle space every time.
//!
//! Run with: `cargo run --example dsp_pipeline`

use synchro_tokens_repro::prelude::*;
use synchro_tokens_repro::synchro_tokens::logic::PipeTransform;

/// Builds the pipeline spec with the given delay percentages applied to
/// the ring wires and FIFO stages.
fn pipeline_spec(ring_pct: u64, fifo_pct: u64) -> SystemSpec {
    let mut spec = SystemSpec::default();
    let src = spec.add_sb("adc", SimDuration::ns(10));
    let flt = spec.add_sb("fir", SimDuration::ns(8));
    let dac = spec.add_sb("dac", SimDuration::ns(12));
    let r1 = spec.add_ring(
        src,
        flt,
        NodeParams::new(4, 20),
        SimDuration::ns(25).percent(ring_pct),
    );
    let r2 = spec.add_ring(
        flt,
        dac,
        NodeParams::new(4, 20),
        SimDuration::ns(25).percent(ring_pct),
    );
    spec.add_channel(src, flt, r1, 16, 4, SimDuration::ps(500).percent(fifo_pct));
    spec.add_channel(flt, dac, r2, 16, 4, SimDuration::ps(500).percent(fifo_pct));
    spec
}

fn run_corner(
    ring_pct: u64,
    fifo_pct: u64,
) -> Result<(u64, u64, Vec<u64>), Box<dyn std::error::Error>> {
    let spec = pipeline_spec(ring_pct, fifo_pct);
    let (src, flt, dac) = (SbId(0), SbId(1), SbId(2));
    let mut sys = SystemBuilder::new(spec)?
        .with_logic(src, SequenceSource::new(0, 3)) // "samples"
        .with_logic(flt, PipeTransform::new(16, |x| (x * 5) & 0xFFFF)) // "FIR gain"
        .with_logic(dac, SinkCollect::new())
        .with_trace_limit(120)
        .build();
    sys.run_until_cycles(120, SimDuration::us(200))?;
    let sink: &SinkCollect = sys.logic(dac);
    Ok((
        sys.io_trace(flt).digest(),
        sys.io_trace(dac).digest(),
        sink.words_on(0),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", pipeline_spec(100, 100).describe());
    let corners = [
        (100u64, 100u64),
        (50, 100),
        (200, 100),
        (100, 50),
        (100, 200),
        (200, 200),
    ];
    let nominal = run_corner(100, 100)?;
    println!(
        "nominal: dac received {} filtered samples, first 6 = {:?}",
        nominal.2.len(),
        &nominal.2[..6.min(nominal.2.len())]
    );
    println!(
        "\n{:>10} {:>10} | {:>18} {:>18} {:>7}",
        "ring %", "fifo %", "fir digest", "dac digest", "match"
    );
    for (rp, fp) in corners {
        let got = run_corner(rp, fp)?;
        let same = got.0 == nominal.0 && got.1 == nominal.1 && got.2 == nominal.2;
        println!(
            "{rp:>10} {fp:>10} | {:#018x} {:#018x} {:>7}",
            got.0,
            got.1,
            if same { "yes" } else { "NO" }
        );
        assert!(same, "pipeline sequences must be delay-invariant");
    }
    println!("\nall corners produced identical local-cycle sequences.");
    Ok(())
}
