//! Chip-level debug of a GALS SoC through the Test SB (paper §4.2).
//!
//! Walks the full tester story: read IDCODE over the 1149.1 TAP, take a
//! deterministic breakpoint by holding tokens in the Test SB, scan out a
//! block's architectural state, single-step the system, and finally run
//! a clock-frequency shmoo that locates an injected critical path.
//!
//! Run with: `cargo run --example soc_debug`

use synchro_tokens_repro::prelude::*;
use synchro_tokens_repro::st_testkit::{shmoo, TckMode, TestAccess};
use synchro_tokens_repro::synchro_tokens::scenarios::{build_e1, e1_spec, MixerLogic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The §5 validation platform; alpha doubles as the Test SB.
    let mut sys = build_e1(e1_spec(), 0, 60);
    sys.run_until_cycles(60, SimDuration::us(2000))?;
    println!("{}", sys.spec().describe());

    let mut tester = TestAccess::new(SbId(0), 0x5EC7_0001);
    println!("IDCODE over TAP: {:#010x}", tester.read_idcode());
    println!("TCK mode: {:?}\n", tester.mode());

    // --- Deterministic breakpoint ------------------------------------
    let report = tester.breakpoint(&mut sys, SimDuration::us(100))?;
    println!("breakpoint engaged: stopped SBs {:?}", report.stopped);
    println!("local cycle counts at the break: {:?}", report.cycles);

    // State access while the system is frozen.
    let (ctr_beta, acc_beta) = sys.logic::<MixerLogic>(SbId(1)).state();
    println!(
        "beta state via scan: counter={}, acc={:#018x} (scan echo: {})",
        ctr_beta,
        acc_beta,
        tester.scan_state_word(ctr_beta)
    );

    // --- Single stepping ----------------------------------------------
    println!("\nsingle-stepping 3 times (>= 4 local cycles each):");
    for _ in 0..3 {
        let r = tester.single_step(&mut sys, 4, SimDuration::us(200))?;
        println!("  cycles now {:?}", r.cycles);
    }
    tester.resume(&mut sys);

    // --- Independent mode ----------------------------------------------
    tester.set_mode(TckMode::Independent);
    let r = tester.breakpoint(&mut sys, SimDuration::us(20))?;
    println!(
        "\nindependent-mode 'breakpoint' stops nothing (stopped = {:?})",
        r.stopped
    );
    tester.set_mode(TckMode::Interlocked);

    // --- Frequency shmoo ------------------------------------------------
    let mut spec = e1_spec();
    spec.sbs[2].logic_delay = SimDuration::ns(9); // gamma's critical path
    let periods: Vec<SimDuration> = (5..=14).map(SimDuration::ns).collect();
    let result = shmoo(&spec, SbId(2), &periods, 60, &|s, seed| {
        build_e1(s, seed, 60)
    });
    println!("\nshmoo of gamma (injected 9 ns critical path):");
    for p in &result.points {
        println!(
            "  period {:>5}: {}",
            p.period.to_string(),
            if p.pass { "PASS" } else { "FAIL" }
        );
    }
    println!(
        "critical path bracketed: fails at {}, passes at {}",
        result.max_failing_period().expect("some failure"),
        result.min_passing_period().expect("some pass"),
    );
    Ok(())
}
