//! Determinism, certified two more ways.
//!
//! 1. **Bounded formal verification** (the paper's future-work item):
//!    exhaustively explore every interleaving of clock edges and token
//!    deliveries on a ring and prove the enabled-cycle schedule unique.
//! 2. **GALS BIST**: run an LFSR/MISR self-test loop across a clock
//!    domain boundary and show the signature is invariant under physical
//!    delay scaling — the property that makes golden signatures possible
//!    on GALS silicon at all.
//!
//! Run with: `cargo run --example formal_bist`

use synchro_tokens_repro::prelude::*;
use synchro_tokens_repro::st_testkit::BistEngine;
use synchro_tokens_repro::synchro_tokens::formal::{verify_ring_determinism, Verdict};
use synchro_tokens_repro::synchro_tokens::logic::PipeTransform;
use synchro_tokens_repro::synchro_tokens::scenarios::matched_ring_recycles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: exhaustive bounded verification -----------------------
    println!("bounded formal verification of ring determinism:");
    for (ha, ra, hb, rb, init) in [
        (4u32, 6u32, 4u32, 6u32, 5u32),
        (2, 7, 5, 3, 2),
        (1, 1, 1, 1, 1),
    ] {
        let verdict = verify_ring_determinism(
            NodeParams::new(ha, ra),
            NodeParams::new(hb, rb),
            init,
            32,
            3,
        );
        println!("  H/R = ({ha},{ra}) vs ({hb},{rb}), init {init}: {verdict}");
        assert!(matches!(verdict, Verdict::DeterministicUpTo { .. }));
    }

    // --- Part 2: delay-invariant BIST signatures ------------------------
    println!("\nGALS BIST loop (engine SB <-> CUT SB across a token ring):");
    let run_bist = |ring_pct: u64, fifo_pct: u64| -> u64 {
        let mut s = SystemSpec::default();
        let eng = s.add_sb("bist", SimDuration::ns(10));
        let cut = s.add_sb("cut", SimDuration::ns(12));
        let ring = s.add_ring(
            eng,
            cut,
            NodeParams::new(4, 1),
            SimDuration::ns(30).percent(ring_pct),
        );
        s.add_channel(
            eng,
            cut,
            ring,
            16,
            4,
            SimDuration::ps(300).percent(fifo_pct),
        );
        s.add_channel(
            cut,
            eng,
            ring,
            16,
            4,
            SimDuration::ps(300).percent(fifo_pct),
        );
        matched_ring_recycles(&mut s, 0);
        let mut sys = SystemBuilder::new(s)
            .expect("bist spec")
            .with_logic(eng, BistEngine::new(0xACE1, 128))
            .with_logic(cut, PipeTransform::new(8, |w| (w ^ 0x0F0F).rotate_left(5)))
            .with_trace_limit(1)
            .build();
        while !sys.logic::<BistEngine>(eng).done() {
            sys.run_for(SimDuration::us(2)).expect("bist run");
        }
        sys.logic::<BistEngine>(eng).signature()
    };
    let golden = run_bist(100, 100);
    println!("  golden signature (nominal delays): {golden:#010x}");
    for (rp, fp) in [
        (50u64, 100u64),
        (200, 100),
        (100, 50),
        (100, 200),
        (75, 150),
    ] {
        let sig = run_bist(rp, fp);
        println!(
            "  ring {rp:>3} %, fifo {fp:>3} %: {sig:#010x}  {}",
            if sig == golden {
                "== golden"
            } else {
                "MISMATCH"
            }
        );
        assert_eq!(sig, golden);
    }
    println!("\nall signatures identical: BIST responses arrive at deterministic");
    println!("local cycles, so one golden signature tests every die.");
    Ok(())
}
