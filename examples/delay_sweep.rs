//! A miniature of the paper's §5 validation: sweep physical delays on
//! the 3-SB / 6-FIFO platform and compare every SB's I/O sequence with
//! the nominal run — in synchro-tokens mode and in the nondeterministic
//! bypass baseline, side by side.
//!
//! Run with: `cargo run --example delay_sweep [runs]`

use synchro_tokens_repro::synchro_tokens::determinism::{run_campaign, CampaignConfig};
use synchro_tokens_repro::synchro_tokens::scenarios::{build_e1, build_e1_bypass, e1_spec};

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let spec = e1_spec();
    println!("{}", spec.describe());
    println!("sweeping {runs} configurations of {{50, 75, 100, 150, 200}} % delays\n");

    let cfg = CampaignConfig {
        runs,
        ..CampaignConfig::default()
    };
    let synchro = run_campaign(&spec, &cfg, &|s, seed| build_e1(s, seed, 100));
    println!("synchro-tokens : {synchro}");

    let cfg = CampaignConfig {
        runs,
        bypass: true,
        ..CampaignConfig::default()
    };
    let bypass = run_campaign(&spec, &cfg, &|s, seed| build_e1_bypass(s, seed, 100));
    println!("bypass baseline: {bypass}");

    if let Some(m) = bypass.mismatches.first() {
        println!(
            "\nfirst bypass divergence: clocks {:?} %, first divergent cycles {:?}",
            m.config.clock_pct, m.divergences
        );
    }
    assert!(synchro.all_match(), "synchro-tokens must be deterministic");
    println!("\nsynchro-tokens matched nominal in every run; the bypass did not.");
}
