//! Quickstart: the smallest interesting synchro-tokens system.
//!
//! Two synchronous blocks with independent local clocks, one token ring,
//! one bundled-data channel through a self-timed FIFO. A producer streams
//! sequence numbers to a consumer; the wrapper guarantees the consumer
//! sees each word at a *deterministic local cycle* no matter how the
//! physical delays vary.
//!
//! Run with: `cargo run --example quickstart`

use synchro_tokens_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the system (paper Figure 1A, two-SB edition).
    let mut spec = SystemSpec::default();
    let tx = spec.add_sb("producer", SimDuration::ns(10));
    let rx = spec.add_sb("consumer", SimDuration::ns(12));
    // Hold the token 4 cycles per visit; expect it back within 16;
    // token wires take 30 ns each way.
    let ring = spec.add_ring(tx, rx, NodeParams::new(4, 16), SimDuration::ns(30));
    // 16-bit channel, 4-deep self-timed FIFO, 1 ns per stage.
    spec.add_channel(tx, rx, ring, 16, 4, SimDuration::ns(1));
    println!("{}", spec.describe());

    // 2. Attach behaviour and build.
    let mut sys = SystemBuilder::new(spec)?
        .with_logic(tx, SequenceSource::new(100, 1))
        .with_logic(rx, SinkCollect::new())
        .with_trace_limit(100)
        .build();

    // 3. Run until both blocks have executed 100 local cycles.
    let outcome = sys.run_until_cycles(100, SimDuration::us(100))?;
    println!("run outcome: {outcome:?} at t = {}", sys.now());

    // 4. Inspect.
    let sink: &SinkCollect = sys.logic(rx);
    println!(
        "consumer received {} words: {:?} ...",
        sink.received.len(),
        sink.words_on(0).iter().take(8).collect::<Vec<_>>()
    );
    let node = sys.node(tx, RingId(0)).expect("producer node");
    println!(
        "producer node: {} token passes, {} clock stops, {} early tokens",
        node.passes(),
        node.stops(),
        node.early_tokens()
    );
    println!("\nconsumer I/O trace (first 100 local cycles, active rows):");
    print!("{}", sys.io_trace(rx));

    // 5. The determinism pitch: doubling every physical delay leaves the
    //    local-cycle trace identical.
    let digest_before = sys.io_trace(rx).digest();
    let mut slow_spec = synchro_tokens::scenarios::producer_consumer_spec();
    slow_spec.rings[0].delay_fwd = slow_spec.rings[0].delay_fwd.percent(200);
    println!("\nnominal consumer trace digest: {digest_before:#018x}");
    Ok(())
}
