#!/usr/bin/env bash
# CI gate: lint, format, build, test, and a release smoke run of the E1
# determinism campaign with a reduced budget (60 synchro runs, 20 bypass
# runs — seconds, not the paper-scale 16,200).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --all -- --check

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
# Witness manifests from this run land where the conformance lint looks
# for runtime corroboration (static declarations alone gate the lint).
export ST_WITNESS_DIR="$PWD/target/st-witness"
rm -rf "$ST_WITNESS_DIR"
cargo test --workspace -q

echo "== conformance witness lint =="
cargo run --release -q -p st-conformance --bin st-conformance-lint

echo "== compiled-backend differential proptests (fixed reduced budget) =="
PROPTEST_CASES=16 cargo test --release -p synchro-tokens --test compiled_equiv -q

echo "== batched-backend differential proptests (fixed reduced budget) =="
PROPTEST_CASES=16 cargo test --release -p synchro-tokens --test batched_equiv -q

echo "== checkpoint/resume equivalence proptests (fixed reduced budget) =="
PROPTEST_CASES=16 cargo test --release -p synchro-tokens --test checkpoint_equiv -q

echo "== chaos smoke (fixed seeds, reduced budget) =="
# 48 of the full 501 (seed x fault-class) configs; seeds are fixed by
# the plan generator, so this is deterministic run to run.
ST_CHAOS_CONFIGS=48 PROPTEST_CASES=8 cargo test --release -p st-testkit --test chaos -q
PROPTEST_CASES=8 cargo test --release -p synchro-tokens --test faults -q

echo "== st-serve HTTP smoke (ephemeral port, tiny E1 campaign) =="
scripts/serve_smoke.sh

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== E1 determinism smoke (reduced budget) =="
cargo run --release -p st-bench --bin repro_determinism -- 60 20

echo "CI OK"
