#!/usr/bin/env bash
# Benchmark snapshot: runs the criterion benches and collects every
# median ns/iter from target/criterion/**/new/estimates.json into a
# committed BENCH_<n>.json, so perf trajectories survive in git history.
#
# Usage: scripts/bench_snapshot.sh <n> [bench-name ...]
#   <n>          snapshot index (BENCH_<n>.json at the repo root)
#   bench-name   optional criterion bench targets
#                (default: gate_sim kernel system_sim chaos serve
#                 campaign_batch campaign_fork cluster_serve)
#
# Bench guard — multi-thread campaign numbers: the chaos bench's
# campaign_pingpong_{1,4}threads pair measures *host* parallelism, and
# on a host with fewer free cores than worker threads (CI containers,
# shared runners) the 4-thread variant can come out SLOWER than
# 1-thread (BENCH_6: 8.92ms vs 7.83ms) purely from oversubscription —
# spawn cost plus contention on the work-stealing cursor, with zero
# change to the simulation itself (reports are byte-identical at any
# thread count). Compare thread-scaling entries only across snapshots
# taken on the same host class, and never read a 4-thread regression as
# an engine regression without first checking `nproc` against the
# thread count. See EXPERIMENTS.md "Campaign thread scaling".
#
# Works against real criterion and the devstubs shim alike — both write
# estimates.json with a median.point_estimate field. Benches that
# declare Throughput::Elements also land in a median_ns_per_element
# map (median / elements, from benchmark.json), which is the number to
# compare across lane counts: a 64-lane batched iteration simulates 64
# configurations per iteration, so its raw ns/iter is incomparable to
# a scalar bench's (the BENCH_5 lanes64_node ≈ compiled_node trap).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
    echo "usage: scripts/bench_snapshot.sh <n> [bench-name ...]" >&2
    exit 2
fi
n="$1"
shift
benches=("$@")
if [[ ${#benches[@]} -eq 0 ]]; then
    # chaos records the robustness-campaign throughput (plans/s) next to
    # the raw simulation benches; campaign_batch records the batched
    # lane-parallel campaign engine against its scalar baselines.
    # campaign_fork records the prefix-fork sweep against its straight
    # baseline (the checkpoint/resume speedup). cluster_serve records
    # the multi-node fabric's hit path against the single-node serve
    # rows.
    benches=(gate_sim kernel system_sim chaos serve campaign_batch campaign_fork cluster_serve)
fi

# Only results (re)written by THIS invocation land in the snapshot —
# target/criterion accumulates dirs for renamed/deleted benches, and a
# blanket find would resurrect them as stale entries.
stamp=$(mktemp)
for b in "${benches[@]}"; do
    echo "== cargo bench: $b =="
    cargo bench -p st-bench --bench "$b"
done

# The registry hash pins which conformance contract these numbers were
# measured under — a snapshot taken before a requirement changed is not
# comparable evidence for the requirement that replaced it.
registry_hash=$(cargo run -q -p st-conformance --bin st-conformance-lint -- --hash)

out="BENCH_${n}.json"
{
    echo "{"
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"host\": \"$(uname -srm)\","
    echo "  \"conformance_registry_hash\": \"${registry_hash}\","
    echo "  \"median_ns_per_iter\": {"
    first=1
    # Sorted for a stable diff between snapshots.
    while IFS= read -r est; do
        id="${est#target/criterion/}"
        id="${id%/new/estimates.json}"
        median=$(sed -n 's/.*"median":{"point_estimate":\([0-9.eE+-]*\).*/\1/p' "$est")
        [[ -z "$median" ]] && continue
        [[ $first -eq 0 ]] && echo ","
        first=0
        printf '    "%s": %s' "$id" "$median"
    done < <( find target/criterion -name estimates.json -path '*/new/*' -newer "$stamp" | sort)
    echo ""
    echo "  },"
    echo "  \"median_ns_per_element\": {"
    first=1
    while IFS= read -r est; do
        id="${est#target/criterion/}"
        id="${id%/new/estimates.json}"
        median=$(sed -n 's/.*"median":{"point_estimate":\([0-9.eE+-]*\).*/\1/p' "$est")
        [[ -z "$median" ]] && continue
        meta="${est%estimates.json}benchmark.json"
        [[ -f "$meta" ]] || continue
        elems=$(sed -n 's/.*"Elements":\([0-9]*\).*/\1/p' "$meta")
        [[ -z "$elems" || "$elems" -eq 0 ]] && continue
        per_elem=$(awk -v m="$median" -v n="$elems" 'BEGIN { printf "%.4f", m / n }')
        [[ $first -eq 0 ]] && echo ","
        first=0
        printf '    "%s": %s' "$id" "$per_elem"
    done < <( find target/criterion -name estimates.json -path '*/new/*' -newer "$stamp" | sort)
    echo ""
    echo "  }"
    echo "}"
} >"$out"
echo "wrote $out"
