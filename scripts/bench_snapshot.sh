#!/usr/bin/env bash
# Benchmark snapshot: runs the criterion benches and collects every
# median ns/iter from target/criterion/**/new/estimates.json into a
# committed BENCH_<n>.json, so perf trajectories survive in git history.
#
# Usage: scripts/bench_snapshot.sh <n> [bench-name ...]
#   <n>          snapshot index (BENCH_<n>.json at the repo root)
#   bench-name   optional criterion bench targets
#                (default: gate_sim kernel system_sim chaos serve)
#
# Works against real criterion and the devstubs shim alike — both write
# estimates.json with a median.point_estimate field.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
    echo "usage: scripts/bench_snapshot.sh <n> [bench-name ...]" >&2
    exit 2
fi
n="$1"
shift
benches=("$@")
if [[ ${#benches[@]} -eq 0 ]]; then
    # chaos records the robustness-campaign throughput (plans/s) next to
    # the raw simulation benches.
    benches=(gate_sim kernel system_sim chaos serve)
fi

for b in "${benches[@]}"; do
    echo "== cargo bench: $b =="
    cargo bench -p st-bench --bench "$b"
done

out="BENCH_${n}.json"
{
    echo "{"
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"host\": \"$(uname -srm)\","
    echo "  \"median_ns_per_iter\": {"
    first=1
    # Sorted for a stable diff between snapshots.
    while IFS= read -r est; do
        id="${est#target/criterion/}"
        id="${id%/new/estimates.json}"
        median=$(sed -n 's/.*"median":{"point_estimate":\([0-9.eE+-]*\).*/\1/p' "$est")
        [[ -z "$median" ]] && continue
        [[ $first -eq 0 ]] && echo ","
        first=0
        printf '    "%s": %s' "$id" "$median"
    done < <(find target/criterion -name estimates.json -path '*/new/*' | sort)
    echo ""
    echo "  }"
    echo "}"
} >"$out"
echo "wrote $out"
