#!/usr/bin/env bash
# st-serve smoke: boot the release server on an ephemeral port, drive a
# tiny E1 campaign through the HTTP API, and prove the cache contract:
# miss -> computed; identical resubmit -> hit with a byte-identical
# body and no recompute; clean shutdown over the API. Then boot a
# 2-node cluster and prove the fabric contract: both nodes serve
# byte-identical bodies and /cluster reports the converged ring.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p st-serve -q
bin=target/release/st_serve
work=$(mktemp -d)
trap 'rm -rf "$work"
      [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
      [[ -n "${a_pid:-}" ]] && kill "$a_pid" 2>/dev/null || true
      [[ -n "${b_pid:-}" ]] && kill "$b_pid" 2>/dev/null || true' EXIT

"$bin" serve 127.0.0.1:0 >"$work/server.out" 2>"$work/server.err" &
server_pid=$!

# The server prints "listening on <addr>" once bound.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$work/server.out")
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "server never bound"; cat "$work/server.err"; exit 1; }
echo "server at $addr"

req='{"type":"sim","scenario":"e1","backend":"compiled","seeds":[1,2,3],"cycles":40,"trace_cycles":40,"budget_fs":2000000000000}'

reply=$("$bin" submit "$addr" "$req")
echo "first submit: $reply"
grep -q '"status":"queued"' <<<"$reply" || { echo "expected a cache miss to queue"; exit 1; }
id=$(sed -n 's/.*"id":\([0-9]*\).*/\1/p' <<<"$reply")

for _ in $(seq 1 200); do
    status=$("$bin" status "$addr" "$id")
    grep -q '"status":"done"' <<<"$status" && break
    sleep 0.05
done
grep -q '"status":"done"' <<<"$status" || { echo "job never finished: $status"; exit 1; }

"$bin" result "$addr" "$id" "$work/first.bin"

reply=$("$bin" submit "$addr" "$req")
echo "second submit: $reply"
grep -q '"status":"cached"' <<<"$reply" || { echo "expected a cache hit"; exit 1; }
id2=$(sed -n 's/.*"id":\([0-9]*\).*/\1/p' <<<"$reply")
"$bin" result "$addr" "$id2" "$work/second.bin"

cmp "$work/first.bin" "$work/second.bin" || { echo "cache hit served different bytes"; exit 1; }
echo "hit body is byte-identical ($(wc -c <"$work/first.bin") bytes)"

metrics=$("$bin" metrics "$addr")
grep -q '^st_serve_jobs_done_total 1$' <<<"$metrics" || {
    echo "expected exactly one computed job (no recompute on hit):"; echo "$metrics"; exit 1; }
grep -q '^st_serve_served_cached_total 1$' <<<"$metrics" || {
    echo "expected one cached submission:"; echo "$metrics"; exit 1; }

# Malformed submissions must not kill the server.
"$bin" submit "$addr" '{"bad json' >/dev/null 2>&1 || true
"$bin" metrics "$addr" >/dev/null

# Clean shutdown over the API; the foreground process must exit.
printf 'POST /shutdown HTTP/1.1\r\nHost: %s\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' "$addr" \
    | timeout 10 bash -c "exec 3<>/dev/tcp/${addr%:*}/${addr#*:}; cat >&3; head -c 200 <&3" >/dev/null
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "server did not exit after /shutdown"; exit 1
fi
server_pid=""
echo "serve smoke OK"

# ---------------------------------------------------------------------------
# Cluster smoke: two nodes, node B seeded onto node A via --peers.
# ---------------------------------------------------------------------------

wait_addr() { # file -> prints the bound addr once the node logs it
    local file=$1 got=""
    for _ in $(seq 1 100); do
        got=$(sed -n 's/^listening on //p' "$file")
        [[ -n "$got" ]] && break
        sleep 0.1
    done
    [[ -n "$got" ]] || { echo "cluster node never bound" >&2; exit 1; }
    echo "$got"
}

"$bin" serve 127.0.0.1:0 --node-id smoke-a >"$work/a.out" 2>"$work/a.err" &
a_pid=$!
a_addr=$(wait_addr "$work/a.out")
"$bin" serve 127.0.0.1:0 --node-id smoke-b --peers "$a_addr" >"$work/b.out" 2>"$work/b.err" &
b_pid=$!
b_addr=$(wait_addr "$work/b.out")
echo "cluster at $a_addr (smoke-a), $b_addr (smoke-b)"

# Gossip runs on its background cadence (500 ms); wait for both rings
# to agree on two members.
converged=""
for _ in $(seq 1 100); do
    if "$bin" cluster "$a_addr" | grep -q '"smoke-b"' &&
       "$bin" cluster "$b_addr" | grep -q '"smoke-a"'; then
        converged=yes
        break
    fi
    sleep 0.1
done
[[ -n "$converged" ]] || {
    echo "cluster never converged"
    "$bin" cluster "$a_addr" || true
    "$bin" cluster "$b_addr" || true
    exit 1
}

creq='{"type":"sim","scenario":"e1","backend":"compiled","seeds":[7,8,9],"cycles":40,"trace_cycles":40,"budget_fs":2000000000000}'
fetch_done() { # addr out_file -> submit, wait, download the body
    local addr=$1 out=$2 reply cid cstatus
    reply=$("$bin" submit "$addr" "$creq")
    cid=$(sed -n 's/.*"id":\([0-9]*\).*/\1/p' <<<"$reply")
    for _ in $(seq 1 200); do
        cstatus=$("$bin" status "$addr" "$cid")
        grep -q '"status":"done"' <<<"$cstatus" && break
        sleep 0.05
    done
    grep -q '"status":"done"' <<<"$cstatus" || {
        echo "cluster job never finished on $addr: $cstatus" >&2; exit 1; }
    "$bin" result "$addr" "$cid" "$out" >/dev/null
}

fetch_done "$a_addr" "$work/a.bin"
fetch_done "$b_addr" "$work/b.bin"
cmp "$work/a.bin" "$work/b.bin" || { echo "cluster nodes served different bytes"; exit 1; }
echo "both nodes serve byte-identical bodies ($(wc -c <"$work/a.bin") bytes)"

kill "$a_pid" "$b_pid" 2>/dev/null || true
wait "$a_pid" "$b_pid" 2>/dev/null || true
a_pid="" b_pid=""
echo "cluster smoke OK"
