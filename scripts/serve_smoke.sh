#!/usr/bin/env bash
# st-serve smoke: boot the release server on an ephemeral port, drive a
# tiny E1 campaign through the HTTP API, and prove the cache contract:
# miss -> computed; identical resubmit -> hit with a byte-identical
# body and no recompute; clean shutdown over the API.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p st-serve -q
bin=target/release/st_serve
work=$(mktemp -d)
trap 'rm -rf "$work"; [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true' EXIT

"$bin" serve 127.0.0.1:0 >"$work/server.out" 2>"$work/server.err" &
server_pid=$!

# The server prints "listening on <addr>" once bound.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$work/server.out")
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "server never bound"; cat "$work/server.err"; exit 1; }
echo "server at $addr"

req='{"type":"sim","scenario":"e1","backend":"compiled","seeds":[1,2,3],"cycles":40,"trace_cycles":40,"budget_fs":2000000000000}'

reply=$("$bin" submit "$addr" "$req")
echo "first submit: $reply"
grep -q '"status":"queued"' <<<"$reply" || { echo "expected a cache miss to queue"; exit 1; }
id=$(sed -n 's/.*"id":\([0-9]*\).*/\1/p' <<<"$reply")

for _ in $(seq 1 200); do
    status=$("$bin" status "$addr" "$id")
    grep -q '"status":"done"' <<<"$status" && break
    sleep 0.05
done
grep -q '"status":"done"' <<<"$status" || { echo "job never finished: $status"; exit 1; }

"$bin" result "$addr" "$id" "$work/first.bin"

reply=$("$bin" submit "$addr" "$req")
echo "second submit: $reply"
grep -q '"status":"cached"' <<<"$reply" || { echo "expected a cache hit"; exit 1; }
id2=$(sed -n 's/.*"id":\([0-9]*\).*/\1/p' <<<"$reply")
"$bin" result "$addr" "$id2" "$work/second.bin"

cmp "$work/first.bin" "$work/second.bin" || { echo "cache hit served different bytes"; exit 1; }
echo "hit body is byte-identical ($(wc -c <"$work/first.bin") bytes)"

metrics=$("$bin" metrics "$addr")
grep -q '^st_serve_jobs_done_total 1$' <<<"$metrics" || {
    echo "expected exactly one computed job (no recompute on hit):"; echo "$metrics"; exit 1; }
grep -q '^st_serve_served_cached_total 1$' <<<"$metrics" || {
    echo "expected one cached submission:"; echo "$metrics"; exit 1; }

# Malformed submissions must not kill the server.
"$bin" submit "$addr" '{"bad json' >/dev/null 2>&1 || true
"$bin" metrics "$addr" >/dev/null

# Clean shutdown over the API; the foreground process must exit.
printf 'POST /shutdown HTTP/1.1\r\nHost: %s\r\nContent-Length: 0\r\nConnection: close\r\n\r\n' "$addr" \
    | timeout 10 bash -c "exec 3<>/dev/tcp/${addr%:*}/${addr#*:}; cat >&3; head -c 200 <&3" >/dev/null
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "server did not exit after /shutdown"; exit 1
fi
server_pid=""
echo "serve smoke OK"
