//! Differential correctness of the compiled 64-lane engine: random
//! topological circuits (every cell kind, feedback through flops,
//! C-elements and latches holding state on their own outputs), driven
//! with random per-lane stimulus and random settle/clock-edge schedules,
//! must agree with the scalar interpreter on every net — lane 0 and a
//! spread of other lanes are each locked against their own scalar run,
//! cycle by cycle.

use proptest::prelude::*;
use st_cells::compiled::CompiledCircuit;
use st_cells::{Cell, Circuit, Net};

/// Cell kinds the structural builder accepts as gates, with arities.
const GATE_KINDS: [(Cell, usize); 13] = [
    (Cell::Inv, 1),
    (Cell::TriBuf, 1),
    (Cell::Nand2, 2),
    (Cell::Nor2, 2),
    (Cell::And2, 2),
    (Cell::Or2, 2),
    (Cell::Xor2, 2),
    (Cell::Xnor2, 2),
    (Cell::CElement, 2),
    (Cell::DLatch, 2),
    (Cell::Mux2, 3),
    (Cell::Aoi21, 3),
    (Cell::Oai21, 3),
];

/// A deterministic build recipe sampled by proptest: selectors index
/// into the growing net pool modulo its size, so every recipe is a
/// valid topological circuit.
#[derive(Debug, Clone)]
struct Recipe {
    n_inputs: usize,
    constants: Vec<bool>,
    flop_resets: Vec<bool>,
    gates: Vec<(usize, u16, u16, u16)>,
    /// Per flop: (d selector, use an enable net, enable selector).
    bindings: Vec<(u16, bool, u16)>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        1usize..5,
        proptest::collection::vec(any::<bool>(), 0..3),
        proptest::collection::vec(any::<bool>(), 0..5),
        proptest::collection::vec(
            (0usize..13, any::<u16>(), any::<u16>(), any::<u16>()),
            1..40,
        ),
        proptest::collection::vec((any::<u16>(), any::<bool>(), any::<u16>()), 5),
    )
        .prop_map(
            |(n_inputs, constants, flop_resets, gates, bindings)| Recipe {
                n_inputs,
                constants,
                flop_resets,
                gates,
                bindings,
            },
        )
}

fn build(recipe: &Recipe) -> (Circuit, Vec<Net>) {
    let mut c = Circuit::new("random");
    let inputs: Vec<Net> = (0..recipe.n_inputs)
        .map(|i| c.input(&format!("i{i}")))
        .collect();
    let mut pool = inputs.clone();
    for &v in &recipe.constants {
        pool.push(c.constant(v));
    }
    let flops: Vec<Net> = recipe
        .flop_resets
        .iter()
        .map(|&r| {
            let q = c.flop_placeholder(r);
            pool.push(q);
            q
        })
        .collect();
    for &(kind, a, b, x) in &recipe.gates {
        let (cell, arity) = GATE_KINDS[kind];
        let pick = |sel: u16| pool[sel as usize % pool.len()];
        let ins: Vec<Net> = [a, b, x][..arity].iter().map(|&s| pick(s)).collect();
        let out = c.gate(cell, &ins);
        pool.push(out);
    }
    for (q, &(d_sel, with_enable, en_sel)) in flops.iter().zip(&recipe.bindings) {
        let d = pool[d_sel as usize % pool.len()];
        let enable = with_enable.then(|| pool[en_sel as usize % pool.len()]);
        c.bind_flop(*q, d, enable);
    }
    (c, inputs)
}

/// Lanes compared against their own scalar run each cycle. Lane 0 is
/// the contract; the others catch cross-lane shift/mask bugs.
const CHECKED_LANES: [usize; 4] = [0, 1, 31, 63];

/// Conformance clause this suite is evidence for: the bit-parallel
/// compiled lanes are indistinguishable from the scalar interpreter.
const WITNESSED: &[&str] = &["ST-GATE-008"];

/// Registers the suite's witness declaration for the lint.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-GATE-008"]);
}

proptest! {
    #![proptest_config(st_testkit::case_budget(48, WITNESSED))]

    /// Compiled lanes ≡ scalar interpreter over random circuits, random
    /// per-lane input masks, and a random settle/edge schedule.
    #[test]
    fn compiled_lanes_match_scalar_interpreter(
        recipe in arb_recipe(),
        stimulus in proptest::collection::vec(
            (proptest::collection::vec(any::<u64>(), 5), any::<bool>()),
            1..16,
        ),
    ) {
        let (c, inputs) = build(&recipe);
        let cc = CompiledCircuit::compile(&c);
        prop_assert_eq!(cc.op_count(), recipe.gates.len());
        let mut lanes = cc.reset_state();
        let mut scalars: Vec<Vec<bool>> =
            CHECKED_LANES.iter().map(|_| c.reset_state()).collect();

        // Reset states must already agree.
        for (k, lane) in CHECKED_LANES.iter().enumerate() {
            prop_assert_eq!(&lanes.extract_lane(*lane), &scalars[k], "reset, lane {}", lane);
        }

        for (cycle, (masks, edge)) in stimulus.iter().enumerate() {
            let assigns: Vec<(Net, u64)> = inputs
                .iter()
                .zip(masks)
                .map(|(n, m)| (*n, *m))
                .collect();
            cc.drive_many(&mut lanes, &assigns);
            for (k, lane) in CHECKED_LANES.iter().enumerate() {
                let bits: Vec<(Net, bool)> = assigns
                    .iter()
                    .map(|&(n, m)| (n, (m >> lane) & 1 == 1))
                    .collect();
                c.set_inputs(&mut scalars[k], &bits);
            }
            if *edge {
                cc.clock_edge(&mut lanes);
                for s in &mut scalars {
                    c.clock_edge(s);
                }
            }
            for (k, lane) in CHECKED_LANES.iter().enumerate() {
                prop_assert_eq!(
                    &lanes.extract_lane(*lane),
                    &scalars[k],
                    "cycle {}, lane {} (edge={})",
                    cycle,
                    lane,
                    edge
                );
            }
        }
    }

    /// Identical stimulus in every lane keeps every net's word at 0 or
    /// all-ones — no cross-lane coupling — for arbitrary circuits.
    #[test]
    fn broadcast_stimulus_keeps_lanes_equal(
        recipe in arb_recipe(),
        stimulus in proptest::collection::vec(
            (proptest::collection::vec(any::<bool>(), 5), any::<bool>()),
            1..16,
        ),
    ) {
        let (c, inputs) = build(&recipe);
        let cc = CompiledCircuit::compile(&c);
        let mut lanes = cc.reset_state();
        prop_assert!(cc.all_lanes_equal(&lanes));
        for (bits, edge) in &stimulus {
            let assigns: Vec<(Net, u64)> = inputs
                .iter()
                .zip(bits)
                .map(|(n, b)| (*n, if *b { !0 } else { 0 }))
                .collect();
            cc.drive_many(&mut lanes, &assigns);
            if *edge {
                cc.clock_edge(&mut lanes);
            }
            prop_assert!(cc.all_lanes_equal(&lanes));
        }
    }
}
