//! Property-based tests of the netlist algebra and area models.

use proptest::prelude::*;
use st_cells::{
    down_counter_netlist, fifo_netlist, fifo_stage_netlist, interface_netlist,
    node_netlist_with_counter_bits, Cell, LinearModel, Netlist,
};

fn arb_cell() -> impl Strategy<Value = Cell> {
    prop::sample::select(Cell::ALL.to_vec())
}

proptest! {
    /// Netlist merging is linear: area(a + k·b) = area(a) + k·area(b).
    #[test]
    fn merge_linearity(
        cells_a in proptest::collection::vec((arb_cell(), 1u64..20), 0..10),
        cells_b in proptest::collection::vec((arb_cell(), 1u64..20), 0..10),
        k in 1u64..9,
    ) {
        let mut a = Netlist::new("a");
        for (c, n) in &cells_a { a.add(*c, *n); }
        let mut b = Netlist::new("b");
        for (c, n) in &cells_b { b.add(*c, *n); }
        let mut merged = Netlist::new("m");
        merged.add_netlist(&a, 1).add_netlist(&b, k);
        let expect = a.area_ge() + k as f64 * b.area_ge();
        prop_assert!((merged.area_ge() - expect).abs() < 1e-6);
        prop_assert_eq!(merged.transistors(), a.transistors() + k * b.transistors());
    }

    /// Area and transistor counts are strictly monotone in instance
    /// counts.
    #[test]
    fn monotone_in_counts(c in arb_cell(), n in 1u64..1000) {
        let mut small = Netlist::new("s");
        small.add(c, n);
        let mut big = Netlist::new("b");
        big.add(c, n + 1);
        prop_assert!(big.area_ge() > small.area_ge());
        prop_assert!(big.transistors() > small.transistors());
    }

    /// The generators really are affine in bit width — the structural
    /// fact Table 1's models rely on.
    #[test]
    fn generators_affine(bits_a in 1u64..64, bits_b in 1u64..64) {
        for gen in [interface_netlist as fn(u64) -> Netlist, fifo_stage_netlist] {
            let m = LinearModel::fit(gen);
            prop_assert!((gen(bits_a).area_ge() - m.eval(bits_a)).abs() < 1e-6);
            prop_assert!((gen(bits_b).area_ge() - m.eval(bits_b)).abs() < 1e-6);
        }
    }

    /// FIFO area factors exactly: area(bits, depth) = depth · stage(bits).
    #[test]
    fn fifo_area_factors(bits in 1u64..64, depth in 1u64..32) {
        let whole = fifo_netlist(bits, depth).area_ge();
        let stage = fifo_stage_netlist(bits).area_ge();
        prop_assert!((whole - depth as f64 * stage).abs() < 1e-6);
    }

    /// Counter and node areas are monotone in counter width.
    #[test]
    fn node_area_monotone_in_counter_width(w in 1u64..30) {
        prop_assert!(
            node_netlist_with_counter_bits(w + 1).area_ge()
                > node_netlist_with_counter_bits(w).area_ge()
        );
        prop_assert!(
            down_counter_netlist(w + 1).transistors() > down_counter_netlist(w).transistors()
        );
    }
}
