//! Gate-level netlists as cell inventories.
//!
//! For area modelling, a netlist is fully characterized by how many of
//! each cell it instantiates — connectivity is irrelevant to Table 1, so
//! this representation stays deliberately simple.

use crate::library::Cell;
use std::collections::BTreeMap;
use std::fmt;

/// A named inventory of standard cells.
///
/// # Examples
///
/// ```
/// use st_cells::{Cell, Netlist};
/// let mut n = Netlist::new("half_adder");
/// n.add(Cell::Xor2, 1);
/// n.add(Cell::And2, 1);
/// assert_eq!(n.cell_count(), 2);
/// assert!(n.area_ge() > 2.0); // XOR2 is bigger than one unit
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    counts: BTreeMap<Cell, u64>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: &str) -> Self {
        Netlist {
            name: name.to_owned(),
            counts: BTreeMap::new(),
        }
    }

    /// The netlist's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `n` instances of `cell`.
    pub fn add(&mut self, cell: Cell, n: u64) -> &mut Self {
        if n > 0 {
            *self.counts.entry(cell).or_insert(0) += n;
        }
        self
    }

    /// Merges another netlist into this one (`n` copies).
    pub fn add_netlist(&mut self, other: &Netlist, n: u64) -> &mut Self {
        for (cell, count) in &other.counts {
            self.add(*cell, count * n);
        }
        self
    }

    /// Instances of one cell type.
    pub fn count(&self, cell: Cell) -> u64 {
        self.counts.get(&cell).copied().unwrap_or(0)
    }

    /// Total cell instances.
    pub fn cell_count(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total transistors.
    pub fn transistors(&self) -> u64 {
        self.counts
            .iter()
            .map(|(c, n)| u64::from(c.transistors()) * n)
            .sum()
    }

    /// Total area in gate equivalents (units of the average 2-input gate).
    pub fn area_ge(&self) -> f64 {
        self.counts
            .iter()
            .map(|(c, n)| c.area_ge() * (*n as f64))
            .sum()
    }

    /// Iterates over `(cell, count)` pairs in cell order.
    pub fn iter(&self) -> impl Iterator<Item = (Cell, u64)> + '_ {
        self.counts.iter().map(|(c, n)| (*c, *n))
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "netlist {} ({:.1} GE):", self.name, self.area_ge())?;
        for (cell, n) in &self.counts {
            writeln!(f, "  {n:>5} x {cell:<7} ({:.2} GE each)", cell.area_ge())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_counts() {
        let mut n = Netlist::new("t");
        n.add(Cell::Dff, 4).add(Cell::Dff, 4).add(Cell::Inv, 1);
        assert_eq!(n.count(Cell::Dff), 8);
        assert_eq!(n.count(Cell::Inv), 1);
        assert_eq!(n.count(Cell::Mux2), 0);
        assert_eq!(n.cell_count(), 9);
    }

    #[test]
    fn zero_add_is_noop() {
        let mut n = Netlist::new("t");
        n.add(Cell::Inv, 0);
        assert_eq!(n.cell_count(), 0);
        assert_eq!(n.area_ge(), 0.0);
    }

    #[test]
    fn merge_scales_counts() {
        let mut bit = Netlist::new("bitcell");
        bit.add(Cell::Dff, 1).add(Cell::Mux2, 1);
        let mut word = Netlist::new("word");
        word.add_netlist(&bit, 16);
        assert_eq!(word.count(Cell::Dff), 16);
        assert_eq!(word.count(Cell::Mux2), 16);
        assert!((word.area_ge() - 16.0 * bit.area_ge()).abs() < 1e-9);
    }

    #[test]
    fn transistors_and_area_agree() {
        let mut n = Netlist::new("t");
        n.add(Cell::Nand2, 10); // 40 transistors, 40/(40/6) = 6 GE
        assert_eq!(n.transistors(), 40);
        assert!((n.area_ge() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn display_lists_cells() {
        let mut n = Netlist::new("demo");
        n.add(Cell::CElement, 2);
        let s = n.to_string();
        assert!(s.contains("netlist demo"));
        assert!(s.contains("CELEM2"));
    }
}
