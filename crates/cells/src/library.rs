//! The standard-cell library and its area model.
//!
//! Table 1 of the paper expresses area "using the average area of the
//! library's 2-input gates as the unit of measurement", for a 0.25 µm
//! cell library \[15\]. Absolute µm² therefore never matters — only cell
//! areas *relative to the average 2-input gate*. We derive those ratios
//! from static-CMOS transistor counts, which track layout area closely at
//! a fixed drawn geometry and are library-independent.

use std::fmt;

/// A standard cell used by the wrapper netlists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Cell {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer.
    Mux2,
    /// AND-OR-invert (2-1).
    Aoi21,
    /// OR-AND-invert (2-1).
    Oai21,
    /// Transparent D latch.
    DLatch,
    /// D flip-flop.
    Dff,
    /// D flip-flop with asynchronous reset.
    DffR,
    /// D flip-flop with clock enable (flop + recirculating mux).
    DffE,
    /// Two-input Muller C-element.
    CElement,
    /// Mutual-exclusion element (NAND latch + metastability filter).
    Mutex,
    /// Tri-state buffer.
    TriBuf,
}

impl Cell {
    /// Every cell in the library, in declaration order.
    pub const ALL: [Cell; 17] = [
        Cell::Inv,
        Cell::Nand2,
        Cell::Nor2,
        Cell::And2,
        Cell::Or2,
        Cell::Xor2,
        Cell::Xnor2,
        Cell::Mux2,
        Cell::Aoi21,
        Cell::Oai21,
        Cell::DLatch,
        Cell::Dff,
        Cell::DffR,
        Cell::DffE,
        Cell::CElement,
        Cell::Mutex,
        Cell::TriBuf,
    ];

    /// Static-CMOS transistor count of the cell.
    pub const fn transistors(self) -> u32 {
        match self {
            Cell::Inv => 2,
            Cell::Nand2 | Cell::Nor2 => 4,
            Cell::And2 | Cell::Or2 => 6,
            Cell::Xor2 | Cell::Xnor2 => 10,
            Cell::Mux2 => 12,
            Cell::Aoi21 | Cell::Oai21 => 6,
            Cell::DLatch => 16,
            Cell::Dff => 24,
            Cell::DffR => 28,
            Cell::DffE => 32,
            Cell::CElement => 8,
            Cell::Mutex => 16,
            Cell::TriBuf => 8,
        }
    }

    /// True for the 2-input combinational gates that define the area unit.
    pub const fn is_two_input_gate(self) -> bool {
        matches!(
            self,
            Cell::Nand2 | Cell::Nor2 | Cell::And2 | Cell::Or2 | Cell::Xor2 | Cell::Xnor2
        )
    }

    /// Area in gate equivalents (units of the average 2-input gate).
    pub fn area_ge(self) -> f64 {
        f64::from(self.transistors()) / average_two_input_transistors()
    }

    /// The cell's library name.
    pub const fn name(self) -> &'static str {
        match self {
            Cell::Inv => "INV",
            Cell::Nand2 => "NAND2",
            Cell::Nor2 => "NOR2",
            Cell::And2 => "AND2",
            Cell::Or2 => "OR2",
            Cell::Xor2 => "XOR2",
            Cell::Xnor2 => "XNOR2",
            Cell::Mux2 => "MUX2",
            Cell::Aoi21 => "AOI21",
            Cell::Oai21 => "OAI21",
            Cell::DLatch => "DLATCH",
            Cell::Dff => "DFF",
            Cell::DffR => "DFFR",
            Cell::DffE => "DFFE",
            Cell::CElement => "CELEM2",
            Cell::Mutex => "MUTEX2",
            Cell::TriBuf => "TBUF",
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Mean transistor count over the library's 2-input gates — the
/// denominator of every gate-equivalent figure.
pub fn average_two_input_transistors() -> f64 {
    let (sum, n) = Cell::ALL
        .iter()
        .filter(|c| c.is_two_input_gate())
        .fold((0u32, 0u32), |(s, n), c| (s + c.transistors(), n + 1));
    f64::from(sum) / f64::from(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_average_of_two_input_gates() {
        // (4+4+6+6+10+10)/6
        let avg = average_two_input_transistors();
        assert!((avg - 40.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn nand2_is_smaller_than_one_unit() {
        assert!(Cell::Nand2.area_ge() < 1.0);
        assert!(Cell::Xor2.area_ge() > 1.0);
    }

    #[test]
    fn flop_is_a_few_gate_equivalents() {
        let dff = Cell::Dff.area_ge();
        assert!(dff > 3.0 && dff < 4.0, "DFF = {dff}");
    }

    #[test]
    fn all_cells_have_positive_area_and_unique_names() {
        let mut names = std::collections::BTreeSet::new();
        for c in Cell::ALL {
            assert!(c.area_ge() > 0.0);
            assert!(names.insert(c.name()), "duplicate name {c}");
            assert_eq!(c.to_string(), c.name());
        }
    }

    #[test]
    fn average_gate_has_area_one_by_construction() {
        let mean: f64 = Cell::ALL
            .iter()
            .filter(|c| c.is_two_input_gate())
            .map(|c| c.area_ge())
            .sum::<f64>()
            / 6.0;
        assert!((mean - 1.0).abs() < 1e-12);
    }
}
