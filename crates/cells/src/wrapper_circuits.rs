//! Wired gate-level implementations of the remaining Table 1 components:
//! the SB interface bit-slice array and the self-timed FIFO stage.
//!
//! Together with [`crate::node_circuit`], every row of Table 1 now has a
//! *structural* counterpart whose cell inventory is checked against the
//! counting generators in [`crate::wrappers`] — the area model and the
//! simulated behaviour cannot silently drift apart.

use crate::library::Cell;
use crate::structural::{Circuit, Net};

/// A wired SB interface: handshake control plus one enabled capture flop
/// per data bit.
#[derive(Debug, Clone)]
pub struct InterfaceCircuit {
    /// The underlying circuit.
    pub circuit: Circuit,
    /// Input: interface enable (`sbena` from the node).
    pub enable: Net,
    /// Input: request/valid from the channel side.
    pub req_in: Net,
    /// Inputs: the bundled data bits.
    pub data_in: Vec<Net>,
    /// Outputs: the captured data bits.
    pub data_out: Vec<Net>,
    /// Output: acknowledge/parity back to the channel.
    pub ack_out: Net,
    /// Output: "FIFO empty" status toward the SB.
    pub empty: Net,
}

/// Builds a `bits`-wide interface.
///
/// Control structure (mirrors [`crate::wrappers::interface_netlist`]):
/// an acknowledge-parity flop, a status flop, a request transition
/// detector (XOR against a request-history flop is folded into the two
/// control flops), and enable gating; data path of one enabled capture
/// flop per bit.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds 64.
pub fn build_interface_circuit(bits: u32) -> InterfaceCircuit {
    assert!((1..=64).contains(&bits), "interface width 1-64");
    let mut c = Circuit::new("interface");
    let enable = c.input("enable");
    let req_in = c.input("req_in");
    let data_in: Vec<Net> = (0..bits).map(|i| c.input(&format!("d{i}"))).collect();

    // Control: request-history flop + transition detect.
    let req_hist = c.flop_placeholder(false);
    let req_edge = c.gate(Cell::Xor2, &[req_in, req_hist]);
    let fire = c.gate(Cell::And2, &[enable, req_edge]);
    c.bind_flop(req_hist, req_in, Some(enable));

    // Acknowledge parity flop toggles on every accepted transfer.
    let ack = c.flop_placeholder(false);
    let n_ack = c.gate(Cell::Inv, &[ack]);
    let ack_next = c.mux(fire, n_ack, ack);
    c.bind_flop(ack, ack_next, None);

    // Status: "empty" = no unconsumed request seen while enabled.
    let n_fire = c.gate(Cell::Inv, &[fire]);
    let empty = c.gate(Cell::And2, &[enable, n_fire]);

    // Data path: one enabled capture flop per bit.
    let data_out: Vec<Net> = data_in
        .iter()
        .map(|d| {
            let q = c.flop_placeholder(false);
            c.bind_flop(q, *d, Some(fire));
            q
        })
        .collect();

    InterfaceCircuit {
        circuit: c,
        enable,
        req_in,
        data_in,
        data_out,
        ack_out: ack,
        empty,
    }
}

/// A wired self-timed FIFO stage: C-element handshake control plus one
/// transparent latch per data bit (modelled with its enable as the latch
/// transparency control).
#[derive(Debug, Clone)]
pub struct FifoStageCircuit {
    /// The underlying circuit.
    pub circuit: Circuit,
    /// Input: request from the upstream stage.
    pub req_in: Net,
    /// Input: acknowledge from the downstream stage.
    pub ack_in: Net,
    /// Inputs: data bits from upstream.
    pub data_in: Vec<Net>,
    /// Output: request to downstream (the stage's occupancy).
    pub req_out: Net,
    /// Outputs: latched data bits.
    pub data_out: Vec<Net>,
}

/// Builds a `bits`-wide Muller-pipeline stage: `req_out` is a C-element
/// of the upstream request and the *inverted* downstream acknowledge —
/// the canonical control of Sutherland's micropipelines.
///
/// # Panics
///
/// Panics if `bits` is zero or exceeds 64.
pub fn build_fifo_stage_circuit(bits: u32) -> FifoStageCircuit {
    assert!((1..=64).contains(&bits), "stage width 1-64");
    let mut c = Circuit::new("fifo_stage");
    let req_in = c.input("req_in");
    let ack_in = c.input("ack_in");
    let data_in: Vec<Net> = (0..bits).map(|i| c.input(&format!("d{i}"))).collect();

    let n_ack = c.gate(Cell::Inv, &[ack_in]);
    let req_out = c.gate(Cell::CElement, &[req_in, n_ack]);
    // Latch transparency: open while the stage is empty (req_out low).
    let open = c.gate(Cell::Inv, &[req_out]);
    // One transparent latch per data bit, opaque while occupied.
    let data_out: Vec<Net> = data_in
        .iter()
        .map(|d| c.gate(Cell::DLatch, &[open, *d]))
        .collect();

    FifoStageCircuit {
        circuit: c,
        req_in,
        ack_in,
        data_in,
        req_out,
        data_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_word(c: &Circuit, st: &mut [bool], nets: &[Net], w: u64) {
        let assignments: Vec<(Net, bool)> = nets
            .iter()
            .enumerate()
            .map(|(i, n)| (*n, (w >> i) & 1 == 1))
            .collect();
        c.set_inputs(st, &assignments);
    }

    fn read_word(c: &Circuit, st: &[bool], nets: &[Net]) -> u64 {
        nets.iter()
            .enumerate()
            .map(|(i, n)| u64::from(c.value(st, *n)) << i)
            .sum()
    }

    #[test]
    fn interface_captures_only_when_enabled() {
        let ic = build_interface_circuit(8);
        let c = &ic.circuit;
        let mut st = c.reset_state();
        set_word(c, &mut st, &ic.data_in, 0xA5);
        // Request toggles while disabled: no capture, no ack.
        c.set_input(&mut st, ic.req_in, true);
        c.clock_edge(&mut st);
        assert_eq!(read_word(c, &st, &ic.data_out), 0);
        assert!(!c.value(&st, ic.ack_out));
        // Enable: the pending request edge is seen and captured.
        c.set_input(&mut st, ic.enable, true);
        c.clock_edge(&mut st);
        assert_eq!(read_word(c, &st, &ic.data_out), 0xA5);
        assert!(c.value(&st, ic.ack_out), "ack parity flipped");
    }

    #[test]
    fn interface_consumes_each_request_once() {
        let ic = build_interface_circuit(4);
        let c = &ic.circuit;
        let mut st = c.reset_state();
        c.set_input(&mut st, ic.enable, true);
        set_word(c, &mut st, &ic.data_in, 0x3);
        c.set_input(&mut st, ic.req_in, true);
        c.clock_edge(&mut st); // captures
        let ack_after_first = c.value(&st, ic.ack_out);
        set_word(c, &mut st, &ic.data_in, 0xF);
        c.clock_edge(&mut st); // same request level: no new capture
        assert_eq!(read_word(c, &st, &ic.data_out), 0x3, "held");
        assert_eq!(c.value(&st, ic.ack_out), ack_after_first);
        // New toggle -> new capture.
        c.set_input(&mut st, ic.req_in, false);
        c.clock_edge(&mut st);
        assert_eq!(read_word(c, &st, &ic.data_out), 0xF);
    }

    #[test]
    fn interface_empty_status_tracks_requests() {
        let ic = build_interface_circuit(2);
        let c = &ic.circuit;
        let mut st = c.reset_state();
        c.set_input(&mut st, ic.enable, true);
        assert!(c.value(&st, ic.empty), "idle and enabled: empty");
        c.set_input(&mut st, ic.req_in, true);
        assert!(!c.value(&st, ic.empty), "pending transfer: not empty");
    }

    #[test]
    fn stage_control_follows_the_muller_protocol() {
        let sc = build_fifo_stage_circuit(4);
        let c = &sc.circuit;
        let mut st = c.reset_state();
        assert!(!c.value(&st, sc.req_out), "starts empty");
        // Empty stage is transparent.
        set_word(c, &mut st, &sc.data_in, 0x9);
        assert_eq!(read_word(c, &st, &sc.data_out), 0x9);
        // Upstream raises req: stage fills and the latch goes opaque.
        c.set_input(&mut st, sc.req_in, true);
        assert!(c.value(&st, sc.req_out), "occupied");
        set_word(c, &mut st, &sc.data_in, 0x0);
        assert_eq!(read_word(c, &st, &sc.data_out), 0x9, "opaque holds");
        // Downstream acks: C-element holds until req_in also drops.
        c.set_input(&mut st, sc.ack_in, true);
        assert!(c.value(&st, sc.req_out), "C-element holds at mismatch");
        c.set_input(&mut st, sc.req_in, false);
        assert!(!c.value(&st, sc.req_out), "drains");
        // Open again: transparent to new data.
        c.set_input(&mut st, sc.ack_in, false);
        set_word(c, &mut st, &sc.data_in, 0x6);
        assert_eq!(read_word(c, &st, &sc.data_out), 0x6);
    }

    #[test]
    fn inventories_track_the_table1_generators() {
        // Structural circuits and counting generators must agree on the
        // *slope* (per-bit cost) and roughly on the base.
        for bits in [4u32, 16, 48] {
            let interface_model = crate::wrappers::interface_netlist(u64::from(bits)).area_ge();
            let interface_built = build_interface_circuit(bits).circuit.inventory().area_ge();
            let rel = (interface_built - interface_model).abs() / interface_model;
            assert!(
                rel < 0.25,
                "interface {bits} bits: built {interface_built:.1} vs model {interface_model:.1}"
            );
            let stage_model = crate::wrappers::fifo_stage_netlist(u64::from(bits)).area_ge();
            let stage_built = build_fifo_stage_circuit(bits).circuit.inventory().area_ge();
            let rel = (stage_built - stage_model).abs() / stage_model;
            assert!(
                rel < 0.25,
                "stage {bits} bits: built {stage_built:.1} vs model {stage_model:.1}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "width 1-64")]
    fn zero_width_interface_rejected() {
        let _ = build_interface_circuit(0);
    }

    /// Lane-packing for exhaustive input sweeps: lane `L` drives input
    /// `i` with bit `(L >> i) & 1`, so 64 lanes enumerate every value of
    /// 6 inputs at once. Offsetting by `t` walks each lane through a
    /// different combination sequence over time.
    fn sweep_masks(inputs: &[Net], t: usize) -> Vec<(Net, u64)> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let mask: u64 = (0..crate::compiled::LANES)
                    .map(|lane| (((((lane + t) % 64) >> i) as u64) & 1) << lane)
                    .sum();
                (*n, mask)
            })
            .collect()
    }

    /// The 4-bit interface has exactly 6 inputs (enable, req, 4 data
    /// bits): one compiled pass sweeps all 64 input combinations, and
    /// every lane must match a scalar interpreter run fed the same
    /// combination sequence, cycle for cycle.
    #[test]
    fn interface_lanes_sweep_all_input_combinations() {
        let ic = build_interface_circuit(4);
        let c = &ic.circuit;
        let mut inputs = vec![ic.enable, ic.req_in];
        inputs.extend(&ic.data_in);
        let cc = crate::compiled::CompiledCircuit::compile(c);
        let mut lanes = cc.reset_state();
        let mut scalar: Vec<Vec<bool>> = (0..64).map(|_| c.reset_state()).collect();
        let probes = {
            let mut p = vec![ic.ack_out, ic.empty];
            p.extend(&ic.data_out);
            p
        };
        for t in 0..8 {
            cc.drive_many(&mut lanes, &sweep_masks(&inputs, t));
            for (lane, st) in scalar.iter_mut().enumerate() {
                let combo = (lane + t) % 64;
                let assigns: Vec<(Net, bool)> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (*n, (combo >> i) & 1 == 1))
                    .collect();
                c.set_inputs(st, &assigns);
                for probe in &probes {
                    assert_eq!(
                        lanes.lane(*probe, lane),
                        c.value(st, *probe),
                        "t={t} lane={lane} net {probe} diverged pre-edge"
                    );
                }
            }
            cc.clock_edge(&mut lanes);
            for (lane, st) in scalar.iter_mut().enumerate() {
                c.clock_edge(st);
                assert_eq!(
                    lanes.extract_lane(lane),
                    *st,
                    "t={t} lane={lane} full state diverged post-edge"
                );
            }
        }
    }

    /// Same exhaustive lane sweep for the self-timed FIFO stage (6
    /// inputs at 4 data bits); purely combinational + C-element/latch
    /// state, so the comparison is per settle.
    #[test]
    fn fifo_stage_lanes_sweep_all_input_combinations() {
        let sc = build_fifo_stage_circuit(4);
        let c = &sc.circuit;
        let mut inputs = vec![sc.req_in, sc.ack_in];
        inputs.extend(&sc.data_in);
        let cc = crate::compiled::CompiledCircuit::compile(c);
        let mut lanes = cc.reset_state();
        let mut scalar: Vec<Vec<bool>> = (0..64).map(|_| c.reset_state()).collect();
        for t in 0..8 {
            cc.drive_many(&mut lanes, &sweep_masks(&inputs, t));
            for (lane, st) in scalar.iter_mut().enumerate() {
                let combo = (lane + t) % 64;
                let assigns: Vec<(Net, bool)> = inputs
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (*n, (combo >> i) & 1 == 1))
                    .collect();
                c.set_inputs(st, &assigns);
                assert_eq!(
                    lanes.extract_lane(lane),
                    *st,
                    "t={t} lane={lane} stage state diverged"
                );
            }
        }
    }
}
