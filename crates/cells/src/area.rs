//! Area models and the Table 1 report.
//!
//! The paper models the SB interface and FIFO stage as affine functions
//! of the data width and the node as a constant. [`LinearModel::fit`]
//! recovers the coefficients from any netlist generator and checks that
//! the generator really is affine.

use crate::netlist::Netlist;
use crate::wrappers;
use std::fmt;

/// An affine area model `area(bits) = base + per_bit · bits` in gate
/// equivalents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Fixed (control) area.
    pub base: f64,
    /// Incremental area per data bit.
    pub per_bit: f64,
}

impl LinearModel {
    /// Fits the model from a netlist generator by evaluating it at widths
    /// 1 and 2, then validating affinity at several more widths.
    ///
    /// # Panics
    ///
    /// Panics if the generator is not affine in `bits` (a model bug).
    pub fn fit(generator: impl Fn(u64) -> Netlist) -> Self {
        let a1 = generator(1).area_ge();
        let a2 = generator(2).area_ge();
        let per_bit = a2 - a1;
        let base = a1 - per_bit;
        let model = LinearModel { base, per_bit };
        for bits in [4u64, 8, 16, 32, 64] {
            let actual = generator(bits).area_ge();
            assert!(
                (actual - model.eval(bits)).abs() < 1e-6,
                "generator is not affine at {bits} bits: {actual} vs {}",
                model.eval(bits)
            );
        }
        model
    }

    /// Evaluates the model at a data width.
    pub fn eval(&self, bits: u64) -> f64 {
        self.base + self.per_bit * bits as f64
    }
}

impl fmt::Display for LinearModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} + {:.2}·bits", self.base, self.per_bit)
    }
}

/// The reproduction of Table 1: per-component area models in units of the
/// average 2-input gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1 {
    /// SB interface model (affine in data bits).
    pub interface: LinearModel,
    /// FIFO stage model (affine in data bits).
    pub stage: LinearModel,
    /// Node area (constant).
    pub node: f64,
}

impl Table1 {
    /// Computes the table from the wrapper netlist generators.
    pub fn compute() -> Self {
        Table1 {
            interface: LinearModel::fit(wrappers::interface_netlist),
            stage: LinearModel::fit(wrappers::fifo_stage_netlist),
            node: wrappers::node_netlist().area_ge(),
        }
    }

    /// The paper's reported node area, for comparison.
    pub const PAPER_NODE_GE: f64 = 145.0;
}

impl Default for Table1 {
    fn default() -> Self {
        Self::compute()
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1. Synchro-tokens component area models.")?;
        writeln!(f, "{:<14} {:<30}", "Component", "Area (2-input gates)")?;
        writeln!(f, "{:<14} {}", "SB interface", self.interface)?;
        writeln!(f, "{:<14} {}", "FIFO stage", self.stage)?;
        writeln!(
            f,
            "{:<14} {:.0}   (paper: {:.0})",
            "Node",
            self.node,
            Self::PAPER_NODE_GE
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_coefficients() {
        let m = LinearModel::fit(wrappers::fifo_stage_netlist);
        let direct1 = wrappers::fifo_stage_netlist(1).area_ge();
        assert!((m.eval(1) - direct1).abs() < 1e-9);
        let direct40 = wrappers::fifo_stage_netlist(40).area_ge();
        assert!((m.eval(40) - direct40).abs() < 1e-9);
    }

    #[test]
    fn table_one_node_close_to_paper() {
        let t = Table1::compute();
        assert!((t.node - Table1::PAPER_NODE_GE).abs() < 5.0);
    }

    #[test]
    fn table_one_display_has_all_rows() {
        let s = Table1::compute().to_string();
        assert!(s.contains("SB interface"));
        assert!(s.contains("FIFO stage"));
        assert!(s.contains("Node"));
        assert!(s.contains("145"));
    }

    #[test]
    fn default_equals_compute() {
        assert_eq!(Table1::default(), Table1::compute());
    }

    #[test]
    #[should_panic(expected = "not affine")]
    fn non_affine_generator_rejected() {
        use crate::library::Cell;
        let _ = LinearModel::fit(|bits| {
            let mut n = Netlist::new("quadratic");
            n.add(Cell::Inv, bits * bits);
            n
        });
    }
}
