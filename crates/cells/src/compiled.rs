//! Compiled 64-lane bit-parallel gate-level simulation.
//!
//! [`Circuit`]'s interpreter walks a `Vec<Gate>` of heap-allocated input
//! lists and branches per gate per input — fine for building circuits,
//! slow for sweeping them. [`CompiledCircuit`] lowers a built circuit
//! into a flat tape of fixed-arity ops (opcode plus dense operand
//! indices, construction/topological order preserved) evaluated over a
//! `Vec<u64>` where **each of the 64 bits of a word is an independent
//! simulation lane**: one pass over the tape advances 64 stimulus
//! configurations at once, with no per-gate heap indirection and no
//! branch per input. This is the classic SIMD-within-a-word batching of
//! compiled logic simulators, applied to the paper's gate-level wrapper
//! models so equivalence sweeps and shmoo-style campaigns scale.
//!
//! Stateful cells (C-elements, transparent latches) read their own
//! output slot, exactly like the interpreter; flops sample two-phase on
//! [`CompiledCircuit::clock_edge`]. Because the tape preserves the
//! interpreter's evaluation order and per-cell semantics bit-for-bit,
//! lane *k* of a compiled run is cycle-accurate against a scalar
//! interpreter run fed the same stimulus — asserted by the differential
//! proptests in `tests/compiled_props.rs`.
//!
//! # Example
//!
//! ```
//! use st_cells::compiled::CompiledCircuit;
//! use st_cells::{Cell, Circuit};
//!
//! let mut c = Circuit::new("toggle");
//! let q = c.flop_placeholder(false);
//! let nq = c.gate(Cell::Inv, &[q]);
//! c.bind_flop(q, nq, None);
//! let cc = CompiledCircuit::compile(&c);
//! let mut st = cc.reset_state();
//! assert_eq!(cc.value(&st, q), 0, "all 64 lanes reset low");
//! cc.clock_edge(&mut st);
//! assert_eq!(cc.value(&st, q), u64::MAX, "all 64 lanes toggled high");
//! ```

use crate::library::Cell;
use crate::structural::{Circuit, Net};

/// Number of independent simulation lanes per state word.
pub const LANES: usize = 64;

/// Fixed-arity word-wide opcode. Unused operand slots alias operand `a`
/// so every op loads exactly three words — no branch per input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpKind {
    Inv,
    Buf,
    Nand2,
    Nor2,
    And2,
    Or2,
    Xor2,
    Xnor2,
    /// Two-input Muller C-element; state lives in its output slot.
    CElem,
    /// Transparent latch, operands (enable, d); holds its output slot
    /// while opaque.
    DLatch,
    /// 2:1 mux, operands (sel, a, b).
    Mux2,
    Aoi21,
    Oai21,
}

/// One tape entry: opcode plus dense operand/output word indices.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: OpKind,
    a: u32,
    b: u32,
    c: u32,
    out: u32,
}

/// A compiled flop: output word, data word, enable word (`u32::MAX` =
/// always enabled) and a per-lane reset mask (all lanes share the reset
/// value, so it is `0` or `!0`).
#[derive(Debug, Clone, Copy)]
struct CFlop {
    q: u32,
    d: u32,
    enable: u32,
    reset: u64,
}

const NO_ENABLE: u32 = u32::MAX;

/// 64-lane state for a [`CompiledCircuit`]: one `u64` per net, bit *k*
/// of each word is lane *k*'s value of that net.
///
/// Raw lane accessors here do **not** re-settle the circuit; they exist
/// for loading stimulus and probing. Use
/// [`CompiledCircuit::drive`]/[`CompiledCircuit::drive_many`] for the
/// checked drive-and-settle path.
#[derive(Debug, Clone)]
pub struct LaneState {
    words: Vec<u64>,
    /// Flop-sample scratch, kept here so `clock_edge` never allocates.
    scratch: Vec<u64>,
}

impl LaneState {
    /// The raw 64-lane word of a net.
    pub fn word(&self, net: Net) -> u64 {
        self.words[net.0]
    }

    /// Overwrites the raw 64-lane word of a net (no settle, no input
    /// check — stimulus loading only).
    pub fn set_word(&mut self, net: Net, word: u64) {
        self.words[net.0] = word;
    }

    /// Reads one lane of a net.
    pub fn lane(&self, net: Net, lane: usize) -> bool {
        assert!(lane < LANES, "lane {lane} out of range");
        (self.words[net.0] >> lane) & 1 == 1
    }

    /// Sets one lane of a net (no settle, no input check).
    pub fn set_lane(&mut self, net: Net, lane: usize, value: bool) {
        assert!(lane < LANES, "lane {lane} out of range");
        let bit = 1u64 << lane;
        if value {
            self.words[net.0] |= bit;
        } else {
            self.words[net.0] &= !bit;
        }
    }

    /// Extracts one lane as a scalar state vector, directly comparable
    /// with the interpreter's `Vec<bool>` state.
    pub fn extract_lane(&self, lane: usize) -> Vec<bool> {
        assert!(lane < LANES, "lane {lane} out of range");
        self.words.iter().map(|w| (w >> lane) & 1 == 1).collect()
    }

    /// Loads a scalar state vector (e.g. the interpreter's) into one
    /// lane of every net.
    ///
    /// # Panics
    ///
    /// Panics if `scalar` has the wrong net count.
    pub fn load_lane(&mut self, lane: usize, scalar: &[bool]) {
        assert!(lane < LANES, "lane {lane} out of range");
        assert_eq!(scalar.len(), self.words.len(), "net count mismatch");
        let bit = 1u64 << lane;
        for (w, &v) in self.words.iter_mut().zip(scalar) {
            if v {
                *w |= bit;
            } else {
                *w &= !bit;
            }
        }
    }
}

/// A [`Circuit`] lowered to a flat op tape evaluated 64 lanes at a time.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    name: String,
    net_count: usize,
    ops: Vec<Op>,
    flops: Vec<CFlop>,
    /// Tie-offs as (word index, lane mask) — `0` or `!0`.
    constants: Vec<(u32, u64)>,
    is_input: Vec<bool>,
}

impl CompiledCircuit {
    /// Lowers a built circuit into the op tape, preserving the
    /// interpreter's (topological) evaluation order.
    pub fn compile(circuit: &Circuit) -> Self {
        let net_count = circuit.net_count();
        let idx = |n: Net| u32::try_from(n.0).expect("net index fits u32");
        let ops = circuit
            .gates
            .iter()
            .map(|g| {
                let a = idx(g.inputs[0]);
                let b = g.inputs.get(1).copied().map_or(a, idx);
                let c = g.inputs.get(2).copied().map_or(a, idx);
                let kind = match g.kind {
                    Cell::Inv => OpKind::Inv,
                    Cell::TriBuf => OpKind::Buf,
                    Cell::Nand2 => OpKind::Nand2,
                    Cell::Nor2 => OpKind::Nor2,
                    Cell::And2 => OpKind::And2,
                    Cell::Or2 => OpKind::Or2,
                    Cell::Xor2 => OpKind::Xor2,
                    Cell::Xnor2 => OpKind::Xnor2,
                    Cell::CElement => OpKind::CElem,
                    Cell::DLatch => OpKind::DLatch,
                    Cell::Mux2 => OpKind::Mux2,
                    Cell::Aoi21 => OpKind::Aoi21,
                    Cell::Oai21 => OpKind::Oai21,
                    other => unreachable!("{other} rejected at construction"),
                };
                Op {
                    kind,
                    a,
                    b,
                    c,
                    out: idx(g.output),
                }
            })
            .collect();
        let flops = circuit
            .flops
            .iter()
            .map(|f| CFlop {
                q: idx(f.q),
                d: idx(f.d),
                enable: f.enable.map_or(NO_ENABLE, idx),
                reset: if f.reset { !0 } else { 0 },
            })
            .collect();
        let constants = circuit
            .constants
            .iter()
            .map(|&(n, v)| (idx(n), if v { !0 } else { 0 }))
            .collect();
        CompiledCircuit {
            name: circuit.name().to_owned(),
            net_count,
            ops,
            flops,
            constants,
            is_input: (0..net_count).map(|i| circuit.is_input(Net(i))).collect(),
        }
    }

    /// The source circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets (state words).
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Number of ops on the tape (= gates in the source circuit).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// A 64-lane state with every lane at reset: inputs low, constants
    /// applied, flops at their reset values, combinational logic
    /// settled.
    pub fn reset_state(&self) -> LaneState {
        let mut st = LaneState {
            words: vec![0; self.net_count],
            scratch: Vec::with_capacity(self.flops.len()),
        };
        for &(n, mask) in &self.constants {
            st.words[n as usize] = mask;
        }
        for f in &self.flops {
            st.words[f.q as usize] = f.reset;
        }
        self.settle(&mut st);
        st
    }

    /// The 64-lane word of a net (bit *k* = lane *k*).
    pub fn value(&self, st: &LaneState, net: Net) -> u64 {
        st.words[net.0]
    }

    /// One lane of a net.
    pub fn value_lane(&self, st: &LaneState, net: Net, lane: usize) -> bool {
        st.lane(net, lane)
    }

    /// Drives a primary input's 64 lanes from a mask and re-settles.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn drive(&self, st: &mut LaneState, net: Net, lanes: u64) {
        assert!(self.is_input[net.0], "{net} is not a primary input");
        st.words[net.0] = lanes;
        self.settle(st);
    }

    /// Drives several primary inputs and settles once.
    ///
    /// # Panics
    ///
    /// Panics if any net is not a primary input.
    pub fn drive_many(&self, st: &mut LaneState, assignments: &[(Net, u64)]) {
        for &(net, lanes) in assignments {
            assert!(self.is_input[net.0], "{net} is not a primary input");
            st.words[net.0] = lanes;
        }
        self.settle(st);
    }

    /// Evaluates the whole tape once, word-wide, in tape order.
    pub fn settle(&self, st: &mut LaneState) {
        let w = &mut st.words[..];
        for op in &self.ops {
            let a = w[op.a as usize];
            let b = w[op.b as usize];
            let c = w[op.c as usize];
            let out = op.out as usize;
            w[out] = match op.kind {
                OpKind::Inv => !a,
                OpKind::Buf => a,
                OpKind::Nand2 => !(a & b),
                OpKind::Nor2 => !(a | b),
                OpKind::And2 => a & b,
                OpKind::Or2 => a | b,
                OpKind::Xor2 => a ^ b,
                OpKind::Xnor2 => !(a ^ b),
                OpKind::CElem => {
                    // Per lane: a == b chooses a, else holds.
                    let agree = !(a ^ b);
                    (a & agree) | (w[out] & !agree)
                }
                OpKind::DLatch => (a & b) | (!a & w[out]),
                OpKind::Mux2 => (a & b) | (!a & c),
                OpKind::Aoi21 => !((a & b) | c),
                OpKind::Oai21 => !((a | b) & c),
            };
        }
    }

    /// One rising clock edge in every lane: all (enabled) flops sample
    /// their D two-phase, then the tape settles.
    pub fn clock_edge(&self, st: &mut LaneState) {
        st.scratch.clear();
        for f in &self.flops {
            let d = st.words[f.d as usize];
            let q = st.words[f.q as usize];
            let en = if f.enable == NO_ENABLE {
                !0
            } else {
                st.words[f.enable as usize]
            };
            st.scratch.push((d & en) | (q & !en));
        }
        for (f, &v) in self.flops.iter().zip(&st.scratch) {
            st.words[f.q as usize] = v;
        }
        self.settle(st);
    }

    /// True when every net agrees across all 64 lanes — the invariant a
    /// lane-replicated stimulus must preserve.
    pub fn all_lanes_equal(&self, st: &LaneState) -> bool {
        st.words.iter().all(|&w| w == 0 || w == !0)
    }

    /// Injects a single-event upset: flips `net` in the lanes selected
    /// by `lane_mask`, then settles. Returns the lanes in which the flip
    /// *survived* settling — `0` means combinational recomputation
    /// masked the strike entirely, a non-zero result means the upset
    /// landed in state (a flop output, a holding latch or C-element)
    /// and persists until overwritten. Flipping 64 different lanes in
    /// one call evaluates 64 SEU sites' maskability in a single pass.
    pub fn inject_seu(&self, st: &mut LaneState, net: Net, lane_mask: u64) -> u64 {
        let before = st.words[net.0];
        st.words[net.0] ^= lane_mask;
        self.settle(st);
        st.words[net.0] ^ before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Input-lane packing for exhaustive sweeps: input `i` of lane `L`
    /// carries bit `(L >> i) & 1`, so 64 lanes enumerate all values of
    /// up to 6 inputs in one pass.
    fn sweep_mask(input_index: usize) -> u64 {
        (0..LANES)
            .map(|lane| (((lane >> input_index) as u64) & 1) << lane)
            .sum()
    }

    #[test]
    fn combinational_lanes_sweep_exhaustively() {
        let mut c = Circuit::new("comb");
        let a = c.input("a");
        let b = c.input("b");
        let nand = c.gate(Cell::Nand2, &[a, b]);
        let xor = c.gate(Cell::Xor2, &[a, b]);
        let aoi = c.gate(Cell::Aoi21, &[a, b, xor]);
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        cc.drive_many(&mut st, &[(a, sweep_mask(0)), (b, sweep_mask(1))]);
        for lane in 0..4 {
            let (va, vb) = (lane & 1 == 1, lane & 2 == 2);
            assert_eq!(st.lane(nand, lane), !(va && vb), "lane {lane} nand");
            assert_eq!(st.lane(xor, lane), va ^ vb, "lane {lane} xor");
            assert_eq!(
                st.lane(aoi, lane),
                !((va && vb) || (va ^ vb)),
                "lane {lane} aoi"
            );
        }
    }

    #[test]
    fn c_element_holds_per_lane() {
        let mut c = Circuit::new("celem");
        let a = c.input("a");
        let b = c.input("b");
        let y = c.gate(Cell::CElement, &[a, b]);
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        // Lane 0: both rise. Lane 1: only a rises (holds low).
        cc.drive_many(&mut st, &[(a, 0b11), (b, 0b01)]);
        assert_eq!(cc.value(&st, y) & 0b11, 0b01);
        // Both drop a; lane 0 holds high at mismatch.
        cc.drive_many(&mut st, &[(a, 0b00), (b, 0b01)]);
        assert_eq!(cc.value(&st, y) & 0b11, 0b01, "lane 0 holds");
        cc.drive(&mut st, b, 0);
        assert_eq!(cc.value(&st, y) & 0b11, 0b00, "clears when both low");
    }

    #[test]
    fn latch_transparency_per_lane() {
        let mut c = Circuit::new("latch");
        let en = c.input("en");
        let d = c.input("d");
        let q = c.gate(Cell::DLatch, &[en, d]);
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        cc.drive_many(&mut st, &[(en, 0b01), (d, 0b11)]);
        assert_eq!(cc.value(&st, q) & 0b11, 0b01, "only open lane follows");
        cc.drive_many(&mut st, &[(en, 0b00), (d, 0b00)]);
        assert_eq!(cc.value(&st, q) & 0b11, 0b01, "opaque lanes hold");
    }

    #[test]
    fn flop_enable_and_reset_lanes() {
        let mut c = Circuit::new("dffe");
        let d = c.input("d");
        let en = c.input("en");
        let q = c.flop_placeholder(true);
        c.bind_flop(q, d, Some(en));
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        assert_eq!(cc.value(&st, q), !0, "reset high in every lane");
        // Lanes 0..32 enabled, all D low.
        cc.drive_many(&mut st, &[(d, 0), (en, 0xFFFF_FFFF)]);
        cc.clock_edge(&mut st);
        assert_eq!(cc.value(&st, q), !0u64 << 32, "only enabled lanes sample");
    }

    #[test]
    fn constants_and_lane_state_helpers() {
        let mut c = Circuit::new("consts");
        let a = c.input("a");
        let one = c.constant(true);
        let y = c.gate(Cell::And2, &[a, one]);
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        assert_eq!(cc.value(&st, one), !0);
        st.set_lane(a, 5, true);
        cc.settle(&mut st);
        assert!(st.lane(y, 5));
        assert!(!st.lane(y, 4));
        let scalar = st.extract_lane(5);
        assert!(scalar[y.0]);
        let mut st2 = cc.reset_state();
        st2.load_lane(9, &scalar);
        assert!(st2.lane(a, 9));
        assert_eq!(st2.extract_lane(9), scalar);
    }

    #[test]
    fn all_lanes_equal_detects_divergence() {
        let mut c = Circuit::new("div");
        let a = c.input("a");
        let _ = c.gate(Cell::Inv, &[a]);
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        assert!(cc.all_lanes_equal(&st));
        cc.drive(&mut st, a, 1);
        assert!(!cc.all_lanes_equal(&st));
        cc.drive(&mut st, a, !0);
        assert!(cc.all_lanes_equal(&st));
    }

    #[test]
    fn seu_on_combinational_net_is_masked() {
        let mut c = Circuit::new("seu-comb");
        let a = c.input("a");
        let b = c.input("b");
        let y = c.gate(Cell::Nand2, &[a, b]);
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        cc.drive_many(&mut st, &[(a, sweep_mask(0)), (b, sweep_mask(1))]);
        let before = cc.value(&st, y);
        // A strike on a pure combinational output is recomputed away in
        // every lane, whatever the input pattern under it.
        assert_eq!(cc.inject_seu(&mut st, y, !0), 0, "masked in all lanes");
        assert_eq!(cc.value(&st, y), before);
    }

    #[test]
    fn seu_on_flop_output_persists_until_resampled() {
        let mut c = Circuit::new("seu-flop");
        let d = c.input("d");
        let q = c.flop_placeholder(false);
        c.bind_flop(q, d, None);
        let nq = c.gate(Cell::Inv, &[q]);
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        cc.drive(&mut st, d, 0);
        // Flop state is not recomputed by settle: the flip survives and
        // propagates into downstream logic.
        assert_eq!(cc.inject_seu(&mut st, q, 0b101), 0b101, "upset latched");
        assert!(st.lane(q, 0) && !st.lane(q, 1) && st.lane(q, 2));
        assert_eq!(cc.value(&st, nq) & 0b111, 0b010, "fault fans out");
        // The next clock edge resamples D and scrubs the upset.
        cc.clock_edge(&mut st);
        assert_eq!(cc.value(&st, q), 0, "scrubbed at the next sample");
    }

    #[test]
    fn seu_on_held_latch_persists_while_opaque() {
        let mut c = Circuit::new("seu-latch");
        let en = c.input("en");
        let d = c.input("d");
        let q = c.gate(Cell::DLatch, &[en, d]);
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        // Latch a 0 everywhere, then close the latch.
        cc.drive_many(&mut st, &[(en, !0), (d, 0)]);
        cc.drive(&mut st, en, 0);
        // Opaque lanes hold the corrupted value; nothing recomputes it.
        assert_eq!(cc.inject_seu(&mut st, q, 0b11), 0b11, "held while opaque");
        // Re-opening the latch restores D and clears the upset.
        cc.drive(&mut st, en, !0);
        assert_eq!(cc.value(&st, q), 0, "transparency scrubs the fault");
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn drive_rejects_non_inputs() {
        let mut c = Circuit::new("bad");
        let a = c.input("a");
        let y = c.gate(Cell::Inv, &[a]);
        let cc = CompiledCircuit::compile(&c);
        let mut st = cc.reset_state();
        cc.drive(&mut st, y, 1);
    }
}
