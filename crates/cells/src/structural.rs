//! Structural gate-level netlists: connectivity plus cycle-accurate
//! evaluation.
//!
//! [`Netlist`] counts cells for area; this module builds
//! *wired* circuits and simulates them, so that the behavioural wrapper
//! models in `synchro-tokens` can be checked against an actual gate-level
//! implementation (the paper: "a gate-level model of the wrapper
//! logic").
//!
//! The evaluator is deliberately simple: gates must be instantiated in
//! topological order (inputs before use — enforced at build time), so
//! combinational evaluation is a single pass; flip-flops sample on an
//! explicit [`Circuit::clock_edge`].

use crate::library::Cell;
use crate::netlist::Netlist;
use std::fmt;

/// A net (single-bit wire) in a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Net(pub(crate) usize);

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Gate {
    pub(crate) kind: Cell,
    pub(crate) inputs: Vec<Net>,
    pub(crate) output: Net,
}

#[derive(Debug, Clone)]
pub(crate) struct Flop {
    pub(crate) d: Net,
    pub(crate) q: Net,
    pub(crate) reset: bool,
    /// Optional clock-enable net (DFFE).
    pub(crate) enable: Option<Net>,
}

/// A wired gate-level circuit with primary inputs, combinational gates
/// in topological order, and D flip-flops.
///
/// # Examples
///
/// ```
/// use st_cells::structural::Circuit;
/// use st_cells::Cell;
///
/// let mut c = Circuit::new("toggle");
/// let q_feedback = c.flop_placeholder(false);
/// let not_q = c.gate(Cell::Inv, &[q_feedback]);
/// c.bind_flop(q_feedback, not_q, None);
/// let mut state = c.reset_state();
/// assert!(!c.value(&state, q_feedback));
/// c.clock_edge(&mut state);
/// assert!(c.value(&state, q_feedback));
/// c.clock_edge(&mut state);
/// assert!(!c.value(&state, q_feedback));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    name: String,
    net_names: Vec<String>,
    inputs: Vec<Net>,
    /// Input-membership bitset indexed by net id — O(1) primary-input
    /// checks in the per-cycle drive path.
    is_input: Vec<bool>,
    pub(crate) gates: Vec<Gate>,
    pub(crate) flops: Vec<Flop>,
    /// For each net: Some(gate index) if driven by a gate, None if a
    /// primary input or flop output.
    driven_by_gate: Vec<Option<usize>>,
    /// Tie-off nets with fixed values (register straps, ROM bits).
    pub(crate) constants: Vec<(Net, bool)>,
}

impl Circuit {
    /// An empty circuit.
    pub fn new(name: &str) -> Self {
        Circuit {
            name: name.to_owned(),
            ..Circuit::default()
        }
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn new_net(&mut self, name: String) -> Net {
        let id = Net(self.net_names.len());
        self.net_names.push(name);
        self.driven_by_gate.push(None);
        self.is_input.push(false);
        id
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: &str) -> Net {
        let n = self.new_net(name.to_owned());
        self.inputs.push(n);
        self.is_input[n.0] = true;
        n
    }

    /// True if `net` is a primary input.
    pub fn is_input(&self, net: Net) -> bool {
        self.is_input[net.0]
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[Net] {
        &self.inputs
    }

    /// Declares a tie-off net with a fixed value (how the hold/recycle
    /// registers' ROM/fuse bits appear to the logic).
    pub fn constant(&mut self, value: bool) -> Net {
        let n = self.new_net(format!("const_{}", u8::from(value)));
        self.constants.push((n, value));
        n
    }

    /// Declares a flip-flop output net whose D input will be bound later
    /// with [`bind_flop`](Circuit::bind_flop) — this is how feedback
    /// loops are closed while keeping gates topologically ordered.
    pub fn flop_placeholder(&mut self, reset: bool) -> Net {
        let q = self.new_net(format!("q{}", self.flops.len()));
        self.flops.push(Flop {
            d: q, // temporarily self-bound
            q,
            reset,
            enable: None,
        });
        q
    }

    /// Binds a placeholder flop's D input (and optional enable).
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a flop output.
    pub fn bind_flop(&mut self, q: Net, d: Net, enable: Option<Net>) {
        let f = self
            .flops
            .iter_mut()
            .find(|f| f.q == q)
            .expect("net is not a flop output");
        f.d = d;
        f.enable = enable;
    }

    /// Instantiates a gate; returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if the input arity does not match the cell.
    pub fn gate(&mut self, kind: Cell, inputs: &[Net]) -> Net {
        let arity = match kind {
            Cell::Inv | Cell::TriBuf => 1,
            Cell::Nand2
            | Cell::Nor2
            | Cell::And2
            | Cell::Or2
            | Cell::Xor2
            | Cell::Xnor2
            | Cell::CElement
            | Cell::DLatch => 2,
            Cell::Mux2 | Cell::Aoi21 | Cell::Oai21 => 3,
            other => panic!("{other} cannot be instantiated as a combinational gate"),
        };
        assert_eq!(inputs.len(), arity, "{kind} takes {arity} inputs");
        let out = self.new_net(format!("{}#{}", kind, self.gates.len()));
        let idx = self.gates.len();
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output: out,
        });
        self.driven_by_gate[out.0] = Some(idx);
        out
    }

    /// Convenience: a 2:1 mux (`sel ? a : b`).
    pub fn mux(&mut self, sel: Net, a: Net, b: Net) -> Net {
        self.gate(Cell::Mux2, &[sel, a, b])
    }

    /// Convenience: AND of a slice via a balanced tree.
    ///
    /// # Panics
    ///
    /// Panics if `nets` is empty.
    pub fn and_tree(&mut self, nets: &[Net]) -> Net {
        assert!(!nets.is_empty(), "and tree needs inputs");
        if nets.len() == 1 {
            return nets[0];
        }
        let mid = nets.len() / 2;
        let (l, r) = (nets[..mid].to_vec(), nets[mid..].to_vec());
        let a = self.and_tree(&l);
        let b = self.and_tree(&r);
        self.gate(Cell::And2, &[a, b])
    }

    /// The circuit's cell inventory (for area accounting — this is what
    /// ties the structural model back to Table 1).
    pub fn inventory(&self) -> Netlist {
        let mut n = Netlist::new(&self.name);
        for g in &self.gates {
            n.add(g.kind, 1);
        }
        for f in &self.flops {
            n.add(
                if f.enable.is_some() {
                    Cell::DffE
                } else {
                    Cell::Dff
                },
                1,
            );
        }
        n
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// A state vector with all inputs low and flops at reset values,
    /// with combinational logic settled.
    pub fn reset_state(&self) -> Vec<bool> {
        let mut state = vec![false; self.net_names.len()];
        for (n, v) in &self.constants {
            state[n.0] = *v;
        }
        for f in &self.flops {
            state[f.q.0] = f.reset;
        }
        self.settle(&mut state);
        state
    }

    /// Reads a net.
    pub fn value(&self, state: &[bool], net: Net) -> bool {
        state[net.0]
    }

    /// Drives a primary input and re-settles the combinational logic.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&self, state: &mut [bool], net: Net, value: bool) {
        assert!(self.is_input[net.0], "{net} is not a primary input");
        state[net.0] = value;
        self.settle(state);
    }

    /// Drives several primary inputs at once and settles the
    /// combinational logic a single time — the per-cycle stimulus path
    /// for multi-input testbenches (one settle per cycle instead of one
    /// per driven bit).
    ///
    /// # Panics
    ///
    /// Panics if any net is not a primary input.
    pub fn set_inputs(&self, state: &mut [bool], assignments: &[(Net, bool)]) {
        for &(net, value) in assignments {
            assert!(self.is_input[net.0], "{net} is not a primary input");
            state[net.0] = value;
        }
        self.settle(state);
    }

    /// Evaluates all gates once, in construction (topological) order.
    fn settle(&self, state: &mut [bool]) {
        for g in &self.gates {
            let v = |n: Net| state[n.0];
            let out = match g.kind {
                Cell::Inv => !v(g.inputs[0]),
                Cell::TriBuf => v(g.inputs[0]),
                Cell::Nand2 => !(v(g.inputs[0]) && v(g.inputs[1])),
                Cell::Nor2 => !(v(g.inputs[0]) || v(g.inputs[1])),
                Cell::And2 => v(g.inputs[0]) && v(g.inputs[1]),
                Cell::Or2 => v(g.inputs[0]) || v(g.inputs[1]),
                Cell::Xor2 => v(g.inputs[0]) ^ v(g.inputs[1]),
                Cell::Xnor2 => !(v(g.inputs[0]) ^ v(g.inputs[1])),
                // C-element with state on its own output net.
                Cell::CElement => {
                    let (a, b) = (v(g.inputs[0]), v(g.inputs[1]));
                    if a == b {
                        a
                    } else {
                        state[g.output.0]
                    }
                }
                // Transparent latch: inputs are (enable, d); holds its
                // own output while opaque.
                Cell::DLatch => {
                    if v(g.inputs[0]) {
                        v(g.inputs[1])
                    } else {
                        state[g.output.0]
                    }
                }
                Cell::Mux2 => {
                    if v(g.inputs[0]) {
                        v(g.inputs[1])
                    } else {
                        v(g.inputs[2])
                    }
                }
                Cell::Aoi21 => !((v(g.inputs[0]) && v(g.inputs[1])) || v(g.inputs[2])),
                Cell::Oai21 => !((v(g.inputs[0]) || v(g.inputs[1])) && v(g.inputs[2])),
                other => unreachable!("{other} rejected at construction"),
            };
            state[g.output.0] = out;
        }
    }

    /// One rising clock edge: every (enabled) flop samples its D, then
    /// the combinational logic settles.
    pub fn clock_edge(&self, state: &mut [bool]) {
        let sampled: Vec<(usize, bool)> = self
            .flops
            .iter()
            .filter(|f| f.enable.is_none_or(|e| state[e.0]))
            .map(|f| (f.q.0, state[f.d.0]))
            .collect();
        for (q, v) in sampled {
            state[q] = v;
        }
        self.settle(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_gates_evaluate() {
        let mut c = Circuit::new("comb");
        let a = c.input("a");
        let b = c.input("b");
        let nand = c.gate(Cell::Nand2, &[a, b]);
        let xor = c.gate(Cell::Xor2, &[a, b]);
        let mut st = c.reset_state();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            c.set_input(&mut st, a, va);
            c.set_input(&mut st, b, vb);
            assert_eq!(c.value(&st, nand), !(va && vb));
            assert_eq!(c.value(&st, xor), va ^ vb);
        }
    }

    #[test]
    fn flop_with_enable_holds() {
        let mut c = Circuit::new("dffe");
        let d = c.input("d");
        let en = c.input("en");
        let q = c.flop_placeholder(false);
        c.bind_flop(q, d, Some(en));
        let mut st = c.reset_state();
        c.set_input(&mut st, d, true);
        c.clock_edge(&mut st);
        assert!(!c.value(&st, q), "disabled flop holds");
        c.set_input(&mut st, en, true);
        c.clock_edge(&mut st);
        assert!(c.value(&st, q));
        c.set_input(&mut st, d, false);
        c.set_input(&mut st, en, false);
        c.clock_edge(&mut st);
        assert!(c.value(&st, q), "hold again");
    }

    #[test]
    fn c_element_is_hysteretic() {
        let mut c = Circuit::new("celem");
        let a = c.input("a");
        let b = c.input("b");
        let y = c.gate(Cell::CElement, &[a, b]);
        let mut st = c.reset_state();
        assert!(!c.value(&st, y));
        c.set_input(&mut st, a, true);
        assert!(!c.value(&st, y), "holds at mismatch");
        c.set_input(&mut st, b, true);
        assert!(c.value(&st, y), "sets when both high");
        c.set_input(&mut st, a, false);
        assert!(c.value(&st, y), "holds at mismatch");
        c.set_input(&mut st, b, false);
        assert!(!c.value(&st, y), "clears when both low");
    }

    #[test]
    fn and_tree_matches_reduction() {
        let mut c = Circuit::new("tree");
        let ins: Vec<Net> = (0..7).map(|i| c.input(&format!("i{i}"))).collect();
        let y = c.and_tree(&ins);
        let mut st = c.reset_state();
        for i in &ins {
            c.set_input(&mut st, *i, true);
        }
        assert!(c.value(&st, y));
        c.set_input(&mut st, ins[3], false);
        assert!(!c.value(&st, y));
    }

    #[test]
    fn inventory_counts_instances() {
        let mut c = Circuit::new("inv");
        let a = c.input("a");
        let x = c.gate(Cell::Inv, &[a]);
        let _ = c.gate(Cell::Inv, &[x]);
        let q = c.flop_placeholder(false);
        c.bind_flop(q, x, None);
        let inv = c.inventory();
        assert_eq!(inv.count(Cell::Inv), 2);
        assert_eq!(inv.count(Cell::Dff), 1);
    }

    #[test]
    #[should_panic(expected = "takes 2 inputs")]
    fn arity_checked() {
        let mut c = Circuit::new("bad");
        let a = c.input("a");
        let _ = c.gate(Cell::Nand2, &[a]);
    }
}
