//! A complete gate-level implementation of the token-ring node.
//!
//! This is the wired counterpart of the behavioural `NodeFsm` in the
//! `synchro-tokens` crate: two parallel-loadable down-counters with zero
//! detection, the three-phase controller, the token latch, and the
//! `sbena`/`clken`/token-pass outputs — all built from the [`Cell`]
//! library, so its [`Circuit::inventory`] is exactly the kind of
//! gate-level model the paper used for Table 1.
//!
//! The asynchronous clock-restart path is folded into the synchronous
//! abstraction as a combinational bypass: a token pulse observed while
//! `Stopped` re-enables the node *within the same cycle* (`holding_eff`),
//! mirroring how the real wrapper restarts the clock and immediately
//! resumes its hold window. The lockstep equivalence test in the core
//! crate checks this circuit cycle-for-cycle against `NodeFsm`.

use crate::library::Cell;
use crate::structural::{Circuit, Net};

/// The built node circuit and its interface nets.
#[derive(Debug, Clone)]
pub struct NodeCircuit {
    /// The underlying wired circuit.
    pub circuit: Circuit,
    /// Input: a synchronized token-arrival pulse for the current cycle.
    pub token_pulse: Net,
    /// Output: interfaces enabled this cycle (event C).
    pub sbena: Net,
    /// Output: clock enable (low = event I).
    pub clken: Net,
    /// Output: token departs at this cycle's edge (event F).
    pub pass: Net,
    /// Output: the node will enter `Stopped` at this edge (events I/J).
    pub will_stop: Net,
    /// Hold counter bits (LSB first), for waveform probes.
    pub hold_bits: Vec<Net>,
    /// Recycle counter bits (LSB first).
    pub recycle_bits: Vec<Net>,
}

/// Builds the node. `start_holding` selects the holder/waiter reset
/// phase; `initial_recycle` presets the waiter's first countdown.
///
/// # Panics
///
/// Panics if any register value does not fit in `width` bits or is zero.
pub fn build_node_circuit(
    width: u32,
    hold_reg: u32,
    recycle_reg: u32,
    start_holding: bool,
    initial_recycle: u32,
) -> NodeCircuit {
    let limit = 1u32 << width;
    assert!(hold_reg >= 1 && hold_reg < limit, "hold register range");
    assert!(
        recycle_reg >= 1 && recycle_reg < limit,
        "recycle register range"
    );
    assert!(
        initial_recycle >= 1 && initial_recycle < limit,
        "initial recycle range"
    );
    let mut c = Circuit::new("node");
    let token_pulse = c.input("token_pulse");

    // Phase flops: s1 s0 with 00 Holding, 01 Recycling, 10 Stopped.
    let s1 = c.flop_placeholder(false);
    let s0 = c.flop_placeholder(!start_holding);
    // Token latch.
    let has_token = c.flop_placeholder(false);

    // Phase decodes.
    let ns1 = c.gate(Cell::Inv, &[s1]);
    let ns0 = c.gate(Cell::Inv, &[s0]);
    let holding = c.gate(Cell::And2, &[ns1, ns0]);
    let recycling = c.gate(Cell::And2, &[ns1, s0]);
    let stopped = c.gate(Cell::And2, &[s1, ns0]);

    // Asynchronous-restart bypass: a token pulse while stopped re-enables
    // the hold window within this cycle.
    let restart = c.gate(Cell::And2, &[stopped, token_pulse]);
    let holding_eff = c.gate(Cell::Or2, &[holding, restart]);

    // Counters.
    // The `pass` condition needs hold_is_one, which needs the counter;
    // the counter needs `load = pass`. Break the knot with a placeholder
    // strategy: build counters with dec first, using a late-bound load
    // net is not possible in a single-pass builder — instead compute
    // `pass` from the counter's is_one *after* building it with
    // `load = holding_eff & hold_is_one`, which we express by building
    // the counter against a dedicated flopless wire we drive via gate
    // order: counter bits are flops (already placeholders), so all
    // combinational logic below may reference them freely.
    let hold_state: Vec<Net> = (0..width)
        .map(|i| c.flop_placeholder((hold_reg >> i) & 1 == 1))
        .collect();
    let recycle_init = if start_holding {
        recycle_reg
    } else {
        initial_recycle
    };
    let recycle_state: Vec<Net> = (0..width)
        .map(|i| c.flop_placeholder((recycle_init >> i) & 1 == 1))
        .collect();

    // is_one detectors.
    let hold_is_one = {
        let mut terms = vec![hold_state[0]];
        for b in &hold_state[1..] {
            terms.push(c.gate(Cell::Inv, &[*b]));
        }
        c.and_tree(&terms)
    };
    let recycle_is_one = {
        let mut terms = vec![recycle_state[0]];
        for b in &recycle_state[1..] {
            terms.push(c.gate(Cell::Inv, &[*b]));
        }
        c.and_tree(&terms)
    };

    // Control strobes.
    let pass = c.gate(Cell::And2, &[holding_eff, hold_is_one]);
    let token_avail = c.gate(Cell::Or2, &[has_token, token_pulse]);
    let recognize = c.gate(Cell::And2, &[recycling, recycle_is_one]);
    let not_token_avail = c.gate(Cell::Inv, &[token_avail]);
    let will_stop = c.gate(Cell::And2, &[recognize, not_token_avail]);

    // Hold counter next-state: load on pass, decrement while holding.
    {
        let mut borrow = holding_eff;
        for (i, bit) in hold_state.iter().enumerate() {
            let dec_bit = c.gate(Cell::Xor2, &[*bit, borrow]);
            let reload_bit = c.constant((hold_reg >> i) & 1 == 1);
            let next = c.mux(pass, reload_bit, dec_bit);
            c.bind_flop(*bit, next, None);
            if i + 1 < hold_state.len() {
                let nb = c.gate(Cell::Inv, &[*bit]);
                borrow = c.gate(Cell::And2, &[borrow, nb]);
            }
        }
    }
    // Recycle counter: load on pass, decrement while recycling.
    {
        let mut borrow = recycling;
        for (i, bit) in recycle_state.iter().enumerate() {
            let dec_bit = c.gate(Cell::Xor2, &[*bit, borrow]);
            let reload_bit = c.constant((recycle_reg >> i) & 1 == 1);
            let next = c.mux(pass, reload_bit, dec_bit);
            c.bind_flop(*bit, next, None);
            if i + 1 < recycle_state.len() {
                let nb = c.gate(Cell::Inv, &[*bit]);
                borrow = c.gate(Cell::And2, &[borrow, nb]);
            }
        }
    }

    // Phase next-state.
    // s0' = pass | (recycling & !recycle_is_one)
    let n_rec_one = c.gate(Cell::Inv, &[recycle_is_one]);
    let stay_recycling = c.gate(Cell::And2, &[recycling, n_rec_one]);
    let s0_next = c.gate(Cell::Or2, &[pass, stay_recycling]);
    // s1' = will_stop | (stopped & !token_pulse)
    let n_pulse = c.gate(Cell::Inv, &[token_pulse]);
    let stay_stopped = c.gate(Cell::And2, &[stopped, n_pulse]);
    let s1_next = c.gate(Cell::Or2, &[will_stop, stay_stopped]);
    c.bind_flop(s0, s0_next, None);
    c.bind_flop(s1, s1_next, None);

    // Token latch next-state: keep/latch unless consumed this edge.
    // has_token' = token_avail & !recognize & !restart
    let n_recognize = c.gate(Cell::Inv, &[recognize]);
    let n_restart = c.gate(Cell::Inv, &[restart]);
    let keep1 = c.gate(Cell::And2, &[token_avail, n_recognize]);
    let has_token_next = c.gate(Cell::And2, &[keep1, n_restart]);
    c.bind_flop(has_token, has_token_next, None);

    // Outputs.
    let clken = c.gate(Cell::Inv, &[stopped]);

    NodeCircuit {
        circuit: c,
        token_pulse,
        sbena: holding_eff,
        clken,
        pass,
        will_stop,
        hold_bits: hold_state,
        recycle_bits: recycle_state,
    }
}

impl NodeCircuit {
    /// Reads a counter value from a state vector.
    pub fn counter_value(&self, state: &[bool], bits: &[Net]) -> u32 {
        bits.iter()
            .enumerate()
            .map(|(i, b)| u32::from(self.circuit.value(state, *b)) << i)
            .sum()
    }

    /// Reads a counter value from one lane of a compiled 64-lane state.
    pub fn counter_value_lane(
        &self,
        state: &crate::compiled::LaneState,
        bits: &[Net],
        lane: usize,
    ) -> u32 {
        bits.iter()
            .enumerate()
            .map(|(i, b)| u32::from(state.lane(*b, lane)) << i)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(nc: &NodeCircuit, st: &[bool]) -> (bool, bool, bool, u32, u32) {
        (
            nc.circuit.value(st, nc.sbena),
            nc.circuit.value(st, nc.pass),
            nc.circuit.value(st, nc.clken),
            nc.counter_value(st, &nc.hold_bits),
            nc.counter_value(st, &nc.recycle_bits),
        )
    }

    #[test]
    fn holder_counts_down_passes_and_recycles() {
        let nc = build_node_circuit(4, 3, 4, true, 4);
        let mut st = nc.circuit.reset_state();
        // Cycles 0..2: holding, hold counts 3,2,1; pass on the last.
        for expect_hold in [3u32, 2, 1] {
            let (sbena, pass, clken, hold, _) = probe(&nc, &st);
            assert!(sbena);
            assert!(clken);
            assert_eq!(hold, expect_hold);
            assert_eq!(pass, expect_hold == 1, "pass only at hold==1");
            nc.circuit.clock_edge(&mut st);
        }
        // Now recycling with counter preset to 4 and hold reloaded.
        let (sbena, _, _, hold, rec) = probe(&nc, &st);
        assert!(!sbena);
        assert_eq!(hold, 3);
        assert_eq!(rec, 4);
    }

    #[test]
    fn late_token_stops_then_restart_bypass_enables() {
        let nc = build_node_circuit(4, 1, 1, true, 1);
        let mut st = nc.circuit.reset_state();
        nc.circuit.clock_edge(&mut st); // pass immediately
        let (_, _, _, _, rec) = probe(&nc, &st);
        assert_eq!(rec, 1);
        nc.circuit.clock_edge(&mut st); // recycle expires, no token
        let (sbena, _, clken, _, _) = probe(&nc, &st);
        assert!(!sbena);
        assert!(!clken, "stopped: clken low");
        // Token pulse: the restart bypass re-enables within the cycle.
        nc.circuit.set_input(&mut st, nc.token_pulse, true);
        let (sbena, pass, _, _, _) = probe(&nc, &st);
        assert!(sbena, "restart bypass");
        assert!(pass, "hold register is 1, so it passes right away");
        nc.circuit.clock_edge(&mut st);
        nc.circuit.set_input(&mut st, nc.token_pulse, false);
        let (_, _, clken, _, _) = probe(&nc, &st);
        assert!(clken, "running again");
    }

    #[test]
    fn early_token_latches_until_expiry() {
        let nc = build_node_circuit(4, 2, 3, true, 3);
        let mut st = nc.circuit.reset_state();
        nc.circuit.clock_edge(&mut st); // hold 2->1
        nc.circuit.clock_edge(&mut st); // pass
                                        // Early token during the first recycle cycle.
        nc.circuit.set_input(&mut st, nc.token_pulse, true);
        nc.circuit.clock_edge(&mut st); // rec 3->2, token latched
        nc.circuit.set_input(&mut st, nc.token_pulse, false);
        let (sbena, _, _, _, rec) = probe(&nc, &st);
        assert!(!sbena, "not recognized early");
        assert_eq!(rec, 2);
        nc.circuit.clock_edge(&mut st); // rec 2->1
        nc.circuit.clock_edge(&mut st); // rec 1->0, token available -> holding
        let (sbena, _, clken, _, _) = probe(&nc, &st);
        assert!(sbena, "recognized exactly at expiry");
        assert!(clken);
    }

    #[test]
    fn inventory_is_close_to_the_table1_node_model() {
        let nc = build_node_circuit(8, 4, 12, true, 12);
        let area = nc.circuit.inventory().area_ge();
        let model = crate::wrappers::node_netlist().area_ge();
        let rel = (area - model).abs() / model;
        assert!(
            rel < 0.35,
            "structural node {area:.0} GE vs inventory model {model:.0} GE"
        );
    }

    #[test]
    #[should_panic(expected = "hold register range")]
    fn zero_hold_register_rejected() {
        let _ = build_node_circuit(4, 0, 3, true, 3);
    }

    /// Feeding every lane the same token-pulse schedule must keep all 64
    /// lanes bit-identical on every net at every cycle — the compiled
    /// engine introduces no cross-lane coupling.
    #[test]
    fn compiled_lanes_stay_identical_under_identical_stimulus() {
        use crate::compiled::CompiledCircuit;
        let nc = build_node_circuit(8, 4, 6, true, 6);
        let cc = CompiledCircuit::compile(&nc.circuit);
        let mut st = cc.reset_state();
        let mut scalar = nc.circuit.reset_state();
        for cycle in 0..200u32 {
            // A pulse schedule that exercises latch-early, on-time and
            // late (stop + restart) deliveries as the phases drift.
            let pulse = cycle % 13 == 5 || cycle % 7 == 2;
            cc.drive(&mut st, nc.token_pulse, if pulse { !0 } else { 0 });
            nc.circuit.set_input(&mut scalar, nc.token_pulse, pulse);
            assert!(cc.all_lanes_equal(&st), "cycle {cycle}: lanes diverged");
            assert_eq!(
                st.extract_lane(17),
                scalar,
                "cycle {cycle}: lane 17 != scalar interpreter"
            );
            cc.clock_edge(&mut st);
            nc.circuit.clock_edge(&mut scalar);
            assert!(
                cc.all_lanes_equal(&st),
                "cycle {cycle}: lanes diverged post-edge"
            );
            assert_eq!(
                nc.counter_value_lane(&st, &nc.hold_bits, 63),
                nc.counter_value(&scalar, &nc.hold_bits),
                "cycle {cycle}: hold counter"
            );
        }
    }
}
