//! Netlist generators for every synchro-tokens wrapper component.
//!
//! These are the gate-level models behind Table 1: one generator per
//! component, parameterized exactly the way the paper parameterizes the
//! area models (linear in the number of data bits where applicable).

use crate::library::Cell;
use crate::netlist::Netlist;

/// Width of the hold/recycle down-counters in the node model.
pub const NODE_COUNTER_BITS: u64 = 8;

/// One bit-slice of a parallel-loadable down-counter: state flop, preset
/// mux, and decrement (borrow-chain) logic.
fn counter_bit() -> Netlist {
    let mut n = Netlist::new("counter_bit");
    n.add(Cell::Dff, 1) // state
        .add(Cell::Mux2, 1) // parallel preset path
        .add(Cell::Xor2, 1) // subtract
        .add(Cell::Nand2, 1); // borrow
    n
}

/// A `bits`-wide loadable down-counter with zero detection.
pub fn down_counter_netlist(bits: u64) -> Netlist {
    assert!(bits > 0, "counter width must be non-zero");
    let mut n = Netlist::new("down_counter");
    n.add_netlist(&counter_bit(), bits);
    // Zero detect: a NOR/OR reduction tree over `bits` inputs.
    n.add(Cell::Nor2, bits.saturating_sub(1));
    n
}

/// The token-ring node (Figure 1B): hold counter, recycle counter, node
/// FSM, and token handling. The hold/recycle *registers* are modelled as
/// ROM/fuse bits (the paper: "downloadable from ROM bits, fuses, or
/// directly from the tester"), which occupy no standard-cell area.
///
/// With the default 8-bit counters this lands at ≈146 gate equivalents;
/// the paper reports 145.
pub fn node_netlist() -> Netlist {
    node_netlist_with_counter_bits(NODE_COUNTER_BITS)
}

/// [`node_netlist`] with an explicit counter width (for sensitivity
/// studies).
pub fn node_netlist_with_counter_bits(bits: u64) -> Netlist {
    let mut n = Netlist::new("node");
    n.add_netlist(&down_counter_netlist(bits), 2); // hold + recycle
                                                   // Node FSM: two state flops (holding / recycling-stopped) plus
                                                   // next-state and output (sbena, clken, token-out) logic.
    n.add(Cell::DffR, 2)
        .add(Cell::Aoi21, 2)
        .add(Cell::Nand2, 3)
        .add(Cell::Inv, 2);
    // Token input capture (transition detect) and token output driver.
    n.add(Cell::Xor2, 1).add(Cell::Dff, 1);
    n
}

/// An SB interface (input or output side of a channel): handshake control
/// plus one capture flop per data bit. Linear in `bits` —
/// Table 1's "interface" row.
pub fn interface_netlist(bits: u64) -> Netlist {
    let mut n = Netlist::new("interface");
    // Control: request/acknowledge parity flops, empty/full status flop,
    // transition detect, and enable gating.
    n.add(Cell::Dff, 2)
        .add(Cell::Xor2, 1)
        .add(Cell::Nand2, 3)
        .add(Cell::Inv, 2);
    // Data path: one enabled capture flop per bit.
    n.add(Cell::DffE, bits);
    n
}

/// One self-timed FIFO stage: C-element handshake control plus one latch
/// per data bit. Linear in `bits` — Table 1's "stage" row.
pub fn fifo_stage_netlist(bits: u64) -> Netlist {
    let mut n = Netlist::new("fifo_stage");
    n.add(Cell::CElement, 2).add(Cell::Inv, 2);
    n.add(Cell::DLatch, bits);
    n
}

/// A whole FIFO of `depth` stages.
pub fn fifo_netlist(bits: u64, depth: u64) -> Netlist {
    let mut n = Netlist::new("fifo");
    n.add_netlist(&fifo_stage_netlist(bits), depth);
    n
}

/// One self-timed scan-chain cell (two-phase master/slave latches with a
/// C-element completion control and a capture/shift mux).
pub fn scan_cell_netlist() -> Netlist {
    let mut n = Netlist::new("scan_cell");
    n.add(Cell::DLatch, 2)
        .add(Cell::CElement, 1)
        .add(Cell::Mux2, 1);
    n
}

/// The IEEE 1149.1 TAP controller: 16-state FSM (4 state flops), the
/// instruction register (per-bit shift/update) and decode logic.
pub fn tap_netlist(ir_bits: u64) -> Netlist {
    let mut n = Netlist::new("tap");
    // State machine.
    n.add(Cell::Dff, 4)
        .add(Cell::Nand2, 12)
        .add(Cell::Aoi21, 6)
        .add(Cell::Inv, 6);
    // Instruction register: shift flop + update latch per bit, plus decode.
    n.add(Cell::Dff, ir_bits)
        .add(Cell::DLatch, ir_bits)
        .add(Cell::Nand2, 2 * ir_bits);
    // Bypass register.
    n.add(Cell::Dff, 1).add(Cell::Mux2, 1);
    n
}

/// Descriptor for one channel when summing system-level overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelShape {
    /// Bundled-data width.
    pub bits: u64,
    /// FIFO depth in stages (0 = unpipelined).
    pub fifo_depth: u64,
}

/// Total wrapper area for a system: `nodes` token-ring nodes and one
/// input + one output interface (plus optional FIFO) per channel.
///
/// Per the paper, "a comparison with another GALS implementation should
/// not include the [interface and FIFO] components, since the interface
/// is always needed … and the stages are always optional"; the
/// node-only subtotal is exposed separately by callers via
/// [`node_netlist`].
pub fn system_wrapper_netlist(nodes: u64, channels: &[ChannelShape]) -> Netlist {
    let mut n = Netlist::new("system_wrapper");
    n.add_netlist(&node_netlist(), nodes);
    for ch in channels {
        n.add_netlist(&interface_netlist(ch.bits), 2);
        if ch.fifo_depth > 0 {
            n.add_netlist(&fifo_netlist(ch.bits, ch.fifo_depth), 1);
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_area_matches_paper_within_tolerance() {
        let node = node_netlist();
        let area = node.area_ge();
        // The paper's Table 1 reports 145 2-input-gate equivalents.
        assert!(
            (area - 145.0).abs() < 5.0,
            "node area {area:.1} GE should be within 5 GE of the paper's 145"
        );
    }

    #[test]
    fn interface_is_linear_in_bits() {
        let a1 = interface_netlist(1).area_ge();
        let a2 = interface_netlist(2).area_ge();
        let a64 = interface_netlist(64).area_ge();
        let slope = a2 - a1;
        let base = a1 - slope;
        assert!((a64 - (base + slope * 64.0)).abs() < 1e-9);
        assert!(slope > 0.0 && base > 0.0);
    }

    #[test]
    fn stage_is_linear_in_bits() {
        let a1 = fifo_stage_netlist(1).area_ge();
        let a2 = fifo_stage_netlist(2).area_ge();
        let a32 = fifo_stage_netlist(32).area_ge();
        let slope = a2 - a1;
        assert!((a32 - (a1 + slope * 31.0)).abs() < 1e-9);
    }

    #[test]
    fn stage_is_cheaper_than_interface_per_bit() {
        // A latch-based stage bit must cost less than an enabled-flop
        // interface bit.
        let s = fifo_stage_netlist(2).area_ge() - fifo_stage_netlist(1).area_ge();
        let i = interface_netlist(2).area_ge() - interface_netlist(1).area_ge();
        assert!(s < i);
    }

    #[test]
    fn fifo_scales_with_depth() {
        let one = fifo_netlist(16, 1).area_ge();
        let four = fifo_netlist(16, 4).area_ge();
        assert!((four - 4.0 * one).abs() < 1e-9);
    }

    #[test]
    fn system_sum_matches_parts() {
        let chans = [
            ChannelShape {
                bits: 16,
                fifo_depth: 4,
            },
            ChannelShape {
                bits: 8,
                fifo_depth: 0,
            },
        ];
        let sys = system_wrapper_netlist(2, &chans).area_ge();
        let expect = 2.0 * node_netlist().area_ge()
            + 2.0 * interface_netlist(16).area_ge()
            + 2.0 * interface_netlist(8).area_ge()
            + fifo_netlist(16, 4).area_ge();
        assert!((sys - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_counter_rejected() {
        let _ = down_counter_netlist(0);
    }

    #[test]
    fn counter_width_sensitivity() {
        let narrow = node_netlist_with_counter_bits(4).area_ge();
        let wide = node_netlist_with_counter_bits(16).area_ge();
        assert!(narrow < node_netlist().area_ge());
        assert!(wide > node_netlist().area_ge());
    }
}
