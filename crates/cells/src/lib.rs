//! # st-cells — standard-cell area models for the synchro-tokens wrappers
//!
//! Reproduces the methodology behind the paper's Table 1: "the area
//! overhead of synchro-tokens has been approximated using a gate-level
//! model of the wrapper logic and layouts from a 0.25-micron cell
//! library, … using the average area of the library's 2-input gates as
//! the unit of measurement."
//!
//! * [`Cell`] — the cell library with transistor-count-derived areas,
//! * [`Netlist`] — cell inventories with area accounting,
//! * [`wrappers`] — generators for the node, SB interfaces, FIFO stages,
//!   scan cells and the TAP,
//! * [`structural`] / [`node_circuit`] — *wired* gate-level circuits
//!   with cycle-accurate evaluation, including a complete gate-level
//!   node checked against the behavioural FSM,
//! * [`compiled`] — the same circuits lowered to a flat op tape and
//!   evaluated 64 bit-parallel lanes at a time (one word bit per
//!   independent stimulus configuration),
//! * [`Table1`] — the fitted per-component area models.
//!
//! ## Example
//!
//! ```
//! use st_cells::Table1;
//!
//! let t = Table1::compute();
//! // The node is a fixed-size block; the paper reports 145 units.
//! assert!((t.node - 145.0).abs() < 5.0);
//! // Interfaces and stages grow linearly with the data width.
//! assert!(t.interface.eval(32) > t.interface.eval(8));
//! println!("{t}");
//! ```

pub mod area;
pub mod compiled;
pub mod library;
pub mod netlist;
pub mod node_circuit;
pub mod structural;
pub mod wrapper_circuits;
pub mod wrappers;

pub use area::{LinearModel, Table1};
pub use compiled::{CompiledCircuit, LaneState, LANES};
pub use library::{average_two_input_transistors, Cell};
pub use netlist::Netlist;
pub use node_circuit::{build_node_circuit, NodeCircuit};
pub use structural::{Circuit, Net};
pub use wrapper_circuits::{
    build_fifo_stage_circuit, build_interface_circuit, FifoStageCircuit, InterfaceCircuit,
};
pub use wrappers::{
    down_counter_netlist, fifo_netlist, fifo_stage_netlist, interface_netlist, node_netlist,
    node_netlist_with_counter_bits, scan_cell_netlist, system_wrapper_netlist, tap_netlist,
    ChannelShape,
};
