//! Explicit four-phase bundled-data handshaking.
//!
//! "Each channel has its own request and acknowledge handshake signals
//! which accompany arbitrarily wide bundled data words" (§4). The FIFO
//! model treats the per-stage handshake abstractly; this module provides
//! the protocol itself — a sender, a receiver, and a checker — for
//! unpipelined channels and for validating bundling discipline:
//!
//! ```text
//!   data  ══X═══════════════ stable ═══════════════X══
//!   req   ____/▔▔▔▔▔▔▔▔▔▔▔▔▔▔▔\__________________
//!   ack   _________/▔▔▔▔▔▔▔▔▔▔▔▔▔▔▔▔▔\___________
//!          (1) req↑  (2) ack↑  (3) req↓  (4) ack↓
//! ```

use st_sim::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// The wires of one four-phase bundled-data link.
#[derive(Debug, Clone, Copy)]
pub struct HandshakePorts {
    /// Request (sender → receiver), level-signalled.
    pub req: BitSignal,
    /// Acknowledge (receiver → sender).
    pub ack: BitSignal,
    /// Bundled data, valid while `req` is high.
    pub data: WordSignal,
}

impl HandshakePorts {
    /// Declares a fresh set of link signals named `<name>.<port>`.
    pub fn declare(b: &mut SimBuilder, name: &str) -> Self {
        HandshakePorts {
            req: b.add_bit_signal_init(&format!("{name}.req"), Bit::Zero),
            ack: b.add_bit_signal_init(&format!("{name}.ack"), Bit::Zero),
            data: b.add_word_signal(&format!("{name}.data")),
        }
    }
}

/// Timing parameters of the handshake endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeSpec {
    /// Data-before-request bundling margin at the sender.
    pub bundling_margin: SimDuration,
    /// Receiver's latch delay from `req`↑ to `ack`↑.
    pub latch_delay: SimDuration,
    /// Each side's return-to-zero delay.
    pub rtz_delay: SimDuration,
}

impl Default for HandshakeSpec {
    fn default() -> Self {
        HandshakeSpec {
            bundling_margin: SimDuration::ps(100),
            latch_delay: SimDuration::ps(300),
            rtz_delay: SimDuration::ps(200),
        }
    }
}

/// Sends a preloaded word sequence through four-phase handshakes.
#[derive(Debug)]
pub struct FourPhaseSender {
    spec: HandshakeSpec,
    ports: HandshakePorts,
    queue: std::collections::VecDeque<u64>,
    /// Words fully handshaken (ack cycle completed).
    pub sent: u64,
}

impl FourPhaseSender {
    /// A sender that will transfer `words` in order.
    pub fn new(
        spec: HandshakeSpec,
        ports: HandshakePorts,
        words: impl IntoIterator<Item = u64>,
    ) -> Self {
        FourPhaseSender {
            spec,
            ports,
            queue: words.into_iter().collect(),
            sent: 0,
        }
    }

    /// Registers the component and its `ack` sensitivity.
    pub fn install(self, b: &mut SimBuilder, name: &str) -> Handle<FourPhaseSender> {
        let ack = self.ports.ack;
        let h = b.add_component(name, self);
        b.watch(h.id(), ack.id());
        h
    }

    fn launch(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(w) = self.queue.front().copied() {
            // Bundling: data settles, then the request fires.
            ctx.drive_word(self.ports.data, w, SimDuration::ZERO);
            ctx.drive_bit(self.ports.req, Bit::One, self.spec.bundling_margin);
        }
    }
}

impl Component for FourPhaseSender {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => self.launch(ctx),
            Wake::Signal(_) => {
                let ack = ctx.bit(self.ports.ack);
                let req = ctx.bit(self.ports.req);
                if ack.is_one() && req.is_one() {
                    // (3) withdraw the request.
                    ctx.drive_bit(self.ports.req, Bit::Zero, self.spec.rtz_delay);
                } else if ack.is_zero() && req.is_zero() && !self.queue.is_empty() {
                    // (4) complete: next word.
                    self.queue.pop_front();
                    self.sent += 1;
                    self.launch(ctx);
                }
            }
            _ => {}
        }
    }
}

/// Receives four-phase transfers, collecting the words.
#[derive(Debug)]
pub struct FourPhaseReceiver {
    spec: HandshakeSpec,
    ports: HandshakePorts,
    /// Words received, in order (shared so testbenches can watch live).
    pub received: Rc<RefCell<Vec<u64>>>,
}

impl FourPhaseReceiver {
    /// A receiver appending into `received`.
    pub fn new(
        spec: HandshakeSpec,
        ports: HandshakePorts,
        received: Rc<RefCell<Vec<u64>>>,
    ) -> Self {
        FourPhaseReceiver {
            spec,
            ports,
            received,
        }
    }

    /// Registers the component and its `req` sensitivity.
    pub fn install(self, b: &mut SimBuilder, name: &str) -> Handle<FourPhaseReceiver> {
        let req = self.ports.req;
        let h = b.add_component(name, self);
        b.watch(h.id(), req.id());
        h
    }
}

impl Component for FourPhaseReceiver {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        if let Wake::Signal(_) = cause {
            match ctx.bit(self.ports.req) {
                Bit::One => {
                    // (2) latch the bundled word, then acknowledge.
                    let w = ctx
                        .word(self.ports.data)
                        .expect("bundled data valid at req");
                    self.received.borrow_mut().push(w);
                    ctx.drive_bit(self.ports.ack, Bit::One, self.spec.latch_delay);
                }
                Bit::Zero => {
                    // (4) return to zero.
                    ctx.drive_bit(self.ports.ack, Bit::Zero, self.spec.rtz_delay);
                }
                Bit::X => {}
            }
        }
    }
}

/// A passive protocol checker for one link: verifies the 4-phase order
/// and the bundling discipline (data stable from `req`↑ to `ack`↑).
#[derive(Debug)]
pub struct HandshakeMonitor {
    ports: HandshakePorts,
    prev_req: Bit,
    prev_ack: Bit,
    data_at_req: Option<u64>,
    /// Completed handshake cycles observed.
    pub cycles: u64,
    /// Protocol-order violations.
    pub order_violations: u64,
    /// Bundling violations (data moved between req↑ and ack↑).
    pub bundling_violations: u64,
}

impl HandshakeMonitor {
    /// A monitor for `ports`.
    pub fn new(ports: HandshakePorts) -> Self {
        HandshakeMonitor {
            ports,
            prev_req: Bit::Zero,
            prev_ack: Bit::Zero,
            data_at_req: None,
            cycles: 0,
            order_violations: 0,
            bundling_violations: 0,
        }
    }

    /// Registers the component and its sensitivities.
    pub fn install(self, b: &mut SimBuilder, name: &str) -> Handle<HandshakeMonitor> {
        let (req, ack) = (self.ports.req, self.ports.ack);
        let h = b.add_component(name, self);
        b.watch(h.id(), req.id());
        b.watch(h.id(), ack.id());
        h
    }

    /// True if no violation of any kind was observed.
    pub fn clean(&self) -> bool {
        self.order_violations == 0 && self.bundling_violations == 0
    }
}

impl Component for HandshakeMonitor {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        if let Wake::Signal(_) = cause {
            let req = ctx.bit(self.ports.req);
            let ack = ctx.bit(self.ports.ack);
            // Edges.
            let req_rose = self.prev_req.is_zero() && req.is_one();
            let req_fell = self.prev_req.is_one() && req.is_zero();
            let ack_rose = self.prev_ack.is_zero() && ack.is_one();
            let ack_fell = self.prev_ack.is_one() && ack.is_zero();
            if req_rose {
                if ack.is_one() {
                    self.order_violations += 1; // req may only rise with ack low
                }
                self.data_at_req = ctx.word(self.ports.data);
            }
            if ack_rose {
                if req.is_zero() {
                    self.order_violations += 1; // ack answers a live request
                }
                if self.data_at_req != ctx.word(self.ports.data) {
                    self.bundling_violations += 1;
                }
            }
            if req_fell && ack.is_zero() {
                self.order_violations += 1; // req withdraws only after ack
            }
            if ack_fell {
                if req.is_one() {
                    self.order_violations += 1; // ack drops only after req
                }
                self.cycles += 1;
            }
            self.prev_req = req;
            self.prev_ack = ack;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type LinkFixture = (
        Simulator,
        Rc<RefCell<Vec<u64>>>,
        Handle<HandshakeMonitor>,
        Handle<FourPhaseSender>,
    );

    fn link(words: Vec<u64>, spec: HandshakeSpec) -> LinkFixture {
        let mut b = SimBuilder::new();
        let ports = HandshakePorts::declare(&mut b, "hs");
        let received = Rc::new(RefCell::new(Vec::new()));
        let s = FourPhaseSender::new(spec, ports, words).install(&mut b, "tx");
        let _r = FourPhaseReceiver::new(spec, ports, Rc::clone(&received)).install(&mut b, "rx");
        let m = HandshakeMonitor::new(ports).install(&mut b, "mon");
        (b.build(), received, m, s)
    }

    #[test]
    fn transfers_every_word_in_order() {
        let words: Vec<u64> = (0..25).map(|i| i * 11).collect();
        let (mut sim, received, mon, s) = link(words.clone(), HandshakeSpec::default());
        sim.run_for(SimDuration::us(1)).unwrap();
        assert_eq!(*received.borrow(), words);
        assert_eq!(sim.get(s).sent, 25);
        let m = sim.get(mon);
        assert_eq!(m.cycles, 25);
        assert!(
            m.clean(),
            "order {} bundling {}",
            m.order_violations,
            m.bundling_violations
        );
    }

    #[test]
    fn empty_queue_is_quiet() {
        let (mut sim, received, mon, _) = link(vec![], HandshakeSpec::default());
        let summary = sim.run_for(SimDuration::us(1)).unwrap();
        assert!(received.borrow().is_empty());
        assert_eq!(sim.get(mon).cycles, 0);
        assert!(summary.quiescent);
    }

    #[test]
    fn throughput_is_set_by_the_phase_delays() {
        // One cycle = margin + latch + rtz + rtz; 50 words should take
        // roughly 50x that (plus launch offsets).
        let spec = HandshakeSpec {
            bundling_margin: SimDuration::ps(100),
            latch_delay: SimDuration::ps(300),
            rtz_delay: SimDuration::ps(200),
        };
        let words: Vec<u64> = (0..50).collect();
        let (mut sim, received, _, _) = link(words, spec);
        // 50 * 0.8ns = 40ns; give 2x margin.
        sim.run_for(SimDuration::ns(80)).unwrap();
        assert_eq!(received.borrow().len(), 50);
    }

    #[test]
    fn monitor_flags_a_rogue_acknowledge() {
        // Drive ack out of protocol by hand: no sender/receiver at all.
        let mut b = SimBuilder::new();
        let ports = HandshakePorts::declare(&mut b, "hs");
        let m = HandshakeMonitor::new(ports).install(&mut b, "mon");
        let mut sim = b.build();
        sim.drive(ports.ack.id(), Value::from(true), SimDuration::ns(1)); // ack with req low
        sim.run_for(SimDuration::ns(5)).unwrap();
        assert!(sim.get(m).order_violations > 0);
    }

    #[test]
    fn monitor_flags_broken_bundling() {
        // A sender that changes the data mid-handshake.
        struct RogueSender {
            ports: HandshakePorts,
        }
        impl Component for RogueSender {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                if matches!(cause, Wake::Start) {
                    ctx.drive_word(self.ports.data, 1, SimDuration::ZERO);
                    ctx.drive_bit(self.ports.req, Bit::One, SimDuration::ps(100));
                    // Data glitches after the request is up.
                    ctx.drive_word(self.ports.data, 2, SimDuration::ps(200));
                }
            }
        }
        let mut b = SimBuilder::new();
        let ports = HandshakePorts::declare(&mut b, "hs");
        b.add_component("rogue", RogueSender { ports });
        let received = Rc::new(RefCell::new(Vec::new()));
        let _r =
            FourPhaseReceiver::new(HandshakeSpec::default(), ports, received).install(&mut b, "rx");
        let m = HandshakeMonitor::new(ports).install(&mut b, "mon");
        let mut sim = b.build();
        sim.run_for(SimDuration::ns(5)).unwrap();
        assert!(sim.get(m).bundling_violations > 0);
    }
}
