//! # st-channel — asynchronous communication substrate
//!
//! Event-level models of the asynchronous circuits a GALS SoC is built
//! from, as used by the synchro-tokens reproduction:
//!
//! * [`SelfTimedFifo`] — bundled-data self-timed FIFO pipelines (the
//!   optional channel pipelining of the paper's Figure 1),
//! * [`build_stari_link`] — the STARI \[13\] baseline used in the §5
//!   performance comparison,
//! * [`TwoFlopSynchronizer`] and [`Mutex`] — the *nondeterministic*
//!   primitives (§1) whose avoidance is the whole point of synchro-tokens;
//!   they power the bypass-mode baseline of experiment E1.
//!
//! Nondeterminism here is modelled honestly: a sample or arbitration that
//! falls inside a metastability window resolves through the kernel's
//! seeded RNG, so a *given* configuration is reproducible while *swept*
//! configurations (delay/phase variation, as in the paper) diverge.
//!
//! ## Example
//!
//! ```
//! use st_sim::prelude::*;
//! use st_channel::{FifoPorts, SelfTimedFifo};
//!
//! # fn main() -> Result<(), st_sim::SimError> {
//! let mut b = SimBuilder::new();
//! let ports = FifoPorts::declare(&mut b, "ch0");
//! let fifo = SelfTimedFifo::new(ports, 4, SimDuration::ns(2)).install(&mut b, "ch0");
//! let mut sim = b.build();
//! // Push a word from testbench code.
//! sim.drive(ports.put_data.id(), Value::Word(0xCAFE), SimDuration::ZERO);
//! sim.drive(ports.put_req.id(), Value::from(true), SimDuration::ns(1));
//! sim.run_for(SimDuration::ns(20))?;
//! assert_eq!(sim.word(ports.head_data), Some(0xCAFE));
//! assert_eq!(sim.get(fifo).occupancy(), 1);
//! # Ok(())
//! # }
//! ```

pub mod arbiter;
pub mod fifo;
pub mod handshake;
pub mod stari;
pub mod sync;

pub use arbiter::{Mutex, MutexSpec, Side};
pub use fifo::{FifoPorts, FifoSnapshot, SelfTimedFifo};
pub use handshake::{
    FourPhaseReceiver, FourPhaseSender, HandshakeMonitor, HandshakePorts, HandshakeSpec,
};
pub use stari::{build_stari_link, stari_latency_model, StariLink, StariSpec, StariStats};
pub use sync::{SynchronizerSpec, TwoFlopSynchronizer};
