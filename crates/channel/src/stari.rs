//! STARI baseline (Greenstreet \[13\]).
//!
//! STARI (Self-Timed At Receiver's Input) avoids synchronizers in steady
//! state by inserting a self-timed FIFO between two *frequency-matched*
//! clocks: the FIFO is initialized roughly half full, the transmitter adds
//! one word per cycle and the receiver removes one word per cycle; clock
//! skew is absorbed by the occupancy slack. The paper uses STARI as the
//! performance yardstick for synchro-tokens (§5):
//!
//! * throughput: 1 word/cycle (vs `H/(H+R)`),
//! * latency: `L_STARI = F·H/2 + T·H/2` (Eq. 1).
//!
//! This module builds an instrumented STARI link and measures both.

use crate::fifo::{FifoPorts, SelfTimedFifo};
use st_sim::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters of a STARI link experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StariSpec {
    /// Common clock period `T` of both ends.
    pub period: SimDuration,
    /// Per-stage forward latency `F`.
    pub stage_delay: SimDuration,
    /// FIFO depth `H` (number of stages).
    pub depth: usize,
    /// Receiver start-up delay in transmitter cycles; the link reaches
    /// steady state with about this many words in flight (the "roughly
    /// half full" initialization). Use `depth / 2`.
    pub warmup_cycles: u64,
    /// Relative phase of the receiver clock (skew absorbed by the FIFO).
    pub skew: SimDuration,
}

impl StariSpec {
    /// A conventional configuration: warm-up of `depth / 2` cycles and a
    /// quarter-period skew.
    pub fn new(period: SimDuration, stage_delay: SimDuration, depth: usize) -> Self {
        StariSpec {
            period,
            stage_delay,
            depth,
            warmup_cycles: (depth / 2) as u64,
            skew: period / 4,
        }
    }
}

/// Measurements collected by [`build_stari_link`].
#[derive(Debug, Default, Clone)]
pub struct StariStats {
    /// Push time of each word, indexed by sequence number.
    pub push_times: Vec<SimTime>,
    /// `(sequence, pop time)` in arrival order at the receiver.
    pub pops: Vec<(u64, SimTime)>,
    /// Transmitter cycles during which `full` blocked a push.
    pub tx_stalls: u64,
    /// Receiver cycles (after warm-up) that found the head empty.
    pub rx_misses: u64,
}

impl StariStats {
    /// Mean push-to-pop latency over the steady-state words (the first
    /// `skip` words are ignored as warm-up).
    pub fn mean_latency(&self, skip: usize) -> Option<SimDuration> {
        let mut sum = 0u128;
        let mut n = 0u128;
        for (seq, t_pop) in self.pops.iter().skip(skip) {
            let t_push = self.push_times.get(*seq as usize)?;
            sum += u128::from(t_pop.since(*t_push).as_fs());
            n += 1;
        }
        sum.checked_div(n)
            .map(|mean| SimDuration::fs(u64::try_from(mean).expect("latency fits u64")))
    }

    /// Words delivered per receiver cycle over the measured span.
    pub fn throughput(&self, rx_cycles: u64) -> f64 {
        if rx_cycles == 0 {
            return 0.0;
        }
        self.pops.len() as f64 / rx_cycles as f64
    }

    /// True if every word arrived exactly once, in order.
    pub fn in_order(&self) -> bool {
        self.pops
            .iter()
            .enumerate()
            .all(|(i, (seq, _))| *seq == i as u64)
    }
}

#[derive(Debug)]
struct StariTx {
    clk: BitSignal,
    ports: FifoPorts,
    prev_clk: Bit,
    next_seq: u64,
    req_parity: bool,
    stats: Rc<RefCell<StariStats>>,
    limit: u64,
}

impl Component for StariTx {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        if let Wake::Signal(_) = cause {
            let v = ctx.bit(self.clk);
            let rising = !self.prev_clk.is_one() && v.is_one();
            self.prev_clk = v;
            if !rising || self.next_seq >= self.limit {
                return;
            }
            if ctx.bit(self.ports.full).is_one() {
                self.stats.borrow_mut().tx_stalls += 1;
                return;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.stats.borrow_mut().push_times.push(ctx.now());
            ctx.drive_word(self.ports.put_data, seq, SimDuration::ZERO);
            self.req_parity = !self.req_parity;
            // The request follows the data by a bundling margin.
            ctx.drive_bit(self.ports.put_req, self.req_parity, SimDuration::fs(1));
        }
    }
}

#[derive(Debug)]
struct StariRx {
    clk: BitSignal,
    ports: FifoPorts,
    prev_clk: Bit,
    ack_parity: bool,
    warmup_left: u64,
    cycles: u64,
    stats: Rc<RefCell<StariStats>>,
}

impl StariRx {
    fn cycles(&self) -> u64 {
        self.cycles
    }
}

impl Component for StariRx {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        if let Wake::Signal(_) = cause {
            let v = ctx.bit(self.clk);
            let rising = !self.prev_clk.is_one() && v.is_one();
            self.prev_clk = v;
            if !rising {
                return;
            }
            if self.warmup_left > 0 {
                self.warmup_left -= 1;
                return;
            }
            self.cycles += 1;
            if ctx.bit(self.ports.head_valid).is_one() {
                let seq = ctx.word(self.ports.head_data).expect("head data valid");
                self.stats.borrow_mut().pops.push((seq, ctx.now()));
                self.ack_parity = !self.ack_parity;
                ctx.drive_bit(self.ports.get_ack, self.ack_parity, SimDuration::fs(1));
            } else {
                self.stats.borrow_mut().rx_misses += 1;
            }
        }
    }
}

/// Handles returned by [`build_stari_link`] for post-run inspection.
#[derive(Debug)]
pub struct StariLink {
    /// Shared measurement record.
    pub stats: Rc<RefCell<StariStats>>,
    /// The underlying FIFO (for occupancy checks).
    pub fifo: Handle<SelfTimedFifo>,
    rx: Handle<StariRx>,
}

impl StariLink {
    /// Receiver cycles counted after warm-up (denominator for throughput).
    pub fn rx_cycles(&self, sim: &Simulator) -> u64 {
        sim.get(self.rx).cycles()
    }
}

/// Assembles a complete STARI link (two matched clocks, FIFO, instrumented
/// endpoints) into `b`, transferring `words` sequence-numbered words.
pub fn build_stari_link(b: &mut SimBuilder, spec: StariSpec, words: u64) -> StariLink {
    let clk_t = b.add_bit_signal("stari.clk_t");
    let clk_r = b.add_bit_signal("stari.clk_r");
    let ports = FifoPorts::declare(b, "stari.fifo");
    let fifo = SelfTimedFifo::new(ports, spec.depth, spec.stage_delay).install(b, "stari.fifo");

    // Matched-frequency clocks ("derived from a common source"); the skew
    // is absorbed inside the FIFO.
    let tx_clk = crate::stari::clock(clk_t, spec.period, SimDuration::ZERO);
    let rx_clk = crate::stari::clock(clk_r, spec.period, spec.skew);
    b.add_component("stari.clk_t", tx_clk);
    b.add_component("stari.clk_r", rx_clk);

    let stats = Rc::new(RefCell::new(StariStats::default()));
    let tx = b.add_component(
        "stari.tx",
        StariTx {
            clk: clk_t,
            ports,
            prev_clk: Bit::X,
            next_seq: 0,
            req_parity: false,
            stats: Rc::clone(&stats),
            limit: words,
        },
    );
    b.watch(tx.id(), clk_t.id());
    let rx = b.add_component(
        "stari.rx",
        StariRx {
            clk: clk_r,
            ports,
            prev_clk: Bit::X,
            ack_parity: false,
            warmup_left: spec.warmup_cycles,
            cycles: 0,
            stats: Rc::clone(&stats),
        },
    );
    b.watch(rx.id(), clk_r.id());
    StariLink { stats, fifo, rx }
}

/// A minimal fixed clock used by the link (kept local to avoid a
/// dependency cycle with `st-clocking`).
#[derive(Debug)]
struct LinkClock {
    clk: BitSignal,
    half: SimDuration,
    phase: SimDuration,
}

fn clock(clk: BitSignal, period: SimDuration, phase: SimDuration) -> LinkClock {
    LinkClock {
        clk,
        half: period / 2,
        phase,
    }
}

impl Component for LinkClock {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                ctx.drive_bit(self.clk, Bit::Zero, SimDuration::ZERO);
                ctx.set_timer(self.phase + self.half, 0);
            }
            Wake::Timer(_) => {
                ctx.toggle_bit(self.clk, SimDuration::ZERO);
                ctx.set_timer(self.half, 0);
            }
            _ => {}
        }
    }
}

/// Closed-form Eq. (1): `L_STARI = F·H/2 + T·H/2`.
pub fn stari_latency_model(
    period: SimDuration,
    stage_delay: SimDuration,
    depth: usize,
) -> SimDuration {
    let h = depth as u64;
    stage_delay * h / 2 + period * h / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(depth: usize, t_ns: u64, f_ns: u64, words: u64) -> (Simulator, StariLink) {
        let mut b = SimBuilder::new();
        let spec = StariSpec::new(SimDuration::ns(t_ns), SimDuration::ns(f_ns), depth);
        let link = build_stari_link(&mut b, spec, words);
        let mut sim = b.build();
        sim.run_for(SimDuration::ns(t_ns * (words + 50))).unwrap();
        (sim, link)
    }

    #[test]
    fn delivers_every_word_in_order() {
        let (sim, link) = run(8, 10, 2, 200);
        let stats = link.stats.borrow();
        assert_eq!(stats.pops.len(), 200);
        assert!(stats.in_order());
        drop(stats);
        assert_eq!(sim.get(link.fifo).overruns(), 0);
        assert_eq!(sim.get(link.fifo).underruns(), 0);
    }

    #[test]
    fn steady_state_throughput_is_one_word_per_cycle() {
        let (sim, link) = run(8, 10, 2, 500);
        let stats = link.stats.borrow();
        // In steady state every rx cycle pops a word until the source
        // runs dry: misses only at the tail end.
        let cycles = link.rx_cycles(&sim);
        let tp = stats.throughput(cycles.min(500));
        assert!(tp > 0.95, "throughput {tp} should be ~1 word/cycle");
    }

    #[test]
    fn measured_latency_tracks_equation_one() {
        let (_, link) = run(8, 10, 2, 500);
        let stats = link.stats.borrow();
        let measured = stats.mean_latency(50).expect("latency");
        let model = stari_latency_model(SimDuration::ns(10), SimDuration::ns(2), 8);
        // Shape check: within 2x either way (the model idealizes the
        // half-full occupancy).
        let (m, p) = (measured.as_fs() as f64, model.as_fs() as f64);
        assert!(
            m / p < 2.0 && p / m < 2.0,
            "measured {measured} vs model {model}"
        );
    }

    #[test]
    fn skew_is_absorbed_without_loss() {
        for skew_ns in [0u64, 2, 4, 7] {
            let mut b = SimBuilder::new();
            let mut spec = StariSpec::new(SimDuration::ns(10), SimDuration::ns(2), 8);
            spec.skew = SimDuration::ns(skew_ns);
            let link = build_stari_link(&mut b, spec, 100);
            let mut sim = b.build();
            sim.run_for(SimDuration::us(3)).unwrap();
            let stats = link.stats.borrow();
            assert_eq!(stats.pops.len(), 100, "skew {skew_ns}ns lost words");
            assert!(stats.in_order());
        }
    }
}
