//! Self-timed FIFO with bundled data.
//!
//! The paper's communication channels "may be pipelined with self-timed
//! FIFOs"; each stage is a latch plus completion-detection control and
//! forwards its word to the next empty stage after a propagation delay
//! `F`. This component models the whole chain at the event level; the
//! gate-level structure (for Table 1's area model) lives in `st-cells`.
//!
//! # Port protocol
//!
//! * **Tail (producer side)** — the producer checks [`full`] low, sets
//!   `put_data`, and toggles `put_req` (transition signalling). `full` is
//!   the occupancy of the tail stage; it deasserts as soon as the word
//!   moves forward, which takes one stage delay — matching the paper's
//!   requirement that "each stage … complete a four-phase handshake within
//!   one local clock cycle" when `F` is shorter than the local period.
//! * **Head (consumer side)** — `head_valid` is high while the head stage
//!   holds a word, with the word on `head_data`; the consumer toggles
//!   `get_ack` to pop it.
//!
//! [`full`]: FifoPorts::full

use st_sim::prelude::*;

/// Timer tag: a word attempts to advance from stage `tag` to `tag + 1`.
///
/// Using the stage index as the tag keeps every in-flight movement
/// distinguishable.
fn move_tag(stage: usize) -> u64 {
    stage as u64
}

/// The signals of one [`SelfTimedFifo`].
#[derive(Debug, Clone, Copy)]
pub struct FifoPorts {
    /// Producer toggles to push `put_data` into the tail.
    pub put_req: BitSignal,
    /// Word to push, sampled on `put_req` transitions.
    pub put_data: WordSignal,
    /// High while the tail stage is occupied (pushing now would overrun).
    pub full: BitSignal,
    /// High while the head stage holds a word.
    pub head_valid: BitSignal,
    /// The word at the head (valid while `head_valid`).
    pub head_data: WordSignal,
    /// Consumer toggles to pop the head word.
    pub get_ack: BitSignal,
}

impl FifoPorts {
    /// Declares a fresh set of FIFO signals named `<name>.<port>`.
    pub fn declare(b: &mut SimBuilder, name: &str) -> Self {
        FifoPorts {
            put_req: b.add_bit_signal_init(&format!("{name}.put_req"), Bit::Zero),
            put_data: b.add_word_signal(&format!("{name}.put_data")),
            full: b.add_bit_signal_init(&format!("{name}.full"), Bit::Zero),
            head_valid: b.add_bit_signal_init(&format!("{name}.head_valid"), Bit::Zero),
            head_data: b.add_word_signal(&format!("{name}.head_data")),
            get_ack: b.add_bit_signal_init(&format!("{name}.get_ack"), Bit::Zero),
        }
    }
}

/// Dynamic state of a [`SelfTimedFifo`], captured for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoSnapshot {
    /// Stage contents, tail first.
    pub stages: Vec<Option<u64>>,
    /// Total successful pushes.
    pub pushes: u64,
    /// Total successful pops.
    pub pops: u64,
    /// Highest occupancy ever reached.
    pub max_occupancy: usize,
    /// Producer protocol violations.
    pub overruns: u64,
    /// Consumer protocol violations.
    pub underruns: u64,
}

/// Event-level model of a self-timed FIFO chain.
///
/// # Examples
///
/// See the crate-level documentation.
#[derive(Debug)]
pub struct SelfTimedFifo {
    ports: FifoPorts,
    /// `stages[0]` is the tail (insertion point); the last is the head.
    stages: Vec<Option<u64>>,
    /// Forward latency of one stage.
    stage_delay: SimDuration,
    pushes: u64,
    pops: u64,
    max_occupancy: usize,
    /// Set when a push overruns the tail stage (a protocol violation by
    /// the producer); checked by tests and the determinism harness.
    overruns: u64,
    /// Set when a pop fires with no word at the head.
    underruns: u64,
}

impl SelfTimedFifo {
    /// Creates a FIFO with `depth` stages and per-stage delay `stage_delay`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(ports: FifoPorts, depth: usize, stage_delay: SimDuration) -> Self {
        assert!(depth > 0, "fifo depth must be non-zero");
        SelfTimedFifo {
            ports,
            stages: vec![None; depth],
            stage_delay,
            pushes: 0,
            pops: 0,
            max_occupancy: 0,
            overruns: 0,
            underruns: 0,
        }
    }

    /// The FIFO's port bundle.
    pub fn ports(&self) -> FifoPorts {
        self.ports
    }

    /// Number of stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Words currently in flight.
    pub fn occupancy(&self) -> usize {
        self.stages.iter().filter(|s| s.is_some()).count()
    }

    /// Total successful pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful pops.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Highest occupancy ever reached.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Producer protocol violations observed (push while full).
    pub fn overruns(&self) -> u64 {
        self.overruns
    }

    /// Consumer protocol violations observed (pop while empty).
    pub fn underruns(&self) -> u64 {
        self.underruns
    }

    /// Captures the FIFO's dynamic state for checkpointing. In-flight
    /// stage movements live in the kernel's timer events, which the
    /// kernel snapshot carries, so the component side is just the stage
    /// contents and counters.
    pub fn snapshot(&self) -> FifoSnapshot {
        FifoSnapshot {
            stages: self.stages.clone(),
            pushes: self.pushes,
            pops: self.pops,
            max_occupancy: self.max_occupancy,
            overruns: self.overruns,
            underruns: self.underruns,
        }
    }

    /// Restores state captured by [`SelfTimedFifo::snapshot`]. Returns
    /// false when the snapshot's depth does not match this FIFO.
    pub fn restore(&mut self, snap: &FifoSnapshot) -> bool {
        if snap.stages.len() != self.stages.len() {
            return false;
        }
        self.stages.clone_from(&snap.stages);
        self.pushes = snap.pushes;
        self.pops = snap.pops;
        self.max_occupancy = snap.max_occupancy;
        self.overruns = snap.overruns;
        self.underruns = snap.underruns;
        true
    }

    /// Registers the component and its sensitivities; returns the handle.
    pub fn install(self, b: &mut SimBuilder, name: &str) -> Handle<SelfTimedFifo> {
        let ports = self.ports;
        let h = b.add_component(name, self);
        b.watch(h.id(), ports.put_req.id());
        b.watch(h.id(), ports.get_ack.id());
        h
    }

    fn head_index(&self) -> usize {
        self.stages.len() - 1
    }

    fn publish_tail(&self, ctx: &mut Ctx<'_>) {
        ctx.drive_bit(self.ports.full, self.stages[0].is_some(), SimDuration::ZERO);
    }

    fn publish_head(&self, ctx: &mut Ctx<'_>) {
        let head = self.stages[self.head_index()];
        ctx.drive_bit(self.ports.head_valid, head.is_some(), SimDuration::ZERO);
        if let Some(w) = head {
            ctx.drive_word(self.ports.head_data, w, SimDuration::ZERO);
        }
    }

    /// Schedules an advance attempt for the word in `stage`.
    fn schedule_move(&self, ctx: &mut Ctx<'_>, stage: usize) {
        if stage < self.head_index() {
            ctx.set_timer(self.stage_delay, move_tag(stage));
        }
    }

    fn note_occupancy(&mut self) {
        self.max_occupancy = self.max_occupancy.max(self.occupancy());
    }
}

impl Component for SelfTimedFifo {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                self.publish_tail(ctx);
                self.publish_head(ctx);
            }
            Wake::Signal(sig) if sig == self.ports.put_req.id() => {
                let word = ctx
                    .word(self.ports.put_data)
                    .expect("put_req toggled with undriven put_data");
                if self.stages[0].is_some() {
                    self.overruns += 1;
                    return;
                }
                self.stages[0] = Some(word);
                self.pushes += 1;
                self.note_occupancy();
                self.publish_tail(ctx);
                if self.stages.len() == 1 {
                    self.publish_head(ctx);
                } else {
                    self.schedule_move(ctx, 0);
                }
            }
            Wake::Signal(sig) if sig == self.ports.get_ack.id() => {
                let head = self.head_index();
                if self.stages[head].is_none() {
                    self.underruns += 1;
                    return;
                }
                self.stages[head] = None;
                self.pops += 1;
                self.publish_head(ctx);
                if head == 0 {
                    self.publish_tail(ctx);
                } else if self.stages[head - 1].is_some() {
                    // The word behind the head can now advance.
                    self.schedule_move(ctx, head - 1);
                }
            }
            Wake::Timer(tag) => {
                let stage = tag as usize;
                let Some(word) = self.stages[stage] else {
                    return; // Stale movement (word already popped/advanced).
                };
                if self.stages[stage + 1].is_some() {
                    // Blocked; a later pop/advance will reschedule us.
                    return;
                }
                self.stages[stage + 1] = Some(word);
                self.stages[stage] = None;
                if stage == 0 {
                    self.publish_tail(ctx);
                }
                if stage + 1 == self.head_index() {
                    self.publish_head(ctx);
                } else {
                    self.schedule_move(ctx, stage + 1);
                }
                if stage > 0 && self.stages[stage - 1].is_some() {
                    self.schedule_move(ctx, stage - 1);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::collections::BTreeMap;

    struct Bench {
        sim: Simulator,
        ports: FifoPorts,
        fifo: Handle<SelfTimedFifo>,
        toggles: BTreeMap<SignalId, u64>,
    }

    fn build(depth: usize, f_ns: u64) -> Bench {
        let mut b = SimBuilder::new();
        let ports = FifoPorts::declare(&mut b, "f");
        let fifo = SelfTimedFifo::new(ports, depth, SimDuration::ns(f_ns)).install(&mut b, "fifo");
        Bench {
            sim: b.build(),
            ports,
            fifo,
            toggles: BTreeMap::new(),
        }
    }

    impl Bench {
        /// Drives alternating values on a transition-signalled wire;
        /// assumes calls happen in increasing time order from Zero.
        fn toggle(&mut self, sig: BitSignal, ns: u64) {
            let n = self.toggles.entry(sig.id()).or_insert(0u64);
            *n += 1;
            let v = *n % 2 == 1;
            self.sim
                .drive(sig.id(), Value::from(v), SimDuration::ns(ns));
        }

        fn push_at(&mut self, ns: u64, word: u64) {
            // Data must settle before the request toggles (bundled data).
            self.sim.drive(
                self.ports.put_data.id(),
                Value::Word(word),
                SimDuration::ns(ns),
            );
            let req = self.ports.put_req;
            self.toggle(req, ns + 1);
        }

        fn pop_at(&mut self, ns: u64) {
            let ack = self.ports.get_ack;
            self.toggle(ack, ns);
        }
    }

    #[test]
    fn word_propagates_head_to_tail() {
        let mut bench = build(4, 10);
        bench.push_at(0, 0xFEED);
        bench.sim.run_for(SimDuration::ns(100)).unwrap();
        let f = bench.sim.get(bench.fifo);
        assert_eq!(f.occupancy(), 1);
        assert_eq!(bench.sim.bit(bench.ports.head_valid), Bit::One);
        assert_eq!(bench.sim.word(bench.ports.head_data), Some(0xFEED));
        assert_eq!(bench.sim.bit(bench.ports.full), Bit::Zero);
    }

    #[test]
    fn transit_time_is_depth_minus_one_stage_delays() {
        let mut b = SimBuilder::new();
        let ports = FifoPorts::declare(&mut b, "f");
        b.trace(ports.head_valid.id());
        let _fifo = SelfTimedFifo::new(ports, 4, SimDuration::ns(10)).install(&mut b, "fifo");
        let mut sim = b.build();
        sim.drive(ports.put_data.id(), Value::Word(7), SimDuration::ZERO);
        sim.drive(ports.put_req.id(), Value::from(true), SimDuration::ns(1));
        sim.run_for(SimDuration::ns(100)).unwrap();
        let valid_at = sim
            .trace()
            .changes(ports.head_valid.id())
            .find(|(_, v)| *v == Value::from(true))
            .expect("word must reach the head")
            .0;
        // Pushed at 1ns; three stage hops of 10ns each.
        assert_eq!(valid_at, SimTime::ZERO + SimDuration::ns(31));
    }

    #[test]
    fn preserves_order_and_values() {
        let mut bench = build(3, 5);
        for (i, w) in [10u64, 20, 30].iter().enumerate() {
            bench.push_at(i as u64 * 40, *w);
        }
        // Pop with generous spacing.
        bench.pop_at(200);
        bench.pop_at(240);
        bench.pop_at(280);
        // Record head data just before each pop via run segments.
        let mut seen = Vec::new();
        for t in [199u64, 239, 279] {
            bench
                .sim
                .run_until(SimTime::ZERO + SimDuration::ns(t))
                .unwrap();
            seen.push(bench.sim.word(bench.ports.head_data));
        }
        bench.sim.run_for(SimDuration::ns(100)).unwrap();
        assert_eq!(seen, vec![Some(10), Some(20), Some(30)]);
        let f = bench.sim.get(bench.fifo);
        assert_eq!(f.pushes(), 3);
        assert_eq!(f.pops(), 3);
        assert_eq!(f.occupancy(), 0);
        assert_eq!(f.overruns(), 0);
        assert_eq!(f.underruns(), 0);
    }

    #[test]
    fn fills_to_capacity_and_blocks() {
        let mut bench = build(3, 5);
        for i in 0..3 {
            bench.push_at(i * 40, 100 + i);
        }
        bench.sim.run_for(SimDuration::ns(200)).unwrap();
        let f = bench.sim.get(bench.fifo);
        assert_eq!(f.occupancy(), 3);
        assert_eq!(f.max_occupancy(), 3);
        assert_eq!(bench.sim.bit(bench.ports.full), Bit::One);
    }

    #[test]
    fn overrun_is_counted_not_corrupting() {
        let mut bench = build(1, 5);
        bench.push_at(0, 1);
        bench.push_at(10, 2); // head==tail stage still occupied
        bench.sim.run_for(SimDuration::ns(50)).unwrap();
        let f = bench.sim.get(bench.fifo);
        assert_eq!(f.overruns(), 1);
        assert_eq!(bench.sim.word(bench.ports.head_data), Some(1));
    }

    #[test]
    fn underrun_is_counted() {
        let mut bench = build(2, 5);
        bench.pop_at(5);
        bench.sim.run_for(SimDuration::ns(50)).unwrap();
        assert_eq!(bench.sim.get(bench.fifo).underruns(), 1);
    }

    #[test]
    fn backpressure_releases_in_order() {
        let mut bench = build(2, 5);
        bench.push_at(0, 1);
        bench.push_at(20, 2);
        // FIFO now full (2 words). Pop twice.
        bench.pop_at(100);
        bench.pop_at(150);
        let mut seen = Vec::new();
        for t in [99u64, 149] {
            bench
                .sim
                .run_until(SimTime::ZERO + SimDuration::ns(t))
                .unwrap();
            seen.push(bench.sim.word(bench.ports.head_data));
        }
        bench.sim.run_for(SimDuration::ns(100)).unwrap();
        assert_eq!(seen, vec![Some(1), Some(2)]);
        assert_eq!(bench.sim.get(bench.fifo).occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "depth must be non-zero")]
    fn zero_depth_rejected() {
        let mut b = SimBuilder::new();
        let ports = FifoPorts::declare(&mut b, "f");
        let _ = SelfTimedFifo::new(ports, 0, SimDuration::ns(1));
    }
}
