//! Mutual-exclusion element (mutex / arbiter).
//!
//! "The principal sources of nondeterminism are mutual exclusion elements
//! and their close cousins arbiters and synchronizers" (§1). This model
//! grants one of two four-phase requesters at a time; requests arriving
//! within the decision window of each other are resolved by the seeded
//! RNG, with an extra metastability resolution delay — the behavioural
//! signature of a real NAND-latch MUTEX.

use st_sim::prelude::*;

/// Static parameters of a [`Mutex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutexSpec {
    /// Requests closer together than this are arbitrated randomly.
    pub window: SimDuration,
    /// Grant propagation delay in the uncontended case.
    pub grant_delay: SimDuration,
    /// Additional settling delay when the element goes metastable.
    pub resolution_delay: SimDuration,
}

impl Default for MutexSpec {
    fn default() -> Self {
        MutexSpec {
            window: SimDuration::ps(100),
            grant_delay: SimDuration::ps(200),
            resolution_delay: SimDuration::ns(1),
        }
    }
}

/// Which side of the mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Requester A.
    A,
    /// Requester B.
    B,
}

/// A two-input mutual exclusion element with four-phase requests.
///
/// Raise `req_a`/`req_b` to request; the matching grant rises when owned;
/// drop the request to release. Watch both request signals.
#[derive(Debug)]
pub struct Mutex {
    spec: MutexSpec,
    req_a: BitSignal,
    req_b: BitSignal,
    grant_a: BitSignal,
    grant_b: BitSignal,
    owner: Option<Side>,
    last_req_a: SimTime,
    last_req_b: SimTime,
    prev_a: Bit,
    prev_b: Bit,
    grants: u64,
    metastable_decisions: u64,
}

impl Mutex {
    /// Creates the element.
    pub fn new(
        spec: MutexSpec,
        req_a: BitSignal,
        req_b: BitSignal,
        grant_a: BitSignal,
        grant_b: BitSignal,
    ) -> Self {
        Mutex {
            spec,
            req_a,
            req_b,
            grant_a,
            grant_b,
            owner: None,
            last_req_a: SimTime::ZERO,
            last_req_b: SimTime::ZERO,
            prev_a: Bit::X,
            prev_b: Bit::X,
            grants: 0,
            metastable_decisions: 0,
        }
    }

    /// Registers the component and its sensitivities.
    pub fn install(self, b: &mut SimBuilder, name: &str) -> Handle<Mutex> {
        let (ra, rb) = (self.req_a, self.req_b);
        let h = b.add_component(name, self);
        b.watch(h.id(), ra.id());
        b.watch(h.id(), rb.id());
        h
    }

    /// Total grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Decisions that fell inside the metastability window.
    pub fn metastable_decisions(&self) -> u64 {
        self.metastable_decisions
    }

    /// Current owner, if any.
    pub fn owner(&self) -> Option<Side> {
        self.owner
    }

    fn grant_sig(&self, side: Side) -> BitSignal {
        match side {
            Side::A => self.grant_a,
            Side::B => self.grant_b,
        }
    }

    fn req_high(&self, ctx: &Ctx<'_>, side: Side) -> bool {
        let sig = match side {
            Side::A => self.req_a,
            Side::B => self.req_b,
        };
        ctx.bit(sig).is_one()
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, side: Side, extra: SimDuration) {
        self.owner = Some(side);
        self.grants += 1;
        ctx.drive_bit(
            self.grant_sig(side),
            Bit::One,
            self.spec.grant_delay + extra,
        );
    }

    fn arbitrate(&mut self, ctx: &mut Ctx<'_>) {
        if self.owner.is_some() {
            return;
        }
        let a = self.req_high(ctx, Side::A);
        let b = self.req_high(ctx, Side::B);
        match (a, b) {
            (false, false) => {}
            (true, false) => self.issue(ctx, Side::A, SimDuration::ZERO),
            (false, true) => self.issue(ctx, Side::B, SimDuration::ZERO),
            (true, true) => {
                let gap = if self.last_req_a > self.last_req_b {
                    self.last_req_a.since(self.last_req_b)
                } else {
                    self.last_req_b.since(self.last_req_a)
                };
                if gap < self.spec.window {
                    self.metastable_decisions += 1;
                    use rand::Rng;
                    let side = if ctx.rng().gen::<bool>() {
                        Side::A
                    } else {
                        Side::B
                    };
                    self.issue(ctx, side, self.spec.resolution_delay);
                } else if self.last_req_a < self.last_req_b {
                    self.issue(ctx, Side::A, SimDuration::ZERO);
                } else {
                    self.issue(ctx, Side::B, SimDuration::ZERO);
                }
            }
        }
    }
}

impl Component for Mutex {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                ctx.drive_bit(self.grant_a, Bit::Zero, SimDuration::ZERO);
                ctx.drive_bit(self.grant_b, Bit::Zero, SimDuration::ZERO);
            }
            Wake::Signal(_) => {
                // Both requests may have changed in the same delta batch;
                // detect changes by value so that coincident assertions
                // carry coincident timestamps regardless of wake order.
                let a = ctx.bit(self.req_a);
                if a != self.prev_a {
                    self.prev_a = a;
                    self.last_req_a = ctx.now();
                }
                let b = ctx.bit(self.req_b);
                if b != self.prev_b {
                    self.prev_b = b;
                    self.last_req_b = ctx.now();
                }
                // Release?
                if let Some(owner) = self.owner {
                    if !self.req_high(ctx, owner) {
                        ctx.drive_bit(self.grant_sig(owner), Bit::Zero, self.spec.grant_delay);
                        self.owner = None;
                    }
                }
                self.arbitrate(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness(seed: u64) -> (Simulator, [BitSignal; 4], Handle<Mutex>) {
        let mut b = SimBuilder::new().with_seed(seed);
        let ra = b.add_bit_signal_init("ra", Bit::Zero);
        let rb = b.add_bit_signal_init("rb", Bit::Zero);
        let ga = b.add_bit_signal("ga");
        let gb = b.add_bit_signal("gb");
        let m = Mutex::new(MutexSpec::default(), ra, rb, ga, gb).install(&mut b, "mutex");
        (b.build(), [ra, rb, ga, gb], m)
    }

    #[test]
    fn grants_sole_requester() {
        let (mut sim, [ra, _, ga, _], m) = harness(0);
        sim.drive(ra.id(), Value::from(true), SimDuration::ns(1));
        sim.run_for(SimDuration::ns(5)).unwrap();
        assert_eq!(sim.bit(ga), Bit::One);
        assert_eq!(sim.get(m).owner(), Some(Side::A));
        sim.drive(ra.id(), Value::from(false), SimDuration::ZERO);
        sim.run_for(SimDuration::ns(5)).unwrap();
        assert_eq!(sim.bit(ga), Bit::Zero);
        assert_eq!(sim.get(m).owner(), None);
    }

    #[test]
    fn second_requester_waits_for_release() {
        let (mut sim, [ra, rb, ga, gb], _) = harness(0);
        sim.drive(ra.id(), Value::from(true), SimDuration::ns(1));
        sim.drive(rb.id(), Value::from(true), SimDuration::ns(10));
        sim.run_for(SimDuration::ns(15)).unwrap();
        assert_eq!(sim.bit(ga), Bit::One);
        assert_eq!(sim.bit(gb), Bit::Zero, "B must wait");
        sim.drive(ra.id(), Value::from(false), SimDuration::ZERO);
        sim.run_for(SimDuration::ns(5)).unwrap();
        assert_eq!(sim.bit(gb), Bit::One, "B granted after release");
    }

    #[test]
    fn clearly_ordered_contention_favours_first() {
        // B arrives 1ns after A: outside the 100ps window.
        let (mut sim, [ra, rb, ga, _], m) = harness(99);
        sim.drive(ra.id(), Value::from(true), SimDuration::ns(5));
        sim.drive(rb.id(), Value::from(true), SimDuration::ns(6));
        sim.run_for(SimDuration::ns(10)).unwrap();
        assert_eq!(sim.bit(ga), Bit::One);
        assert_eq!(sim.get(m).metastable_decisions(), 0);
    }

    #[test]
    fn coincident_requests_resolve_randomly() {
        let outcome = |seed: u64| {
            let (mut sim, [ra, rb, ga, _], m) = harness(seed);
            sim.drive(ra.id(), Value::from(true), SimDuration::ns(5));
            sim.drive(rb.id(), Value::from(true), SimDuration::ns(5));
            sim.run_for(SimDuration::ns(10)).unwrap();
            (sim.get(m).metastable_decisions(), sim.bit(ga).is_one())
        };
        let results: Vec<(u64, bool)> = (0..32).map(outcome).collect();
        assert!(results.iter().all(|(md, _)| *md == 1));
        let winners: std::collections::BTreeSet<bool> = results.iter().map(|(_, a)| *a).collect();
        assert_eq!(winners.len(), 2, "either side must be able to win");
    }

    #[test]
    fn release_then_regrant_counts_each_grant() {
        let (mut sim, [ra, _, _, _], m) = harness(0);
        for i in 0..5u64 {
            sim.drive(ra.id(), Value::from(true), SimDuration::ns(10 * i + 1));
            sim.drive(ra.id(), Value::from(false), SimDuration::ns(10 * i + 6));
        }
        sim.run_for(SimDuration::ns(100)).unwrap();
        assert_eq!(sim.get(m).grants(), 5);
    }
}
