//! Two-flop synchronizer — the canonical *nondeterministic* GALS input
//! circuit.
//!
//! A synchronizer samples an asynchronous level with the local clock. When
//! the input transitions within the setup/hold window of a sampling edge,
//! the first flop goes metastable and may resolve to either value — here
//! modelled with the kernel's seeded RNG. The *local cycle at which the
//! synchronized level is first seen* therefore depends on clock phase and
//! delay variation: exactly the nondeterminism synchro-tokens eliminates.
//! This component is used by the bypass-mode baseline of experiment E1.

use st_sim::prelude::*;

/// Static parameters of a [`TwoFlopSynchronizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynchronizerSpec {
    /// Setup/hold window around the sampling edge within which a data
    /// transition makes the sample metastable.
    pub window: SimDuration,
}

impl Default for SynchronizerSpec {
    fn default() -> Self {
        SynchronizerSpec {
            window: SimDuration::ps(100),
        }
    }
}

/// A two-flop brute-force synchronizer.
///
/// Watches `clk` (rising edges) and the asynchronous input `d`; drives `q`
/// with the value of `d` as seen two edges ago. Samples taken while `d`
/// changed within [`SynchronizerSpec::window`] of the edge resolve to a
/// *random* value (seeded RNG), and are counted in
/// [`metastable_samples`](TwoFlopSynchronizer::metastable_samples).
#[derive(Debug)]
pub struct TwoFlopSynchronizer {
    spec: SynchronizerSpec,
    clk: BitSignal,
    d: BitSignal,
    q: BitSignal,
    prev_clk: Bit,
    /// Value and last-change time of the async input, tracked locally so
    /// the window test does not depend on kernel internals.
    last_d_change: SimTime,
    stage1: Bit,
    stage2: Bit,
    metastable_samples: u64,
    samples: u64,
}

impl TwoFlopSynchronizer {
    /// Creates a synchronizer; watch both `clk` and `d`.
    pub fn new(spec: SynchronizerSpec, clk: BitSignal, d: BitSignal, q: BitSignal) -> Self {
        TwoFlopSynchronizer {
            spec,
            clk,
            d,
            q,
            prev_clk: Bit::X,
            last_d_change: SimTime::ZERO,
            stage1: Bit::Zero,
            stage2: Bit::Zero,
            metastable_samples: 0,
            samples: 0,
        }
    }

    /// Registers the component and its sensitivities.
    pub fn install(self, b: &mut SimBuilder, name: &str) -> Handle<TwoFlopSynchronizer> {
        let clk = self.clk;
        let d = self.d;
        let h = b.add_component(name, self);
        b.watch(h.id(), clk.id());
        b.watch(h.id(), d.id());
        h
    }

    /// Samples taken inside the metastability window so far.
    pub fn metastable_samples(&self) -> u64 {
        self.metastable_samples
    }

    /// Total samples taken (one per rising clock edge).
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl Component for TwoFlopSynchronizer {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                ctx.drive_bit(self.q, Bit::Zero, SimDuration::ZERO);
            }
            Wake::Signal(sig) if sig == self.d.id() => {
                self.last_d_change = ctx.now();
            }
            Wake::Signal(sig) if sig == self.clk.id() => {
                let v = ctx.bit(self.clk);
                let rising = !self.prev_clk.is_one() && v.is_one();
                self.prev_clk = v;
                if !rising {
                    return;
                }
                self.samples += 1;
                let in_window = ctx.now().saturating_since(self.last_d_change) < self.spec.window;
                let sampled = if in_window {
                    self.metastable_samples += 1;
                    use rand::Rng;
                    Bit::from(ctx.rng().gen::<bool>())
                } else {
                    match ctx.bit(self.d) {
                        Bit::X => Bit::Zero,
                        b => b,
                    }
                };
                self.stage2 = self.stage1;
                self.stage1 = sampled;
                ctx.drive_bit(self.q, self.stage2, SimDuration::ZERO);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_clocking_shim::FreeClockShim;

    /// Minimal local clock to avoid a circular dev-dependency on
    /// `st-clocking`.
    mod st_clocking_shim {
        use st_sim::prelude::*;

        #[derive(Debug)]
        pub struct FreeClockShim {
            pub clk: BitSignal,
            pub half: SimDuration,
        }

        impl Component for FreeClockShim {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                match cause {
                    Wake::Start => {
                        ctx.drive_bit(self.clk, Bit::Zero, SimDuration::ZERO);
                        ctx.set_timer(self.half, 0);
                    }
                    Wake::Timer(_) => {
                        ctx.toggle_bit(self.clk, SimDuration::ZERO);
                        ctx.set_timer(self.half, 0);
                    }
                    _ => {}
                }
            }
        }
    }

    fn harness(seed: u64) -> (Simulator, BitSignal, BitSignal, Handle<TwoFlopSynchronizer>) {
        let mut b = SimBuilder::new().with_seed(seed);
        let clk = b.add_bit_signal("clk");
        let d = b.add_bit_signal_init("d", Bit::Zero);
        let q = b.add_bit_signal("q");
        let osc = b.add_component(
            "clk",
            FreeClockShim {
                clk,
                half: SimDuration::ns(5),
            },
        );
        let _ = osc;
        let s = TwoFlopSynchronizer::new(SynchronizerSpec::default(), clk, d, q)
            .install(&mut b, "sync");
        (b.build(), d, q, s)
    }

    #[test]
    fn clean_input_appears_after_two_edges() {
        let (mut sim, d, q, s) = harness(0);
        // Rising edges at 5, 15, 25, ... ; set d well clear of the window.
        sim.drive(d.id(), Value::from(true), SimDuration::ns(7));
        sim.run_until(SimTime::ZERO + SimDuration::ns(14)).unwrap();
        assert_eq!(sim.bit(q), Bit::Zero, "not yet sampled through 2 flops");
        sim.run_until(SimTime::ZERO + SimDuration::ns(26)).unwrap();
        assert_eq!(sim.bit(q), Bit::One, "visible after the edge at 25ns");
        assert_eq!(sim.get(s).metastable_samples(), 0);
    }

    #[test]
    fn window_hit_is_counted_and_seed_dependent() {
        let outcome = |seed: u64| {
            let (mut sim, d, q, s) = harness(seed);
            // Change d exactly on the sampling edge at 15 ns.
            sim.drive(d.id(), Value::from(true), SimDuration::ns(15));
            sim.run_until(SimTime::ZERO + SimDuration::ns(26)).unwrap();
            (sim.get(s).metastable_samples(), sim.bit(q))
        };
        let results: Vec<(u64, Bit)> = (0..32).map(outcome).collect();
        assert!(results.iter().all(|(m, _)| *m == 1));
        let qs: std::collections::BTreeSet<_> =
            results.iter().map(|(_, q)| format!("{q}")).collect();
        assert_eq!(
            qs.len(),
            2,
            "metastable sample must be able to go both ways"
        );
    }

    #[test]
    fn sample_count_tracks_edges() {
        let (mut sim, _, _, s) = harness(0);
        sim.run_until(SimTime::ZERO + SimDuration::ns(100)).unwrap();
        // Edges at 5, 15, ..., 95 -> 10 samples.
        assert_eq!(sim.get(s).samples(), 10);
    }
}
