//! Property-based tests: the self-timed FIFO against a reference queue,
//! and STARI invariants.

use proptest::prelude::*;
use st_channel::{build_stari_link, FifoPorts, SelfTimedFifo, StariSpec};
use st_sim::prelude::*;
use std::collections::VecDeque;

/// Drives a FIFO with an arbitrary well-behaved push/pop schedule and
/// checks it against `VecDeque` semantics.
fn run_schedule(depth: usize, f_ns: u64, ops: &[(bool, u64)]) -> (Vec<u64>, u64, u64) {
    let mut b = SimBuilder::new();
    let ports = FifoPorts::declare(&mut b, "f");
    let fifo = SelfTimedFifo::new(ports, depth, SimDuration::ns(f_ns)).install(&mut b, "f");
    let mut sim = b.build();

    // Schedule ops far enough apart that each settles; track a
    // reference model against *observed* state between ops.
    let mut reference: VecDeque<u64> = VecDeque::new();
    let mut popped = Vec::new();
    let mut req = false;
    let mut ack = false;
    let mut t_ns = 0u64;
    let gap = f_ns * (depth as u64 + 2);
    for (push, word) in ops {
        t_ns += gap;
        sim.run_until(SimTime::ZERO + SimDuration::ns(t_ns))
            .unwrap();
        if *push {
            if reference.len() < depth {
                reference.push_back(*word);
                sim.drive(ports.put_data.id(), Value::Word(*word), SimDuration::ZERO);
                req = !req;
                sim.drive(ports.put_req.id(), Value::from(req), SimDuration::fs(1));
            }
        } else if let Some(expect) = reference.pop_front() {
            // The head must show exactly the reference front.
            assert_eq!(sim.word(ports.head_data), Some(expect));
            popped.push(expect);
            ack = !ack;
            sim.drive(ports.get_ack.id(), Value::from(ack), SimDuration::fs(1));
        }
    }
    sim.run_for(SimDuration::ns(gap)).unwrap();
    let f = sim.get(fifo);
    (popped, f.overruns(), f.underruns())
}

proptest! {
    /// FIFO order, no loss, no duplication, no overruns/underruns for
    /// any schedule the reference model allows.
    #[test]
    fn fifo_matches_reference_queue(
        depth in 1usize..6,
        f_ns in 1u64..5,
        ops in proptest::collection::vec((any::<bool>(), 0u64..1000), 1..60),
    ) {
        let (_popped, over, under) = run_schedule(depth, f_ns, &ops);
        prop_assert_eq!(over, 0);
        prop_assert_eq!(under, 0);
    }

    /// Occupancy accounting: pushes - pops == final occupancy.
    #[test]
    fn fifo_conserves_words(
        depth in 1usize..6,
        ops in proptest::collection::vec((any::<bool>(), 0u64..1000), 1..60),
    ) {
        let mut b = SimBuilder::new();
        let ports = FifoPorts::declare(&mut b, "f");
        let fifo = SelfTimedFifo::new(ports, depth, SimDuration::ns(2)).install(&mut b, "f");
        let mut sim = b.build();
        let mut req = false;
        let mut ack = false;
        let mut occupancy_model = 0usize;
        let mut t = 0u64;
        for (push, word) in &ops {
            t += 20;
            sim.run_until(SimTime::ZERO + SimDuration::ns(t)).unwrap();
            if *push && occupancy_model < depth {
                occupancy_model += 1;
                sim.drive(ports.put_data.id(), Value::Word(*word), SimDuration::ZERO);
                req = !req;
                sim.drive(ports.put_req.id(), Value::from(req), SimDuration::fs(1));
            } else if !*push && occupancy_model > 0 {
                occupancy_model -= 1;
                ack = !ack;
                sim.drive(ports.get_ack.id(), Value::from(ack), SimDuration::fs(1));
            }
        }
        sim.run_for(SimDuration::ns(40)).unwrap();
        let f = sim.get(fifo);
        prop_assert_eq!(f.occupancy(), occupancy_model);
        prop_assert_eq!(f.pushes() - f.pops(), occupancy_model as u64);
    }

    /// STARI delivers every word exactly once, in order, for any
    /// skew within a period and any reasonable depth.
    #[test]
    fn stari_lossless_across_skew_and_depth(
        depth in 4usize..12,
        skew_ps in 0u64..10_000,
        words in 20u64..80,
    ) {
        let mut b = SimBuilder::new();
        let mut spec = StariSpec::new(SimDuration::ns(10), SimDuration::ns(1), depth);
        spec.skew = SimDuration::ps(skew_ps);
        let link = build_stari_link(&mut b, spec, words);
        let mut sim = b.build();
        sim.run_for(SimDuration::ns(10 * (words + 60))).unwrap();
        let stats = link.stats.borrow();
        prop_assert_eq!(stats.pops.len() as u64, words);
        prop_assert!(stats.in_order());
    }
}
