//! Pausible clocking (Yun & Dooply \[9\], Muttersbach et al. \[10\]).
//!
//! An arbiter sits *inside* the ring oscillator and mutually excludes the
//! next rising clock edge against a pending asynchronous request. This is
//! the classic **nondeterministic** GALS clock: when the request arrives
//! close to the decision point, which side wins depends on analog detail —
//! modelled here as a seeded coin flip inside a metastability window. It
//! serves as a baseline against which synchro-tokens' determinism is
//! demonstrated.

use st_sim::prelude::*;

/// Timer tags.
const TAG_PHASE: u64 = 0;
const TAG_RETRY: u64 = 1;

/// A pausible ring-oscillator clock generator.
///
/// While `pause_req` is high at a would-be rising edge, the edge is
/// delayed until the request is released. Requests arriving within
/// [`PausibleClockSpec::metastability_window`] of the decision instant are
/// arbitrated by the kernel RNG, and the loser additionally pays
/// [`PausibleClockSpec::resolution_delay`] — the modelled cost of a
/// metastable arbiter settling.
#[derive(Debug)]
pub struct PausibleClock {
    spec: PausibleClockSpec,
    clk: BitSignal,
    pause_req: BitSignal,
    /// Wall-clock instant of the most recent `pause_req` change; used to
    /// detect arrivals inside the metastability window.
    last_req_change: SimTime,
    paused: bool,
    edges: u64,
    pauses: u64,
    metastable_events: u64,
}

/// Static parameters of a [`PausibleClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PausibleClockSpec {
    /// Half of the nominal clock period.
    pub half_period: SimDuration,
    /// Width of the window around the decision instant within which
    /// arbitration is modelled as random.
    pub metastability_window: SimDuration,
    /// Extra settling delay paid when the arbiter goes metastable.
    pub resolution_delay: SimDuration,
}

impl PausibleClockSpec {
    /// A spec from the full clock period with a window of 1 % of the half
    /// period and a resolution delay of 10 %.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn from_period(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "clock period must be non-zero");
        let half = period / 2;
        PausibleClockSpec {
            half_period: half,
            metastability_window: (half / 100).max(SimDuration::fs(1)),
            resolution_delay: half / 10,
        }
    }
}

impl PausibleClock {
    /// Creates the clock; `pause_req` high requests a pause before the
    /// next rising edge.
    pub fn new(spec: PausibleClockSpec, clk: BitSignal, pause_req: BitSignal) -> Self {
        PausibleClock {
            spec,
            clk,
            pause_req,
            last_req_change: SimTime::ZERO,
            paused: false,
            edges: 0,
            pauses: 0,
            metastable_events: 0,
        }
    }

    /// Rising edges produced so far.
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Pauses taken so far.
    pub fn pauses(&self) -> u64 {
        self.pauses
    }

    /// Number of decisions that fell inside the metastability window.
    pub fn metastable_events(&self) -> u64 {
        self.metastable_events
    }

    fn rise(&mut self, ctx: &mut Ctx<'_>, extra: SimDuration) {
        ctx.drive_bit(self.clk, Bit::One, extra);
        self.edges += 1;
        ctx.set_timer(extra + self.spec.half_period, TAG_PHASE);
    }

    fn decide(&mut self, ctx: &mut Ctx<'_>) {
        let req = ctx.bit(self.pause_req).is_one();
        let near =
            ctx.now().saturating_since(self.last_req_change) < self.spec.metastability_window;
        let grant_pause = if near {
            // Metastable arbitration: the coin decides, and the resolution
            // delay is paid either way.
            self.metastable_events += 1;
            use rand::Rng;
            ctx.rng().gen::<bool>()
        } else {
            req
        };
        let extra = if near {
            self.spec.resolution_delay
        } else {
            SimDuration::ZERO
        };
        if grant_pause {
            self.paused = true;
            self.pauses += 1;
        } else {
            self.rise(ctx, extra);
        }
    }
}

impl Component for PausibleClock {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                ctx.drive_bit(self.clk, Bit::Zero, SimDuration::ZERO);
                ctx.set_timer(self.spec.half_period, TAG_PHASE);
            }
            Wake::Timer(TAG_PHASE) => {
                if self.paused {
                    return;
                }
                if ctx.bit(self.clk).is_one() {
                    ctx.drive_bit(self.clk, Bit::Zero, SimDuration::ZERO);
                    ctx.set_timer(self.spec.half_period, TAG_PHASE);
                } else {
                    self.decide(ctx);
                }
            }
            Wake::Timer(TAG_RETRY) if self.paused && !ctx.bit(self.pause_req).is_one() => {
                self.paused = false;
                self.rise(ctx, SimDuration::ZERO);
            }
            Wake::Signal(sig) if sig == self.pause_req.id() => {
                self.last_req_change = ctx.now();
                if self.paused && ctx.bit(self.pause_req).is_zero() {
                    // Release: resume after the arbiter hand-back delay.
                    ctx.set_timer(self.spec.resolution_delay, TAG_RETRY);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness(seed: u64) -> (Simulator, BitSignal, BitSignal, Handle<PausibleClock>) {
        let mut b = SimBuilder::new().with_seed(seed);
        let clk = b.add_bit_signal("clk");
        let req = b.add_bit_signal_init("pause", Bit::Zero);
        let spec = PausibleClockSpec::from_period(SimDuration::ns(10));
        let h = b.add_component("pclk", PausibleClock::new(spec, clk, req));
        b.watch(h.id(), req.id());
        (b.build(), clk, req, h)
    }

    #[test]
    fn free_runs_without_requests() {
        let (mut sim, _, _, h) = harness(1);
        sim.run_for(SimDuration::ns(100)).unwrap();
        assert_eq!(sim.get(h).edges(), 10);
        assert_eq!(sim.get(h).pauses(), 0);
    }

    #[test]
    fn pauses_while_request_held() {
        let (mut sim, _, req, h) = harness(1);
        // Request well before the edge at 15ns, release at 40ns.
        sim.drive(req.id(), Value::from(true), SimDuration::ns(11));
        sim.drive(req.id(), Value::from(false), SimDuration::ns(40));
        sim.run_for(SimDuration::ns(100)).unwrap();
        let c = sim.get(h);
        assert_eq!(c.pauses(), 1);
        assert_eq!(c.metastable_events(), 0);
        // Edge at 5 happened; 15/25/35 suppressed; resume at ~40.5.
        assert!(c.edges() >= 6 && c.edges() <= 8, "edges = {}", c.edges());
    }

    #[test]
    fn near_coincident_request_is_arbitrated_by_seed() {
        // Drive the request to land exactly at a decision instant (t=15ns)
        // and check that different seeds can produce different outcomes.
        let outcome = |seed: u64| {
            let (mut sim, _, req, h) = harness(seed);
            sim.drive(req.id(), Value::from(true), SimDuration::ns(15));
            sim.drive(req.id(), Value::from(false), SimDuration::ns(30));
            sim.run_for(SimDuration::ns(60)).unwrap();
            (sim.get(h).metastable_events(), sim.get(h).edges())
        };
        let results: Vec<(u64, u64)> = (0..16).map(outcome).collect();
        assert!(results.iter().all(|(m, _)| *m >= 1), "window must trigger");
        let edge_counts: std::collections::BTreeSet<u64> =
            results.iter().map(|(_, e)| *e).collect();
        assert!(
            edge_counts.len() > 1,
            "metastable arbitration should depend on the seed: {results:?}"
        );
    }

    #[test]
    fn same_seed_is_reproducible() {
        let run = |seed| {
            let (mut sim, clk, req, _) = harness(seed);
            let mut b_trace = Vec::new();
            sim.drive(req.id(), Value::from(true), SimDuration::ns(15));
            sim.drive(req.id(), Value::from(false), SimDuration::ns(22));
            sim.run_for(SimDuration::ns(200)).unwrap();
            b_trace.push(sim.bit(clk));
            b_trace
        };
        assert_eq!(run(7), run(7));
    }
}
