//! The escapement-style stoppable clock (Chapiro \[11\]).
//!
//! A ring oscillator whose enable interrupts the ring instead of gating its
//! output: when `clken` is low at the instant a rising edge would be
//! produced, the oscillator parks with the clock low (a *synchronous* stop
//! — the final cycle completes cleanly). A rising `clken` restarts the
//! oscillator *asynchronously* after a small restart delay, producing a
//! full high phase with no runt pulses. This is the clock at the heart of
//! every synchro-tokens wrapper.

use st_sim::prelude::*;

/// Timer tag used for oscillator phase boundaries.
const TAG_PHASE: u64 = 0;

/// A stoppable ring-oscillator clock generator.
///
/// # Protocol
///
/// * The clock starts **low** and produces its first rising edge one half
///   period after time zero (if enabled).
/// * Falling edges always complete; `clken` is sampled only at would-be
///   rising edges (synchronous stop).
/// * While parked, a `0 → 1` transition of `clken` produces a rising edge
///   after [`StoppableClockSpec::restart_delay`] (asynchronous restart).
/// * The half period is multiplied by `divider + 1` where `divider` is the
///   current value of the optional frequency-control word (the paper's
///   "digitally controlled" ring oscillator); the control is sampled at
///   each phase boundary, so frequency changes are glitch-free.
///
/// # Examples
///
/// See the crate-level documentation for a complete example.
#[derive(Debug)]
pub struct StoppableClock {
    spec: StoppableClockSpec,
    clk: BitSignal,
    clken: BitSignal,
    freq_ctl: Option<WordSignal>,
    parked: bool,
    /// Statistics: rising edges produced.
    edges: u64,
    /// Statistics: number of synchronous stops taken.
    stops: u64,
}

/// Static parameters of a [`StoppableClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoppableClockSpec {
    /// Half of the nominal clock period (the ring's one-way delay).
    pub half_period: SimDuration,
    /// Delay from an asynchronous restart (`clken` rising while parked) to
    /// the produced rising edge.
    pub restart_delay: SimDuration,
}

impl StoppableClockSpec {
    /// A spec with the given full period and a restart delay of one tenth
    /// of the half period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or not divisible by 2 femtoseconds.
    pub fn from_period(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "clock period must be non-zero");
        let half = period / 2;
        assert!(!half.is_zero(), "clock period too small");
        StoppableClockSpec {
            half_period: half,
            restart_delay: half / 10,
        }
    }
}

impl StoppableClock {
    /// Creates the clock. `clken` high (or `X`, treated as enabled before
    /// reset completes) lets it free-run; `freq_ctl`, when given, scales
    /// the half period by `value + 1`.
    pub fn new(spec: StoppableClockSpec, clk: BitSignal, clken: BitSignal) -> Self {
        StoppableClock {
            spec,
            clk,
            clken,
            freq_ctl: None,
            parked: false,
            edges: 0,
            stops: 0,
        }
    }

    /// Adds a digital frequency-control input (clock-divider semantics).
    pub fn with_freq_ctl(mut self, ctl: WordSignal) -> Self {
        self.freq_ctl = Some(ctl);
        self
    }

    /// The clock output signal.
    pub fn clk(&self) -> BitSignal {
        self.clk
    }

    /// Rising edges produced so far.
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Synchronous stops taken so far.
    pub fn stops(&self) -> u64 {
        self.stops
    }

    /// True if the oscillator is currently parked (stopped).
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// Captures the oscillator's dynamic state for checkpointing: the
    /// parked flag plus edge/stop statistics. Phase timing lives in the
    /// kernel's timer events, which the kernel snapshot carries.
    pub fn snapshot(&self) -> (bool, u64, u64) {
        (self.parked, self.edges, self.stops)
    }

    /// Restores state captured by [`StoppableClock::snapshot`].
    pub fn restore(&mut self, parked: bool, edges: u64, stops: u64) {
        self.parked = parked;
        self.edges = edges;
        self.stops = stops;
    }

    fn half(&self, ctx: &Ctx<'_>) -> SimDuration {
        let mult = self.freq_ctl.and_then(|c| ctx.word(c)).map_or(1, |v| v + 1);
        self.spec.half_period * mult
    }

    fn enabled(&self, ctx: &Ctx<'_>) -> bool {
        // X is treated as enabled so that a design without explicit reset
        // logic starts clocking; the wrapper drives clken from Start.
        !ctx.bit(self.clken).is_zero()
    }
}

impl Component for StoppableClock {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                ctx.drive_bit(self.clk, Bit::Zero, SimDuration::ZERO);
                let half = self.half(ctx);
                ctx.set_timer(half, TAG_PHASE);
            }
            Wake::Timer(TAG_PHASE) => {
                if self.parked {
                    // A stale phase timer can fire if the clock was parked
                    // after the timer was set; restarting re-arms timers.
                    return;
                }
                let high = ctx.bit(self.clk).is_one();
                if high {
                    // Falling edges always complete.
                    ctx.drive_bit(self.clk, Bit::Zero, SimDuration::ZERO);
                    let half = self.half(ctx);
                    ctx.set_timer(half, TAG_PHASE);
                } else if self.enabled(ctx) {
                    ctx.drive_bit(self.clk, Bit::One, SimDuration::ZERO);
                    self.edges += 1;
                    let half = self.half(ctx);
                    ctx.set_timer(half, TAG_PHASE);
                } else {
                    // Synchronous stop: park with the clock low.
                    self.parked = true;
                    self.stops += 1;
                }
            }
            Wake::Signal(sig)
                if sig == self.clken.id() && self.parked && ctx.bit(self.clken).is_one() =>
            {
                // Asynchronous restart: full high phase, no runt pulse.
                self.parked = false;
                ctx.drive_bit(self.clk, Bit::One, self.spec.restart_delay);
                self.edges += 1;
                let half = self.half(ctx);
                ctx.set_timer(self.spec.restart_delay + half, TAG_PHASE);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Harness {
        sim: Simulator,
        clk: BitSignal,
        clken: BitSignal,
        clock: Handle<StoppableClock>,
    }

    fn build(period_ns: u64) -> Harness {
        let mut b = SimBuilder::new();
        let clk = b.add_bit_signal("clk");
        let clken = b.add_bit_signal_init("clken", Bit::One);
        b.trace(clk.id());
        let spec = StoppableClockSpec::from_period(SimDuration::ns(period_ns));
        let clock = b.add_component("clock", StoppableClock::new(spec, clk, clken));
        b.watch(clock.id(), clken.id());
        Harness {
            sim: b.build(),
            clk,
            clken,
            clock,
        }
    }

    #[test]
    fn free_runs_when_enabled() {
        let mut h = build(10);
        h.sim.run_for(SimDuration::ns(101)).unwrap();
        // Rising edges at 5, 15, ..., 95 -> 10 edges.
        assert_eq!(h.sim.get(h.clock).edges(), 10);
        assert_eq!(h.sim.get(h.clock).stops(), 0);
    }

    #[test]
    fn stops_synchronously_when_disabled() {
        let mut h = build(10);
        // Disable just after the second rising edge (t=15ns).
        h.sim
            .drive(h.clken.id(), Value::from(false), SimDuration::ns(16));
        h.sim.run_for(SimDuration::ns(200)).unwrap();
        // Edges at 5, 15; the would-be edge at 25 is suppressed.
        assert_eq!(h.sim.get(h.clock).edges(), 2);
        assert_eq!(h.sim.get(h.clock).stops(), 1);
        assert!(h.sim.get(h.clock).is_parked());
        assert_eq!(h.sim.bit(h.clk), Bit::Zero, "parks low");
    }

    #[test]
    fn restarts_asynchronously() {
        let mut h = build(10);
        h.sim
            .drive(h.clken.id(), Value::from(false), SimDuration::ns(16));
        h.sim
            .drive(h.clken.id(), Value::from(true), SimDuration::ns(103));
        h.sim.run_for(SimDuration::ns(200)).unwrap();
        let clock = h.sim.get(h.clock);
        assert!(!clock.is_parked());
        // Restart edge at 103 + 0.5 = 103.5ns, then every 10ns.
        let edges: Vec<SimTime> = h
            .sim
            .trace()
            .changes(h.clk.id())
            .filter(|(_, v)| *v == Value::from(true))
            .map(|(t, _)| t)
            .collect();
        assert_eq!(edges[0], SimTime::ZERO + SimDuration::ns(5));
        assert_eq!(edges[1], SimTime::ZERO + SimDuration::ns(15));
        assert_eq!(
            edges[2],
            SimTime::ZERO + SimDuration::ns(103) + SimDuration::ps(500)
        );
        // Full high phase after restart: falling edge half a period later.
        let first_fall_after_restart = h
            .sim
            .trace()
            .changes(h.clk.id())
            .find(|(t, v)| *t > edges[2] && *v == Value::from(false))
            .unwrap()
            .0;
        assert_eq!(first_fall_after_restart, edges[2] + SimDuration::ns(5));
    }

    #[test]
    fn no_runt_pulses_anywhere() {
        let mut h = build(10);
        // Abuse clken with rapid toggling.
        for i in 0..20 {
            let v = i % 2 == 0;
            h.sim
                .drive(h.clken.id(), Value::from(v), SimDuration::ns(7 * i + 3));
        }
        h.sim.run_for(SimDuration::ns(400)).unwrap();
        // Every high phase must last exactly one half period (5ns).
        let changes: Vec<(SimTime, Value)> = h.sim.trace().changes(h.clk.id()).collect();
        let mut rise_at = None;
        for (t, v) in changes {
            match v {
                Value::Bit(Bit::One) => rise_at = Some(t),
                Value::Bit(Bit::Zero) => {
                    if let Some(r) = rise_at.take() {
                        assert_eq!(t.since(r), SimDuration::ns(5), "high phase must be full");
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn frequency_control_scales_period() {
        let mut b = SimBuilder::new();
        let clk = b.add_bit_signal("clk");
        let clken = b.add_bit_signal_init("clken", Bit::One);
        let ctl = b.add_word_signal_init("freq", 1); // divide by 2
        let spec = StoppableClockSpec::from_period(SimDuration::ns(10));
        let clock = b.add_component(
            "clock",
            StoppableClock::new(spec, clk, clken).with_freq_ctl(ctl),
        );
        b.watch(clock.id(), clken.id());
        let mut sim = b.build();
        sim.run_for(SimDuration::ns(101)).unwrap();
        // Effective period 20ns: rising edges at 10, 30, 50, 70, 90.
        assert_eq!(sim.get(clock).edges(), 5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        let _ = StoppableClockSpec::from_period(SimDuration::ZERO);
    }
}
