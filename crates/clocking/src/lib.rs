//! # st-clocking — local clock generation for GALS synchronous blocks
//!
//! Clock generators used by the synchro-tokens reproduction:
//!
//! * [`StoppableClock`] — the escapement organization of Chapiro \[11\]:
//!   a ring oscillator whose enable interrupts the ring, giving a
//!   synchronous stop and an asynchronous restart with no runt pulses.
//!   This is the clock inside every synchro-tokens wrapper.
//! * [`PausibleClock`] — the arbiter-in-the-ring clock of Yun & Dooply
//!   \[9\]; **nondeterministic** by construction (used as a baseline).
//! * [`FreeClock`] — a plain oscillator for bypass mode and testers.
//! * [`ClockDivider`] — digital frequency division.
//! * [`CycleCounter`] — utility to count local clock cycles.
//!
//! The distinction between the first two is the heart of the paper: a
//! stoppable clock *scheduled by counters* never decides between an
//! asynchronous event and a clock edge, so the local cycle at which each
//! input is sensed is deterministic; a pausible clock arbitrates, so it
//! is not.
//!
//! ## Example
//!
//! ```
//! use st_sim::prelude::*;
//! use st_clocking::{StoppableClock, StoppableClockSpec};
//!
//! # fn main() -> Result<(), st_sim::SimError> {
//! let mut b = SimBuilder::new();
//! let clk = b.add_bit_signal("clk");
//! let clken = b.add_bit_signal_init("clken", Bit::One);
//! let spec = StoppableClockSpec::from_period(SimDuration::ns(10));
//! let clock = b.add_component("clock", StoppableClock::new(spec, clk, clken));
//! b.watch(clock.id(), clken.id());
//! let mut sim = b.build();
//! // Stop the clock after 22 ns, restart it at 60 ns.
//! sim.drive(clken.id(), Value::from(false), SimDuration::ns(22));
//! sim.drive(clken.id(), Value::from(true), SimDuration::ns(60));
//! sim.run_for(SimDuration::ns(100))?;
//! assert_eq!(sim.get(clock).stops(), 1);
//! # Ok(())
//! # }
//! ```

pub mod divider;
pub mod free;
pub mod pausible;
pub mod stoppable;

pub use divider::ClockDivider;
pub use free::{CycleCounter, FreeClock};
pub use pausible::{PausibleClock, PausibleClockSpec};
pub use stoppable::{StoppableClock, StoppableClockSpec};
