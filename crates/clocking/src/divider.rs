//! A synchronous clock divider.
//!
//! The paper's stoppable clock is "a ring oscillator whose frequency can
//! be digitally controlled with either variable delay inverters or a clock
//! divider circuit on its output"; [`StoppableClock`](crate::StoppableClock)
//! models the former, this component the latter.

use st_sim::prelude::*;

/// Divides a clock's frequency by `2 * ratio` (toggle-counter divider).
///
/// The output toggles on every `ratio`-th rising edge of the input, so a
/// `ratio` of 1 halves the frequency.
#[derive(Debug)]
pub struct ClockDivider {
    clk_in: BitSignal,
    clk_out: BitSignal,
    ratio: u32,
    prev: Bit,
    pending: u32,
}

impl ClockDivider {
    /// Creates a divider (remember to `watch` `clk_in`).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is zero.
    pub fn new(clk_in: BitSignal, clk_out: BitSignal, ratio: u32) -> Self {
        assert!(ratio > 0, "division ratio must be non-zero");
        ClockDivider {
            clk_in,
            clk_out,
            ratio,
            prev: Bit::X,
            pending: 0,
        }
    }
}

impl Component for ClockDivider {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                ctx.drive_bit(self.clk_out, Bit::Zero, SimDuration::ZERO);
            }
            Wake::Signal(_) => {
                let v = ctx.bit(self.clk_in);
                if !self.prev.is_one() && v.is_one() {
                    self.pending += 1;
                    if self.pending == self.ratio {
                        self.pending = 0;
                        ctx.toggle_bit(self.clk_out, SimDuration::ZERO);
                    }
                }
                self.prev = v;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::free::{CycleCounter, FreeClock};

    fn count_divided(ratio: u32, span_ns: u64) -> u64 {
        let mut b = SimBuilder::new();
        let clk = b.add_bit_signal("clk");
        let div = b.add_bit_signal("div");
        b.add_component("clk", FreeClock::new(clk, SimDuration::ns(10)));
        let d = b.add_component("div", ClockDivider::new(clk, div, ratio));
        b.watch(d.id(), clk.id());
        let ctr = b.add_component("ctr", CycleCounter::new(div));
        b.watch(ctr.id(), div.id());
        let mut sim = b.build();
        sim.run_for(SimDuration::ns(span_ns)).unwrap();
        sim.get(ctr).count()
    }

    #[test]
    fn divide_by_two() {
        // 100 input edges, output toggles each edge -> 50 rising edges.
        assert_eq!(count_divided(1, 1000), 50);
    }

    #[test]
    fn divide_by_eight() {
        // 100 input edges -> 25 output toggles -> 13 rising edges.
        assert_eq!(count_divided(4, 1000), 13);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_ratio_rejected() {
        let mut b = SimBuilder::new();
        let clk = b.add_bit_signal("clk");
        let div = b.add_bit_signal("div");
        let _ = ClockDivider::new(clk, div, 0);
    }
}
