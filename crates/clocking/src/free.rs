//! Free-running clock and utility clocked components.

use st_sim::prelude::*;

/// A free-running clock generator (never pauses).
///
/// Used for the nondeterministic *bypass* baseline (where wrapper control
/// is defeated and clocks always run) and as a tester clock (TCK) source.
#[derive(Debug)]
pub struct FreeClock {
    clk: BitSignal,
    half_period: SimDuration,
    /// Initial phase offset before the first rising edge.
    phase: SimDuration,
    edges: u64,
}

impl FreeClock {
    /// A clock with the given full `period`, first rising edge at
    /// `period / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(clk: BitSignal, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "clock period must be non-zero");
        FreeClock {
            clk,
            half_period: period / 2,
            phase: SimDuration::ZERO,
            edges: 0,
        }
    }

    /// Offsets the first rising edge by an extra `phase`.
    pub fn with_phase(mut self, phase: SimDuration) -> Self {
        self.phase = phase;
        self
    }

    /// Rising edges produced so far.
    pub fn edges(&self) -> u64 {
        self.edges
    }
}

impl Component for FreeClock {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                ctx.drive_bit(self.clk, Bit::Zero, SimDuration::ZERO);
                ctx.set_timer(self.phase + self.half_period, 0);
            }
            Wake::Timer(_) => {
                let rising = !ctx.bit(self.clk).is_one();
                if rising {
                    self.edges += 1;
                }
                ctx.toggle_bit(self.clk, SimDuration::ZERO);
                ctx.set_timer(self.half_period, 0);
            }
            Wake::Signal(_) => {}
        }
    }
}

/// Counts rising edges of a clock signal; readable after the run.
///
/// # Examples
///
/// ```
/// use st_sim::prelude::*;
/// use st_clocking::{CycleCounter, FreeClock};
///
/// # fn main() -> Result<(), st_sim::SimError> {
/// let mut b = SimBuilder::new();
/// let clk = b.add_bit_signal("clk");
/// b.add_component("clk", FreeClock::new(clk, SimDuration::ns(10)));
/// let ctr = b.add_component("ctr", CycleCounter::new(clk));
/// b.watch(ctr.id(), clk.id());
/// let mut sim = b.build();
/// sim.run_for(SimDuration::ns(100))?;
/// assert_eq!(sim.get(ctr).count(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CycleCounter {
    clk: BitSignal,
    prev: Bit,
    count: u64,
}

impl CycleCounter {
    /// Creates a counter watching `clk` (remember to `watch` it).
    pub fn new(clk: BitSignal) -> Self {
        CycleCounter {
            clk,
            prev: Bit::X,
            count: 0,
        }
    }

    /// Rising edges observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Component for CycleCounter {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        if let Wake::Signal(_) = cause {
            let v = ctx.bit(self.clk);
            if !self.prev.is_one() && v.is_one() {
                self.count += 1;
            }
            self.prev = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_offsets_first_edge() {
        let mut b = SimBuilder::new();
        let clk = b.add_bit_signal("clk");
        b.trace(clk.id());
        b.add_component(
            "clk",
            FreeClock::new(clk, SimDuration::ns(10)).with_phase(SimDuration::ns(3)),
        );
        let mut sim = b.build();
        sim.run_for(SimDuration::ns(50)).unwrap();
        let first_rise = sim
            .trace()
            .changes(clk.id())
            .find(|(_, v)| *v == Value::from(true))
            .unwrap()
            .0;
        assert_eq!(first_rise, SimTime::ZERO + SimDuration::ns(8));
    }

    #[test]
    fn two_clocks_with_different_periods_drift() {
        let mut b = SimBuilder::new();
        let a = b.add_bit_signal("a");
        let c = b.add_bit_signal("c");
        let fa = b.add_component("a", FreeClock::new(a, SimDuration::ns(10)));
        let fc = b.add_component("c", FreeClock::new(c, SimDuration::ns(7)));
        let mut sim = b.build();
        sim.run_for(SimDuration::us(1)).unwrap();
        assert_eq!(sim.get(fa).edges(), 100);
        assert_eq!(sim.get(fc).edges(), 1000 / 7 + 1); // edges at 3.5 + 7k
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        let mut b = SimBuilder::new();
        let clk = b.add_bit_signal("clk");
        let _ = FreeClock::new(clk, SimDuration::ZERO);
    }
}
