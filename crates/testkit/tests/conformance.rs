//! Conformance coverage for the test-access layer: the 1149.1 TAP
//! controller against an independently transcribed transition table,
//! property round-trips through the self-timed scan chains and the TAP
//! port's registers, and BIST compactor properties.

use proptest::prelude::*;
use st_testkit::bist::{Lfsr, Misr};
use st_testkit::registers::Instruction;
use st_testkit::scan::SelfTimedScanChain;
use st_testkit::tap::{TapFsm, TapState};
use st_testkit::TapPort;

/// IEEE 1149.1-2013 Figure 6-1, transcribed by row: for each state,
/// `(state, next when TMS=0, next when TMS=1)`. Deliberately a second,
/// independent encoding of the diagram — the implementation must match
/// it transition for transition.
const IEEE_1149_1_TABLE: [(TapState, TapState, TapState); 16] = {
    use TapState::*;
    [
        (TestLogicReset, RunTestIdle, TestLogicReset),
        (RunTestIdle, RunTestIdle, SelectDrScan),
        (SelectDrScan, CaptureDr, SelectIrScan),
        (CaptureDr, ShiftDr, Exit1Dr),
        (ShiftDr, ShiftDr, Exit1Dr),
        (Exit1Dr, PauseDr, UpdateDr),
        (PauseDr, PauseDr, Exit2Dr),
        (Exit2Dr, ShiftDr, UpdateDr),
        (UpdateDr, RunTestIdle, SelectDrScan),
        (SelectIrScan, CaptureIr, TestLogicReset),
        (CaptureIr, ShiftIr, Exit1Ir),
        (ShiftIr, ShiftIr, Exit1Ir),
        (Exit1Ir, PauseIr, UpdateIr),
        (PauseIr, PauseIr, Exit2Ir),
        (Exit2Ir, ShiftIr, UpdateIr),
        (UpdateIr, RunTestIdle, SelectDrScan),
    ]
};

/// Registers the suite's witness declaration for the lint: the TAP
/// controller conforms to the transcribed IEEE 1149.1 state diagram.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-JTAG-009"]);
}

#[test]
fn tap_transition_table_conforms_to_ieee_1149_1() {
    assert_eq!(IEEE_1149_1_TABLE.len(), TapState::ALL.len());
    for (state, on_zero, on_one) in IEEE_1149_1_TABLE {
        assert_eq!(state.next(false), on_zero, "{state} with TMS=0");
        assert_eq!(state.next(true), on_one, "{state} with TMS=1");
    }
}

proptest! {
    /// A `TapFsm` trajectory is exactly a fold of the reference table.
    #[test]
    fn tap_fsm_trajectory_matches_the_table(
        tms in prop::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut fsm = TapFsm::new();
        let mut reference = TapState::TestLogicReset;
        for (i, &bit) in tms.iter().enumerate() {
            let got = fsm.clock(bit);
            reference = reference.next(bit);
            prop_assert_eq!(got, reference, "edge {}", i);
        }
        prop_assert_eq!(fsm.transitions(), tms.len() as u64);
    }

    /// Elastic scan chains have unit latency at the TCK boundary: every
    /// bit re-emerges exactly one shift later, for any chain geometry.
    #[test]
    fn scan_chain_stream_round_trips(
        payload in 1usize..24,
        slack in 1usize..6,
        bits in prop::collection::vec(any::<bool>(), 1..48),
    ) {
        let mut chain = SelfTimedScanChain::new(payload, slack);
        let mut out = Vec::new();
        for &b in &bits {
            out.push(chain.tck_shift(b));
        }
        out.push(chain.tck_shift(false));
        prop_assert_eq!(out[0], None, "pipeline fills on the first shift");
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(out[i + 1], Some(b), "bit {} lost or reordered", i);
        }
    }

    /// Capture → serial read-out and serial write-in → update are exact
    /// inverses of each other, for any payload width and slack.
    #[test]
    fn scan_capture_and_update_round_trip(
        slack in 0usize..5,
        state in prop::collection::vec(any::<bool>(), 1..32),
    ) {
        // Capture, then drain: bits pop tail-first (reverse order).
        let mut chain = SelfTimedScanChain::new(state.len(), slack);
        chain.capture(&state);
        let mut out = Vec::new();
        for _ in 0..state.len() {
            chain.settle();
            out.push(chain.pop().expect("captured bit at tail"));
        }
        out.reverse();
        prop_assert_eq!(&out, &state);

        // Shift in (highest-index first, like TDI), then update.
        let mut chain = SelfTimedScanChain::new(state.len(), slack);
        for b in state.iter().rev() {
            chain.settle();
            prop_assert!(chain.push(*b), "head must free up after settle");
        }
        prop_assert_eq!(chain.update(), state);
    }

    /// A full TAP transaction writes exactly the scanned value into the
    /// selected data register, and a preloaded capture reads back intact.
    #[test]
    fn tap_port_register_round_trips(value in 0u64..0x1_0000, capture in any::<u64>()) {
        let mut tap = TapPort::new(0xC0DE_0001);
        tap.reset();
        tap.transact(Instruction::HoldReg, value);
        prop_assert_eq!(
            tap.registers().register(Instruction::HoldReg).update_value(),
            value & 0xFFFF
        );
        tap.registers()
            .register_mut(Instruction::ScanState)
            .set_capture(capture);
        let out = tap.transact(Instruction::ScanState, 0);
        prop_assert_eq!(out, capture);
        // The session leaves the port parked where the next flow expects.
        prop_assert_eq!(tap.state(), TapState::RunTestIdle);
    }

    /// MISR compaction is order-sensitive: swapping two distinct
    /// responses changes the signature. Arrival *order* is part of what
    /// the signature certifies — which is why BIST across GALS
    /// boundaries needs the determinism invariant at all.
    #[test]
    fn misr_signature_is_order_sensitive(a in any::<u64>(), b in any::<u64>()) {
        let distinct = (a & 0xFFFF_FFFF) != (b & 0xFFFF_FFFF);
        let sig = |first: u64, second: u64| {
            let mut m = Misr::new32();
            m.absorb(first);
            m.absorb(second);
            m.signature()
        };
        if distinct {
            prop_assert_ne!(sig(a, b), sig(b, a));
        }
    }
}

#[test]
fn maximal_lfsr_visits_every_nonzero_state() {
    // Full-period check plus the stronger set property on a narrow LFSR
    // (x^5 + x^3 + 1): all 31 non-zero states appear before repeating.
    assert_eq!(Lfsr::new_maximal16(0xACE1).period(), 65_535);
    let mut lfsr = Lfsr::new(1, 0b0_0101, 5);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..31 {
        seen.insert(lfsr.state());
        lfsr.step();
    }
    assert_eq!(seen.len(), 31, "a maximal 5-bit LFSR has period 31");
    assert!(!seen.contains(&0));
}
