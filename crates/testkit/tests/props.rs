//! Property-based tests: TAP controller against its defining 1149.1
//! properties, register shifting, and the scan-chain micropipeline.

use proptest::prelude::*;
use st_testkit::{DataRegister, Instruction, SelfTimedScanChain, TapFsm, TapPort, TapState};

proptest! {
    /// From any reachable state, 5 consecutive TMS=1 edges reach
    /// Test-Logic-Reset (the standard's escape hatch), and the
    /// controller is closed over its 16 states.
    #[test]
    fn tap_reset_property_from_random_walks(walk in proptest::collection::vec(any::<bool>(), 0..64)) {
        let mut fsm = TapFsm::new();
        for tms in &walk {
            let s = fsm.clock(*tms);
            prop_assert!(TapState::ALL.contains(&s));
        }
        for _ in 0..5 {
            fsm.clock(true);
        }
        prop_assert_eq!(fsm.state(), TapState::TestLogicReset);
    }

    /// Any instruction scanned in becomes the effective instruction and
    /// the port returns to Run-Test/Idle.
    #[test]
    fn ir_scan_total(instrs in proptest::collection::vec(
        prop::sample::select(vec![
            Instruction::Bypass,
            Instruction::IdCode,
            Instruction::SamplePreload,
            Instruction::Extest,
            Instruction::HoldReg,
            Instruction::RecycleReg,
            Instruction::FreqReg,
            Instruction::ScanState,
            Instruction::TokenHold,
        ]),
        1..12,
    )) {
        let mut tap = TapPort::new(1);
        tap.reset();
        for i in &instrs {
            tap.scan_ir(*i);
            prop_assert_eq!(tap.instruction(), *i);
            prop_assert_eq!(tap.state(), TapState::RunTestIdle);
        }
        prop_assert_eq!(tap.update_log(), instrs.as_slice());
    }

    /// A DR write/read round trip recovers the written value for every
    /// register and value.
    #[test]
    fn dr_write_then_read_round_trip(value in any::<u64>()) {
        let mut tap = TapPort::new(1);
        tap.reset();
        for instr in [
            Instruction::HoldReg,
            Instruction::RecycleReg,
            Instruction::FreqReg,
            Instruction::ScanState,
        ] {
            tap.transact(instr, value);
            let width = {
                let mut probe = TapPort::new(1);
                probe.reset();
                probe.scan_ir(instr);
                probe.registers().register(instr).width()
            };
            let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
            let written = tap.registers().register(instr).update_value();
            prop_assert_eq!(written, value & mask, "{}", instr);
            // Read it back by capturing the update value.
            tap.registers().register_mut(instr).set_capture(written);
            let read = tap.transact(instr, 0);
            prop_assert_eq!(read, written);
        }
    }

    /// Register shifting is a rotation: shifting a register's own
    /// capture back in via width shifts leaves the update equal to the
    /// capture.
    #[test]
    fn register_self_rotation(width in 1u32..64, value in any::<u64>()) {
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let mut r = DataRegister::new(width);
        r.set_capture(value & mask);
        r.capture();
        for i in 0..width {
            let tdo = r.shift_bit((value >> i) & 1 == 1);
            prop_assert_eq!(tdo, (value >> i) & 1 == 1);
        }
        r.update();
        prop_assert_eq!(r.update_value(), value & mask);
    }

    /// The scan chain is a lossless, order-preserving pipe for any bit
    /// stream (reference: a simple shift by one).
    #[test]
    fn scan_chain_is_lossless(
        payload in 1usize..12,
        slack in 0usize..4,
        bits in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut chain = SelfTimedScanChain::new(payload, slack);
        let mut out = Vec::new();
        for b in &bits {
            out.push(chain.tck_shift(*b));
        }
        // Drain what's left.
        for _ in 0..(payload + slack + 1) {
            out.push(chain.tck_shift(false));
        }
        let received: Vec<bool> = out.into_iter().flatten().collect();
        prop_assert!(received.len() >= bits.len());
        prop_assert_eq!(&received[..bits.len()], bits.as_slice());
    }

    /// Capture → serial unload reproduces the captured state reversed
    /// (tail-first), for any payload.
    #[test]
    fn scan_capture_unload(state in proptest::collection::vec(any::<bool>(), 1..24)) {
        let mut chain = SelfTimedScanChain::new(state.len(), 2);
        chain.capture(&state);
        let mut out = Vec::new();
        for _ in 0..state.len() {
            chain.settle();
            out.push(chain.pop().expect("settled bit"));
        }
        let expect: Vec<bool> = state.iter().rev().copied().collect();
        prop_assert_eq!(out, expect);
    }
}
