//! The differential chaos suite: the paper's determinism invariant as an
//! adversarial, budget-bounded oracle over both simulation backends.
//!
//! The full run sweeps ≥ 500 `(seed × fault-class)` configurations; set
//! `ST_CHAOS_CONFIGS` to a smaller value for smoke runs (ci.sh does).

use st_sim::time::SimDuration;
use st_testkit::chaos::{chaos_jobs, configs_from_env, run_chaos_campaign};
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::{e1_spec, pingpong_spec, MixerLogic};
use synchro_tokens::{classify, run_with_plan, BackendKind, ChaosOutcome, FaultClass, FaultPlan};

const BUDGET: SimDuration = SimDuration::us(2000);

/// Registers the suite's witness declaration for the lint: the chaos
/// campaign exercises bit-exact fault replay, the determinism invariant
/// under attack, and thread-count-invariant campaign merging.
#[test]
fn conformance_witnesses() {
    st_conformance::witnesses!(["ST-CHAOS-006", "ST-DET-001", "ST-CAMP-005"]);
}

/// The headline acceptance test: a full differential campaign over the
/// ping-pong workload. Every configuration must satisfy its class
/// oracle (analog → byte-identical traces; protocol/state → classified,
/// never a hang) *and* both backends must agree on every verdict.
#[test]
fn differential_chaos_campaign_holds_the_oracle() {
    let spec = pingpong_spec();
    let configs = configs_from_env(501);
    let mut jobs = chaos_jobs((configs as u64).div_ceil(3));
    jobs.truncate(configs);
    let report = run_chaos_campaign(&spec, &jobs, 60, BUDGET, default_threads());

    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "{} oracle violations, first: {}",
        violations.len(),
        violations[0]
    );

    // The compiled fast path must really be the engine under attack —
    // a silent fallback would make half the differential vacuous.
    for run in &report.runs {
        assert_eq!(
            run.outcomes[1].0,
            BackendKind::Compiled,
            "seed {} {} fell back to the event kernel",
            run.job.seed,
            run.job.class
        );
        assert_eq!(run.outcomes[0].0, BackendKind::Event);
    }

    // Sanity on the sweep itself: an adversarial campaign that never
    // provokes anything is not attacking. Only meaningful at full size.
    if configs >= 300 {
        assert!(report.count("trace-identical") > 0);
        assert!(
            report.count("divergence") > 0,
            "no protocol/state fault bit"
        );
        assert!(
            report.count("deadlock") > 0,
            "no token loss ever deadlocked"
        );
    }
}

/// Satellite check: a single explicit attack on the compiled backend,
/// asserted via `backend_kind()` — not `backend()`, which reports the
/// *requested* engine even after a fallback.
#[test]
fn compiled_backend_is_genuinely_under_attack() {
    let spec = pingpong_spec();
    let plan = FaultPlan::generate(FaultClass::Protocol, &spec, 0xA77AC);
    assert!(!plan.protocol.is_empty());

    let mut golden = SystemBuilder::new(spec.clone())
        .unwrap()
        .with_logic(SbId(0), MixerLogic::new(1))
        .with_logic(SbId(1), MixerLogic::new(2))
        .with_trace_limit(80)
        .build_backend(Backend::Compiled);
    assert_eq!(golden.backend_kind(), BackendKind::Compiled);
    assert_eq!(
        golden.run_until_cycles(80, BUDGET).unwrap(),
        RunOutcome::Reached
    );
    let golden_traces: Vec<SbIoTrace> = (0..2).map(|i| golden.io_trace(SbId(i)).clone()).collect();

    let mut attacked = SystemBuilder::new(spec)
        .unwrap()
        .with_logic(SbId(0), MixerLogic::new(1))
        .with_logic(SbId(1), MixerLogic::new(2))
        .with_trace_limit(80)
        .with_fault_plan(plan.clone())
        .build_backend(Backend::Compiled);
    assert_eq!(
        attacked.backend_kind(),
        BackendKind::Compiled,
        "the attacked system must run on the compiled engine"
    );
    let outcome = run_with_plan(&mut attacked, &plan, 80, BUDGET).unwrap();
    let verdict = classify(&golden_traces, &attacked, &outcome);
    // Whatever the plan did, the verdict is a diagnosis — the enum has
    // no "silently hung" arm, and the budget bounds the run.
    assert!(
        matches!(
            verdict,
            ChaosOutcome::TraceIdentical
                | ChaosOutcome::Divergence { .. }
                | ChaosOutcome::Deadlock { .. }
        ),
        "unclassified: {verdict:?}"
    );
}

/// The §5 three-SB platform survives the analog layer: jitter, drift and
/// wire-delay perturbation leave its traces byte-identical on both
/// backends — the invariant on the paper's own validation system.
#[test]
fn e1_platform_is_invariant_under_analog_attack() {
    let spec = e1_spec();
    let jobs: Vec<_> = chaos_jobs(8)
        .into_iter()
        .filter(|j| j.class == FaultClass::Analog)
        .collect();
    let report = run_chaos_campaign(&spec, &jobs, 60, BUDGET, default_threads());
    assert!(report.violations().is_empty(), "{:?}", report.violations());
    for run in &report.runs {
        for (kind, outcome) in &run.outcomes {
            assert_eq!(
                *outcome,
                ChaosOutcome::TraceIdentical,
                "seed {} on {kind:?}",
                run.job.seed
            );
        }
    }
}
