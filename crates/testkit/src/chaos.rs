//! Chaos campaigns: differential fault-injection sweeps over both
//! simulation backends.
//!
//! The determinism claim this reproduction exists to check — every SB's
//! I/O sequence is a pure function of its local cycle count — is only
//! believable if it survives an *adversary*. This module drives the
//! fault layers of [`synchro_tokens::faults`] as a campaign: for each
//! `(seed, fault class)` configuration it generates a replayable
//! [`FaultPlan`], runs it on **both** backends (event kernel and
//! compiled engine), and holds each run to the class's oracle:
//!
//! | class    | injected faults                         | oracle |
//! |----------|-----------------------------------------|--------|
//! | analog   | clock jitter/drift, wire-delay jitter   | I/O traces **byte-identical** to the unfaulted golden |
//! | protocol | token loss/dup/delay, req/ack drops, FIFO stalls | a *classified* outcome — trace-identical, divergence with first cycle, or deadlock naming the stalled SBs; never a hang |
//! | state    | SEU bit flips in node counters/latches  | same as protocol |
//!
//! Every run is budget-bounded, so "never a hang" is enforced
//! mechanically: a run that fails to terminate classifies as
//! [`ChaosOutcome::Timeout`], which the protocol/state oracle accepts as
//! a diagnosis but the analog oracle reports as a violation. On top of
//! the per-class oracle, every plan's [`ChaosOutcome`] must be
//! *identical across backends* — fault handling is part of the
//! behavioural contract the compiled engine mirrors.
//!
//! Jobs fan out over [`run_jobs`](synchro_tokens::run_jobs), so a
//! campaign report is byte-identical at any thread count.
//! `ST_CHAOS_CONFIGS` caps the configuration count for smoke runs (see
//! [`configs_from_env`]).

use st_sim::time::SimDuration;
use std::fmt;
use std::time::Instant;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::MixerLogic;
use synchro_tokens::{classify, run_with_plan, BackendKind, CampaignStats, ChaosOutcome};
use synchro_tokens::{run_jobs_hooked, FaultClass, FaultPlan, RunHooks};

/// One chaos configuration: a plan seed and the fault class to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosJob {
    /// Seed for both the plan generation and the workload salt.
    pub seed: u64,
    /// Which fault layer to attack.
    pub class: FaultClass,
}

/// The full cross-product of `seeds` seeds with all three fault classes,
/// in canonical (seed-major) order.
pub fn chaos_jobs(seeds: u64) -> Vec<ChaosJob> {
    let classes = [FaultClass::Analog, FaultClass::Protocol, FaultClass::State];
    (0..seeds)
        .flat_map(|seed| classes.map(|class| ChaosJob { seed, class }))
        .collect()
}

/// Resolves the campaign size: `ST_CHAOS_CONFIGS` (a positive integer)
/// overrides `full` — CI smoke runs set a small cap, the default run
/// keeps the full sweep.
pub fn configs_from_env(full: usize) -> usize {
    match std::env::var("ST_CHAOS_CONFIGS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => full,
        },
        Err(_) => full,
    }
}

/// The verdict of one configuration: the generated plan, the classified
/// outcome per backend, and any oracle violations.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// The configuration that produced this run.
    pub job: ChaosJob,
    /// The plan that was injected (replayable from `job` alone).
    pub plan: FaultPlan,
    /// `(engine actually used, classified outcome)` per attacked
    /// backend, in `[event, compiled]` order.
    pub outcomes: Vec<(BackendKind, ChaosOutcome)>,
    /// Oracle violations — empty on a conforming run.
    pub violations: Vec<String>,
}

/// A completed chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Every configuration's verdict, in job order.
    pub runs: Vec<ChaosRun>,
    /// Wall-clock / throughput counters (machine-dependent; excluded
    /// from any byte-compared artefact).
    pub stats: CampaignStats,
}

impl ChaosReport {
    /// All violations across the campaign, prefixed with their job.
    pub fn violations(&self) -> Vec<String> {
        self.runs
            .iter()
            .flat_map(|r| {
                r.violations
                    .iter()
                    .map(move |v| format!("seed {} {}: {v}", r.job.seed, r.job.class))
            })
            .collect()
    }

    /// How many runs classified under `label` on the event backend
    /// (labels: `trace-identical`, `divergence`, `deadlock`, `timeout`).
    pub fn count(&self, label: &str) -> usize {
        self.runs
            .iter()
            .filter(|r| r.outcomes.first().is_some_and(|(_, o)| o.label() == label))
            .count()
    }

    /// Plans exercised per wall-clock second.
    pub fn plans_per_second(&self) -> f64 {
        if self.stats.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.runs.len() as f64 / self.stats.wall_seconds
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos campaign: {} configs, {} violations ({:.1} plans/s)",
            self.runs.len(),
            self.violations().len(),
            self.plans_per_second()
        )?;
        for label in ["trace-identical", "divergence", "deadlock", "timeout"] {
            writeln!(f, "  {label:>16}: {}", self.count(label))?;
        }
        Ok(())
    }
}

/// Builds the campaign workload over `spec`: mixers on every SB, salted
/// by `seed` so different seeds produce different golden traces (the
/// builder seed alone only feeds bypass-mode metastability, which
/// synchro-tokens mode never samples).
fn chaos_builder(spec: &SystemSpec, seed: u64, trace_cycles: usize) -> SystemBuilder {
    let n = spec.sbs.len();
    let mut b = SystemBuilder::new(spec.clone())
        .expect("chaos spec is valid")
        .with_seed(seed)
        .with_trace_limit(trace_cycles);
    for i in 0..n {
        let salt = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1000 * i as u64);
        b = b.with_logic(SbId(i), MixerLogic::new(salt));
    }
    b
}

/// Runs a differential chaos campaign over `spec`: every job generates
/// its plan, replays it on the event *and* compiled backends, and checks
/// the per-class oracle plus cross-backend outcome agreement. Golden
/// traces come from an unfaulted event-backend run of the same seed
/// (the backends are byte-identical unfaulted, so one golden serves
/// both).
///
/// The campaign itself is deterministic: the report's runs are a pure
/// function of `(spec, jobs, cycles, budget)` at any `threads` count.
pub fn run_chaos_campaign(
    spec: &SystemSpec,
    jobs: &[ChaosJob],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
) -> ChaosReport {
    match run_chaos_campaign_hooked(spec, jobs, cycles, budget, threads, RunHooks::default()) {
        Ok(report) => report,
        Err(_) => unreachable!("no cancel token was installed"),
    }
}

/// Jobified [`run_chaos_campaign`]: the same differential campaign with
/// [`RunHooks`] for cooperative cancellation (checked between
/// configurations) and progress reporting, so chaos sweeps can run as
/// cancellable service jobs under `st-serve`'s worker pool.
///
/// # Errors
///
/// Returns [`Cancelled`](synchro_tokens::Cancelled) carrying the
/// completed [`ChaosRun`]s (in job order) when the token trips before
/// the last configuration is claimed.
pub fn run_chaos_campaign_hooked(
    spec: &SystemSpec,
    jobs: &[ChaosJob],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
    hooks: RunHooks<'_>,
) -> Result<ChaosReport, synchro_tokens::Cancelled<ChaosRun>> {
    let started = Instant::now();
    let runs = run_jobs_hooked(jobs, threads, hooks, |_, job| {
        run_one(spec, *job, cycles, budget)
    })?;
    let stats = CampaignStats {
        // Golden + two attacked backends per configuration.
        runs: runs.len() * 3,
        threads: effective_threads(threads),
        wall_seconds: started.elapsed().as_secs_f64(),
        events_fired: 0,
        wakes: 0,
    };
    Ok(ChaosReport { runs, stats })
}

/// Batched [`run_chaos_campaign`]: the same oracles, restructured
/// around the [`BatchedSystem`] lane engine so campaign cost is
/// dominated by the attacked runs alone.
///
/// The scalar campaign runs *three* simulations per configuration (an
/// unfaulted event-backend golden plus attacked event and compiled
/// runs), re-deriving the golden for every fault class that shares a
/// seed. This entry point instead:
///
/// 1. runs **one batched golden** over the distinct seeds — all seeds
///    share one spec, so they lower into a single lockstep group and
///    the event-loop cost is paid once for the whole campaign;
/// 2. cross-checks lane 0 of the batched golden against a scalar
///    event-backend run (a per-campaign spot oracle on top of the
///    differential proptests);
/// 3. fans the attacked runs out over [`run_jobs_hooked`] on the
///    **compiled** backend only — fault plans perturb event timing, so
///    attacked runs never share a group and the cheapest exact scalar
///    engine is optimal.
///
/// Each [`ChaosRun`] therefore carries a single `(backend, outcome)`
/// entry and the cross-*backend* agreement oracle is delegated to the
/// scalar campaign (CI runs both). The analog-invariant oracle — the
/// paper's actual claim — is enforced here exactly as in the scalar
/// campaign. The report is byte-identical at any thread count and any
/// `ST_BATCH` value.
pub fn run_chaos_campaign_batched(
    spec: &SystemSpec,
    jobs: &[ChaosJob],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
) -> ChaosReport {
    match run_chaos_campaign_batched_hooked(
        spec,
        jobs,
        cycles,
        budget,
        threads,
        RunHooks::default(),
    ) {
        Ok(report) => report,
        Err(_) => unreachable!("no cancel token was installed"),
    }
}

/// Jobified [`run_chaos_campaign_batched`] with [`RunHooks`] for
/// cooperative cancellation and progress reporting (checked between
/// attacked configurations; the batched golden prologue is not
/// cancellable but costs roughly one configuration).
///
/// # Errors
///
/// Returns [`Cancelled`](synchro_tokens::Cancelled) carrying the
/// completed [`ChaosRun`]s (in job order) when the token trips before
/// the last configuration is claimed.
pub fn run_chaos_campaign_batched_hooked(
    spec: &SystemSpec,
    jobs: &[ChaosJob],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
    hooks: RunHooks<'_>,
) -> Result<ChaosReport, synchro_tokens::Cancelled<ChaosRun>> {
    let started = Instant::now();
    let mut seeds: Vec<u64> = Vec::new();
    for j in jobs {
        if !seeds.contains(&j.seed) {
            seeds.push(j.seed);
        }
    }

    // One golden per distinct seed, all lanes in (ideally) one batch.
    let builders: Vec<SystemBuilder> = seeds
        .iter()
        .map(|&s| chaos_builder(spec, s, cycles as usize))
        .collect();
    let goldens: Vec<(RunOutcome, Vec<SbIoTrace>)> = match BatchedSystem::build(builders) {
        Ok(mut batch) => {
            let outcomes = batch.run_until_cycles(cycles, budget);
            outcomes
                .into_iter()
                .enumerate()
                .map(|(lane, outcome)| {
                    let traces = (0..spec.sbs.len())
                        .map(|i| batch.io_trace(lane, SbId(i)).clone())
                        .collect();
                    (outcome, traces)
                })
                .collect()
        }
        // Outside the batched envelope: scalar goldens, one per seed.
        Err(builders) => builders
            .into_iter()
            .map(|b| {
                let mut sys = b.build_backend(Backend::Compiled);
                let outcome = sys
                    .run_until_cycles(cycles, budget)
                    .unwrap_or(synchro_tokens::system::RunOutcome::TimedOut);
                let traces = (0..spec.sbs.len())
                    .map(|i| sys.io_trace(SbId(i)).clone())
                    .collect();
                (outcome, traces)
            })
            .collect(),
    };

    // Spot oracle: the batched golden's first lane must be
    // byte-identical to a scalar event-backend run of the same seed.
    let golden_crosscheck: Option<String> = seeds.first().and_then(|&seed| {
        let mut sys = chaos_builder(spec, seed, cycles as usize).build_backend(Backend::Event);
        let _ = sys.run_until_cycles(cycles, budget);
        (0..spec.sbs.len()).find_map(|i| {
            (sys.io_trace(SbId(i)).digest() != goldens[0].1[i].digest()).then(|| {
                format!("batched golden diverges from the event backend on SB {i} (seed {seed})")
            })
        })
    });

    let runs = run_jobs_hooked(jobs, threads, hooks, |_, job| {
        let job = *job;
        let plan = FaultPlan::generate(job.class, spec, job.seed);
        let mut violations = Vec::new();
        let gi = seeds
            .iter()
            .position(|&s| s == job.seed)
            .expect("every job seed was indexed");
        let (golden_outcome, golden) = &goldens[gi];
        if *golden_outcome != synchro_tokens::system::RunOutcome::Reached {
            violations.push(format!(
                "golden run did not reach {cycles} cycles: {golden_outcome:?}"
            ));
        }
        if gi == 0 {
            if let Some(v) = &golden_crosscheck {
                violations.push(v.clone());
            }
        }

        let mut sys = chaos_builder(spec, job.seed, cycles as usize)
            .with_fault_plan(plan.clone())
            .build_backend(Backend::Compiled);
        let outcome = match run_with_plan(&mut sys, &plan, cycles, budget) {
            Ok(o) => o,
            Err(e) => {
                violations.push(format!("compiled backend kernel error: {e}"));
                synchro_tokens::system::RunOutcome::TimedOut
            }
        };
        let outcomes = vec![(sys.backend_kind(), classify(golden, &sys, &outcome))];

        // Oracle 1 — the invariant proper: analog-class faults must
        // leave every trace byte-identical.
        if plan.is_analog_only() {
            for (kind, outcome) in &outcomes {
                if *outcome != ChaosOutcome::TraceIdentical {
                    violations.push(format!(
                        "analog fault broke the invariant on {kind:?}: {outcome}"
                    ));
                }
            }
        }

        ChaosRun {
            job,
            plan,
            outcomes,
            violations,
        }
    })?;
    let stats = CampaignStats {
        // One attacked backend per configuration, plus the goldens
        // (one per distinct seed, batched) and one cross-check run.
        runs: runs.len() + seeds.len() + usize::from(!seeds.is_empty()),
        threads: effective_threads(threads),
        wall_seconds: started.elapsed().as_secs_f64(),
        events_fired: 0,
        wakes: 0,
    };
    Ok(ChaosReport { runs, stats })
}

fn run_one(spec: &SystemSpec, job: ChaosJob, cycles: u64, budget: SimDuration) -> ChaosRun {
    let plan = FaultPlan::generate(job.class, spec, job.seed);
    let mut violations = Vec::new();

    let mut golden_sys =
        chaos_builder(spec, job.seed, cycles as usize).build_backend(Backend::Event);
    match golden_sys.run_until_cycles(cycles, budget) {
        Ok(RunOutcome::Reached) => {}
        other => violations.push(format!(
            "golden run did not reach {cycles} cycles: {other:?}"
        )),
    }
    let golden: Vec<SbIoTrace> = (0..spec.sbs.len())
        .map(|i| golden_sys.io_trace(SbId(i)).clone())
        .collect();

    let mut outcomes = Vec::new();
    for backend in [Backend::Event, Backend::Compiled] {
        let mut sys = chaos_builder(spec, job.seed, cycles as usize)
            .with_fault_plan(plan.clone())
            .build_backend(backend);
        let outcome = match run_with_plan(&mut sys, &plan, cycles, budget) {
            Ok(o) => o,
            Err(e) => {
                violations.push(format!("{backend:?} backend kernel error: {e}"));
                RunOutcome::TimedOut
            }
        };
        outcomes.push((sys.backend_kind(), classify(&golden, &sys, &outcome)));
    }

    // Oracle 1 — the invariant proper: analog-class faults must leave
    // every trace byte-identical on every backend.
    if plan.is_analog_only() {
        for (kind, outcome) in &outcomes {
            if *outcome != ChaosOutcome::TraceIdentical {
                violations.push(format!(
                    "analog fault broke the invariant on {kind:?}: {outcome}"
                ));
            }
        }
    }

    // Oracle 2 — differential: both backends must reach the same
    // classification for the same plan.
    if outcomes.len() == 2 && outcomes[0].1 != outcomes[1].1 {
        violations.push(format!(
            "backends disagree: {:?}={} vs {:?}={}",
            outcomes[0].0, outcomes[0].1, outcomes[1].0, outcomes[1].1
        ));
    }

    ChaosRun {
        job,
        plan,
        outcomes,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchro_tokens::scenarios::pingpong_spec;

    #[test]
    fn job_grid_is_canonical() {
        let jobs = chaos_jobs(3);
        assert_eq!(jobs.len(), 9);
        assert_eq!(jobs[0].class, FaultClass::Analog);
        assert_eq!(jobs[1].class, FaultClass::Protocol);
        assert_eq!(jobs[3].seed, 1);
    }

    #[test]
    fn campaign_report_is_thread_count_invariant() {
        let spec = pingpong_spec();
        let jobs = chaos_jobs(2);
        let run = |threads| {
            run_chaos_campaign(&spec, &jobs, 60, SimDuration::us(2000), threads)
                .runs
                .iter()
                .map(|r| (r.job, r.outcomes.clone(), r.violations.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn batched_campaign_agrees_with_the_scalar_campaign() {
        let spec = pingpong_spec();
        let jobs = chaos_jobs(2);
        let scalar = run_chaos_campaign(&spec, &jobs, 60, SimDuration::us(2000), 1);
        let batched = run_chaos_campaign_batched(&spec, &jobs, 60, SimDuration::us(2000), 1);
        assert_eq!(scalar.runs.len(), batched.runs.len());
        for (s, b) in scalar.runs.iter().zip(&batched.runs) {
            assert_eq!(s.job, b.job);
            assert_eq!(s.plan, b.plan, "seed {}", s.job.seed);
            // The batched campaign attacks the compiled backend only;
            // its classification must match the scalar campaign's
            // compiled entry (index 1 of [event, compiled]).
            assert_eq!(b.outcomes.len(), 1);
            assert_eq!(
                s.outcomes[1].1, b.outcomes[0].1,
                "outcome of seed {} {:?}",
                s.job.seed, s.job.class
            );
            assert_eq!(s.violations, b.violations, "seed {}", s.job.seed);
        }
    }

    #[test]
    fn batched_campaign_is_thread_count_invariant() {
        let spec = pingpong_spec();
        let jobs = chaos_jobs(2);
        let run = |threads| {
            run_chaos_campaign_batched(&spec, &jobs, 60, SimDuration::us(2000), threads)
                .runs
                .iter()
                .map(|r| (r.job, r.outcomes.clone(), r.violations.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn configs_env_cap_parses() {
        // Pure-function check only; env mutation lives in the campaign
        // crate's dedicated test to avoid cross-test races.
        assert_eq!(configs_from_env(500), 500);
    }
}
