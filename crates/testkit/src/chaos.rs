//! Chaos campaigns: differential fault-injection sweeps over both
//! simulation backends.
//!
//! The determinism claim this reproduction exists to check — every SB's
//! I/O sequence is a pure function of its local cycle count — is only
//! believable if it survives an *adversary*. This module drives the
//! fault layers of [`synchro_tokens::faults`] as a campaign: for each
//! `(seed, fault class)` configuration it generates a replayable
//! [`FaultPlan`], runs it on **both** backends (event kernel and
//! compiled engine), and holds each run to the class's oracle:
//!
//! | class    | injected faults                         | oracle |
//! |----------|-----------------------------------------|--------|
//! | analog   | clock jitter/drift, wire-delay jitter   | I/O traces **byte-identical** to the unfaulted golden |
//! | protocol | token loss/dup/delay, req/ack drops, FIFO stalls | a *classified* outcome — trace-identical, divergence with first cycle, or deadlock naming the stalled SBs; never a hang |
//! | state    | SEU bit flips in node counters/latches  | same as protocol |
//!
//! Every run is budget-bounded, so "never a hang" is enforced
//! mechanically: a run that fails to terminate classifies as
//! [`ChaosOutcome::Timeout`], which the protocol/state oracle accepts as
//! a diagnosis but the analog oracle reports as a violation. On top of
//! the per-class oracle, every plan's [`ChaosOutcome`] must be
//! *identical across backends* — fault handling is part of the
//! behavioural contract the compiled engine mirrors.
//!
//! Jobs fan out over [`run_jobs`](synchro_tokens::run_jobs), so a
//! campaign report is byte-identical at any thread count.
//! `ST_CHAOS_CONFIGS` caps the configuration count for smoke runs (see
//! [`configs_from_env`]).

use st_sim::time::{SimDuration, SimTime};
use std::fmt;
use std::time::Instant;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::MixerLogic;
use synchro_tokens::{
    classify, run_with_plan, run_with_plan_resumed, BackendKind, CampaignStats, ChaosOutcome,
};
use synchro_tokens::{
    run_jobs_hooked, DecodedCheckpoint, FaultClass, FaultPlan, RunHooks, SeuFault, SeuTarget,
};

/// One chaos configuration: a plan seed and the fault class to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosJob {
    /// Seed for both the plan generation and the workload salt.
    pub seed: u64,
    /// Which fault layer to attack.
    pub class: FaultClass,
}

/// The full cross-product of `seeds` seeds with all three fault classes,
/// in canonical (seed-major) order.
pub fn chaos_jobs(seeds: u64) -> Vec<ChaosJob> {
    let classes = [FaultClass::Analog, FaultClass::Protocol, FaultClass::State];
    (0..seeds)
        .flat_map(|seed| classes.map(|class| ChaosJob { seed, class }))
        .collect()
}

/// Resolves the campaign size: `ST_CHAOS_CONFIGS` (a positive integer)
/// overrides `full` — CI smoke runs set a small cap, the default run
/// keeps the full sweep.
pub fn configs_from_env(full: usize) -> usize {
    match std::env::var("ST_CHAOS_CONFIGS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => full,
        },
        Err(_) => full,
    }
}

/// The verdict of one configuration: the generated plan, the classified
/// outcome per backend, and any oracle violations.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// The configuration that produced this run.
    pub job: ChaosJob,
    /// The plan that was injected (replayable from `job` alone).
    pub plan: FaultPlan,
    /// `(engine actually used, classified outcome)` per attacked
    /// backend, in `[event, compiled]` order.
    pub outcomes: Vec<(BackendKind, ChaosOutcome)>,
    /// Oracle violations — empty on a conforming run.
    pub violations: Vec<String>,
}

/// A completed chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Every configuration's verdict, in job order.
    pub runs: Vec<ChaosRun>,
    /// Wall-clock / throughput counters (machine-dependent; excluded
    /// from any byte-compared artefact).
    pub stats: CampaignStats,
}

impl ChaosReport {
    /// All violations across the campaign, prefixed with their job.
    pub fn violations(&self) -> Vec<String> {
        self.runs
            .iter()
            .flat_map(|r| {
                r.violations
                    .iter()
                    .map(move |v| format!("seed {} {}: {v}", r.job.seed, r.job.class))
            })
            .collect()
    }

    /// How many runs classified under `label` on the event backend
    /// (labels: `trace-identical`, `divergence`, `deadlock`, `timeout`).
    pub fn count(&self, label: &str) -> usize {
        self.runs
            .iter()
            .filter(|r| r.outcomes.first().is_some_and(|(_, o)| o.label() == label))
            .count()
    }

    /// Plans exercised per wall-clock second.
    pub fn plans_per_second(&self) -> f64 {
        if self.stats.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.runs.len() as f64 / self.stats.wall_seconds
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos campaign: {} configs, {} violations ({:.1} plans/s)",
            self.runs.len(),
            self.violations().len(),
            self.plans_per_second()
        )?;
        for label in ["trace-identical", "divergence", "deadlock", "timeout"] {
            writeln!(f, "  {label:>16}: {}", self.count(label))?;
        }
        Ok(())
    }
}

/// Builds the campaign workload over `spec`: mixers on every SB, salted
/// by `seed` so different seeds produce different golden traces (the
/// builder seed alone only feeds bypass-mode metastability, which
/// synchro-tokens mode never samples).
fn chaos_builder(spec: &SystemSpec, seed: u64, trace_cycles: usize) -> SystemBuilder {
    let n = spec.sbs.len();
    let mut b = SystemBuilder::new(spec.clone())
        .expect("chaos spec is valid")
        .with_seed(seed)
        .with_trace_limit(trace_cycles);
    for i in 0..n {
        let salt = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1000 * i as u64);
        b = b.with_logic(SbId(i), MixerLogic::new(salt));
    }
    b
}

/// Runs a differential chaos campaign over `spec`: every job generates
/// its plan, replays it on the event *and* compiled backends, and checks
/// the per-class oracle plus cross-backend outcome agreement. Golden
/// traces come from an unfaulted event-backend run of the same seed
/// (the backends are byte-identical unfaulted, so one golden serves
/// both).
///
/// The campaign itself is deterministic: the report's runs are a pure
/// function of `(spec, jobs, cycles, budget)` at any `threads` count.
pub fn run_chaos_campaign(
    spec: &SystemSpec,
    jobs: &[ChaosJob],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
) -> ChaosReport {
    match run_chaos_campaign_hooked(spec, jobs, cycles, budget, threads, RunHooks::default()) {
        Ok(report) => report,
        Err(_) => unreachable!("no cancel token was installed"),
    }
}

/// Jobified [`run_chaos_campaign`]: the same differential campaign with
/// [`RunHooks`] for cooperative cancellation (checked between
/// configurations) and progress reporting, so chaos sweeps can run as
/// cancellable service jobs under `st-serve`'s worker pool.
///
/// # Errors
///
/// Returns [`Cancelled`](synchro_tokens::Cancelled) carrying the
/// completed [`ChaosRun`]s (in job order) when the token trips before
/// the last configuration is claimed.
pub fn run_chaos_campaign_hooked(
    spec: &SystemSpec,
    jobs: &[ChaosJob],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
    hooks: RunHooks<'_>,
) -> Result<ChaosReport, synchro_tokens::Cancelled<ChaosRun>> {
    let started = Instant::now();
    let runs = run_jobs_hooked(jobs, threads, hooks, |_, job| {
        run_one(spec, *job, cycles, budget)
    })?;
    let stats = CampaignStats {
        // Golden + two attacked backends per configuration.
        runs: runs.len() * 3,
        threads: effective_threads(threads),
        wall_seconds: started.elapsed().as_secs_f64(),
        events_fired: 0,
        wakes: 0,
    };
    Ok(ChaosReport { runs, stats })
}

/// Batched [`run_chaos_campaign`]: the same oracles, restructured
/// around the [`BatchedSystem`] lane engine so campaign cost is
/// dominated by the attacked runs alone.
///
/// The scalar campaign runs *three* simulations per configuration (an
/// unfaulted event-backend golden plus attacked event and compiled
/// runs), re-deriving the golden for every fault class that shares a
/// seed. This entry point instead:
///
/// 1. runs **one batched golden** over the distinct seeds — all seeds
///    share one spec, so they lower into a single lockstep group and
///    the event-loop cost is paid once for the whole campaign;
/// 2. cross-checks lane 0 of the batched golden against a scalar
///    event-backend run (a per-campaign spot oracle on top of the
///    differential proptests);
/// 3. fans the attacked runs out over [`run_jobs_hooked`] on the
///    **compiled** backend only — fault plans perturb event timing, so
///    attacked runs never share a group and the cheapest exact scalar
///    engine is optimal.
///
/// Each [`ChaosRun`] therefore carries a single `(backend, outcome)`
/// entry and the cross-*backend* agreement oracle is delegated to the
/// scalar campaign (CI runs both). The analog-invariant oracle — the
/// paper's actual claim — is enforced here exactly as in the scalar
/// campaign. The report is byte-identical at any thread count and any
/// `ST_BATCH` value.
pub fn run_chaos_campaign_batched(
    spec: &SystemSpec,
    jobs: &[ChaosJob],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
) -> ChaosReport {
    match run_chaos_campaign_batched_hooked(
        spec,
        jobs,
        cycles,
        budget,
        threads,
        RunHooks::default(),
    ) {
        Ok(report) => report,
        Err(_) => unreachable!("no cancel token was installed"),
    }
}

/// Jobified [`run_chaos_campaign_batched`] with [`RunHooks`] for
/// cooperative cancellation and progress reporting (checked between
/// attacked configurations; the batched golden prologue is not
/// cancellable but costs roughly one configuration).
///
/// # Errors
///
/// Returns [`Cancelled`](synchro_tokens::Cancelled) carrying the
/// completed [`ChaosRun`]s (in job order) when the token trips before
/// the last configuration is claimed.
pub fn run_chaos_campaign_batched_hooked(
    spec: &SystemSpec,
    jobs: &[ChaosJob],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
    hooks: RunHooks<'_>,
) -> Result<ChaosReport, synchro_tokens::Cancelled<ChaosRun>> {
    let started = Instant::now();
    let mut seeds: Vec<u64> = Vec::new();
    for j in jobs {
        if !seeds.contains(&j.seed) {
            seeds.push(j.seed);
        }
    }

    // One golden per distinct seed, all lanes in (ideally) one batch.
    let builders: Vec<SystemBuilder> = seeds
        .iter()
        .map(|&s| chaos_builder(spec, s, cycles as usize))
        .collect();
    let goldens: Vec<(RunOutcome, Vec<SbIoTrace>)> = match BatchedSystem::build(builders) {
        Ok(mut batch) => {
            let outcomes = batch.run_until_cycles(cycles, budget);
            outcomes
                .into_iter()
                .enumerate()
                .map(|(lane, outcome)| {
                    let traces = (0..spec.sbs.len())
                        .map(|i| batch.io_trace(lane, SbId(i)).clone())
                        .collect();
                    (outcome, traces)
                })
                .collect()
        }
        // Outside the batched envelope: scalar goldens, one per seed.
        Err(builders) => builders
            .into_iter()
            .map(|b| {
                let mut sys = b.build_backend(Backend::Compiled);
                let outcome = sys
                    .run_until_cycles(cycles, budget)
                    .unwrap_or(synchro_tokens::system::RunOutcome::TimedOut);
                let traces = (0..spec.sbs.len())
                    .map(|i| sys.io_trace(SbId(i)).clone())
                    .collect();
                (outcome, traces)
            })
            .collect(),
    };

    // Spot oracle: the batched golden's first lane must be
    // byte-identical to a scalar event-backend run of the same seed.
    let golden_crosscheck: Option<String> = seeds.first().and_then(|&seed| {
        let mut sys = chaos_builder(spec, seed, cycles as usize).build_backend(Backend::Event);
        let _ = sys.run_until_cycles(cycles, budget);
        (0..spec.sbs.len()).find_map(|i| {
            (sys.io_trace(SbId(i)).digest() != goldens[0].1[i].digest()).then(|| {
                format!("batched golden diverges from the event backend on SB {i} (seed {seed})")
            })
        })
    });

    let runs = run_jobs_hooked(jobs, threads, hooks, |_, job| {
        let job = *job;
        let plan = FaultPlan::generate(job.class, spec, job.seed);
        let mut violations = Vec::new();
        let gi = seeds
            .iter()
            .position(|&s| s == job.seed)
            .expect("every job seed was indexed");
        let (golden_outcome, golden) = &goldens[gi];
        if *golden_outcome != synchro_tokens::system::RunOutcome::Reached {
            violations.push(format!(
                "golden run did not reach {cycles} cycles: {golden_outcome:?}"
            ));
        }
        if gi == 0 {
            if let Some(v) = &golden_crosscheck {
                violations.push(v.clone());
            }
        }

        let mut sys = chaos_builder(spec, job.seed, cycles as usize)
            .with_fault_plan(plan.clone())
            .build_backend(Backend::Compiled);
        let outcome = match run_with_plan(&mut sys, &plan, cycles, budget) {
            Ok(o) => o,
            Err(e) => {
                violations.push(format!("compiled backend kernel error: {e}"));
                synchro_tokens::system::RunOutcome::TimedOut
            }
        };
        let outcomes = vec![(sys.backend_kind(), classify(golden, &sys, &outcome))];

        // Oracle 1 — the invariant proper: analog-class faults must
        // leave every trace byte-identical.
        if plan.is_analog_only() {
            for (kind, outcome) in &outcomes {
                if *outcome != ChaosOutcome::TraceIdentical {
                    violations.push(format!(
                        "analog fault broke the invariant on {kind:?}: {outcome}"
                    ));
                }
            }
        }

        ChaosRun {
            job,
            plan,
            outcomes,
            violations,
        }
    })?;
    let stats = CampaignStats {
        // One attacked backend per configuration, plus the goldens
        // (one per distinct seed, batched) and one cross-check run.
        runs: runs.len() + seeds.len() + usize::from(!seeds.is_empty()),
        threads: effective_threads(threads),
        wall_seconds: started.elapsed().as_secs_f64(),
        events_fired: 0,
        wakes: 0,
    };
    Ok(ChaosReport { runs, stats })
}

fn run_one(spec: &SystemSpec, job: ChaosJob, cycles: u64, budget: SimDuration) -> ChaosRun {
    let plan = FaultPlan::generate(job.class, spec, job.seed);
    let mut violations = Vec::new();

    let mut golden_sys =
        chaos_builder(spec, job.seed, cycles as usize).build_backend(Backend::Event);
    match golden_sys.run_until_cycles(cycles, budget) {
        Ok(RunOutcome::Reached) => {}
        other => violations.push(format!(
            "golden run did not reach {cycles} cycles: {other:?}"
        )),
    }
    let golden: Vec<SbIoTrace> = (0..spec.sbs.len())
        .map(|i| golden_sys.io_trace(SbId(i)).clone())
        .collect();

    let mut outcomes = Vec::new();
    for backend in [Backend::Event, Backend::Compiled] {
        let mut sys = chaos_builder(spec, job.seed, cycles as usize)
            .with_fault_plan(plan.clone())
            .build_backend(backend);
        let outcome = match run_with_plan(&mut sys, &plan, cycles, budget) {
            Ok(o) => o,
            Err(e) => {
                violations.push(format!("{backend:?} backend kernel error: {e}"));
                RunOutcome::TimedOut
            }
        };
        outcomes.push((sys.backend_kind(), classify(&golden, &sys, &outcome)));
    }

    // Oracle 1 — the invariant proper: analog-class faults must leave
    // every trace byte-identical on every backend.
    if plan.is_analog_only() {
        for (kind, outcome) in &outcomes {
            if *outcome != ChaosOutcome::TraceIdentical {
                violations.push(format!(
                    "analog fault broke the invariant on {kind:?}: {outcome}"
                ));
            }
        }
    }

    // Oracle 2 — differential: both backends must reach the same
    // classification for the same plan.
    if outcomes.len() == 2 && outcomes[0].1 != outcomes[1].1 {
        violations.push(format!(
            "backends disagree: {:?}={} vs {:?}={}",
            outcomes[0].0, outcomes[0].1, outcomes[1].0, outcomes[1].1
        ));
    }

    ChaosRun {
        job,
        plan,
        outcomes,
        violations,
    }
}

// --- Prefix-fork SEU sweeps ----------------------------------------------

thread_local! {
    // One rewindable engine per sweep worker: forked variants restore
    // the shared prefix checkpoint into it in place instead of lowering
    // a fresh engine each time. Helper threads die with their sweep;
    // only the calling thread retains its engine (a few KiB) between
    // sweeps, where a changed configuration fails the restore's hash
    // check and the engine is rebuilt from the new blob.
    static FORK_ENGINE: std::cell::RefCell<Option<AnySystem>> =
        const { std::cell::RefCell::new(None) };
}

/// A deterministic grid of SEU-only plan variants over `spec`, all
/// first (and only) firing at local cycle `at_cycle`: variant `i`
/// strikes ring `i % rings` on alternating holder/peer sides, cycling
/// through hold-bit, recycle-bit and token-latch targets. Because every
/// variant shares one first-fire cycle, a prefix-fork sweep amortises a
/// single nominal prefix across the whole grid — the shape a chip-level
/// SEU susceptibility scan takes (one workload, many strike points).
pub fn seu_sweep_plans(spec: &SystemSpec, at_cycle: u64, count: usize) -> Vec<FaultPlan> {
    (0..count)
        .map(|i| {
            let ring_idx = i % spec.rings.len();
            let ring = &spec.rings[ring_idx];
            let rounds = i / spec.rings.len();
            let sb = if rounds.is_multiple_of(2) {
                ring.holder
            } else {
                ring.peer
            };
            let bit = (rounds as u32 / 2) % 3;
            let target = match i % 3 {
                0 => SeuTarget::HoldBit(bit),
                1 => SeuTarget::RecycleBit(bit),
                _ => SeuTarget::TokenLatch,
            };
            FaultPlan {
                seu: vec![SeuFault {
                    sb,
                    ring: RingId(ring_idx),
                    at_cycle,
                    target,
                }],
                ..FaultPlan::default()
            }
        })
        .collect()
}

/// One variant's verdict in a prefix-fork SEU sweep.
#[derive(Debug, Clone)]
pub struct SeuSweepRun {
    /// Position of this variant in the input plan list.
    pub index: usize,
    /// The injected plan.
    pub plan: FaultPlan,
    /// `(engine used, classified outcome)` — compiled backend.
    pub outcome: (BackendKind, ChaosOutcome),
    /// Whether this variant resumed from a shared prefix checkpoint
    /// (`false` means it fell back to a full straight run).
    pub forked: bool,
    /// Oracle violations — empty on a conforming run.
    pub violations: Vec<String>,
}

/// A completed prefix-fork SEU sweep.
#[derive(Debug, Clone)]
pub struct SeuSweepReport {
    /// Every variant's verdict, in plan order.
    pub runs: Vec<SeuSweepRun>,
    /// Distinct first-fire cycles that earned a shared prefix
    /// checkpoint (each cost one nominal prefix run).
    pub prefixes: usize,
    /// Wall-clock / throughput counters (machine-dependent; excluded
    /// from any byte-compared artefact).
    pub stats: CampaignStats,
}

impl SeuSweepReport {
    /// How many variants resumed from a shared prefix.
    pub fn forked(&self) -> usize {
        self.runs.iter().filter(|r| r.forked).count()
    }

    /// All violations across the sweep, prefixed with their variant.
    pub fn violations(&self) -> Vec<String> {
        self.runs
            .iter()
            .flat_map(|r| {
                r.violations
                    .iter()
                    .map(move |v| format!("variant {}: {v}", r.index))
            })
            .collect()
    }
}

/// Prefix-fork SEU sweep: runs every plan variant against one workload
/// `(spec, seed)`, sharing the fault-free prefix below each variant's
/// first strike cycle through engine checkpoints instead of recomputing
/// it per variant.
///
/// Determinism makes the fork *exact*, not approximate: an SEU-only
/// plan leaves the engine configuration untouched (the flips are
/// applied from outside by [`run_with_plan`]), so the nominal run's
/// state at the strike cycle **is** the variant's state — resuming a
/// checkpoint of it and continuing with
/// [`run_with_plan_resumed`] replays the exact call sequence
/// `run_with_plan` would have made, byte for byte. Per distinct
/// first-fire cycle `f` (with `f >= min_fork_cycle`), the sweep runs
/// one nominal prefix to `f`, checkpoints, and forks every variant
/// firing at `f` from that blob. Variants that are not SEU-only, fire
/// before `min_fork_cycle`, or whose prefix failed to reach `f` fall
/// back to a full straight run — the report is identical either way,
/// only the cost differs.
///
/// The sweep is deterministic: the report's runs are a pure function of
/// `(spec, seed, plans, cycles, budget, min_fork_cycle)` at any
/// `threads` count.
pub fn run_seu_sweep(
    spec: &SystemSpec,
    seed: u64,
    plans: &[FaultPlan],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
    min_fork_cycle: u64,
) -> SeuSweepReport {
    match run_seu_sweep_hooked(
        spec,
        seed,
        plans,
        cycles,
        budget,
        threads,
        min_fork_cycle,
        RunHooks::default(),
    ) {
        Ok(report) => report,
        Err(_) => unreachable!("no cancel token was installed"),
    }
}

/// Jobified [`run_seu_sweep`] with [`RunHooks`] for cooperative
/// cancellation and progress reporting (checked between variants; the
/// golden and prefix prologue is not cancellable).
///
/// # Errors
///
/// Returns [`Cancelled`](synchro_tokens::Cancelled) carrying the
/// completed [`SeuSweepRun`]s (in plan order) when the token trips
/// before the last variant is claimed.
#[allow(clippy::too_many_arguments)]
pub fn run_seu_sweep_hooked(
    spec: &SystemSpec,
    seed: u64,
    plans: &[FaultPlan],
    cycles: u64,
    budget: SimDuration,
    threads: usize,
    min_fork_cycle: u64,
    hooks: RunHooks<'_>,
) -> Result<SeuSweepReport, synchro_tokens::Cancelled<SeuSweepRun>> {
    let started = Instant::now();

    // Golden: the unfaulted workload, for outcome classification.
    let mut golden_sys =
        chaos_builder(spec, seed, cycles as usize).build_backend(Backend::Compiled);
    let golden_outcome = golden_sys
        .run_until_cycles(cycles, budget)
        .unwrap_or(RunOutcome::TimedOut);
    let golden: Vec<SbIoTrace> = (0..spec.sbs.len())
        .map(|i| golden_sys.io_trace(SbId(i)).clone())
        .collect();

    // The fork cycle a plan is eligible for, if any.
    let fork_cycle = |plan: &FaultPlan| -> Option<u64> {
        plan.seu_only_first_fire()
            .map(|f| f.min(cycles))
            .filter(|&f| f >= min_fork_cycle && f > 0)
    };

    // One shared nominal prefix checkpoint per distinct eligible
    // first-fire cycle. A prefix that fails to reach its cycle or a
    // configuration outside the checkpoint envelope simply yields no
    // entry — its variants fall back to straight runs.
    let mut fire_cycles: Vec<u64> = plans.iter().filter_map(&fork_cycle).collect();
    fire_cycles.sort_unstable();
    fire_cycles.dedup();
    let prefixes: Vec<(u64, DecodedCheckpoint)> = fire_cycles
        .into_iter()
        .filter_map(|f| {
            let mut sys =
                chaos_builder(spec, seed, cycles as usize).build_backend(Backend::Compiled);
            match sys.run_until_cycles(f, budget) {
                // Decode once here: every variant restores from the
                // decoded state instead of re-parsing the blob.
                Ok(RunOutcome::Reached) => sys
                    .checkpoint()
                    .ok()
                    .and_then(|c| c.decode().ok())
                    .map(|c| (f, c)),
                _ => None,
            }
        })
        .collect();

    let runs = run_jobs_hooked(plans, threads, hooks, |index, plan| {
        let mut violations = Vec::new();
        if golden_outcome != RunOutcome::Reached {
            violations.push(format!(
                "golden run did not reach {cycles} cycles: {golden_outcome:?}"
            ));
        }

        let straight = |violations: &mut Vec<String>| {
            let mut sys = chaos_builder(spec, seed, cycles as usize)
                .with_fault_plan(plan.clone())
                .build_backend(Backend::Compiled);
            let outcome = match run_with_plan(&mut sys, plan, cycles, budget) {
                Ok(o) => o,
                Err(e) => {
                    violations.push(format!("compiled backend kernel error: {e}"));
                    RunOutcome::TimedOut
                }
            };
            (sys.backend_kind(), classify(&golden, &sys, &outcome), false)
        };

        let shared = fork_cycle(plan).and_then(|f| {
            prefixes
                .iter()
                .find(|(pf, _)| *pf == f)
                .map(|(_, c)| (f, c))
        });
        let (kind, outcome, forked) = match shared {
            Some((f, ckpt)) => {
                // SEU-only ⇒ the variant's engine configuration is the
                // nominal one, so the nominal blob resumes directly.
                // Each worker keeps one engine and rewinds it in place
                // per variant; `restore_decoded` fully overwrites the
                // previous variant's state and is fail-closed on any
                // configuration mismatch, so reuse is exact.
                let fork_run = FORK_ENGINE.with(|cell| {
                    let mut slot = cell.borrow_mut();
                    let mut ready = slot
                        .as_mut()
                        .is_some_and(|sys| sys.restore_decoded(ckpt).is_ok());
                    if !ready {
                        match AnySystem::resume_decoded(
                            chaos_builder(spec, seed, cycles as usize),
                            ckpt,
                        ) {
                            Ok(sys) => {
                                *slot = Some(sys);
                                ready = true;
                            }
                            Err(_) => *slot = None,
                        }
                    }
                    if !ready {
                        return None;
                    }
                    let sys = slot.as_mut().expect("engine cached above");
                    // The straight run's deadline is `now + budget` at
                    // entry with `now == 0`; replay it exactly.
                    let outcome =
                        match run_with_plan_resumed(sys, plan, f, cycles, SimTime::ZERO + budget) {
                            Ok(o) => o,
                            Err(e) => {
                                violations.push(format!("compiled backend kernel error: {e}"));
                                RunOutcome::TimedOut
                            }
                        };
                    Some((sys.backend_kind(), classify(&golden, sys, &outcome)))
                });
                match fork_run {
                    Some((kind, outcome)) => (kind, outcome, true),
                    None => straight(&mut violations),
                }
            }
            None => straight(&mut violations),
        };

        SeuSweepRun {
            index,
            plan: plan.clone(),
            outcome: (kind, outcome),
            forked,
            violations,
        }
    })?;

    let stats = CampaignStats {
        // One attacked engine per variant, plus the golden and one
        // nominal prefix per shared checkpoint.
        runs: runs.len() + 1 + prefixes.len(),
        threads: effective_threads(threads),
        wall_seconds: started.elapsed().as_secs_f64(),
        events_fired: 0,
        wakes: 0,
    };
    Ok(SeuSweepReport {
        runs,
        prefixes: prefixes.len(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchro_tokens::scenarios::pingpong_spec;

    #[test]
    fn job_grid_is_canonical() {
        let jobs = chaos_jobs(3);
        assert_eq!(jobs.len(), 9);
        assert_eq!(jobs[0].class, FaultClass::Analog);
        assert_eq!(jobs[1].class, FaultClass::Protocol);
        assert_eq!(jobs[3].seed, 1);
    }

    #[test]
    fn campaign_report_is_thread_count_invariant() {
        let spec = pingpong_spec();
        let jobs = chaos_jobs(2);
        let run = |threads| {
            run_chaos_campaign(&spec, &jobs, 60, SimDuration::us(2000), threads)
                .runs
                .iter()
                .map(|r| (r.job, r.outcomes.clone(), r.violations.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn batched_campaign_agrees_with_the_scalar_campaign() {
        let spec = pingpong_spec();
        let jobs = chaos_jobs(2);
        let scalar = run_chaos_campaign(&spec, &jobs, 60, SimDuration::us(2000), 1);
        let batched = run_chaos_campaign_batched(&spec, &jobs, 60, SimDuration::us(2000), 1);
        assert_eq!(scalar.runs.len(), batched.runs.len());
        for (s, b) in scalar.runs.iter().zip(&batched.runs) {
            assert_eq!(s.job, b.job);
            assert_eq!(s.plan, b.plan, "seed {}", s.job.seed);
            // The batched campaign attacks the compiled backend only;
            // its classification must match the scalar campaign's
            // compiled entry (index 1 of [event, compiled]).
            assert_eq!(b.outcomes.len(), 1);
            assert_eq!(
                s.outcomes[1].1, b.outcomes[0].1,
                "outcome of seed {} {:?}",
                s.job.seed, s.job.class
            );
            assert_eq!(s.violations, b.violations, "seed {}", s.job.seed);
        }
    }

    #[test]
    fn batched_campaign_is_thread_count_invariant() {
        let spec = pingpong_spec();
        let jobs = chaos_jobs(2);
        let run = |threads| {
            run_chaos_campaign_batched(&spec, &jobs, 60, SimDuration::us(2000), threads)
                .runs
                .iter()
                .map(|r| (r.job, r.outcomes.clone(), r.violations.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn seu_sweep_forks_and_matches_straight_runs() {
        let spec = pingpong_spec();
        let (seed, cycles, budget) = (3u64, 60u64, SimDuration::us(2000));
        // Two fire-cycle cohorts plus a protocol plan that must fall
        // back to a straight run.
        let mut plans = seu_sweep_plans(&spec, 44, 5);
        plans.extend(seu_sweep_plans(&spec, 52, 5));
        plans.push(FaultPlan::generate(FaultClass::Protocol, &spec, seed));
        let report = run_seu_sweep(&spec, seed, &plans, cycles, budget, 2, 8);

        assert_eq!(report.prefixes, 2, "one shared prefix per fire cycle");
        assert_eq!(report.forked(), 10, "every SEU-only variant must fork");
        assert!(!report.runs[10].forked, "protocol plan must not fork");
        assert!(report.violations().is_empty(), "{:?}", report.violations());

        // The forked sweep must classify exactly as naive straight runs.
        let mut golden_sys =
            chaos_builder(&spec, seed, cycles as usize).build_backend(Backend::Compiled);
        golden_sys.run_until_cycles(cycles, budget).unwrap();
        let golden: Vec<SbIoTrace> = (0..spec.sbs.len())
            .map(|i| golden_sys.io_trace(SbId(i)).clone())
            .collect();
        for (i, plan) in plans.iter().enumerate() {
            let mut sys = chaos_builder(&spec, seed, cycles as usize)
                .with_fault_plan(plan.clone())
                .build_backend(Backend::Compiled);
            let outcome = run_with_plan(&mut sys, plan, cycles, budget).unwrap();
            assert_eq!(
                report.runs[i].outcome.1,
                classify(&golden, &sys, &outcome),
                "variant {i} diverged from its straight run"
            );
        }
    }

    #[test]
    fn seu_sweep_respects_min_fork_cycle() {
        let spec = pingpong_spec();
        let plans = seu_sweep_plans(&spec, 10, 4);
        let report = run_seu_sweep(&spec, 1, &plans, 60, SimDuration::us(2000), 1, 32);
        assert_eq!(report.prefixes, 0, "fires below the floor share nothing");
        assert_eq!(report.forked(), 0);
        assert!(report.violations().is_empty());
    }

    #[test]
    fn seu_sweep_is_thread_count_invariant() {
        let spec = pingpong_spec();
        let plans = seu_sweep_plans(&spec, 48, 6);
        let run = |threads| {
            run_seu_sweep(&spec, 7, &plans, 60, SimDuration::us(2000), threads, 8)
                .runs
                .iter()
                .map(|r| {
                    (
                        r.index,
                        r.plan.clone(),
                        r.outcome.clone(),
                        r.forked,
                        r.violations.clone(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn configs_env_cap_parses() {
        // This test fn owns all ST_CHAOS_CONFIGS mutation — the same
        // single-owner convention every env-knob test in the workspace
        // follows, so parallel test threads never race the environment.
        let prev = std::env::var("ST_CHAOS_CONFIGS").ok();
        std::env::remove_var("ST_CHAOS_CONFIGS");
        assert_eq!(configs_from_env(500), 500, "unset keeps the full sweep");
        std::env::set_var("ST_CHAOS_CONFIGS", "24");
        assert_eq!(configs_from_env(500), 24, "positive cap applies");
        std::env::set_var("ST_CHAOS_CONFIGS", " 12 ");
        assert_eq!(configs_from_env(500), 12, "whitespace trims");
        // Everything non-positive or unparsable keeps the full sweep:
        // a chaos campaign silently shrunk to zero would be a vacuous
        // oracle, so 0 is *not* honoured here (unlike thread knobs,
        // where 0 clamps to 1).
        std::env::set_var("ST_CHAOS_CONFIGS", "0");
        assert_eq!(configs_from_env(500), 500, "zero keeps the full sweep");
        std::env::set_var("ST_CHAOS_CONFIGS", "");
        assert_eq!(configs_from_env(500), 500, "empty keeps the full sweep");
        std::env::set_var("ST_CHAOS_CONFIGS", "banana");
        assert_eq!(configs_from_env(500), 500, "garbage keeps the full sweep");
        std::env::set_var("ST_CHAOS_CONFIGS", "-5");
        assert_eq!(configs_from_env(500), 500, "negative keeps the full sweep");
        std::env::set_var("ST_CHAOS_CONFIGS", "18446744073709551616");
        assert_eq!(configs_from_env(500), 500, "overflow keeps the full sweep");
        match prev {
            Some(v) => std::env::set_var("ST_CHAOS_CONFIGS", v),
            None => std::env::remove_var("ST_CHAOS_CONFIGS"),
        }
    }
}
