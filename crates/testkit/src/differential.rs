//! Shared proptest budgeting for the differential suites.
//!
//! Every differential suite (`compiled_equiv`, `batched_equiv`,
//! `checkpoint_equiv`, `gate_equiv`, the chaos properties, the cells
//! lane properties) draws its case budget from ONE place so the
//! `PROPTEST_CASES` contract cannot drift per copy:
//!
//! * `PROPTEST_CASES` (trimmed, positive) wins — CI pins a fixed
//!   reduced budget, soak runs raise it;
//! * otherwise the suite's own default applies, sized for tier-1
//!   latency.
//!
//! The helper also registers the suite's witnessed conformance IDs and
//! installs a process-wide failure banner: when a property fails, the
//! panic output ends with the witnessed requirement IDs and the exact
//! budget to rerun with, so a red differential run names the normative
//! clause it just broke (see `conformance/requirements.toml`).

use proptest::prelude::ProptestConfig;
use std::sync::{Mutex, Once, OnceLock};

/// One suite registration: its witnessed IDs and resolved case budget.
type SuiteBudget = (&'static [&'static str], u32);

/// The witnessed-ID sets registered by [`case_budget`] in this process,
/// newest last; the failure banner prints the union.
fn registered() -> &'static Mutex<Vec<SuiteBudget>> {
    static REGISTERED: OnceLock<Mutex<Vec<SuiteBudget>>> = OnceLock::new();
    REGISTERED.get_or_init(|| Mutex::new(Vec::new()))
}

/// Resolves the suite's case budget and arms the failure banner.
///
/// `default_cases` applies when `PROPTEST_CASES` is unset or unusable;
/// `witnessed` is the suite's conformance declaration (the same IDs the
/// suite's `witnesses!` test registers), echoed on failure.
pub fn case_budget(default_cases: u32, witnessed: &'static [&'static str]) -> ProptestConfig {
    let cases = resolve_cases(default_cases);
    if let Ok(mut reg) = registered().lock() {
        if !reg.iter().any(|&(ids, _)| std::ptr::eq(ids, witnessed)) {
            reg.push((witnessed, cases));
        }
    }
    install_failure_banner();
    ProptestConfig {
        cases,
        ..ProptestConfig::default()
    }
}

/// `PROPTEST_CASES` resolution alone (no banner): trimmed, parsed,
/// positive — anything else falls back to `default_cases`.
pub fn resolve_cases(default_cases: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(default_cases)
}

/// Chains a panic hook that appends the suite context when a proptest
/// runner reports a failing case. The previous hook runs first (it
/// prints the failing case/seed and inputs); the banner then names the
/// witnessed requirement IDs and the budget to reproduce under.
fn install_failure_banner() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            // Only suite-level proptest failures get the banner — the
            // devstubs runner panics with "failed at case N", real
            // proptest with its minimal-failing-input report.
            if !(msg.contains("failed at case") || msg.contains("minimal failing input")) {
                return;
            }
            let reg = match registered().lock() {
                Ok(r) => r,
                Err(_) => return,
            };
            let mut ids: Vec<&str> = reg
                .iter()
                .flat_map(|&(ids, _)| ids.iter().copied())
                .collect();
            ids.sort_unstable();
            ids.dedup();
            let budgets: Vec<String> = reg.iter().map(|&(_, c)| c.to_string()).collect();
            eprintln!(
                "── differential suite failure ─────────────────────────────\n\
                 witnessed requirement IDs: [{}]\n\
                 case budget(s) in force: PROPTEST_CASES={} (case generation is \
                 deterministic per property name — rerun with the same budget to \
                 reproduce the failing seed above)\n\
                 clauses: conformance/requirements.toml\n\
                 ───────────────────────────────────────────────────────────",
                ids.join(", "),
                budgets.join("/"),
            );
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_budget_prefers_the_env_and_falls_back_to_the_default() {
        // This test owns PROPTEST_CASES in this binary (env mutation
        // must not race other tests reading the same variable).
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(resolve_cases(48), 48, "unset uses the suite default");
        std::env::set_var("PROPTEST_CASES", "12");
        assert_eq!(resolve_cases(48), 12);
        assert_eq!(case_budget(48, &["ST-DET-001"]).cases, 12);
        std::env::set_var("PROPTEST_CASES", "  7  ");
        assert_eq!(resolve_cases(48), 7, "whitespace is trimmed");
        std::env::set_var("PROPTEST_CASES", "");
        assert_eq!(resolve_cases(48), 48, "empty string falls back");
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(resolve_cases(48), 48, "zero cases would test nothing");
        std::env::set_var("PROPTEST_CASES", "banana");
        assert_eq!(resolve_cases(48), 48, "garbage falls back");
        std::env::set_var("PROPTEST_CASES", "18446744073709551616");
        assert_eq!(resolve_cases(48), 48, "overflow falls back");
        std::env::remove_var("PROPTEST_CASES");
    }
}
