//! The complete TAP port: controller + instruction register + data
//! registers, driven one TCK cycle at a time, plus high-level scan
//! helpers (the "tester side" of every debug flow).

use crate::registers::{DataRegister, Instruction, RegisterFile};
use crate::tap::{TapFsm, TapState};

/// A full 1149.1 test access port.
///
/// # Examples
///
/// ```
/// use st_testkit::{Instruction, TapPort};
///
/// let mut tap = TapPort::new(0xC0DE_0001);
/// tap.reset();
/// tap.scan_ir(Instruction::IdCode);
/// let id = tap.scan_dr(0, 32);
/// assert_eq!(id, 0xC0DE_0001);
/// ```
#[derive(Debug, Clone)]
pub struct TapPort {
    fsm: TapFsm,
    regs: RegisterFile,
    ir: DataRegister,
    current: Instruction,
    tdo: bool,
    /// Log of executed Update-IR instructions (for test assertions and
    /// the debug harness's action dispatch).
    updates: Vec<Instruction>,
}

impl TapPort {
    /// A TAP with the given IDCODE, in Test-Logic-Reset with IDCODE
    /// selected (as the standard requires when an IDCODE register
    /// exists).
    pub fn new(idcode: u32) -> Self {
        TapPort {
            fsm: TapFsm::new(),
            regs: RegisterFile::new(idcode),
            ir: DataRegister::new(Instruction::IR_WIDTH),
            current: Instruction::IdCode,
            tdo: false,
            updates: Vec::new(),
        }
    }

    /// Current controller state.
    pub fn state(&self) -> TapState {
        self.fsm.state()
    }

    /// Currently effective instruction.
    pub fn instruction(&self) -> Instruction {
        self.current
    }

    /// The register file (to preload captures / read updates).
    pub fn registers(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Instructions latched by Update-IR so far, in order.
    pub fn update_log(&self) -> &[Instruction] {
        &self.updates
    }

    /// Applies one full TCK cycle (TMS/TDI sampled on the rising edge);
    /// returns TDO as driven during the cycle.
    ///
    /// Per the standard's edge semantics, capture and shift happen on
    /// the rising edge that *leaves* the Capture/Shift state, while the
    /// update latches ride the falling edge *inside* the Update state —
    /// modelled here as prev-state and new-state actions respectively.
    pub fn tck(&mut self, tms: bool, tdi: bool) -> bool {
        let prev = self.fsm.state();
        let state = self.fsm.clock(tms);
        match prev {
            TapState::CaptureIr => {
                // The standard mandates capturing xx01 into the IR.
                self.ir.set_capture(0b0001);
                self.ir.capture();
            }
            TapState::ShiftIr => {
                self.tdo = self.ir.shift_bit(tdi);
            }
            TapState::CaptureDr => {
                self.regs.register_mut(self.current).capture();
            }
            TapState::ShiftDr => {
                self.tdo = self.regs.register_mut(self.current).shift_bit(tdi);
            }
            _ => {}
        }
        match state {
            TapState::TestLogicReset => {
                self.current = Instruction::IdCode;
            }
            TapState::UpdateIr => {
                self.ir.update();
                self.current = Instruction::decode(self.ir.update_value());
                self.updates.push(self.current);
            }
            TapState::UpdateDr => {
                self.regs.register_mut(self.current).update();
            }
            _ => {}
        }
        self.tdo
    }

    /// Drives ≥ 5 TMS=1 cycles: Test-Logic-Reset from any state.
    pub fn reset(&mut self) {
        for _ in 0..5 {
            self.tck(true, false);
        }
        self.tck(false, false); // settle in Run-Test/Idle
    }

    /// Loads an instruction through a full IR scan (from Run-Test/Idle,
    /// back to Run-Test/Idle).
    pub fn scan_ir(&mut self, instr: Instruction) {
        // RTI -> SelDR -> SelIR -> CapIR -> (capture edge into ShiftIR).
        self.tck(true, false);
        self.tck(true, false);
        self.tck(false, false);
        self.tck(false, false);
        let code = instr.opcode();
        let width = Instruction::IR_WIDTH;
        for i in 0..width {
            let tdi = (code >> i) & 1 == 1;
            let last = i == width - 1;
            // Shift-IR for all but the last bit, which rides Exit1-IR.
            self.tck(last, tdi);
        }
        // Exit1-IR -> Update-IR -> RTI.
        self.tck(true, false);
        self.tck(false, false);
    }

    /// Performs a full DR scan of `width` bits: shifts `data_in` in
    /// (LSB first) and returns the `width` bits that came out.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    pub fn scan_dr(&mut self, data_in: u64, width: u32) -> u64 {
        assert!((1..=64).contains(&width), "scan width must be 1-64");
        // RTI -> SelDR -> CapDR -> (capture edge into ShiftDR).
        self.tck(true, false);
        self.tck(false, false);
        self.tck(false, false);
        let mut out = 0u64;
        for i in 0..width {
            let tdi = (data_in >> i) & 1 == 1;
            let last = i == width - 1;
            let tdo = self.tck(last, tdi);
            out |= u64::from(tdo) << i;
        }
        // Exit1-DR -> Update-DR -> RTI.
        self.tck(true, false);
        self.tck(false, false);
        out
    }

    /// Convenience: IR scan + DR scan sized to the selected register.
    pub fn transact(&mut self, instr: Instruction, data_in: u64) -> u64 {
        self.scan_ir(instr);
        let width = self.regs.register(instr).width();
        self.scan_dr(data_in, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_lands_in_run_test_idle_with_idcode() {
        let mut tap = TapPort::new(0xDEAD_BEE1);
        tap.scan_ir(Instruction::Extest);
        tap.reset();
        assert_eq!(tap.state(), TapState::RunTestIdle);
        assert_eq!(tap.instruction(), Instruction::IdCode);
    }

    #[test]
    fn idcode_reads_back() {
        let mut tap = TapPort::new(0x1234_5679);
        tap.reset();
        let id = tap.transact(Instruction::IdCode, 0);
        assert_eq!(id, 0x1234_5679);
    }

    #[test]
    fn ir_scan_selects_instruction() {
        let mut tap = TapPort::new(1);
        tap.reset();
        tap.scan_ir(Instruction::HoldReg);
        assert_eq!(tap.instruction(), Instruction::HoldReg);
        assert_eq!(tap.state(), TapState::RunTestIdle);
        assert_eq!(tap.update_log(), &[Instruction::HoldReg]);
    }

    #[test]
    fn dr_scan_writes_the_selected_register() {
        let mut tap = TapPort::new(1);
        tap.reset();
        tap.transact(Instruction::RecycleReg, 0x00AB);
        assert_eq!(
            tap.registers()
                .register(Instruction::RecycleReg)
                .update_value(),
            0x00AB
        );
    }

    #[test]
    fn dr_scan_reads_a_preloaded_capture() {
        let mut tap = TapPort::new(1);
        tap.reset();
        tap.registers()
            .register_mut(Instruction::ScanState)
            .set_capture(0xFACE_F00D_CAFE_BEEF);
        let out = tap.transact(Instruction::ScanState, 0);
        assert_eq!(out, 0xFACE_F00D_CAFE_BEEF);
    }

    #[test]
    fn bypass_is_a_single_flop() {
        let mut tap = TapPort::new(1);
        tap.reset();
        tap.scan_ir(Instruction::Bypass);
        // A pattern shifted through the 1-bit bypass register emerges
        // exactly one TCK cycle late.
        tap.tck(true, false); // SelDR
        tap.tck(false, false); // CapDR
        tap.tck(false, false); // capture edge, now shifting
        let pattern = 0b1011_0101u64;
        let mut out = 0u64;
        for i in 0..8 {
            let tdo = tap.tck(false, (pattern >> i) & 1 == 1);
            out |= u64::from(tdo) << i;
        }
        assert_eq!(out, (pattern << 1) & 0xFF, "1-cycle latency through BYPASS");
    }

    #[test]
    fn back_to_back_transactions() {
        let mut tap = TapPort::new(1);
        tap.reset();
        for v in [1u64, 2, 3, 0xFFFF] {
            tap.transact(Instruction::HoldReg, v);
            assert_eq!(
                tap.registers()
                    .register(Instruction::HoldReg)
                    .update_value(),
                v & 0xFFFF
            );
        }
        assert_eq!(tap.update_log().len(), 4);
    }

    #[test]
    #[should_panic(expected = "scan width must be 1-64")]
    fn zero_width_scan_rejected() {
        let mut tap = TapPort::new(1);
        tap.reset();
        tap.scan_ir(Instruction::Bypass);
        tap.scan_dr(0, 0);
    }
}
