//! The §4.2 debug & test features, end to end.
//!
//! "System clocks can be stopped while TCK is in Interlocked Mode by
//! holding tokens indefinitely in the Test SB and waiting for all of the
//! recycle counters in the system to reach zero and deterministically
//! stop the local clocks. The granularity of these natural breakpoints
//! can be increased — all the way to single stepping if desired … After
//! the system clocks have been stopped, the asynchronous scan chains can
//! be used to deterministically read and write system state."
//!
//! [`TestAccess`] drives those flows against a live
//! [`System`]: every control action passes
//! through a real [`TapPort`] transaction (instruction + data register
//! scan), then is dispatched to the wrapper hardware hooks.

use crate::player::TapPort;
use crate::registers::Instruction;
use st_sim::time::SimDuration;
use synchro_tokens::compiled_system::AnySystem;
use synchro_tokens::spec::{NodeParams, RingId, SbId, SystemSpec};
use synchro_tokens::system::System;

/// The Test SB's TCK relationship to the token fabric (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TckMode {
    /// Tokens passing through the Test SB may stop the clock; tester ↔
    /// mission-mode data exchange is deterministic. "Best suited for
    /// on-tester debug and production test."
    #[default]
    Interlocked,
    /// TCK and token flow do not affect each other; communication with
    /// mission-mode logic is nondeterministic. "Appropriate for
    /// off-tester usage of TAP public instructions and for mission mode."
    Independent,
}

/// Outcome of a breakpoint request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakpointReport {
    /// SBs whose clocks were parked when the system went quiet.
    pub stopped: Vec<SbId>,
    /// Local cycle count of every SB at the breakpoint.
    pub cycles: Vec<u64>,
}

/// One shmoo point: a candidate clock period and whether the system's
/// I/O sequences still matched the golden reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmooPoint {
    /// The period under test.
    pub period: SimDuration,
    /// True when every SB's trace matched the golden run.
    pub pass: bool,
    /// Setup-time violations the swept SB took at this period.
    pub violations: u64,
}

/// Result of a frequency shmoo (§4.2: "clock frequency shmooing to find
/// critical paths within SBs").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShmooResult {
    /// Points in the order swept (fastest first or as given).
    pub points: Vec<ShmooPoint>,
}

impl ShmooResult {
    /// The shortest period that still passed, if any.
    pub fn min_passing_period(&self) -> Option<SimDuration> {
        self.points
            .iter()
            .filter(|p| p.pass)
            .map(|p| p.period)
            .min()
    }

    /// The longest period that failed, if any (brackets the critical
    /// path from below).
    pub fn max_failing_period(&self) -> Option<SimDuration> {
        self.points
            .iter()
            .filter(|p| !p.pass)
            .map(|p| p.period)
            .max()
    }
}

/// Tester-side access to a synchro-tokens system through its Test SB.
#[derive(Debug)]
pub struct TestAccess {
    tap: TapPort,
    test_sb: SbId,
    mode: TckMode,
}

impl TestAccess {
    /// Attaches to the designated Test SB with the given IDCODE.
    pub fn new(test_sb: SbId, idcode: u32) -> Self {
        let mut tap = TapPort::new(idcode);
        tap.reset();
        TestAccess {
            tap,
            test_sb,
            mode: TckMode::Interlocked,
        }
    }

    /// Switches the TCK mode.
    pub fn set_mode(&mut self, mode: TckMode) {
        self.mode = mode;
    }

    /// Current TCK mode.
    pub fn mode(&self) -> TckMode {
        self.mode
    }

    /// The underlying TAP (for raw transactions).
    pub fn tap(&mut self) -> &mut TapPort {
        &mut self.tap
    }

    /// Reads the device IDCODE over the TAP.
    pub fn read_idcode(&mut self) -> u32 {
        let v = self.tap.transact(Instruction::IdCode, 0);
        u32::try_from(v & 0xFFFF_FFFF).expect("32-bit idcode")
    }

    /// Requests a deterministic breakpoint: parks every token currently
    /// held by the Test SB's nodes and runs until all other clocks stop.
    ///
    /// In [`TckMode::Independent`] the token fabric is unaffected and the
    /// report is empty (the paper: "the operation of TCK and the flow of
    /// tokens through the Test SB have no effect on each other").
    ///
    /// # Errors
    ///
    /// Propagates kernel errors from the settling run.
    pub fn breakpoint(
        &mut self,
        sys: &mut System,
        max_time: SimDuration,
    ) -> Result<BreakpointReport, st_sim::SimError> {
        // The request travels through the TAP like real tester traffic.
        self.tap.transact(Instruction::TokenHold, 1);
        if self.mode == TckMode::Independent {
            return Ok(BreakpointReport {
                stopped: Vec::new(),
                cycles: (0..sys.spec().sbs.len())
                    .map(|i| sys.cycles(SbId(i)))
                    .collect(),
            });
        }
        sys.set_hold_tokens(self.test_sb, true);
        // Run until the system goes quiescent (all clocks parked except
        // possibly the Test SB's, which never starves itself).
        sys.run_for(max_time)?;
        Ok(BreakpointReport {
            stopped: sys.stopped_sbs(),
            cycles: (0..sys.spec().sbs.len())
                .map(|i| sys.cycles(SbId(i)))
                .collect(),
        })
    }

    /// Releases a breakpoint: tokens flow again and stopped clocks
    /// restart asynchronously.
    pub fn resume(&mut self, sys: &mut System) {
        self.tap.transact(Instruction::TokenHold, 0);
        if self.mode == TckMode::Interlocked {
            sys.set_hold_tokens(self.test_sb, false);
        }
    }

    /// Single-steps the system: releases tokens until every non-test SB
    /// has advanced by at least `cycles` local cycles, then re-engages
    /// the breakpoint.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn single_step(
        &mut self,
        sys: &mut System,
        cycles: u64,
        max_time: SimDuration,
    ) -> Result<BreakpointReport, st_sim::SimError> {
        let start: Vec<u64> = (0..sys.spec().sbs.len())
            .map(|i| sys.cycles(SbId(i)))
            .collect();
        self.resume(sys);
        let deadline = sys.now() + max_time;
        // Fine-grained settling so the step resolution approaches a few
        // local cycles.
        let step = SimDuration::ns(200);
        while sys.now() < deadline {
            sys.run_for(step)?;
            let done = (0..sys.spec().sbs.len())
                .all(|i| SbId(i) == self.test_sb || sys.cycles(SbId(i)) >= start[i] + cycles);
            if done {
                break;
            }
        }
        self.breakpoint(sys, max_time)
    }

    /// Writes the hold/recycle registers of one node over the TAP
    /// (§4.2: the registers are scan-accessible for performance tuning).
    pub fn write_node_params(
        &mut self,
        sys: &mut System,
        sb: SbId,
        ring: RingId,
        params: NodeParams,
    ) {
        self.tap
            .transact(Instruction::HoldReg, u64::from(params.hold));
        self.tap
            .transact(Instruction::RecycleReg, u64::from(params.recycle));
        let hold = self
            .tap
            .registers()
            .register(Instruction::HoldReg)
            .update_value();
        let recycle = self
            .tap
            .registers()
            .register(Instruction::RecycleReg)
            .update_value();
        sys.set_node_params(
            sb,
            ring,
            NodeParams::new(
                u32::try_from(hold).expect("hold fits"),
                u32::try_from(recycle).expect("recycle fits"),
            ),
        );
    }

    /// Reads 64 bits of architectural state out through the ScanState
    /// register (the self-timed internal scan chain).
    pub fn scan_state_word(&mut self, word: u64) -> u64 {
        self.tap
            .registers()
            .register_mut(Instruction::ScanState)
            .set_capture(word);
        self.tap.transact(Instruction::ScanState, 0)
    }
}

/// Runs a frequency shmoo over one SB: rebuilds the system at each
/// candidate period (the frequency-control register in real silicon),
/// runs `cycles` local cycles, and compares every SB's I/O trace digest
/// with the golden reference obtained from `spec` as-is.
///
/// Determinism makes this meaningful: the traces are invariant under
/// period scaling *until* the SB's modelled critical path is violated,
/// so the pass/fail edge locates the critical path, exactly as §4.2
/// promises.
///
/// The points are independent single-threaded simulations, so after the
/// golden run they fan out across
/// [`run_jobs`](synchro_tokens::campaign::run_jobs) worker threads
/// (`ST_THREADS` applies); results merge in sweep order, keeping the
/// [`ShmooResult`] byte-identical at any thread count.
pub fn shmoo(
    spec: &SystemSpec,
    sb: SbId,
    periods: &[SimDuration],
    cycles: u64,
    build: &(dyn Fn(SystemSpec, u64) -> System + Sync),
) -> ShmooResult {
    shmoo_any(spec, sb, periods, cycles, &|s, seed| build(s, seed).into())
}

/// Backend-polymorphic variant of [`shmoo`]: the build function returns
/// an [`AnySystem`], so sweeps can run on the compiled fast-path backend
/// (`SystemBuilder::build_backend`). Both backends are byte-identical,
/// so the [`ShmooResult`] does not depend on the backend choice.
pub fn shmoo_any(
    spec: &SystemSpec,
    sb: SbId,
    periods: &[SimDuration],
    cycles: u64,
    build: &(dyn Fn(SystemSpec, u64) -> AnySystem + Sync),
) -> ShmooResult {
    let threads = synchro_tokens::campaign::default_threads();
    match shmoo_any_hooked(
        spec,
        sb,
        periods,
        cycles,
        build,
        threads,
        synchro_tokens::RunHooks::default(),
    ) {
        Ok(result) => result,
        Err(_) => unreachable!("no cancel token was installed"),
    }
}

/// Jobified [`shmoo_any`]: the same sweep with an explicit thread count
/// and [`RunHooks`](synchro_tokens::RunHooks), so a long shmoo can be
/// driven as a *service job* — cancelled cooperatively between points
/// and observed via the progress callback (`st-serve`'s worker pool
/// uses exactly this entry point).
///
/// # Errors
///
/// Returns [`Cancelled`](synchro_tokens::Cancelled) with the completed
/// points (in sweep order) when the hook's token trips before the last
/// point is claimed.
pub fn shmoo_any_hooked(
    spec: &SystemSpec,
    sb: SbId,
    periods: &[SimDuration],
    cycles: u64,
    build: &(dyn Fn(SystemSpec, u64) -> AnySystem + Sync),
    threads: usize,
    hooks: synchro_tokens::RunHooks<'_>,
) -> Result<ShmooResult, synchro_tokens::Cancelled<ShmooPoint>> {
    let golden: Vec<u64> = {
        let mut sys = build(spec.clone(), 0);
        sys.run_until_cycles(cycles, SimDuration::us(5000))
            .expect("golden run");
        (0..spec.sbs.len())
            .map(|i| sys.io_trace(SbId(i)).digest())
            .collect()
    };
    let points =
        synchro_tokens::campaign::run_jobs_hooked(periods, threads, hooks, |_, &period| {
            let mut s = spec.clone();
            s.sbs[sb.0].period = period;
            let mut sys = build(s, 0);
            let completed = matches!(
                sys.run_until_cycles(cycles, SimDuration::us(5000)),
                Ok(synchro_tokens::system::RunOutcome::Reached)
            );
            let digests: Vec<u64> = (0..spec.sbs.len())
                .map(|i| sys.io_trace(SbId(i)).digest())
                .collect();
            ShmooPoint {
                period,
                pass: completed && digests == golden,
                violations: sys.timing_violations(sb),
            }
        })?;
    Ok(ShmooResult { points })
}

/// One cell of a shmoo *grid*: a candidate period evaluated under one
/// workload seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmooGridPoint {
    /// The candidate period applied to the swept SB.
    pub period: SimDuration,
    /// The workload seed of this cell.
    pub seed: u64,
    /// Whether the run completed with traces identical to this seed's
    /// golden reference at the nominal period.
    pub pass: bool,
    /// Setup-time violations taken by the swept SB.
    pub violations: u64,
}

/// A frequency shmoo replicated over N workload seeds, batched: every
/// candidate period is evaluated under every seed, and all the seeds
/// of one period lower into a single [`BatchedSystem`] lockstep group
/// (they share a spec — only their data differs), so the event-loop
/// cost per period is paid once instead of once per seed. The goldens
/// batch the same way at the nominal period.
///
/// `make` builds the workload for `(spec, seed)` — it must attach
/// logic whose *send pattern* is seed-independent for the lanes to
/// stay in lockstep (data-dependent sends still work; the engine
/// splits the group and the sweep is merely slower). Builders outside
/// the batched envelope fall back to scalar compiled runs, point by
/// point, with identical results.
///
/// Points come back period-major (`periods[0]` × every seed, then
/// `periods[1]`, …), byte-identical to per-cell scalar sweeps.
pub fn shmoo_grid(
    spec: &SystemSpec,
    sb: SbId,
    periods: &[SimDuration],
    seeds: &[u64],
    cycles: u64,
    make: &(dyn Fn(SystemSpec, u64) -> synchro_tokens::SystemBuilder + Sync),
) -> Vec<ShmooGridPoint> {
    let budget = SimDuration::us(5000);
    // Every (period, seed) cell in one build: grouping by spec puts
    // each period's seed lanes in their own lockstep group. When the
    // sweep includes the nominal period (the usual shmoo shape), that
    // column doubles as the per-seed golden batch; otherwise the
    // goldens run as one extra batch at the nominal spec.
    let nominal = spec.sbs[sb.0].period;
    let nominal_col = periods.iter().position(|&p| p == nominal);
    let cells: Vec<(SystemSpec, u64)> = periods
        .iter()
        .flat_map(|&period| {
            let mut s = spec.clone();
            s.sbs[sb.0].period = period;
            seeds.iter().map(move |&seed| (s.clone(), seed))
        })
        .collect();
    let results = run_grid_batch(spec, sb, &cells, cycles, budget, make);
    let goldens: Vec<Vec<u64>> = match nominal_col {
        Some(p) => results[p * seeds.len()..(p + 1) * seeds.len()]
            .iter()
            .map(|(_, digests, _)| digests.clone())
            .collect(),
        None => run_grid_batch(
            spec,
            sb,
            &seeds.iter().map(|&s| (spec.clone(), s)).collect::<Vec<_>>(),
            cycles,
            budget,
            make,
        )
        .into_iter()
        .map(|(_, digests, _)| digests)
        .collect(),
    };
    results
        .into_iter()
        .enumerate()
        .map(|(i, (completed, digests, violations))| {
            let (p, s) = (i / seeds.len(), i % seeds.len());
            ShmooGridPoint {
                period: periods[p],
                seed: seeds[s],
                pass: completed && digests == goldens[s],
                violations,
            }
        })
        .collect()
}

/// Runs one batch of `(spec, seed)` cells and reports, per cell:
/// `(reached, per-SB trace digests, swept-SB violations)`.
fn run_grid_batch(
    base: &SystemSpec,
    sb: SbId,
    cells: &[(SystemSpec, u64)],
    cycles: u64,
    budget: SimDuration,
    make: &(dyn Fn(SystemSpec, u64) -> synchro_tokens::SystemBuilder + Sync),
) -> Vec<(bool, Vec<u64>, u64)> {
    use synchro_tokens::system::RunOutcome;
    let sb_count = base.sbs.len();
    let builders: Vec<synchro_tokens::SystemBuilder> = cells
        .iter()
        .map(|(s, seed)| make(s.clone(), *seed))
        .collect();
    match synchro_tokens::BatchedSystem::build(builders) {
        Ok(mut batch) => {
            let outcomes = batch.run_until_cycles(cycles, budget);
            outcomes
                .into_iter()
                .enumerate()
                .map(|(lane, outcome)| {
                    // Streaming digests: no per-row materialization on
                    // the batched fast path.
                    let digests = (0..sb_count)
                        .map(|i| batch.trace_digest(lane, SbId(i)))
                        .collect();
                    (
                        outcome == RunOutcome::Reached,
                        digests,
                        batch.timing_violations(lane, sb),
                    )
                })
                .collect()
        }
        Err(builders) => builders
            .into_iter()
            .map(|b| {
                let mut sys = b.build_backend(synchro_tokens::Backend::Compiled);
                let completed = matches!(
                    sys.run_until_cycles(cycles, budget),
                    Ok(RunOutcome::Reached)
                );
                let digests = (0..sb_count)
                    .map(|i| sys.io_trace(SbId(i)).digest())
                    .collect();
                (completed, digests, sys.timing_violations(sb))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchro_tokens::scenarios::{build_e1, e1_spec, MixerLogic};
    use synchro_tokens::system::RunOutcome;

    const ALPHA: SbId = SbId(0);

    #[test]
    fn interlocked_breakpoint_stops_the_whole_system() {
        let mut sys = build_e1(e1_spec(), 0, 50);
        sys.run_until_cycles(50, SimDuration::us(2000)).unwrap();
        let mut access = TestAccess::new(ALPHA, 0xABCD_0001);
        let report = access.breakpoint(&mut sys, SimDuration::us(100)).unwrap();
        // Alpha (the Test SB) holds its tokens; beta and gamma starve
        // and deterministically stop.
        assert!(report.stopped.contains(&SbId(1)), "{report:?}");
        assert!(report.stopped.contains(&SbId(2)), "{report:?}");
        // Nothing moves while broken.
        let frozen = report.cycles.clone();
        sys.run_for(SimDuration::us(50)).unwrap();
        for (i, f) in frozen.iter().enumerate().skip(1) {
            assert_eq!(sys.cycles(SbId(i)), *f, "sb{i} crept at breakpoint");
        }
    }

    #[test]
    fn breakpoints_are_deterministic() {
        let observe = || {
            let mut sys = build_e1(e1_spec(), 0, 50);
            sys.run_until_cycles(50, SimDuration::us(2000)).unwrap();
            let mut access = TestAccess::new(ALPHA, 1);
            let report = access.breakpoint(&mut sys, SimDuration::us(100)).unwrap();
            report.cycles
        };
        assert_eq!(observe(), observe(), "breakpoint cycle counts must repeat");
    }

    #[test]
    fn independent_mode_does_not_touch_the_fabric() {
        let mut sys = build_e1(e1_spec(), 0, 50);
        sys.run_until_cycles(50, SimDuration::us(2000)).unwrap();
        let mut access = TestAccess::new(ALPHA, 1);
        access.set_mode(TckMode::Independent);
        let report = access.breakpoint(&mut sys, SimDuration::us(20)).unwrap();
        assert!(report.stopped.is_empty());
        // Clocks keep running.
        let before = sys.cycles(SbId(1));
        sys.run_for(SimDuration::us(10)).unwrap();
        assert!(sys.cycles(SbId(1)) > before);
    }

    #[test]
    fn resume_restarts_stopped_clocks() {
        let mut sys = build_e1(e1_spec(), 0, 50);
        sys.run_until_cycles(50, SimDuration::us(2000)).unwrap();
        let mut access = TestAccess::new(ALPHA, 1);
        access.breakpoint(&mut sys, SimDuration::us(100)).unwrap();
        let frozen = sys.cycles(SbId(1));
        access.resume(&mut sys);
        let out = sys
            .run_until_cycles(frozen + 50, SimDuration::us(2000))
            .unwrap();
        assert_eq!(out, RunOutcome::Reached);
    }

    #[test]
    fn single_step_advances_by_small_increments() {
        let mut sys = build_e1(e1_spec(), 0, 50);
        sys.run_until_cycles(50, SimDuration::us(2000)).unwrap();
        let mut access = TestAccess::new(ALPHA, 1);
        let b0 = access.breakpoint(&mut sys, SimDuration::us(100)).unwrap();
        let b1 = access
            .single_step(&mut sys, 4, SimDuration::us(200))
            .unwrap();
        for i in 1..3 {
            let delta = b1.cycles[i] - b0.cycles[i];
            assert!(
                (4..60).contains(&delta),
                "sb{i} stepped by {delta}, want a small increment"
            );
        }
    }

    #[test]
    fn scan_reads_and_writes_logic_state_at_a_breakpoint() {
        let mut sys = build_e1(e1_spec(), 0, 50);
        sys.run_until_cycles(50, SimDuration::us(2000)).unwrap();
        let mut access = TestAccess::new(ALPHA, 1);
        access.breakpoint(&mut sys, SimDuration::us(100)).unwrap();
        // Read beta's architectural state through the scan register.
        let (counter, acc) = sys.logic::<MixerLogic>(SbId(1)).state();
        let read = access.scan_state_word(counter);
        assert_eq!(read, counter);
        // Write modified state back in (deterministic injection).
        sys.logic_mut::<MixerLogic>(SbId(1))
            .set_state(counter + 100, acc);
        assert_eq!(sys.logic::<MixerLogic>(SbId(1)).state().0, counter + 100);
    }

    #[test]
    fn tap_idcode_accessible_in_any_mode() {
        let mut access = TestAccess::new(ALPHA, 0x1234_5679);
        assert_eq!(access.read_idcode(), 0x1234_5679);
        access.set_mode(TckMode::Independent);
        assert_eq!(access.read_idcode(), 0x1234_5679);
        assert_eq!(access.mode(), TckMode::Independent);
    }

    #[test]
    fn node_param_writes_go_through_the_tap() {
        let mut sys = build_e1(e1_spec(), 0, 50);
        let mut access = TestAccess::new(ALPHA, 1);
        let before = sys.node(SbId(0), RingId(0)).unwrap().params();
        let new = NodeParams::new(before.hold + 1, before.recycle + 2);
        access.write_node_params(&mut sys, SbId(0), RingId(0), new);
        assert_eq!(sys.node(SbId(0), RingId(0)).unwrap().params(), new);
        assert!(access.tap().update_log().contains(&Instruction::RecycleReg));
    }

    #[test]
    fn shmoo_finds_the_injected_critical_path() {
        // Give beta a 6 ns critical path; sweep its period across it.
        let mut spec = e1_spec();
        spec.sbs[1].logic_delay = SimDuration::ns(6);
        let periods: Vec<SimDuration> = [4u64, 5, 6, 8, 10, 12]
            .iter()
            .map(|n| SimDuration::ns(*n))
            .collect();
        let result = shmoo(&spec, SbId(1), &periods, 60, &|s, seed| {
            build_e1(s, seed, 60)
        });
        // Periods >= 6 ns pass; shorter ones corrupt data and fail.
        for p in &result.points {
            let expect = p.period >= SimDuration::ns(6);
            assert_eq!(p.pass, expect, "period {} wrong verdict", p.period);
            if !expect {
                assert!(p.violations > 0);
            }
        }
        assert_eq!(result.min_passing_period(), Some(SimDuration::ns(6)));
        assert_eq!(result.max_failing_period(), Some(SimDuration::ns(5)));
    }

    #[test]
    fn shmoo_grid_matches_per_cell_scalar_runs() {
        use synchro_tokens::SystemBuilder;
        let mut spec = e1_spec();
        spec.sbs[1].logic_delay = SimDuration::ns(6);
        let periods: Vec<SimDuration> = [4u64, 6, 10].iter().map(|n| SimDuration::ns(*n)).collect();
        let seeds = [0u64, 7, 9, 21];
        let make = |s: SystemSpec, seed: u64| -> SystemBuilder {
            let n = s.sbs.len();
            let mut b = SystemBuilder::new(s)
                .expect("valid spec")
                .with_seed(seed)
                .with_trace_limit(60);
            for i in 0..n {
                b = b.with_logic(SbId(i), MixerLogic::new(seed ^ (0x1000 * i as u64)));
            }
            b
        };
        let grid = shmoo_grid(&spec, SbId(1), &periods, &seeds, 60, &make);
        assert_eq!(grid.len(), periods.len() * seeds.len());
        for (ci, cell) in grid.iter().enumerate() {
            assert_eq!(cell.period, periods[ci / seeds.len()], "period-major order");
            assert_eq!(cell.seed, seeds[ci % seeds.len()]);
            // Scalar reference for this cell: golden at the nominal
            // period, candidate run at the cell's period.
            let mut golden =
                make(spec.clone(), cell.seed).build_backend(synchro_tokens::Backend::Compiled);
            golden.run_until_cycles(60, SimDuration::us(5000)).unwrap();
            let mut s = spec.clone();
            s.sbs[1].period = cell.period;
            let mut sys = make(s, cell.seed).build_backend(synchro_tokens::Backend::Compiled);
            let completed = matches!(
                sys.run_until_cycles(60, SimDuration::us(5000)),
                Ok(synchro_tokens::system::RunOutcome::Reached)
            );
            let pass = completed
                && (0..spec.sbs.len())
                    .all(|i| sys.io_trace(SbId(i)).digest() == golden.io_trace(SbId(i)).digest());
            assert_eq!(cell.pass, pass, "cell {ci} verdict");
            assert_eq!(
                cell.violations,
                sys.timing_violations(SbId(1)),
                "cell {ci} violations"
            );
            // The injected 6 ns critical path decides every seed alike.
            assert_eq!(cell.pass, cell.period >= SimDuration::ns(6));
        }
    }

    #[test]
    fn shmoo_grid_nominal_column_reuses_goldens() {
        // When the swept periods include the nominal period, that
        // column doubles as the golden batch. The verdicts must be
        // identical to per-cell scalar golden-vs-candidate runs.
        use synchro_tokens::SystemBuilder;
        let mut spec = e1_spec();
        spec.sbs[1].logic_delay = SimDuration::ns(6);
        let nominal = spec.sbs[1].period;
        let periods = vec![SimDuration::ns(4), nominal, SimDuration::ns(6)];
        let seeds = [3u64, 11];
        let make = |s: SystemSpec, seed: u64| -> SystemBuilder {
            let n = s.sbs.len();
            let mut b = SystemBuilder::new(s)
                .expect("valid spec")
                .with_seed(seed)
                .with_trace_limit(60);
            for i in 0..n {
                b = b.with_logic(SbId(i), MixerLogic::new(seed ^ (0x1000 * i as u64)));
            }
            b
        };
        let grid = shmoo_grid(&spec, SbId(1), &periods, &seeds, 60, &make);
        assert_eq!(grid.len(), periods.len() * seeds.len());
        for (ci, cell) in grid.iter().enumerate() {
            let mut golden =
                make(spec.clone(), cell.seed).build_backend(synchro_tokens::Backend::Compiled);
            golden.run_until_cycles(60, SimDuration::us(5000)).unwrap();
            let mut s = spec.clone();
            s.sbs[1].period = cell.period;
            let mut sys = make(s, cell.seed).build_backend(synchro_tokens::Backend::Compiled);
            let completed = matches!(
                sys.run_until_cycles(60, SimDuration::us(5000)),
                Ok(synchro_tokens::system::RunOutcome::Reached)
            );
            let pass = completed
                && (0..spec.sbs.len())
                    .all(|i| sys.io_trace(SbId(i)).digest() == golden.io_trace(SbId(i)).digest());
            assert_eq!(cell.pass, pass, "cell {ci} verdict");
            // The nominal column passes by construction.
            if cell.period == nominal {
                assert!(cell.pass, "nominal cell {ci} must pass");
            }
        }
    }

    #[test]
    fn shmoo_is_repeatable_across_parallel_runs() {
        // The points fan across run_jobs worker threads (default count:
        // one per core on this machine); the merged result must be
        // byte-identical on every invocation regardless of completion
        // interleaving.
        let mut spec = e1_spec();
        spec.sbs[1].logic_delay = SimDuration::ns(6);
        let periods: Vec<SimDuration> = [4u64, 5, 6, 7, 8, 9, 10, 11, 12]
            .iter()
            .map(|n| SimDuration::ns(*n))
            .collect();
        let sweep = || {
            shmoo(&spec, SbId(1), &periods, 60, &|s, seed| {
                build_e1(s, seed, 60)
            })
        };
        let first = sweep();
        assert_eq!(first, sweep(), "shmoo result must be deterministic");
        assert_eq!(first.points.len(), periods.len());
    }
}
