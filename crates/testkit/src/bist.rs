//! Built-in self-test: LFSR pattern generation and MISR signature
//! compaction.
//!
//! §4.2 lists "internal scan chains for ATPG or BIST" among the features
//! the Test SB's self-timed chains can serve. The deeper point of the
//! paper is that **BIST across GALS boundaries only works if the system
//! is deterministic**: a signature compacted from responses that arrive
//! at nondeterministic local cycles is itself nondeterministic and
//! cannot be compared against a golden value. With synchro-tokens the
//! signature is invariant under delay/process variation — verified in
//! this module's tests by sweeping physical delays around a BIST loop.

use synchro_tokens::logic::{SbIo, SyncLogic};

/// A Fibonacci linear-feedback shift register over up to 64 bits.
///
/// # Examples
///
/// ```
/// use st_testkit::bist::Lfsr;
/// let mut lfsr = Lfsr::new_maximal16(0xACE1);
/// let a = lfsr.next_pattern();
/// let b = lfsr.next_pattern();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr {
    state: u64,
    taps: u64,
    width: u32,
}

impl Lfsr {
    /// An LFSR with an explicit tap mask (bit i set = stage i feeds the
    /// XOR network).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in 2..=64, the seed is zero (an
    /// all-zero LFSR state is a fixed point), or bit 0 is untapped
    /// (the shifted-out bit must feed back or the map is not a
    /// bijection).
    pub fn new(seed: u64, taps: u64, width: u32) -> Self {
        assert!((2..=64).contains(&width), "width 2-64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        assert!(seed & mask != 0, "seed must be non-zero");
        assert!(taps & 1 == 1, "bit 0 must be tapped");
        Lfsr {
            state: seed & mask,
            taps: taps & mask,
            width,
        }
    }

    /// The classic maximal-length 16-bit LFSR: in right-shift Fibonacci
    /// form the polynomial x^16 + x^14 + x^13 + x^11 + 1 taps state bits
    /// 0, 2, 3 and 5 (`feedback = b0 ^ b2 ^ b3 ^ b5`).
    pub fn new_maximal16(seed: u16) -> Self {
        Lfsr::new(u64::from(seed), 0x002D, 16)
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        }
    }

    /// Advances one bit: returns the shifted-out bit.
    pub fn step(&mut self) -> bool {
        let feedback = (self.state & self.taps).count_ones() & 1 == 1;
        let out = self.state & 1 == 1;
        self.state >>= 1;
        if feedback {
            self.state |= 1 << (self.width - 1);
        }
        out
    }

    /// Advances a full word width and returns the new state as the next
    /// test pattern.
    pub fn next_pattern(&mut self) -> u64 {
        for _ in 0..self.width {
            self.step();
        }
        self.state
    }

    /// Current state.
    pub fn state(&self) -> u64 {
        self.state & self.mask()
    }

    /// The sequence period until the state first repeats (test helper;
    /// walks the LFSR, so use narrow widths only).
    pub fn period(mut self) -> u64 {
        let start = self.state;
        let mut n = 0u64;
        loop {
            self.step();
            n += 1;
            if self.state == start {
                return n;
            }
            assert!(n < 1 << 20, "period probe runaway");
        }
    }
}

/// A multiple-input signature register (parallel-input LFSR compactor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Misr {
    state: u64,
    taps: u64,
    width: u32,
}

impl Misr {
    /// A MISR with the given taps (same convention as [`Lfsr::new`]:
    /// bit 0 must be tapped so the compaction never *forgets* an error).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in 2..=64 or bit 0 is untapped.
    pub fn new(taps: u64, width: u32) -> Self {
        assert!((2..=64).contains(&width), "width 2-64");
        assert!(taps & 1 == 1, "bit 0 must be tapped");
        Misr {
            state: 0,
            taps,
            width,
        }
    }

    /// A 32-bit MISR with CRC-32-derived taps (bit 0 forced in).
    pub fn new32() -> Self {
        Misr::new(0xEDB8_8321, 32)
    }

    /// Folds one response word into the signature.
    pub fn absorb(&mut self, response: u64) {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        };
        let feedback = (self.state & self.taps).count_ones() & 1 == 1;
        self.state >>= 1;
        if feedback {
            self.state |= 1 << (self.width - 1);
        }
        self.state ^= response & mask;
        self.state &= mask;
    }

    /// The compacted signature.
    pub fn signature(&self) -> u64 {
        self.state
    }
}

/// SB behaviour running a BIST session: emits LFSR patterns on output 0
/// and compacts everything received on input 0 into a MISR.
///
/// Attach one `BistEngine` as the pattern source/response compactor and
/// route its output through the circuit under test (e.g. a
/// [`PipeTransform`](synchro_tokens::logic::PipeTransform) in another
/// SB) and back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistEngine {
    lfsr: Lfsr,
    misr: Misr,
    /// Patterns to emit in total.
    budget: u64,
    /// Patterns emitted.
    pub emitted: u64,
    /// Responses compacted.
    pub compacted: u64,
}

impl BistEngine {
    /// An engine that emits `budget` 16-bit patterns from `seed`.
    pub fn new(seed: u16, budget: u64) -> Self {
        BistEngine {
            lfsr: Lfsr::new_maximal16(seed),
            misr: Misr::new32(),
            budget,
            emitted: 0,
            compacted: 0,
        }
    }

    /// The signature so far.
    pub fn signature(&self) -> u64 {
        self.misr.signature()
    }

    /// True when every emitted pattern's response has been compacted.
    pub fn done(&self) -> bool {
        self.emitted == self.budget && self.compacted == self.budget
    }
}

impl SyncLogic for BistEngine {
    fn tick(&mut self, _cycle: u64, io: &mut SbIo<'_>) {
        if let Some(response) = io.recv(0) {
            self.misr.absorb(response);
            self.compacted += 1;
        }
        if self.emitted < self.budget && io.num_outputs() > 0 && io.can_send(0) {
            let pattern = self.lfsr.next_pattern();
            io.send(0, pattern);
            self.emitted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_sim::time::SimDuration;
    use synchro_tokens::logic::PipeTransform;
    use synchro_tokens::prelude::*;
    use synchro_tokens::scenarios::matched_ring_recycles;

    #[test]
    fn maximal16_has_full_period() {
        let lfsr = Lfsr::new_maximal16(1);
        assert_eq!(lfsr.period(), 65_535, "maximal-length 16-bit sequence");
    }

    #[test]
    fn lfsr_is_deterministic_and_seed_sensitive() {
        let run = |seed: u16| {
            let mut l = Lfsr::new_maximal16(seed);
            (0..16).map(|_| l.next_pattern()).collect::<Vec<_>>()
        };
        assert_eq!(run(0xACE1), run(0xACE1));
        assert_ne!(run(0xACE1), run(0xACE2));
    }

    #[test]
    fn misr_distinguishes_error_patterns() {
        let responses: Vec<u64> = (0..64).map(|i| i * 37 % 251).collect();
        let mut clean = Misr::new32();
        for r in &responses {
            clean.absorb(*r);
        }
        // A single-bit error anywhere changes the signature.
        for flip in [0usize, 17, 63] {
            let mut dirty = Misr::new32();
            for (i, r) in responses.iter().enumerate() {
                dirty.absorb(if i == flip { r ^ 1 } else { *r });
            }
            assert_ne!(clean.signature(), dirty.signature(), "flip at {flip}");
        }
    }

    #[test]
    #[should_panic(expected = "seed must be non-zero")]
    fn zero_seed_rejected() {
        let _ = Lfsr::new(0, 1, 16);
    }

    /// A BIST loop across a GALS boundary: engine SB -> CUT SB -> back.
    fn bist_loop_spec(ring_pct: u64, fifo_pct: u64) -> SystemSpec {
        let mut s = SystemSpec::default();
        let eng = s.add_sb("bist", SimDuration::ns(10));
        let cut = s.add_sb("cut", SimDuration::ns(12));
        let ring = s.add_ring(
            eng,
            cut,
            NodeParams::new(4, 1),
            SimDuration::ns(30).percent(ring_pct),
        );
        s.add_channel(
            eng,
            cut,
            ring,
            16,
            4,
            SimDuration::ps(300).percent(fifo_pct),
        );
        s.add_channel(
            cut,
            eng,
            ring,
            16,
            4,
            SimDuration::ps(300).percent(fifo_pct),
        );
        matched_ring_recycles(&mut s, 0);
        s
    }

    fn run_bist(ring_pct: u64, fifo_pct: u64) -> u64 {
        let spec = bist_loop_spec(ring_pct, fifo_pct);
        let (eng, cut) = (SbId(0), SbId(1));
        let mut sys = SystemBuilder::new(spec)
            .unwrap()
            .with_logic(eng, BistEngine::new(0xACE1, 64))
            .with_logic(cut, PipeTransform::new(8, |w| (w ^ 0x5A5A).rotate_left(3)))
            .with_trace_limit(1)
            .build();
        let mut budget = 0;
        while !sys.logic::<BistEngine>(eng).done() {
            sys.run_for(SimDuration::us(2)).unwrap();
            budget += 1;
            assert!(budget < 200, "BIST session did not converge");
        }
        sys.logic::<BistEngine>(eng).signature()
    }

    #[test]
    fn gals_bist_signature_is_delay_invariant() {
        // The chip-level payoff: a golden BIST signature is meaningful
        // because it does not depend on physical delays.
        let golden = run_bist(100, 100);
        assert_ne!(golden, 0);
        for (rp, fp) in [(50, 100), (200, 100), (100, 50), (100, 200), (150, 75)] {
            assert_eq!(
                run_bist(rp, fp),
                golden,
                "signature diverged at ring {rp}%, fifo {fp}%"
            );
        }
    }

    #[test]
    fn gals_bist_catches_an_injected_fault() {
        // Same loop, but the CUT has a stuck-at-style fault: the
        // signature must differ from golden.
        let golden = run_bist(100, 100);
        let spec = bist_loop_spec(100, 100);
        let (eng, cut) = (SbId(0), SbId(1));
        let mut sys = SystemBuilder::new(spec)
            .unwrap()
            .with_logic(eng, BistEngine::new(0xACE1, 64))
            // Fault: output bit 0 stuck at 1.
            .with_logic(
                cut,
                PipeTransform::new(8, |w| (w ^ 0x5A5A).rotate_left(3) | 1),
            )
            .with_trace_limit(1)
            .build();
        let mut budget = 0;
        while !sys.logic::<BistEngine>(eng).done() {
            sys.run_for(SimDuration::us(2)).unwrap();
            budget += 1;
            assert!(budget < 200);
        }
        assert_ne!(sys.logic::<BistEngine>(eng).signature(), golden);
    }
}
