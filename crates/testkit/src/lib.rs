//! # st-testkit — chip-level test and debug for synchro-tokens systems
//!
//! The paper's whole point is that deterministic GALS behaviour "supports
//! synchronous debug and test methodologies, including those based on
//! 1149.1 and P1500". This crate supplies that methodology layer:
//!
//! * [`TapFsm`] / [`TapPort`] — a complete IEEE 1149.1 Test Access Port
//!   (16-state controller, instruction register, data registers),
//! * [`Instruction`] — the public instructions plus the synchro-tokens
//!   private ones (hold/recycle/frequency registers, scan, token hold),
//! * [`P1500Wrapper`] — a P1500-style core wrapper (WIR/WBY/WBR),
//! * [`SelfTimedScanChain`] — the asynchronous scan chains whose heads
//!   and tails are synchronized to TCK,
//! * [`TestAccess`] — the §4.2 debug flows against a live
//!   [`System`](synchro_tokens::System): interlocked/independent TCK
//!   modes, deterministic breakpoints ("holding tokens indefinitely"),
//!   single-stepping, scan-based state read/write, and
//! * [`shmoo`] — clock-frequency shmooing that locates an SB's critical
//!   path by watching the deterministic I/O traces break,
//! * [`bist`] — LFSR pattern generation and MISR signature compaction;
//!   across GALS boundaries a golden signature is only meaningful
//!   because synchro-tokens makes response arrival cycles deterministic,
//! * [`chaos`] — differential fault-injection campaigns that attack the
//!   determinism invariant (analog jitter, protocol token/handshake
//!   faults, state SEUs) on both simulation backends and hold every run
//!   to a classified-outcome oracle.
//!
//! ## Example
//!
//! ```
//! use st_sim::time::SimDuration;
//! use st_testkit::{TestAccess, TckMode};
//! use synchro_tokens::scenarios::{build_e1, e1_spec};
//! use synchro_tokens::spec::SbId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sys = build_e1(e1_spec(), 0, 50);
//! sys.run_until_cycles(50, SimDuration::us(2000))?;
//! // Designate alpha as the Test SB and take a deterministic breakpoint.
//! let mut access = TestAccess::new(SbId(0), 0xC0DE_0001);
//! assert_eq!(access.mode(), TckMode::Interlocked);
//! let report = access.breakpoint(&mut sys, SimDuration::us(100))?;
//! assert!(!report.stopped.is_empty());
//! access.resume(&mut sys);
//! # Ok(())
//! # }
//! ```

pub mod bist;
pub mod chaos;
pub mod debug;
pub mod differential;
pub mod player;
pub mod registers;
pub mod scan;
pub mod tap;

pub use bist::{BistEngine, Lfsr, Misr};
pub use chaos::{
    chaos_jobs, configs_from_env, run_chaos_campaign, run_chaos_campaign_batched,
    run_chaos_campaign_batched_hooked, run_chaos_campaign_hooked, run_seu_sweep,
    run_seu_sweep_hooked, seu_sweep_plans, ChaosJob, ChaosReport, ChaosRun, SeuSweepReport,
    SeuSweepRun,
};
pub use debug::{
    shmoo, shmoo_any, shmoo_any_hooked, shmoo_grid, BreakpointReport, ShmooGridPoint, ShmooPoint,
    ShmooResult, TckMode, TestAccess,
};
pub use differential::case_budget;
pub use player::TapPort;
pub use registers::{DataRegister, Instruction, P1500Mode, P1500Wrapper, RegisterFile};
pub use scan::SelfTimedScanChain;
pub use tap::{TapFsm, TapState};
