//! The IEEE 1149.1 Test Access Port controller state machine.
//!
//! "The core of the Test SB is a Test Access Port (TAP) and associated
//! controller which is [1149.1] compliant" (§4.2). This module is the
//! classic 16-state FSM, kept pure (no kernel dependency) so it can be
//! unit- and property-tested exhaustively; the vector player in
//! [`crate::player`] drives it.

use std::fmt;

/// The sixteen TAP controller states of IEEE 1149.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TapState {
    /// Test-Logic-Reset (the power-up state).
    TestLogicReset,
    /// Run-Test/Idle.
    RunTestIdle,
    /// Select-DR-Scan.
    SelectDrScan,
    /// Capture-DR.
    CaptureDr,
    /// Shift-DR.
    ShiftDr,
    /// Exit1-DR.
    Exit1Dr,
    /// Pause-DR.
    PauseDr,
    /// Exit2-DR.
    Exit2Dr,
    /// Update-DR.
    UpdateDr,
    /// Select-IR-Scan.
    SelectIrScan,
    /// Capture-IR.
    CaptureIr,
    /// Shift-IR.
    ShiftIr,
    /// Exit1-IR.
    Exit1Ir,
    /// Pause-IR.
    PauseIr,
    /// Exit2-IR.
    Exit2Ir,
    /// Update-IR.
    UpdateIr,
}

impl TapState {
    /// All sixteen states.
    pub const ALL: [TapState; 16] = [
        TapState::TestLogicReset,
        TapState::RunTestIdle,
        TapState::SelectDrScan,
        TapState::CaptureDr,
        TapState::ShiftDr,
        TapState::Exit1Dr,
        TapState::PauseDr,
        TapState::Exit2Dr,
        TapState::UpdateDr,
        TapState::SelectIrScan,
        TapState::CaptureIr,
        TapState::ShiftIr,
        TapState::Exit1Ir,
        TapState::PauseIr,
        TapState::Exit2Ir,
        TapState::UpdateIr,
    ];

    /// The next state for a TMS value sampled on a rising TCK edge.
    pub fn next(self, tms: bool) -> TapState {
        use TapState::*;
        match (self, tms) {
            (TestLogicReset, true) => TestLogicReset,
            (TestLogicReset, false) => RunTestIdle,
            (RunTestIdle, true) => SelectDrScan,
            (RunTestIdle, false) => RunTestIdle,
            (SelectDrScan, true) => SelectIrScan,
            (SelectDrScan, false) => CaptureDr,
            (CaptureDr, true) => Exit1Dr,
            (CaptureDr, false) => ShiftDr,
            (ShiftDr, true) => Exit1Dr,
            (ShiftDr, false) => ShiftDr,
            (Exit1Dr, true) => UpdateDr,
            (Exit1Dr, false) => PauseDr,
            (PauseDr, true) => Exit2Dr,
            (PauseDr, false) => PauseDr,
            (Exit2Dr, true) => UpdateDr,
            (Exit2Dr, false) => ShiftDr,
            (UpdateDr, true) => SelectDrScan,
            (UpdateDr, false) => RunTestIdle,
            (SelectIrScan, true) => TestLogicReset,
            (SelectIrScan, false) => CaptureIr,
            (CaptureIr, true) => Exit1Ir,
            (CaptureIr, false) => ShiftIr,
            (ShiftIr, true) => Exit1Ir,
            (ShiftIr, false) => ShiftIr,
            (Exit1Ir, true) => UpdateIr,
            (Exit1Ir, false) => PauseIr,
            (PauseIr, true) => Exit2Ir,
            (PauseIr, false) => PauseIr,
            (Exit2Ir, true) => UpdateIr,
            (Exit2Ir, false) => ShiftIr,
            (UpdateIr, true) => SelectDrScan,
            (UpdateIr, false) => RunTestIdle,
        }
    }

    /// True in the two shift states (TDI moves through a register).
    pub fn is_shift(self) -> bool {
        matches!(self, TapState::ShiftDr | TapState::ShiftIr)
    }
}

impl fmt::Display for TapState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The TAP controller: current state plus transition statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapFsm {
    state: TapState,
    transitions: u64,
}

impl Default for TapFsm {
    fn default() -> Self {
        Self::new()
    }
}

impl TapFsm {
    /// A controller in Test-Logic-Reset (the mandated power-up state).
    pub fn new() -> Self {
        TapFsm {
            state: TapState::TestLogicReset,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> TapState {
        self.state
    }

    /// Applies one rising TCK edge with the given TMS level; returns the
    /// new state.
    pub fn clock(&mut self, tms: bool) -> TapState {
        self.state = self.state.next(tms);
        self.transitions += 1;
        self.state
    }

    /// Total TCK edges applied.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TapState::*;

    #[test]
    fn five_tms_ones_reset_from_any_state() {
        // The defining robustness property of the 1149.1 TAP.
        for start in TapState::ALL {
            let mut s = start;
            for _ in 0..5 {
                s = s.next(true);
            }
            assert_eq!(s, TestLogicReset, "from {start}");
        }
    }

    #[test]
    fn canonical_ir_scan_path() {
        let mut tap = TapFsm::new();
        // TLR -> RTI -> SelDR -> SelIR -> CapIR -> ShiftIR.
        for (tms, expect) in [
            (false, RunTestIdle),
            (true, SelectDrScan),
            (true, SelectIrScan),
            (false, CaptureIr),
            (false, ShiftIr),
            (false, ShiftIr),
            (true, Exit1Ir),
            (true, UpdateIr),
            (false, RunTestIdle),
        ] {
            assert_eq!(tap.clock(tms), expect);
        }
        assert_eq!(tap.transitions(), 9);
    }

    #[test]
    fn canonical_dr_scan_path_with_pause() {
        let mut tap = TapFsm::new();
        for (tms, expect) in [
            (false, RunTestIdle),
            (true, SelectDrScan),
            (false, CaptureDr),
            (false, ShiftDr),
            (true, Exit1Dr),
            (false, PauseDr),
            (false, PauseDr),
            (true, Exit2Dr),
            (false, ShiftDr),
            (true, Exit1Dr),
            (true, UpdateDr),
            (true, SelectDrScan),
        ] {
            assert_eq!(tap.clock(tms), expect);
        }
    }

    #[test]
    fn every_state_has_two_defined_successors() {
        for s in TapState::ALL {
            let a = s.next(false);
            let b = s.next(true);
            assert!(TapState::ALL.contains(&a));
            assert!(TapState::ALL.contains(&b));
        }
    }

    #[test]
    fn shift_states_flagged() {
        assert!(ShiftDr.is_shift());
        assert!(ShiftIr.is_shift());
        assert_eq!(TapState::ALL.iter().filter(|s| s.is_shift()).count(), 2);
    }

    #[test]
    fn reachability_every_state_from_reset() {
        // BFS over the transition graph must visit all 16 states.
        let mut seen = std::collections::BTreeSet::new();
        let mut queue = vec![TestLogicReset];
        while let Some(s) = queue.pop() {
            if seen.insert(s) {
                queue.push(s.next(false));
                queue.push(s.next(true));
            }
        }
        assert_eq!(seen.len(), 16);
    }
}
