//! TAP instructions and data registers, including the P1500-style core
//! wrapper registers.
//!
//! §4.2: "Standards 1149.1 and P1500 can be implemented with the Test SB
//! and self-timed scan chains … Making the hold, recycle, and clock
//! frequency registers in each system accessible through a scan chain
//! facilitates system performance tuning and clock frequency shmooing."

use std::collections::BTreeMap;
use std::fmt;

/// The instruction set of the reproduction's Test SB.
///
/// Public 1149.1 instructions plus the synchro-tokens private
/// instructions the paper's debug features need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Instruction {
    /// Mandatory BYPASS (all ones).
    Bypass,
    /// Device identification register.
    IdCode,
    /// SAMPLE/PRELOAD of the boundary register.
    SamplePreload,
    /// EXTEST through the boundary register.
    Extest,
    /// Private: read/write a node's hold register.
    HoldReg,
    /// Private: read/write a node's recycle register.
    RecycleReg,
    /// Private: read/write a clock's frequency-control register.
    FreqReg,
    /// Private: shift the internal (self-timed) scan chain.
    ScanState,
    /// Private: park/release tokens in the Test SB (breakpoints).
    TokenHold,
}

impl Instruction {
    /// 4-bit opcode (BYPASS must decode from all-ones per the standard).
    pub const fn opcode(self) -> u64 {
        match self {
            Instruction::IdCode => 0b0001,
            Instruction::SamplePreload => 0b0010,
            Instruction::Extest => 0b0011,
            Instruction::HoldReg => 0b1000,
            Instruction::RecycleReg => 0b1001,
            Instruction::FreqReg => 0b1010,
            Instruction::ScanState => 0b1011,
            Instruction::TokenHold => 0b1100,
            Instruction::Bypass => 0b1111,
        }
    }

    /// Decodes an opcode; unknown codes select BYPASS, as 1149.1
    /// requires.
    pub fn decode(code: u64) -> Instruction {
        match code & 0xF {
            0b0001 => Instruction::IdCode,
            0b0010 => Instruction::SamplePreload,
            0b0011 => Instruction::Extest,
            0b1000 => Instruction::HoldReg,
            0b1001 => Instruction::RecycleReg,
            0b1010 => Instruction::FreqReg,
            0b1011 => Instruction::ScanState,
            0b1100 => Instruction::TokenHold,
            _ => Instruction::Bypass,
        }
    }

    /// Width of the instruction register.
    pub const IR_WIDTH: u32 = 4;
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A shift-capture-update data register of up to 64 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRegister {
    width: u32,
    shift: u64,
    capture: u64,
    update: u64,
}

impl DataRegister {
    /// A register of `width` bits (1–64), all zeros.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "register width must be 1-64");
        DataRegister {
            width,
            shift: 0,
            capture: 0,
            update: 0,
        }
    }

    /// The register's width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        }
    }

    /// Sets the value that Capture-DR will load into the shift path.
    pub fn set_capture(&mut self, v: u64) {
        self.capture = v & self.mask();
    }

    /// The value most recently latched by Update-DR.
    pub fn update_value(&self) -> u64 {
        self.update
    }

    /// Capture-DR: parallel-load the shift path.
    pub fn capture(&mut self) {
        self.shift = self.capture;
    }

    /// One Shift-DR cycle: TDI enters the MSB, TDO leaves the LSB.
    pub fn shift_bit(&mut self, tdi: bool) -> bool {
        let tdo = self.shift & 1 == 1;
        self.shift >>= 1;
        if tdi {
            self.shift |= 1 << (self.width - 1);
        }
        tdo
    }

    /// Update-DR: latch the shift path to the parallel output.
    pub fn update(&mut self) {
        self.update = self.shift & self.mask();
    }
}

/// The register file of the Test SB: one [`DataRegister`] per
/// instruction (BYPASS and IDCODE get their mandated widths).
#[derive(Debug, Clone)]
pub struct RegisterFile {
    regs: BTreeMap<Instruction, DataRegister>,
    idcode: u32,
}

impl RegisterFile {
    /// A register file with the given 32-bit IDCODE (LSB must be 1 per
    /// the standard).
    pub fn new(idcode: u32) -> Self {
        let mut regs = BTreeMap::new();
        regs.insert(Instruction::Bypass, DataRegister::new(1));
        let mut id = DataRegister::new(32);
        id.set_capture(u64::from(idcode | 1));
        regs.insert(Instruction::IdCode, id);
        regs.insert(Instruction::SamplePreload, DataRegister::new(32));
        regs.insert(Instruction::Extest, DataRegister::new(32));
        regs.insert(Instruction::HoldReg, DataRegister::new(16));
        regs.insert(Instruction::RecycleReg, DataRegister::new(16));
        regs.insert(Instruction::FreqReg, DataRegister::new(8));
        regs.insert(Instruction::ScanState, DataRegister::new(64));
        regs.insert(Instruction::TokenHold, DataRegister::new(1));
        RegisterFile {
            regs,
            idcode: idcode | 1,
        }
    }

    /// The device's IDCODE.
    pub fn idcode(&self) -> u32 {
        self.idcode
    }

    /// The register selected by an instruction.
    pub fn register(&self, instr: Instruction) -> &DataRegister {
        &self.regs[&instr]
    }

    /// Mutable register access.
    pub fn register_mut(&mut self, instr: Instruction) -> &mut DataRegister {
        self.regs.get_mut(&instr).expect("all instructions mapped")
    }
}

/// A P1500-style core test wrapper: instruction register (WIR), bypass
/// (WBY) and boundary register (WBR) around one core.
#[derive(Debug, Clone)]
pub struct P1500Wrapper {
    wir: DataRegister,
    wby: DataRegister,
    wbr: DataRegister,
}

/// P1500 wrapper modes selected through the WIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P1500Mode {
    /// Functional (transparent) mode.
    Functional,
    /// Inward-facing test (core test through the WBR).
    IntTest,
    /// Outward-facing test (interconnect test).
    ExtTest,
    /// Bypass.
    Bypass,
}

impl P1500Wrapper {
    /// A wrapper with a `boundary_bits`-wide WBR.
    ///
    /// # Panics
    ///
    /// Panics if `boundary_bits` is 0 or exceeds 64.
    pub fn new(boundary_bits: u32) -> Self {
        P1500Wrapper {
            wir: DataRegister::new(3),
            wby: DataRegister::new(1),
            wbr: DataRegister::new(boundary_bits),
        }
    }

    /// Loads a mode through the WIR (capture-shift-update compressed).
    pub fn select(&mut self, mode: P1500Mode) {
        let code = match mode {
            P1500Mode::Functional => 0b000,
            P1500Mode::IntTest => 0b001,
            P1500Mode::ExtTest => 0b010,
            P1500Mode::Bypass => 0b111,
        };
        self.wir.capture();
        for i in 0..3 {
            self.wir.shift_bit((code >> i) & 1 == 1);
        }
        self.wir.update();
    }

    /// The currently selected mode.
    pub fn mode(&self) -> P1500Mode {
        match self.wir.update_value() {
            0b001 => P1500Mode::IntTest,
            0b010 => P1500Mode::ExtTest,
            0b111 => P1500Mode::Bypass,
            _ => P1500Mode::Functional,
        }
    }

    /// The boundary register.
    pub fn wbr(&mut self) -> &mut DataRegister {
        &mut self.wbr
    }

    /// The bypass register.
    pub fn wby(&mut self) -> &mut DataRegister {
        &mut self.wby
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcodes_round_trip() {
        for i in [
            Instruction::Bypass,
            Instruction::IdCode,
            Instruction::SamplePreload,
            Instruction::Extest,
            Instruction::HoldReg,
            Instruction::RecycleReg,
            Instruction::FreqReg,
            Instruction::ScanState,
            Instruction::TokenHold,
        ] {
            assert_eq!(Instruction::decode(i.opcode()), i, "{i}");
        }
    }

    #[test]
    fn unknown_opcode_selects_bypass() {
        assert_eq!(Instruction::decode(0b0111), Instruction::Bypass);
        assert_eq!(Instruction::decode(0b0000), Instruction::Bypass);
    }

    #[test]
    fn register_shift_is_fifo_lsb_first() {
        let mut r = DataRegister::new(4);
        r.set_capture(0b1010);
        r.capture();
        let mut out = 0u64;
        for i in 0..4 {
            let tdo = r.shift_bit((0b0110 >> i) & 1 == 1);
            out |= u64::from(tdo) << i;
        }
        assert_eq!(out, 0b1010, "capture emerges LSB first");
        r.update();
        assert_eq!(r.update_value(), 0b0110, "TDI lands in the register");
    }

    #[test]
    fn idcode_lsb_forced_to_one() {
        let rf = RegisterFile::new(0x1234_5670);
        assert_eq!(rf.idcode() & 1, 1);
        assert_eq!(rf.register(Instruction::Bypass).width(), 1);
        assert_eq!(rf.register(Instruction::IdCode).width(), 32);
    }

    #[test]
    #[should_panic(expected = "width must be 1-64")]
    fn zero_width_register_rejected() {
        let _ = DataRegister::new(0);
    }

    #[test]
    fn full_width_register_mask() {
        let mut r = DataRegister::new(64);
        r.set_capture(u64::MAX);
        r.capture();
        let mut ones = 0;
        for _ in 0..64 {
            if r.shift_bit(false) {
                ones += 1;
            }
        }
        assert_eq!(ones, 64);
    }

    #[test]
    fn p1500_mode_selection() {
        let mut w = P1500Wrapper::new(16);
        assert_eq!(w.mode(), P1500Mode::Functional);
        w.select(P1500Mode::IntTest);
        assert_eq!(w.mode(), P1500Mode::IntTest);
        w.select(P1500Mode::Bypass);
        assert_eq!(w.mode(), P1500Mode::Bypass);
        w.select(P1500Mode::ExtTest);
        assert_eq!(w.mode(), P1500Mode::ExtTest);
        w.select(P1500Mode::Functional);
        assert_eq!(w.mode(), P1500Mode::Functional);
    }

    #[test]
    fn p1500_boundary_register_shifts() {
        let mut w = P1500Wrapper::new(8);
        w.wbr().set_capture(0xA5);
        w.wbr().capture();
        let mut out = 0u64;
        for i in 0..8 {
            out |= u64::from(w.wbr().shift_bit(false)) << i;
        }
        assert_eq!(out, 0xA5);
    }
}
