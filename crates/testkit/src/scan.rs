//! Self-timed scan chains.
//!
//! §4.2: "Self-timed shift registers can be used for the boundary scan
//! chain, P1500 registers in the core wrappers, internal scan chains for
//! ATPG or BIST … Adding several empty stages to the tail of the chain
//! allows both ends of the chain to be synchronized to TCK."
//!
//! A self-timed shift register is a bit-wide micropipeline: each stage
//! forwards its bit as soon as the next stage is empty. Unlike a clocked
//! chain it has *elasticity* — occupancy can vary — which is exactly why
//! the empty tail stages are needed: they guarantee the tail can always
//! deliver a bit on each TCK while the head simultaneously accepts one.

/// A bit-wide micropipeline used as a scan chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTimedScanChain {
    /// `stages[0]` is the head (entry); the last stage is the tail
    /// (exit). `payload` stages carry state; `slack` stages are the
    /// "several empty stages added to the tail".
    stages: Vec<Option<bool>>,
    payload: usize,
    slack: usize,
}

impl SelfTimedScanChain {
    /// A chain of `payload` state stages plus `slack` empty tail stages.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is zero.
    pub fn new(payload: usize, slack: usize) -> Self {
        assert!(payload > 0, "scan payload must be non-empty");
        SelfTimedScanChain {
            stages: vec![None; payload + slack],
            payload,
            slack,
        }
    }

    /// Number of payload stages.
    pub fn payload(&self) -> usize {
        self.payload
    }

    /// Number of slack stages.
    pub fn slack(&self) -> usize {
        self.slack
    }

    /// Bits currently in flight.
    pub fn occupancy(&self) -> usize {
        self.stages.iter().filter(|s| s.is_some()).count()
    }

    /// Lets every bit advance as far as it can (the chain is self-timed:
    /// between TCK edges all bits settle toward the tail).
    pub fn settle(&mut self) {
        // Sweep from the tail so a bit can ripple multiple stages.
        for _ in 0..self.stages.len() {
            let mut moved = false;
            for i in (0..self.stages.len() - 1).rev() {
                if self.stages[i].is_some() && self.stages[i + 1].is_none() {
                    self.stages[i + 1] = self.stages[i].take();
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
    }

    /// Inserts a bit at the head; returns `false` (and drops nothing) if
    /// the head stage is still occupied — a handshake stall the TCK-side
    /// logic must respect.
    pub fn push(&mut self, bit: bool) -> bool {
        if self.stages[0].is_some() {
            return false;
        }
        self.stages[0] = Some(bit);
        true
    }

    /// Removes the tail bit if one has settled there.
    pub fn pop(&mut self) -> Option<bool> {
        let last = self.stages.len() - 1;
        self.stages[last].take()
    }

    /// One TCK period at the chain's boundary: the settled tail bit is
    /// sampled, a new bit enters the head, and the chain settles.
    /// Returns the sampled bit (`None` while the chain's pipeline is
    /// still filling).
    pub fn tck_shift(&mut self, bit_in: bool) -> Option<bool> {
        self.settle();
        let out = self.pop();
        let accepted = self.push(bit_in);
        debug_assert!(accepted, "head must be free after a settle");
        self.settle();
        out
    }

    /// Captures a parallel state vector into the payload stages
    /// (Capture-DR of the internal scan).
    ///
    /// # Panics
    ///
    /// Panics if `state` does not have exactly `payload` bits.
    pub fn capture(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.payload, "capture width mismatch");
        for s in &mut self.stages {
            *s = None;
        }
        for (i, b) in state.iter().enumerate() {
            self.stages[i] = Some(*b);
        }
    }

    /// Reads the payload stages as a parallel vector (Update-DR),
    /// requiring the chain to be settled into the payload positions.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `payload` bits are in flight.
    pub fn update(&mut self) -> Vec<bool> {
        self.settle();
        // After settling, `payload` bits occupy the last stages.
        let n = self.stages.len();
        let bits: Vec<bool> = self.stages[n - self.payload..]
            .iter()
            .map(|s| s.expect("payload underfilled at update"))
            .collect();
        bits
    }

    /// Shifts a whole word of `width` bits through the chain, returning
    /// what came out (LSB first on both sides). Convenience for tests
    /// and the debug harness.
    pub fn shift_word(&mut self, word: u64, width: u32) -> u64 {
        let mut out = 0u64;
        for i in 0..width {
            if let Some(b) = self.tck_shift((word >> i) & 1 == 1) {
                out |= u64::from(b) << i;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drained_chain_has_unit_latency() {
        // The chain is *elastic*: when the tail is consumed every TCK,
        // each bit ripples straight through and emerges one TCK later.
        let mut c = SelfTimedScanChain::new(4, 2);
        let mut outs = Vec::new();
        for i in 0..10u32 {
            outs.push(c.tck_shift(i % 3 == 0));
        }
        assert_eq!(outs[0], None);
        for (i, out) in outs.iter().enumerate().skip(1) {
            assert_eq!(*out, Some((i - 1) % 3 == 0), "bit {i}");
        }
    }

    #[test]
    fn capture_then_shift_out_reads_state() {
        let mut c = SelfTimedScanChain::new(8, 3);
        let state: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        c.capture(&state);
        let mut out = Vec::new();
        for _ in 0..8 {
            c.settle();
            out.push(c.pop().expect("settled bit at tail"));
        }
        // Captured LSB-at-head order: the stage nearest the tail pops
        // first, i.e. the *last* captured bit.
        let expect: Vec<bool> = state.iter().rev().copied().collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn shift_in_then_update_writes_state() {
        // Physical shift order: the first bit in travels furthest, so a
        // state vector is shifted in highest-index first (exactly like a
        // real scan chain's TDI ordering).
        let mut c = SelfTimedScanChain::new(4, 2);
        let state = [true, false, true, true];
        for b in state.iter().rev() {
            c.settle();
            assert!(c.push(*b));
        }
        assert_eq!(c.update(), state.to_vec());
    }

    #[test]
    fn slack_enables_simultaneous_ends() {
        // With zero slack a full chain cannot accept a new head bit in
        // the same TCK that the tail is consumed — the paper's reason
        // for the extra stages. With slack, tck_shift always succeeds.
        let mut c = SelfTimedScanChain::new(4, 2);
        for i in 0..64u32 {
            let _ = c.tck_shift(i % 2 == 0); // must never panic
        }
        assert!(c.occupancy() <= 6);
    }

    #[test]
    fn word_round_trip() {
        let mut c = SelfTimedScanChain::new(16, 4);
        // Unit latency: the word re-emerges shifted by one position.
        let first = c.shift_word(0xBEEF, 16);
        assert_eq!(first, (0xBEEF << 1) & 0xFFFF);
        let rest = c.shift_word(0, 16);
        assert_eq!(rest & 1, 1, "the word's MSB trails out first");
    }

    #[test]
    fn occupancy_tracks_in_flight_bits() {
        let mut c = SelfTimedScanChain::new(3, 1);
        assert_eq!(c.occupancy(), 0);
        assert!(c.push(true));
        assert!(!c.push(false), "head occupied until settle");
        c.settle();
        assert!(c.push(false));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "payload must be non-empty")]
    fn zero_payload_rejected() {
        let _ = SelfTimedScanChain::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "capture width mismatch")]
    fn capture_width_checked() {
        let mut c = SelfTimedScanChain::new(4, 0);
        c.capture(&[true; 5]);
    }
}
