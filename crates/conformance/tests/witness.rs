//! The conformance layer witnessing itself: the chained witness log is
//! a registered requirement like any other, and this suite is its
//! evidence.

use st_conformance::{
    content_key16, fnv1a64, mix64, witness_genesis, Registry, WitnessLog, WitnessRecord,
};

#[test]
fn witness_chain_is_the_documented_construction() {
    st_conformance::witnesses!(["ST-WIT-013"]);

    // The chain is exactly mix64(prev ^ fnv1a64(canonical bytes)),
    // recomputed here from first principles rather than through the
    // library's own helper.
    let mut log = WitnessLog::new();
    let config = content_key16(b"some request bytes");
    let result = content_key16(b"some result bytes");
    let rec = log.append(&["ST-DET-001"], config, result);

    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"STWR");
    bytes.extend_from_slice(&0u64.to_le_bytes()); // seq
    bytes.extend_from_slice(&1u32.to_le_bytes()); // one id
    bytes.extend_from_slice(&("ST-DET-001".len() as u32).to_le_bytes());
    bytes.extend_from_slice(b"ST-DET-001");
    bytes.extend_from_slice(&config);
    bytes.extend_from_slice(&result);
    assert_eq!(rec.canonical_bytes(), bytes);
    assert_eq!(rec.prev, witness_genesis());
    assert_eq!(rec.chain, mix64(witness_genesis() ^ fnv1a64(&bytes)));
    assert!(rec.verify());
}

#[test]
fn a_reconstructed_record_verifies_or_fails_like_the_original() {
    // Offline verification as a client would do it: rebuild the record
    // from serialized public fields only.
    let mut log = WitnessLog::new();
    let first = log.append(&["ST-CAMP-005"], [7; 16], [8; 16]);
    let second = log.append(&["ST-CHAOS-006", "ST-DET-001"], [9; 16], [10; 16]);

    let rebuilt = WitnessRecord {
        seq: second.seq,
        ids: second.ids.clone(),
        config: second.config,
        result: second.result,
        prev: first.chain,
        chain: second.chain,
    };
    assert!(rebuilt.verify());
    assert_eq!(log.head(), second.chain);

    // Dropping an ID from the set is detectable.
    let mut tampered = rebuilt;
    tampered.ids.pop();
    assert!(!tampered.verify());
}

#[test]
fn builtin_and_checked_in_registries_agree() {
    // The macro validates against the embedded copy; the lint checks
    // the file on disk. They must be the same document.
    let on_disk = Registry::parse(st_conformance::BUILTIN_REGISTRY_TOML).unwrap();
    assert_eq!(on_disk.content_hash(), Registry::builtin().content_hash());
}
