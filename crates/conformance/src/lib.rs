//! # st-conformance — the normative requirements registry and witness layer
//!
//! The paper's headline claim — every chip-level observation is a pure
//! function of local cycle counts — is stated normatively in
//! `conformance/requirements.toml` as RFC-2119 clauses with stable IDs
//! (`ST-<AREA>-<NNN>`). This crate makes that registry machine-checkable:
//!
//! * [`Registry`] parses the TOML registry (a deliberately tiny subset,
//!   hand-rolled so the crate stays dependency-free) and embeds a copy
//!   at build time ([`Registry::builtin`]).
//! * [`witnesses!`] is the declaration macro tests use to register which
//!   requirement IDs they witness. It validates the IDs against the
//!   embedded registry at run time (unknown IDs panic, so a typo fails
//!   the witnessing test itself) and, when `ST_WITNESS_DIR` is set,
//!   appends a machine-readable manifest line for the lint to collect.
//! * [`WitnessLog`] / [`WitnessRecord`] are the hashed witness log:
//!   every campaign run appends a canonical record (requirement IDs
//!   exercised, config hash, result digest) to a splitmix-chained head,
//!   and each record carries enough public state ([`WitnessRecord::verify`])
//!   to re-derive its chain value offline.
//! * `st-conformance-lint` (this crate's binary) cross-checks the
//!   registry against the `witnesses!` declarations in the workspace
//!   sources and fails CI on any unwitnessed requirement, unknown ID,
//!   or count below the registry's pinned `min_witnesses`.

use std::collections::BTreeMap;
use std::sync::OnceLock;

/// The registry source embedded at build time; the lint cross-checks
/// the checked-in file against this copy to catch stale builds.
pub const BUILTIN_REGISTRY_TOML: &str = include_str!("../../../conformance/requirements.toml");

// ---------------------------------------------------------------------------
// Hashing — byte-compatible with st-serve's ContentKey / the checkpoint
// content keys, so witness config hashes and store keys share one space.
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a (offset basis `0xcbf29ce484222325`, prime `0x100000001b3`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a64_seeded(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: full-avalanche bit mixing.
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// 128-bit content key over canonical bytes — the same construction as
/// `st_serve::hash::ContentKey::of` (two seeded FNV passes, length
/// folded, splitmix finalizer), reproduced here so the registry hash
/// and witness digests live in the workspace's one key space without a
/// dependency edge.
pub fn content_key16(bytes: &[u8]) -> [u8; 16] {
    let a = mix64(fnv1a64(bytes) ^ (bytes.len() as u64));
    let b = mix64(
        fnv1a64_seeded(0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15, bytes)
            .wrapping_add(bytes.len() as u64),
    );
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&a.to_le_bytes());
    k[8..].copy_from_slice(&b.to_le_bytes());
    k
}

/// Lower-case hex of a 16-byte key (32 chars).
pub fn key_hex(key: [u8; 16]) -> String {
    key.iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// RFC-2119 requirement level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Absolute requirement.
    Must,
    /// Recommended; deviations need a documented reason.
    Should,
    /// Truly optional.
    May,
}

impl Level {
    /// The registry/wire name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Must => "MUST",
            Level::Should => "SHOULD",
            Level::May => "MAY",
        }
    }

    /// Parses the registry name.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "MUST" => Some(Level::Must),
            "SHOULD" => Some(Level::Should),
            "MAY" => Some(Level::May),
            _ => None,
        }
    }
}

/// One normative clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Requirement {
    /// Stable identifier, `ST-<AREA>-<NNN>`. Never reused or renumbered.
    pub id: String,
    /// RFC-2119 level.
    pub level: Level,
    /// One-line summary.
    pub title: String,
    /// The clause itself.
    pub text: String,
    /// Free-form grouping tags.
    pub tags: Vec<String>,
    /// Pinned witness floor: the lint fails when fewer `witnesses!`
    /// declarations name this ID. Defaults to 1.
    pub min_witnesses: u64,
}

/// The parsed registry, requirement order preserved from the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registry {
    /// Registry format version (`version = N` at the top of the file).
    pub version: u64,
    /// The clauses, in file order.
    pub requirements: Vec<Requirement>,
}

impl Registry {
    /// The registry embedded at build time, parsed once per process.
    ///
    /// # Panics
    ///
    /// Panics if the checked-in registry fails to parse — a build with
    /// a malformed registry must not limp along witnessing nothing.
    pub fn builtin() -> &'static Registry {
        static BUILTIN: OnceLock<Registry> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            Registry::parse(BUILTIN_REGISTRY_TOML)
                .expect("conformance/requirements.toml must parse")
        })
    }

    /// Looks a requirement up by ID.
    pub fn get(&self, id: &str) -> Option<&Requirement> {
        self.requirements.iter().find(|r| r.id == id)
    }

    /// True when `id` names a registered requirement.
    pub fn contains(&self, id: &str) -> bool {
        self.get(id).is_some()
    }

    /// A 16-byte hash of the registry *content* (IDs, levels, titles,
    /// clauses, tags, witness floors — not comments or whitespace), the
    /// "spec version" stamped into bench snapshots and served by
    /// `/conformance`.
    pub fn content_hash(&self) -> [u8; 16] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"STRG");
        bytes.extend_from_slice(&self.version.to_le_bytes());
        let put = |bytes: &mut Vec<u8>, s: &str| {
            bytes.extend_from_slice(&(s.len() as u64).to_le_bytes());
            bytes.extend_from_slice(s.as_bytes());
        };
        for r in &self.requirements {
            put(&mut bytes, &r.id);
            put(&mut bytes, r.level.name());
            put(&mut bytes, &r.title);
            put(&mut bytes, &r.text);
            bytes.extend_from_slice(&(r.tags.len() as u64).to_le_bytes());
            for t in &r.tags {
                put(&mut bytes, t);
            }
            bytes.extend_from_slice(&r.min_witnesses.to_le_bytes());
        }
        content_key16(&bytes)
    }

    /// Parses the registry's TOML subset: comments, `version = N`, and
    /// `[[requirement]]` tables holding `key = value` pairs where a
    /// value is a `"string"`, an integer, or a `["string", ...]` array.
    ///
    /// # Errors
    ///
    /// Returns `line number: description` for the first offence —
    /// including anything outside the subset, so the registry cannot
    /// silently grow syntax this parser ignores.
    pub fn parse(src: &str) -> Result<Registry, String> {
        enum Target {
            Top,
            Requirement,
        }
        let mut version = None;
        let mut requirements: Vec<Requirement> = Vec::new();
        let mut target = Target::Top;
        // Collected per [[requirement]] table, flushed on the next
        // header or EOF.
        let mut current: Option<BTreeMap<String, Value>> = None;

        fn flush(
            current: &mut Option<BTreeMap<String, Value>>,
            out: &mut Vec<Requirement>,
        ) -> Result<(), String> {
            let Some(mut map) = current.take() else {
                return Ok(());
            };
            let take_str =
                |map: &mut BTreeMap<String, Value>, key: &str| -> Result<String, String> {
                    match map.remove(key) {
                        Some(Value::Str(s)) => Ok(s),
                        Some(_) => Err(format!("requirement key {key:?} must be a string")),
                        None => Err(format!("requirement missing key {key:?}")),
                    }
                };
            let id = take_str(&mut map, "id")?;
            let level_name = take_str(&mut map, "level")?;
            let level = Level::parse(&level_name)
                .ok_or_else(|| format!("{id}: unknown level {level_name:?}"))?;
            let title = take_str(&mut map, "title")?;
            let text = take_str(&mut map, "text")?;
            let tags = match map.remove("tags") {
                Some(Value::Arr(a)) => a,
                Some(_) => return Err(format!("{id}: tags must be a string array")),
                None => Vec::new(),
            };
            let min_witnesses = match map.remove("min_witnesses") {
                Some(Value::Int(n)) => n,
                Some(_) => return Err(format!("{id}: min_witnesses must be an integer")),
                None => 1,
            };
            if let Some(key) = map.keys().next() {
                return Err(format!("{id}: unknown requirement key {key:?}"));
            }
            if !id.starts_with("ST-") {
                return Err(format!("requirement id {id:?} must start with \"ST-\""));
            }
            if out.iter().any(|r| r.id == id) {
                return Err(format!("duplicate requirement id {id:?}"));
            }
            out.push(Requirement {
                id,
                level,
                title,
                text,
                tags,
                min_witnesses,
            });
            Ok(())
        }

        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[requirement]]" {
                flush(&mut current, &mut requirements).map_err(|e| format!("{lineno}: {e}"))?;
                current = Some(BTreeMap::new());
                target = Target::Requirement;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("{lineno}: unsupported table header {line:?}"));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("{lineno}: expected key = value"))?;
            let key = key.trim().to_owned();
            let value = parse_value(value.trim()).map_err(|e| format!("{lineno}: {e}"))?;
            match target {
                Target::Top => {
                    if key == "version" {
                        match value {
                            Value::Int(n) => version = Some(n),
                            _ => return Err(format!("{lineno}: version must be an integer")),
                        }
                    } else {
                        return Err(format!("{lineno}: unknown top-level key {key:?}"));
                    }
                }
                Target::Requirement => {
                    let map = current.as_mut().expect("in a requirement table");
                    if map.insert(key.clone(), value).is_some() {
                        return Err(format!("{lineno}: duplicate key {key:?}"));
                    }
                }
            }
        }
        flush(&mut current, &mut requirements)?;
        let version = version.ok_or("registry missing `version = N`")?;
        if requirements.is_empty() {
            return Err("registry holds no requirements".to_owned());
        }
        Ok(Registry {
            version,
            requirements,
        })
    }
}

/// A parsed TOML-subset value.
enum Value {
    Str(String),
    Int(u64),
    Arr(Vec<String>),
}

fn parse_value(src: &str) -> Result<Value, String> {
    if let Some(rest) = src.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string {src:?}"))?;
        if inner.contains('"') || inner.contains('\\') {
            return Err(format!("escapes/embedded quotes unsupported in {src:?}"));
        }
        return Ok(Value::Str(inner.to_owned()));
    }
    if let Some(rest) = src.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array {src:?}"))?;
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return Err(format!("array holds a non-string item in {src:?}")),
            }
        }
        return Ok(Value::Arr(items));
    }
    src.parse::<u64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value {src:?}"))
}

// ---------------------------------------------------------------------------
// Witness declarations
// ---------------------------------------------------------------------------

/// Declares which registered requirement IDs the enclosing test
/// witnesses.
///
/// Validates every ID against the embedded registry — an unknown ID
/// panics, so a typo fails the declaring test rather than silently
/// witnessing nothing — and, when `ST_WITNESS_DIR` names a directory,
/// appends a manifest line (`file:line<TAB>id,id,...`) for
/// `st-conformance-lint` to collect as runtime evidence.
#[macro_export]
macro_rules! witnesses {
    ([$($id:literal),+ $(,)?]) => {{
        const WITNESSED_IDS: &[&str] = &[$($id),+];
        $crate::record_witness(::core::file!(), ::core::line!(), WITNESSED_IDS);
    }};
}

/// The [`witnesses!`] runtime: ID validation plus optional manifest
/// emission. Call through the macro, not directly — the macro captures
/// the declaration site.
///
/// # Panics
///
/// Panics when `ids` is empty or contains an ID absent from the
/// registry.
pub fn record_witness(file: &str, line: u32, ids: &[&str]) {
    assert!(!ids.is_empty(), "witnesses!([]) declares nothing");
    let registry = Registry::builtin();
    for id in ids {
        assert!(
            registry.contains(id),
            "witnesses! names unregistered requirement {id:?} at {file}:{line}; \
             register it in conformance/requirements.toml first"
        );
    }
    let Ok(dir) = std::env::var("ST_WITNESS_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    // Manifest emission is best-effort: witnessing is proven by the
    // static scan; runtime manifests are corroborating evidence only,
    // so an unwritable directory must not fail the declaring test.
    let dir = std::path::PathBuf::from(dir);
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{}.witness", std::process::id()));
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "{file}:{line}\t{}", ids.join(","));
    }
}

// ---------------------------------------------------------------------------
// Hashed witness log
// ---------------------------------------------------------------------------

/// The chain head before any record: `fnv1a64(b"ST-WITNESS-LOG-V1")`.
pub fn witness_genesis() -> u64 {
    fnv1a64(b"ST-WITNESS-LOG-V1")
}

/// One canonical witness record: which requirements a run exercised,
/// over which configuration, producing which result bytes, chained to
/// the log's running hash.
///
/// `chain = mix64(prev ^ fnv1a64(canonical bytes))` — every field that
/// feeds the canonical bytes is public, so a served record verifies
/// offline ([`verify`](Self::verify)) with no access to the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessRecord {
    /// Position in the log, 0-based.
    pub seq: u64,
    /// Requirement IDs exercised, sorted.
    pub ids: Vec<String>,
    /// Content key of the configuration's canonical bytes.
    pub config: [u8; 16],
    /// Content key of the result's canonical bytes.
    pub result: [u8; 16],
    /// Chain head before this record.
    pub prev: u64,
    /// Chain head after this record.
    pub chain: u64,
}

impl WitnessRecord {
    /// The canonical bytes the chain hash covers (everything except
    /// `prev`/`chain`, which are the chain itself).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"STWR");
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.ids.len() as u32).to_le_bytes());
        for id in &self.ids {
            out.extend_from_slice(&(id.len() as u32).to_le_bytes());
            out.extend_from_slice(id.as_bytes());
        }
        out.extend_from_slice(&self.config);
        out.extend_from_slice(&self.result);
        out
    }

    /// The chain value this record *should* carry given its fields.
    pub fn expected_chain(&self) -> u64 {
        mix64(self.prev ^ fnv1a64(&self.canonical_bytes()))
    }

    /// Offline verification: does the carried chain value match the
    /// recomputation from the record's public fields?
    pub fn verify(&self) -> bool {
        self.chain == self.expected_chain()
    }
}

/// An append-only hashed witness log: a running splitmix-chained head
/// plus per-requirement witness counts. Records are returned to the
/// caller (st-serve stores one per job); the log itself keeps only the
/// aggregate state, so it never grows with service lifetime.
#[derive(Debug)]
pub struct WitnessLog {
    head: u64,
    appended: u64,
    counts: BTreeMap<String, u64>,
}

impl Default for WitnessLog {
    fn default() -> Self {
        Self::new()
    }
}

impl WitnessLog {
    /// An empty log at the genesis head.
    pub fn new() -> Self {
        WitnessLog {
            head: witness_genesis(),
            appended: 0,
            counts: BTreeMap::new(),
        }
    }

    /// The current chain head.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Number of records appended.
    pub fn len(&self) -> u64 {
        self.appended
    }

    /// True before the first append.
    pub fn is_empty(&self) -> bool {
        self.appended == 0
    }

    /// Witness count for one requirement ID.
    pub fn count(&self, id: &str) -> u64 {
        self.counts.get(id).copied().unwrap_or(0)
    }

    /// All `(id, count)` pairs, sorted by ID.
    pub fn counts(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(id, &n)| (id.as_str(), n))
    }

    /// Appends a record for a completed run and advances the head.
    ///
    /// # Panics
    ///
    /// Panics on an empty or unregistered ID set — the same contract as
    /// [`witnesses!`]; runtime emitters must not mint IDs the registry
    /// does not know.
    pub fn append(&mut self, ids: &[&str], config: [u8; 16], result: [u8; 16]) -> WitnessRecord {
        assert!(!ids.is_empty(), "a witness record must name requirements");
        let registry = Registry::builtin();
        let mut sorted: Vec<String> = ids.iter().map(|s| (*s).to_owned()).collect();
        sorted.sort();
        sorted.dedup();
        for id in &sorted {
            assert!(
                registry.contains(id),
                "witness record names unregistered requirement {id:?}"
            );
        }
        let mut record = WitnessRecord {
            seq: self.appended,
            ids: sorted,
            config,
            result,
            prev: self.head,
            chain: 0,
        };
        record.chain = record.expected_chain();
        self.head = record.chain;
        self.appended += 1;
        for id in &record.ids {
            *self.counts.entry(id.clone()).or_insert(0) += 1;
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_parses_with_at_least_ten_requirements() {
        let reg = Registry::builtin();
        assert!(reg.version >= 1);
        assert!(
            reg.requirements.len() >= 10,
            "the conformance surface is {} clauses; the acceptance floor is 10",
            reg.requirements.len()
        );
        for r in &reg.requirements {
            assert!(r.id.starts_with("ST-"), "{}", r.id);
            assert!(r.min_witnesses >= 1, "{} floor must be positive", r.id);
            assert!(!r.text.is_empty(), "{} has no clause text", r.id);
            assert!(
                r.text.contains(r.level.name()),
                "{}: the clause must use its own RFC-2119 keyword",
                r.id
            );
        }
        assert!(reg.contains("ST-DET-001"), "the headline claim is listed");
    }

    #[test]
    fn registry_hash_is_content_sensitive_and_comment_insensitive() {
        let reg = Registry::builtin();
        let hash = reg.content_hash();
        // Comments and blank lines do not move the hash...
        let stripped: String = BUILTIN_REGISTRY_TOML
            .lines()
            .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(Registry::parse(&stripped).unwrap().content_hash(), hash);
        // ...but any clause edit does.
        let mut edited = reg.clone();
        edited.requirements[0].min_witnesses += 1;
        assert_ne!(edited.content_hash(), hash);
        assert_eq!(key_hex(hash).len(), 32);
    }

    #[test]
    fn parser_rejects_out_of_subset_registries() {
        for (src, needle) in [
            ("version = 1", "no requirements"),
            (
                "[[requirement]]\nid = \"ST-X-1\"\nlevel = \"MUST\"\ntitle = \"t\"\ntext = \"x\"",
                "missing `version",
            ),
            ("version = \"one\"", "must be an integer"),
            ("version = 1\n[table]\n", "unsupported table header"),
            (
                "version = 1\n[[requirement]]\nid = \"X-1\"\nlevel = \"MUST\"\ntitle = \"t\"\ntext = \"x\"",
                "must start with",
            ),
            (
                "version = 1\n[[requirement]]\nid = \"ST-A-1\"\nlevel = \"OUGHT\"\ntitle = \"t\"\ntext = \"x\"",
                "unknown level",
            ),
            (
                "version = 1\n[[requirement]]\nid = \"ST-A-1\"\nlevel = \"MUST\"\ntitle = \"t\"\ntext = \"x\"\nbogus = 3",
                "unknown requirement key",
            ),
            (
                "version = 1\n[[requirement]]\nid = \"ST-A-1\"\nid = \"ST-A-2\"",
                "duplicate key",
            ),
        ] {
            let err = Registry::parse(src).unwrap_err();
            assert!(err.contains(needle), "{src:?} -> {err:?}");
        }
        // Duplicate IDs across tables are rejected too.
        let dup = "version = 1\n\
                   [[requirement]]\nid = \"ST-A-1\"\nlevel = \"MUST\"\ntitle = \"t\"\ntext = \"x\"\n\
                   [[requirement]]\nid = \"ST-A-1\"\nlevel = \"MUST\"\ntitle = \"t\"\ntext = \"x\"";
        assert!(Registry::parse(dup)
            .unwrap_err()
            .contains("duplicate requirement id"));
    }

    #[test]
    fn witness_log_chains_and_records_verify_offline() {
        let mut log = WitnessLog::new();
        assert_eq!(log.head(), witness_genesis());
        assert!(log.is_empty());

        let a = log.append(&["ST-DET-001", "ST-CAMP-005"], [1; 16], [2; 16]);
        let b = log.append(&["ST-DET-001"], [3; 16], [4; 16]);
        assert_eq!(a.seq, 0);
        assert_eq!(a.prev, witness_genesis());
        assert_eq!(b.prev, a.chain, "records chain head to head");
        assert_eq!(log.head(), b.chain);
        assert_eq!(log.len(), 2);
        assert_eq!(log.count("ST-DET-001"), 2);
        assert_eq!(log.count("ST-CAMP-005"), 1);
        assert_eq!(log.count("ST-EQ-002"), 0);

        // Offline verification from public fields alone.
        assert!(a.verify() && b.verify());
        let mut forged = b.clone();
        forged.result = [9; 16];
        assert!(!forged.verify(), "result tampering breaks the chain");
        let mut spliced = b;
        spliced.prev ^= 1;
        assert!(!spliced.verify(), "prev tampering breaks the chain");
    }

    #[test]
    fn witness_log_sorts_dedups_and_rejects_unknown_ids() {
        let mut log = WitnessLog::new();
        let rec = log.append(&["ST-EQ-003", "ST-DET-001", "ST-EQ-003"], [0; 16], [0; 16]);
        assert_eq!(rec.ids, vec!["ST-DET-001", "ST-EQ-003"]);
        assert!(std::panic::catch_unwind(|| {
            WitnessLog::new().append(&["ST-NOPE-999"], [0; 16], [0; 16])
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            record_witness("x.rs", 1, &["ST-NOPE-999"]);
        })
        .is_err());
    }

    #[test]
    fn manifest_lines_are_appended_when_the_dir_is_set() {
        // This test owns ST_WITNESS_DIR (the only mutator in this
        // binary; env mutation must not race other tests).
        let dir = std::env::temp_dir().join(format!("st-witness-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("ST_WITNESS_DIR", &dir);
        record_witness("suite.rs", 42, &["ST-DET-001", "ST-CKPT-007"]);
        std::env::remove_var("ST_WITNESS_DIR");
        let manifest = dir.join(format!("{}.witness", std::process::id()));
        let text = std::fs::read_to_string(&manifest).expect("manifest written");
        assert!(
            text.contains("suite.rs:42\tST-DET-001,ST-CKPT-007"),
            "{text:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
