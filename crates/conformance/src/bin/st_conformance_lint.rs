//! `st-conformance-lint` — cross-checks the requirements registry
//! against the `witnesses!` declarations in the workspace sources and
//! the runtime manifests test runs emit.
//!
//! Evidence comes from two places:
//!
//! * **Static declarations** — every `witnesses!(["ST-..."])` in a
//!   workspace `.rs` file (a textual scan, so a commented-out
//!   declaration counts as deleted). These are the normative evidence:
//!   the lint FAILS when a requirement has fewer declarations than its
//!   pinned `min_witnesses`, or when a declaration names an unknown ID.
//! * **Runtime manifests** — `*.witness` files under `ST_WITNESS_DIR`
//!   (default `<root>/target/st-witness`), appended by the macro when
//!   tests actually run. Reported as corroboration; only *unknown IDs*
//!   in manifests fail the lint (manifests may legitimately be absent,
//!   e.g. before the first test run).
//!
//! Modes:
//!
//! * default — the coverage report; exit 1 on any violation.
//! * `--table` — the markdown "Conformance coverage" table embedded in
//!   EXPERIMENTS.md.
//! * `--hash` — the registry content hash (32 hex chars), stamped into
//!   BENCH_*.json by scripts/bench_snapshot.sh.
//! * `--root <dir>` — repo root override (default: walk up from the
//!   current directory to the first `conformance/requirements.toml`).

use st_conformance::{key_hex, Registry};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One `witnesses!` occurrence found in a source file.
struct Declaration {
    file: String,
    ids: Vec<String>,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut table = false;
    let mut hash = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table" => table = true,
            "--hash" => hash = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(root) = root.or_else(find_root) else {
        eprintln!(
            "st-conformance-lint: no conformance/requirements.toml above the current directory"
        );
        return ExitCode::FAILURE;
    };

    let registry_path = root.join("conformance/requirements.toml");
    let src = match std::fs::read_to_string(&registry_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("st-conformance-lint: read {}: {e}", registry_path.display());
            return ExitCode::FAILURE;
        }
    };
    let registry = match Registry::parse(&src) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("st-conformance-lint: {}: {e}", registry_path.display());
            return ExitCode::FAILURE;
        }
    };

    if hash {
        println!("{}", key_hex(registry.content_hash()));
        return ExitCode::SUCCESS;
    }

    let mut errors = Vec::new();
    // A registry that drifted from the compiled-in copy means the
    // binaries (the macro's validation, st-serve's /conformance) were
    // built against different clauses than the lint is checking.
    if registry.content_hash() != Registry::builtin().content_hash() {
        errors.push(
            "registry drift: conformance/requirements.toml differs from the copy this \
             binary was built with — rebuild (cargo build -p st-conformance)"
                .to_owned(),
        );
    }

    let declarations = scan_workspace(&root, &mut errors);
    let mut static_counts: BTreeMap<&str, u64> = BTreeMap::new();
    for decl in &declarations {
        for id in &decl.ids {
            match registry.get(id) {
                Some(r) => *static_counts.entry(r.id.as_str()).or_insert(0) += 1,
                None => errors.push(format!(
                    "{}: witnesses! names unknown requirement {id:?}",
                    decl.file
                )),
            }
        }
    }

    let manifest_dir = std::env::var("ST_WITNESS_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("target/st-witness"));
    let runtime_counts = collect_manifests(&manifest_dir, &registry, &mut errors);

    for r in &registry.requirements {
        let have = static_counts.get(r.id.as_str()).copied().unwrap_or(0);
        if have == 0 {
            errors.push(format!(
                "{}: UNWITNESSED — no witnesses! declaration names it ({})",
                r.id, r.title
            ));
        } else if have < r.min_witnesses {
            errors.push(format!(
                "{}: {have} witness declaration(s), registry floor is {} — a declaration \
                 was deleted without lowering min_witnesses in review",
                r.id, r.min_witnesses
            ));
        }
    }

    if table {
        print_table(&registry, &static_counts);
    } else {
        println!(
            "conformance registry v{} ({} requirements, content hash {})",
            registry.version,
            registry.requirements.len(),
            key_hex(registry.content_hash())
        );
        println!(
            "{} witnesses! declaration(s) across the workspace; runtime manifests: {}",
            declarations.len(),
            if runtime_counts.is_empty() {
                format!("none under {}", manifest_dir.display())
            } else {
                format!("{}", manifest_dir.display())
            }
        );
        for r in &registry.requirements {
            let have = static_counts.get(r.id.as_str()).copied().unwrap_or(0);
            let runtime = runtime_counts.get(r.id.as_str()).copied().unwrap_or(0);
            println!(
                "  {:<13} {:<6} static {have}/{} runtime {runtime}  {}",
                r.id,
                r.level.name(),
                r.min_witnesses,
                r.title
            );
        }
    }

    if errors.is_empty() {
        if !table {
            println!("conformance lint OK");
        }
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("st-conformance-lint: FAIL: {e}");
        }
        eprintln!("st-conformance-lint: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("st-conformance-lint: {msg}");
    eprintln!("usage: st-conformance-lint [--root <dir>] [--table | --hash]");
    ExitCode::FAILURE
}

/// Walks up from the current directory to the first parent holding
/// `conformance/requirements.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("conformance/requirements.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects every `witnesses!` declaration in the workspace `.rs`
/// sources. Skipped subtrees: build output (`target`), the offline
/// dependency shims (`devstubs`), VCS internals, and this crate's own
/// `src` (the macro definition and its doc examples are not evidence).
fn scan_workspace(root: &Path, errors: &mut Vec<String>) -> Vec<Declaration> {
    let mut files = Vec::new();
    walk(root, root, &mut files);
    let mut found = Vec::new();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .display()
            .to_string();
        let mut rest = text.as_str();
        while let Some(at) = rest.find("witnesses!") {
            rest = &rest[at + "witnesses!".len()..];
            // Only an invocation is a candidate — a prose mention of the
            // macro name (doc comments, error strings) has no `(` and is
            // not evidence of anything.
            if !rest.trim_start().starts_with('(') {
                continue;
            }
            let Some(ids) = extract_ids(rest) else {
                errors.push(format!(
                    "{rel}: malformed witnesses! declaration (expected ([\"ST-...\", ...]))"
                ));
                continue;
            };
            if ids.is_empty() {
                errors.push(format!("{rel}: witnesses! declares no IDs"));
                continue;
            }
            found.push(Declaration {
                file: rel.clone(),
                ids,
            });
        }
    }
    found
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    const SKIP_DIRS: &[&str] = &["target", "devstubs", ".git", ".claude", ".cargo"];
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            if path == root.join("crates/conformance/src") {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Parses the `(["ID", "ID"])` tail after `witnesses!`. Tolerates
/// whitespace/newlines; stops at the closing bracket.
fn extract_ids(rest: &str) -> Option<Vec<String>> {
    let rest = rest.trim_start().strip_prefix('(')?;
    let rest = rest.trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    let inner = &rest[..end];
    let mut ids = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let id = part.strip_prefix('"')?.strip_suffix('"')?;
        ids.push(id.to_owned());
    }
    Some(ids)
}

/// Merges `*.witness` manifests: per-ID runtime witness counts.
/// Unknown IDs are violations (a manifest written by a stale binary
/// against a renamed requirement must be regenerated, not ignored).
fn collect_manifests(
    dir: &Path,
    registry: &Registry,
    errors: &mut Vec<String>,
) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return counts;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("witness") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        for line in text.lines() {
            let Some((site, ids)) = line.split_once('\t') else {
                errors.push(format!("{}: malformed manifest line", path.display()));
                continue;
            };
            for id in ids.split(',').filter(|s| !s.is_empty()) {
                if registry.contains(id) {
                    *counts.entry(id.to_owned()).or_insert(0) += 1;
                } else {
                    errors.push(format!(
                        "{}: manifest ({site}) names unknown requirement {id:?}",
                        path.display()
                    ));
                }
            }
        }
    }
    counts
}

fn print_table(registry: &Registry, static_counts: &BTreeMap<&str, u64>) {
    println!("| ID | Level | Requirement | Witnesses |");
    println!("|----|-------|-------------|-----------|");
    for r in &registry.requirements {
        let have = static_counts.get(r.id.as_str()).copied().unwrap_or(0);
        println!("| {} | {} | {} | {have} |", r.id, r.level.name(), r.title);
    }
}
