//! System-level simulation throughput: the event-kernel backend vs the
//! compiled flat typed-event engine, on the workloads the ISSUE's
//! acceptance bar names — the two-SB ping-pong and the paper's 3-SB /
//! 6-FIFO E1 platform — plus the sparse one-way producer→consumer pair
//! for a low-traffic reference point. Both backends produce
//! byte-identical traces (asserted by `compiled_equiv`), so this
//! measures pure simulation overhead per local cycle.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use st_sim::prelude::*;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::{
    build_e1_backend, build_pingpong_backend, e1_spec, producer_consumer_spec,
};

const CYCLES: u64 = 2_000;

fn build_pair(backend: Backend) -> AnySystem {
    SystemBuilder::new(producer_consumer_spec())
        .expect("valid spec")
        .with_logic(SbId(0), SequenceSource::new(100, 1))
        .with_logic(SbId(1), SinkCollect::new())
        .with_trace_limit(100)
        .build_backend(backend)
}

fn run(mut sys: AnySystem) -> u64 {
    let out = sys
        .run_until_cycles(CYCLES, SimDuration::us(3000))
        .expect("run");
    assert_eq!(out, RunOutcome::Reached);
    sys.cycles(SbId(0))
}

fn bench_system_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_sim");
    g.throughput(Throughput::Elements(CYCLES));

    g.bench_function("pingpong_2sb_event", |b| {
        b.iter(|| run(build_pingpong_backend(100, Backend::Event)))
    });
    g.bench_function("pingpong_2sb_compiled", |b| {
        let sys = build_pingpong_backend(100, Backend::Compiled);
        assert_eq!(sys.backend(), Backend::Compiled);
        b.iter(|| run(build_pingpong_backend(100, Backend::Compiled)))
    });

    g.bench_function("pair_1way_event", |b| {
        b.iter(|| run(build_pair(Backend::Event)))
    });
    g.bench_function("pair_1way_compiled", |b| {
        let sys = build_pair(Backend::Compiled);
        assert_eq!(sys.backend(), Backend::Compiled);
        b.iter(|| run(build_pair(Backend::Compiled)))
    });

    g.bench_function("e1_3sb_event", |b| {
        b.iter(|| run(build_e1_backend(e1_spec(), 0, 100, Backend::Event)))
    });
    g.bench_function("e1_3sb_compiled", |b| {
        let sys = build_e1_backend(e1_spec(), 0, 100, Backend::Compiled);
        assert_eq!(sys.backend(), Backend::Compiled);
        b.iter(|| run(build_e1_backend(e1_spec(), 0, 100, Backend::Compiled)))
    });

    g.finish();
}

criterion_group!(benches, bench_system_sim);
criterion_main!(benches);
