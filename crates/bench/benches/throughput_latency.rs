//! E4 bench: cost of one measured performance point for each discipline.
use criterion::{criterion_group, criterion_main, Criterion};
use st_bench::perf::{measure_stari, measure_synchro};
use st_sim::time::SimDuration;

fn bench_perf(c: &mut Criterion) {
    c.bench_function("synchro_point_h4", |b| {
        b.iter(|| measure_synchro(SimDuration::ns(10), SimDuration::ns(1), 4, 80))
    });
    c.bench_function("stari_point_h4", |b| {
        b.iter(|| measure_stari(SimDuration::ns(10), SimDuration::ns(1), 4, 200))
    });
}

criterion_group!(benches, bench_perf);
criterion_main!(benches);
