//! E1 bench: cost of one determinism-campaign run (build + 100 cycles +
//! trace digest) in synchro-tokens and bypass modes.
use criterion::{criterion_group, criterion_main, Criterion};
use st_sim::time::SimDuration;
use synchro_tokens::campaign::default_threads;
use synchro_tokens::determinism::{run_campaign_threads, CampaignConfig};
use synchro_tokens::scenarios::{build_e1, build_e1_bypass, e1_spec};
use synchro_tokens::spec::SbId;

fn bench_determinism(c: &mut Criterion) {
    let spec = e1_spec();
    c.bench_function("e1_run_100_cycles", |b| {
        b.iter(|| {
            let mut sys = build_e1(spec.clone(), 0, 100);
            sys.run_until_cycles(100, SimDuration::us(3000))
                .expect("run");
            (0..3).map(|i| sys.io_trace(SbId(i)).digest()).sum::<u64>()
        })
    });
    c.bench_function("e1_bypass_run_100_cycles", |b| {
        b.iter(|| {
            let mut sys = build_e1_bypass(spec.clone(), 7, 100);
            sys.run_until_cycles(100, SimDuration::us(3000))
                .expect("run");
            (0..3).map(|i| sys.io_trace(SbId(i)).digest()).sum::<u64>()
        })
    });
    // Whole-campaign cost (nominal reference + 8 delay configs) through
    // the parallel runner, sequential vs default thread fan-out.
    let cfg = CampaignConfig {
        runs: 8,
        compare_cycles: 50,
        ..CampaignConfig::default()
    };
    let build = |s, seed| build_e1(s, seed, 50);
    c.bench_function("e1_campaign_8_configs_seq", |b| {
        b.iter(|| run_campaign_threads(&spec, &cfg, &build, 1).0.total)
    });
    let threads = default_threads();
    c.bench_function("e1_campaign_8_configs_par", |b| {
        b.iter(|| run_campaign_threads(&spec, &cfg, &build, threads).0.total)
    });
}

criterion_group!(benches, bench_determinism);
criterion_main!(benches);
