//! Microbenchmarks of the simulation substrate (kernel event throughput,
//! FIFO traffic) — the cost model behind every experiment's runtime.
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use st_sim::prelude::*;

struct Toggler {
    out: BitSignal,
    half: SimDuration,
}
impl Component for Toggler {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        if matches!(cause, Wake::Start | Wake::Timer(_)) {
            ctx.toggle_bit(self.out, SimDuration::ZERO);
            ctx.set_timer(self.half, 0);
        }
    }
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    let events_per_run = 20_000u64;
    g.throughput(Throughput::Elements(events_per_run));
    g.bench_function("toggler_20k_events", |b| {
        b.iter(|| {
            let mut sb = SimBuilder::new();
            let s = sb.add_bit_signal_init("s", Bit::Zero);
            sb.add_component(
                "t",
                Toggler {
                    out: s,
                    half: SimDuration::ns(1),
                },
            );
            let mut sim = sb.build();
            sim.run_for(SimDuration::us(10)).expect("run");
            sim.events_scheduled()
        })
    });
    // Same-instant burst workload: 50 togglers sharing one period, so
    // every nanosecond fires a 100-event burst at a single instant —
    // the case the event queue's FIFO bucket fast path targets.
    g.bench_function("delta_storm_50_togglers", |b| {
        b.iter(|| {
            let mut sb = SimBuilder::new();
            for i in 0..50 {
                let s = sb.add_bit_signal_init(&format!("s{i}"), Bit::Zero);
                sb.add_component(
                    &format!("t{i}"),
                    Toggler {
                        out: s,
                        half: SimDuration::ns(1),
                    },
                );
            }
            let mut sim = sb.build();
            sim.run_for(SimDuration::ns(200)).expect("run");
            sim.events_scheduled()
        })
    });
    g.bench_function("fifo_1k_words", |b| {
        use st_channel::{FifoPorts, SelfTimedFifo};
        b.iter(|| {
            let mut sb = SimBuilder::new();
            let ports = FifoPorts::declare(&mut sb, "f");
            let _f = SelfTimedFifo::new(ports, 4, SimDuration::ns(1)).install(&mut sb, "f");
            let mut sim = sb.build();
            for i in 0..1000u64 {
                sim.drive(ports.put_data.id(), Value::Word(i), SimDuration::ns(10 * i));
                sim.drive(
                    ports.put_req.id(),
                    Value::from(i % 2 == 0),
                    SimDuration::ns(10 * i + 1),
                );
                sim.drive(
                    ports.get_ack.id(),
                    Value::from(i % 2 == 0),
                    SimDuration::ns(10 * i + 6),
                );
            }
            sim.run_for(SimDuration::us(11)).expect("run");
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
