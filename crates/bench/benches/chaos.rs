//! Chaos-campaign throughput: fault plans exercised per second.
//!
//! One "plan" is a full differential configuration — golden run plus an
//! attacked run on *each* backend, classified against the oracle — so
//! this tracks the cost of the robustness campaign ci.sh smokes and
//! EXPERIMENTS.md reports, as plans/s via `Throughput::Elements`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use st_sim::time::SimDuration;
use st_testkit::chaos::{chaos_jobs, run_chaos_campaign};
use synchro_tokens::scenarios::pingpong_spec;

const SEEDS: u64 = 8;
const CYCLES: u64 = 60;

fn bench_chaos(c: &mut Criterion) {
    let spec = pingpong_spec();
    let jobs = chaos_jobs(SEEDS);

    let mut g = c.benchmark_group("chaos");
    g.throughput(Throughput::Elements(jobs.len() as u64));

    g.bench_function("campaign_pingpong_1thread", |b| {
        b.iter(|| {
            let report = run_chaos_campaign(&spec, &jobs, CYCLES, SimDuration::us(2000), 1);
            assert!(report.violations().is_empty());
            report.runs.len()
        })
    });

    g.bench_function("campaign_pingpong_4threads", |b| {
        b.iter(|| {
            let report = run_chaos_campaign(&spec, &jobs, CYCLES, SimDuration::us(2000), 4);
            assert!(report.violations().is_empty());
            report.runs.len()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);
