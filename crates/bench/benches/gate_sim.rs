//! Gate-level simulation throughput on the synchro-token node circuit:
//! the scalar interpreter, the compiled op tape driven as a single
//! configuration, and the compiled tape with all 64 bit-parallel lanes
//! carrying independent token schedules.
//!
//! Throughput is counted in **configuration-cycles** (simulated clock
//! cycles × configurations evaluated per pass), so the per-element
//! medians of `scalar_node` and `lanes64_node` are directly comparable:
//! their ratio is the per-configuration speedup the compiled lane
//! engine buys for sweep workloads like `gate_equiv`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use st_cells::{build_node_circuit, CompiledCircuit, LANES};
use std::hint::black_box;

const CYCLES: usize = 1_000;

/// Per-cycle token-pulse masks: lane `L` gets its own sparse schedule,
/// so the 64-lane pass genuinely simulates 64 distinct configurations.
fn pulse_masks() -> Vec<u64> {
    (0..CYCLES)
        .map(|cycle| {
            let mut mask = 0u64;
            for lane in 0..LANES {
                if (cycle + lane) % (7 + lane % 5) == 0 {
                    mask |= 1 << lane;
                }
            }
            mask
        })
        .collect()
}

fn bench_gate_sim(c: &mut Criterion) {
    let nc = build_node_circuit(8, 4, 6, true, 6);
    let cc = CompiledCircuit::compile(&nc.circuit);
    let masks = pulse_masks();

    let mut g = c.benchmark_group("gate_sim");

    // Scalar interpreter: one configuration per pass (lane 0's schedule).
    g.throughput(Throughput::Elements(CYCLES as u64));
    g.bench_function("scalar_node", |b| {
        b.iter(|| {
            let mut st = nc.circuit.reset_state();
            for mask in &masks {
                nc.circuit.set_input(&mut st, nc.token_pulse, mask & 1 == 1);
                nc.circuit.clock_edge(&mut st);
            }
            black_box(nc.circuit.value(&st, nc.sbena))
        })
    });

    // Compiled tape, still counted as one configuration: isolates the
    // flat-tape win from the lane-parallel win.
    g.bench_function("compiled_node", |b| {
        b.iter(|| {
            let mut st = cc.reset_state();
            for mask in &masks {
                cc.drive(&mut st, nc.token_pulse, if mask & 1 == 1 { !0 } else { 0 });
                cc.clock_edge(&mut st);
            }
            black_box(cc.value(&st, nc.sbena))
        })
    });

    // Same tape, 64 independent configurations per pass.
    g.throughput(Throughput::Elements((CYCLES * LANES) as u64));
    g.bench_function("lanes64_node", |b| {
        b.iter(|| {
            let mut st = cc.reset_state();
            for mask in &masks {
                cc.drive(&mut st, nc.token_pulse, *mask);
                cc.clock_edge(&mut st);
            }
            black_box(cc.value(&st, nc.sbena))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_gate_sim);
criterion_main!(benches);
