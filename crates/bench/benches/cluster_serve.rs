//! Cluster-path benchmarks: what the fabric costs on the hot path.
//!
//! BENCH_5 put a single node's warm cache-hit round trip at ~86 µs/req
//! (serve/cache_hit_requests). The cluster rows answer two questions
//! against that baseline:
//!
//! * `cache_hit_requests` — the same full HTTP round trip (connect,
//!   POST /submit, GET /result) against a *clustered* node whose store
//!   already holds the bytes. The ring is consulted only on a miss, so
//!   this should price within noise of the single-node row: attaching
//!   the fabric must not tax the memoized path.
//! * `peer_get_roundtrip` — one `/peer/get` probe against a peer that
//!   owns the entry: the incremental network hop a non-owner pays when
//!   it serves a key from a remote store instead of its own. The gap
//!   between this row and zero is the price of *not* owning a key.
//!
//! The cluster is three in-process nodes with manual gossip (converged
//! once at setup), so the rows measure protocol + store, not
//! membership churn.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use st_serve::cluster::{Cluster, ClusterConfig};
use st_serve::http::{request, Server};
use st_serve::job::{JobRequest, Scenario, SimRequest};
use st_serve::service::{JobService, ServiceConfig};
use st_sim::time::SimDuration;
use std::sync::Arc;
use std::time::{Duration, Instant};
use synchro_tokens::Backend;

fn sim(seeds: Vec<u64>) -> JobRequest {
    JobRequest::Sim(SimRequest {
        scenario: Scenario::PingPong,
        backend: Backend::Compiled,
        seeds,
        cycles: 40,
        trace_cycles: 40,
        budget_fs: SimDuration::us(2000).as_fs(),
    })
}

struct Node {
    server: Server,
    cluster: Arc<Cluster>,
}

fn start_cluster(n: usize) -> Vec<Node> {
    let mut nodes: Vec<Node> = Vec::new();
    for i in 0..n {
        let service = JobService::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let server = Server::bind("127.0.0.1:0", service).unwrap();
        let cluster = Cluster::start(
            ClusterConfig {
                node_id: format!("bench-n{i}"),
                seeds: nodes.iter().map(|p| p.server.addr().to_string()).collect(),
                replicas: 2,
                gossip_interval: None,
                ..ClusterConfig::default()
            },
            server.addr(),
            server.service(),
        );
        server.service().attach_cluster(Arc::clone(&cluster));
        nodes.push(Node { server, cluster });
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        for node in &nodes {
            node.cluster.gossip_round();
        }
        if nodes.iter().all(|n| n.cluster.ring().len() == nodes.len()) {
            break;
        }
        assert!(Instant::now() < deadline, "bench cluster never converged");
    }
    nodes
}

/// Submits and waits until done; returns the job's content-key hex.
fn warm(addr: std::net::SocketAddr, body: &str) -> String {
    let (code, reply) = request(addr, "POST", "/submit", body.as_bytes()).unwrap();
    assert_eq!(code, 202, "{}", String::from_utf8_lossy(&reply));
    let v = st_serve::Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    let id = v.get("id").unwrap().as_u64().unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, body) = request(addr, "GET", &format!("/status/{id}"), b"").unwrap();
        let v = st_serve::Json::parse(&String::from_utf8_lossy(&body)).unwrap();
        match v.get("status").unwrap().as_str().unwrap() {
            "done" | "cached" => break,
            _ => {
                assert!(Instant::now() < deadline, "warmup job stalled");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    let (_, body) = request(addr, "GET", &format!("/status/{id}"), b"").unwrap();
    let v = st_serve::Json::parse(&String::from_utf8_lossy(&body)).unwrap();
    v.get("key").unwrap().as_str().unwrap().to_owned()
}

fn bench_cluster(c: &mut Criterion) {
    let mut nodes = start_cluster(3);
    let req = sim(vec![1, 2, 3, 4]).to_json().encode();

    // Warm every node: after these, each store holds the bytes locally
    // (execution on the owner, replication and forwarded serving
    // everywhere else), so the hit bench below never leaves the node.
    let mut key_hex = String::new();
    for node in &nodes {
        key_hex = warm(node.server.addr(), &req);
    }

    let mut g = c.benchmark_group("cluster_serve");
    g.throughput(Throughput::Elements(1));

    // Comparable like for like with BENCH_5 serve/cache_hit_requests.
    let addr = nodes[0].server.addr();
    g.bench_function("cache_hit_requests", |b| {
        b.iter(|| {
            let (code, reply) = request(addr, "POST", "/submit", req.as_bytes()).unwrap();
            assert_eq!(code, 202);
            let v = st_serve::Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
            assert_eq!(v.get("status").unwrap().as_str(), Some("cached"));
            let id = v.get("id").unwrap().as_u64().unwrap();
            let (code, body) = request(addr, "GET", &format!("/result/{id}"), b"").unwrap();
            assert_eq!(code, 200);
            body.len()
        })
    });

    // The inter-node hop: fetch the framed entry from a *peer*'s
    // store, as the routing layer does when it does not own a key.
    let peer = nodes[1].server.addr();
    let path = format!("/peer/get/{key_hex}");
    g.bench_function("peer_get_roundtrip", |b| {
        b.iter(|| {
            let (code, body) = request(peer, "GET", &path, b"").unwrap();
            assert_eq!(code, 200);
            body.len()
        })
    });
    g.finish();

    for node in &mut nodes {
        node.server.shutdown();
    }
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
