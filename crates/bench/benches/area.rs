//! E2 bench: cost of computing the Table 1 area models.
use criterion::{criterion_group, criterion_main, Criterion};
use st_cells::{node_netlist, system_wrapper_netlist, ChannelShape, Table1};

fn bench_area(c: &mut Criterion) {
    c.bench_function("table1_compute", |b| b.iter(Table1::compute));
    c.bench_function("node_netlist", |b| b.iter(node_netlist));
    c.bench_function("system_wrapper_64ch", |b| {
        let channels: Vec<ChannelShape> = (0..64)
            .map(|i| ChannelShape {
                bits: 8 + (i % 32),
                fifo_depth: 4,
            })
            .collect();
        b.iter(|| system_wrapper_netlist(32, &channels).area_ge())
    });
}

criterion_group!(benches, bench_area);
criterion_main!(benches);
