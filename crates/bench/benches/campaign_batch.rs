//! Batched lane-parallel campaign engine vs the scalar baselines.
//!
//! Three campaign shapes, each measured scalar and batched in the same
//! snapshot so the ratio is honest (same machine, same build, same
//! workload):
//!
//! * **sim** — N seeds over one scenario (the `st-serve` sim request):
//!   scalar = one `CompiledSystem` run per seed; batched = all seeds in
//!   one lockstep group.
//! * **shmoo grid** — periods × seeds (§4.2 sweep replicated over
//!   workloads): scalar = one run per cell, the nominal-period cell
//!   doubling as that seed's golden; batched = `st_testkit::shmoo_grid`,
//!   one lockstep group per period with the same golden amortization.
//! * **chaos** — the differential fault campaign: scalar =
//!   `run_chaos_campaign` (golden + two attacked backends per config);
//!   batched = `run_chaos_campaign_batched` (one batched golden over
//!   the distinct seeds + one attacked compiled run per config).
//!
//! Every bench declares `Throughput::Elements` as *configurations per
//! iteration*, so snapshots report comparable ns/config
//! (`median_ns_per_element` in BENCH_*.json) — comparing raw ns/iter
//! across batch sizes is the BENCH_5 `lanes64_node` trap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use st_sim::time::SimDuration;
use st_testkit::chaos::{chaos_jobs, run_chaos_campaign, run_chaos_campaign_batched};
use st_testkit::shmoo_grid;
use synchro_tokens::scenarios::{pingpong_spec, MixerLogic};
use synchro_tokens::system::SystemBuilder;
use synchro_tokens::{Backend, BatchedSystem, SbId, SystemSpec};

const CYCLES: u64 = 60;
const SIM_SEEDS: u64 = 16;
const GRID_PERIODS_NS: [u64; 5] = [4, 5, 6, 8, 10];
const CHAOS_SEEDS: u64 = 8;

/// The mixer workload salted per seed, exactly as `st-serve` and the
/// chaos campaigns build it.
fn mixer_builder(spec: &SystemSpec, seed: u64, trace_cycles: usize) -> SystemBuilder {
    let n = spec.sbs.len();
    let mut b = SystemBuilder::new(spec.clone())
        .expect("scenario specs are valid")
        .with_seed(seed)
        .with_trace_limit(trace_cycles);
    for i in 0..n {
        let salt = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1000 * i as u64);
        b = b.with_logic(SbId(i), MixerLogic::new(salt));
    }
    b
}

fn bench_campaign_batch(c: &mut Criterion) {
    let spec = pingpong_spec();
    let budget = SimDuration::us(2000);
    let mut g = c.benchmark_group("campaign_batch");

    // --- sim: N seeds, one scenario ------------------------------------
    g.throughput(Throughput::Elements(SIM_SEEDS));
    g.bench_function("sim16_scalar_compiled", |b| {
        b.iter(|| {
            let mut reached = 0;
            for seed in 0..SIM_SEEDS {
                let mut sys =
                    mixer_builder(&spec, seed, CYCLES as usize).build_backend(Backend::Compiled);
                if matches!(
                    sys.run_until_cycles(CYCLES, budget),
                    Ok(synchro_tokens::system::RunOutcome::Reached)
                ) {
                    reached += 1;
                }
            }
            assert_eq!(reached, SIM_SEEDS);
            reached
        })
    });
    g.bench_function("sim16_batched", |b| {
        b.iter(|| {
            let builders = (0..SIM_SEEDS)
                .map(|seed| mixer_builder(&spec, seed, CYCLES as usize))
                .collect();
            let mut batch = BatchedSystem::build(builders).expect("pingpong batches");
            let outcomes = batch.run_until_cycles(CYCLES, budget);
            assert!(outcomes
                .iter()
                .all(|o| *o == synchro_tokens::system::RunOutcome::Reached));
            outcomes.len()
        })
    });

    // --- shmoo grid: periods × seeds -----------------------------------
    let periods: Vec<SimDuration> = GRID_PERIODS_NS
        .iter()
        .map(|&n| SimDuration::ns(n))
        .collect();
    let seeds: Vec<u64> = (0..SIM_SEEDS).collect();
    let cells = (periods.len() as u64) * SIM_SEEDS;
    let make =
        |s: SystemSpec, seed: u64| -> SystemBuilder { mixer_builder(&s, seed, CYCLES as usize) };
    g.throughput(Throughput::Elements(cells));
    g.bench_function("shmoo_grid80_scalar_compiled", |b| {
        b.iter(|| {
            // One run per (period, seed) cell; the sweep includes the
            // nominal period, so that cell doubles as the seed's
            // golden — the same amortization `shmoo_grid` applies.
            let mut passes = 0usize;
            for &seed in &seeds {
                let mut digests: Vec<u64> = Vec::new();
                let mut cells: Vec<(bool, Vec<u64>)> = Vec::new();
                for &period in &periods {
                    let mut s = spec.clone();
                    s.sbs[0].period = period;
                    let mut sys = make(s, seed).build_backend(Backend::Compiled);
                    let completed = matches!(
                        sys.run_until_cycles(CYCLES, budget),
                        Ok(synchro_tokens::system::RunOutcome::Reached)
                    );
                    let d: Vec<u64> = (0..spec.sbs.len())
                        .map(|i| sys.io_trace(SbId(i)).digest())
                        .collect();
                    if period == spec.sbs[0].period {
                        digests = d.clone();
                    }
                    cells.push((completed, d));
                }
                passes += cells
                    .iter()
                    .filter(|(completed, d)| *completed && *d == digests)
                    .count();
            }
            passes
        })
    });
    g.bench_function("shmoo_grid80_batched", |b| {
        b.iter(|| {
            let grid = shmoo_grid(&spec, SbId(0), &periods, &seeds, CYCLES, &make);
            assert_eq!(grid.len(), cells as usize);
            grid.iter().filter(|p| p.pass).count()
        })
    });

    // --- chaos: the differential fault campaign ------------------------
    let jobs = chaos_jobs(CHAOS_SEEDS);
    g.throughput(Throughput::Elements(jobs.len() as u64));
    g.bench_function("chaos24_scalar", |b| {
        b.iter(|| {
            let report = run_chaos_campaign(&spec, &jobs, CYCLES, budget, 1);
            assert!(report.violations().is_empty());
            report.runs.len()
        })
    });
    g.bench_function("chaos24_batched", |b| {
        b.iter(|| {
            let report = run_chaos_campaign_batched(&spec, &jobs, CYCLES, budget, 1);
            assert!(report.violations().is_empty());
            report.runs.len()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_campaign_batch);
criterion_main!(benches);
