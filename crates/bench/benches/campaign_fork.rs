//! Prefix-fork SEU campaign vs straight per-variant runs.
//!
//! The workload is the chip-level shape checkpointing exists for: one
//! configuration, many SEU strike-point variants that all first fire
//! *late* in the run (cycle 48 of 60). A straight campaign recomputes
//! the identical fault-free prefix once per variant; the prefix-fork
//! planner runs that prefix once, checkpoints the engine, and resumes
//! every variant from the blob — determinism makes the fork exact, so
//! the two campaigns are asserted outcome-identical before measuring.
//!
//! Both sides go through `run_seu_sweep` (the `min_fork_cycle` floor
//! disables forking for the baseline), so the comparison isolates the
//! prefix sharing itself, not incidental harness differences.
//! Throughput is `Elements` = variants per iteration, comparable to
//! `campaign_batch/chaos24_batched` ns/config in BENCH_*.json.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use st_sim::time::SimDuration;
use st_testkit::chaos::{run_seu_sweep, seu_sweep_plans};
use synchro_tokens::scenarios::pingpong_spec;

const CYCLES: u64 = 60;
const FIRE_AT: u64 = 48;
const VARIANTS: usize = 24;
const SEED: u64 = 5;

fn bench_campaign_fork(c: &mut Criterion) {
    let spec = pingpong_spec();
    let budget = SimDuration::us(2000);
    let plans = seu_sweep_plans(&spec, FIRE_AT, VARIANTS);

    // Honesty check before timing anything: forked and straight sweeps
    // must classify every variant identically.
    let straight = run_seu_sweep(&spec, SEED, &plans, CYCLES, budget, 1, CYCLES + 1);
    let forked = run_seu_sweep(&spec, SEED, &plans, CYCLES, budget, 1, 8);
    assert_eq!(straight.forked(), 0);
    assert_eq!(forked.forked(), VARIANTS);
    assert_eq!(forked.prefixes, 1);
    assert!(straight.violations().is_empty() && forked.violations().is_empty());
    for (s, f) in straight.runs.iter().zip(&forked.runs) {
        assert_eq!(s.outcome.1, f.outcome.1, "variant {}", s.index);
    }

    let mut g = c.benchmark_group("campaign_fork");
    g.throughput(Throughput::Elements(VARIANTS as u64));
    g.bench_function("seu24_late_straight", |b| {
        b.iter(|| {
            let report = run_seu_sweep(&spec, SEED, &plans, CYCLES, budget, 1, CYCLES + 1);
            assert_eq!(report.forked(), 0);
            report.runs.len()
        })
    });
    g.bench_function("seu24_late_forked", |b| {
        b.iter(|| {
            let report = run_seu_sweep(&spec, SEED, &plans, CYCLES, budget, 1, 8);
            assert_eq!(report.forked(), VARIANTS);
            report.runs.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_campaign_fork);
criterion_main!(benches);
