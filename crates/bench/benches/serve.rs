//! Service-path benchmarks: what determinism-backed caching buys.
//!
//! Two numbers matter for st-serve:
//!
//! * `cache_hit_requests` — full HTTP round trips (connect, POST
//!   /submit, GET /result) against a warm cache, as requests/s. This is
//!   the steady-state cost of *serving* a memoized campaign: pure
//!   protocol + store, zero simulation.
//! * `cold_job_e2e` — submit-to-result latency for a job that misses
//!   the cache, measured by driving the manual-step service (no HTTP,
//!   no worker wakeup jitter). Each iteration uses a fresh seed so
//!   every request really computes.
//!
//! Together they show where serving time goes: a hit costs protocol +
//! store lookup *independent of campaign size*, while a cold job
//! scales with the simulated work — so the hit path wins by a growing
//! margin as campaigns get bigger.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use st_serve::http::{request, Server};
use st_serve::job::{JobRequest, Scenario, SimRequest};
use st_serve::service::{JobService, ServiceConfig, Submission};
use st_sim::time::SimDuration;
use synchro_tokens::Backend;

fn sim(seeds: Vec<u64>) -> JobRequest {
    JobRequest::Sim(SimRequest {
        scenario: Scenario::PingPong,
        backend: Backend::Compiled,
        seeds,
        cycles: 40,
        trace_cycles: 40,
        budget_fs: SimDuration::us(2000).as_fs(),
    })
}

fn bench_cache_hits(c: &mut Criterion) {
    let service = JobService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let addr = server.addr();
    let req = sim(vec![1, 2, 3, 4]).to_json().encode();

    // Warm the cache and learn the job id once.
    let (code, reply) = request(addr, "POST", "/submit", req.as_bytes()).unwrap();
    assert_eq!(code, 202, "{}", String::from_utf8_lossy(&reply));
    loop {
        let (_, body) = request(addr, "GET", "/metrics", b"").unwrap();
        if String::from_utf8_lossy(&body).contains("st_serve_jobs_done_total 1") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let mut g = c.benchmark_group("serve");
    g.throughput(Throughput::Elements(1));
    g.bench_function("cache_hit_requests", |b| {
        b.iter(|| {
            let (code, reply) = request(addr, "POST", "/submit", req.as_bytes()).unwrap();
            assert_eq!(code, 202);
            let v = st_serve::Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
            assert_eq!(v.get("status").unwrap().as_str(), Some("cached"));
            let id = v.get("id").unwrap().as_u64().unwrap();
            let (code, body) = request(addr, "GET", &format!("/result/{id}"), b"").unwrap();
            assert_eq!(code, 200);
            body.len()
        })
    });
    g.finish();
    server.shutdown();
}

fn bench_cold_jobs(c: &mut Criterion) {
    let service = JobService::start(ServiceConfig {
        workers: 0,
        cache_entries: 4, // tiny LRU: old results fall out, stays cold
        ..ServiceConfig::default()
    });

    let mut g = c.benchmark_group("serve");
    g.throughput(Throughput::Elements(1));
    let mut seed = 0u64;
    g.bench_function("cold_job_e2e", |b| {
        b.iter(|| {
            // Fresh seeds -> guaranteed miss; same 4-seed shape as the
            // hit bench so the two rows compare like for like.
            seed += 4;
            let seeds = vec![seed, seed + 1, seed + 2, seed + 3];
            let Submission::Queued(id) = service.submit(sim(seeds), None) else {
                panic!("cold request must queue")
            };
            assert!(service.step());
            service.result(id).unwrap().len()
        })
    });
    g.finish();
    service.shutdown();
}

criterion_group!(benches, bench_cache_hits, bench_cold_jobs);
criterion_main!(benches);
