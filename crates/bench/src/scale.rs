//! E8 (extension) — the paper's future work: "the implementation of a
//! larger system for further performance studies."
//!
//! Scales the synchro-tokens fabric to pipelines of N blocks and
//! measures (a) that determinism survives, (b) end-to-end pipeline
//! latency and per-stage throughput, and (c) simulator cost, so the
//! harness's own limits are documented.

use st_sim::time::SimDuration;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::{build_e1, chain_spec};

/// One scalability measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Pipeline stages.
    pub n: usize,
    /// Local cycles run per stage.
    pub cycles: u64,
    /// Wall-clock seconds for build + run.
    pub wall_seconds: f64,
    /// Words delivered at the pipeline tail.
    pub tail_words: u64,
    /// Sum of per-SB I/O digests (the determinism witness).
    pub digest: u64,
    /// Simulated time consumed.
    pub simulated: SimDuration,
}

/// Runs a chain of `n` stages for `cycles` local cycles per stage.
pub fn measure_chain(n: usize, cycles: u64) -> ScalePoint {
    let spec = chain_spec(n);
    let started = std::time::Instant::now();
    let mut sys = build_e1(spec, 0, cycles as usize);
    let out = sys
        .run_until_cycles(cycles, SimDuration::us(200_000))
        .expect("chain run");
    assert_eq!(out, RunOutcome::Reached, "chain of {n} did not finish");
    let wall_seconds = started.elapsed().as_secs_f64();
    let tail = ChannelId(n - 2); // last channel feeds the final stage
    let (_, tail_words, over, under) = sys.fifo_stats(tail);
    assert_eq!(over, 0);
    assert_eq!(under, 0);
    let digest = (0..n)
        .map(|i| sys.io_trace(SbId(i)).digest())
        .fold(0u64, |a, d| a.wrapping_add(d.rotate_left(7)));
    ScalePoint {
        n,
        cycles,
        wall_seconds,
        tail_words,
        digest,
        simulated: sys.now().since(st_sim::time::SimTime::ZERO),
    }
}

/// The sweep used by `repro_scale`, sequential.
pub fn sweep(sizes: &[usize], cycles: u64) -> Vec<ScalePoint> {
    sweep_threads(sizes, cycles, 1)
}

/// The sweep fanned across worker threads. Each chain builds its own
/// simulator, so digests, tail words and simulated time are identical to
/// the sequential sweep; only per-point wall time is machine-dependent.
pub fn sweep_threads(sizes: &[usize], cycles: u64, threads: usize) -> Vec<ScalePoint> {
    synchro_tokens::campaign::run_jobs(sizes, threads, |_, &n| measure_chain(n, cycles))
}

/// Formats the sweep.
pub fn render_table(points: &[ScalePoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "scalability: pipelines of N synchro-tokens stages");
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>12} {:>11} {:>12} {:>18}",
        "N", "cycles", "tail words", "sim time", "wall (s)", "digest"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>4} {:>8} {:>12} {:>11} {:>12.3} {:>#18x}",
            p.n, p.cycles, p.tail_words, p.simulated, p.wall_seconds, p.digest
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_scale_and_deliver() {
        for n in [2usize, 4, 8] {
            let p = measure_chain(n, 60);
            assert!(p.tail_words > 0, "N={n}: tail starved");
        }
    }

    #[test]
    fn chain_runs_are_reproducible_at_scale() {
        let a = measure_chain(6, 60);
        let b = measure_chain(6, 60);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.tail_words, b.tail_words);
        assert_eq!(a.simulated, b.simulated);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let sizes = [2usize, 3, 4, 5];
        let seq = sweep(&sizes, 40);
        let par = sweep_threads(&sizes, 40, 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.n, b.n);
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.tail_words, b.tail_words);
            assert_eq!(a.simulated, b.simulated);
        }
    }

    #[test]
    fn table_renders() {
        let t = render_table(&sweep(&[2, 3], 40));
        assert!(t.contains("scalability"));
        assert_eq!(t.lines().count(), 4);
    }
}
