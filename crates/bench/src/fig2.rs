//! E3 — Figure 2: waveforms illustrating the node state machine.
//!
//! Reproduces the annotated waveform of the paper: a single ring whose
//! token is deliberately late on one rotation, so that the trace shows
//! the full A–M event sequence — hold countdown (D), preset (E), pass
//! (F), recycle countdown (H), clken deassertion (I), synchronous stop
//! (J), token return (K) and asynchronous restart (L).

use st_sim::prelude::*;
use st_sim::time::SimTime;
use synchro_tokens::prelude::*;

/// Everything the Figure 2 reproduction produces.
#[derive(Debug)]
pub struct Fig2Output {
    /// ASCII waveform of the wrapper signals.
    pub ascii: String,
    /// Full VCD dump (viewable in GTKWave).
    pub vcd: String,
    /// Times at which the clock parked and restarted (events J and L).
    pub stop_events: Vec<(SimTime, SimTime)>,
    /// The spec used.
    pub spec: SystemSpec,
}

/// Builds and runs the Figure 2 scenario.
///
/// Uses H=4, R=6 and a ring delay long enough that the token is late
/// every rotation: each rotation exhibits the complete stop/restart
/// sequence.
pub fn reproduce_fig2() -> Fig2Output {
    let mut spec = SystemSpec::default();
    let a = spec.add_sb("node_a", SimDuration::ns(10));
    let b = spec.add_sb("node_b", SimDuration::ns(10));
    // Round trip: 4*10 + 4*10 + 2*60 = 200ns; recycle 6 covers only
    // 60ns after the pass -> the token is late and the clock stops.
    let ring = spec.add_ring(a, b, NodeParams::new(4, 6), SimDuration::ns(60));
    spec.add_channel(a, b, ring, 16, 4, SimDuration::ps(500));

    let mut sys = SystemBuilder::new(spec.clone())
        .expect("fig2 spec valid")
        .with_logic(a, SequenceSource::new(1, 1))
        .with_logic(b, SinkCollect::new())
        .with_trace_limit(64)
        .observe_nodes()
        .build();
    sys.run_for(SimDuration::ns(700)).expect("fig2 run");

    // Collect stop/restart pairs from the clken waveform of node_a.
    let sim = sys.sim();
    let trace = sim.trace();
    let clken_sig = trace
        .signals()
        .find(|s| trace.name(*s) == Some("node_a.clken"))
        .expect("clken traced");
    let mut stop_events = Vec::new();
    let mut down_at: Option<SimTime> = None;
    for (t, v) in trace.changes(clken_sig) {
        match v.as_bit() {
            Some(Bit::Zero) => down_at = Some(t),
            Some(Bit::One) => {
                if let Some(d) = down_at.take() {
                    stop_events.push((d, t));
                }
            }
            _ => {}
        }
    }

    let ascii = trace.render_ascii(SimTime::ZERO, SimDuration::ns(5), 120);
    let vcd = trace.to_vcd("fig2");
    Fig2Output {
        ascii,
        vcd,
        stop_events,
        spec,
    }
}

/// The annotated legend printed alongside the waveform.
pub const FIG2_LEGEND: &str = "\
Figure 2 events (paper annotation -> waveform):
  A/K  token arrives           (ring0.tok_to_* toggles)
  B    recycle counter at zero (node_a.ring0.recycle hits 0)
  C    sbena asserted          (node_a.ring0.sbena high)
  D    hold counter decrements (node_a.ring0.hold counts down)
  E    hold counter presets    (node_a.ring0.hold reloads)
  F    token passed            (ring0.tok_to_node_b toggles)
  G    SBs disabled            (sbena low)
  H    recycle decrements      (node_a.ring0.recycle counts down)
  I    clken deasserted        (node_a.clken low)
  J    clock stops             (node_a.clk flatlines)
  L    clock restarts          (node_a.clk resumes after K)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_shows_late_token_stops() {
        let out = reproduce_fig2();
        assert!(
            !out.stop_events.is_empty(),
            "the fig2 scenario must exhibit a clock stop"
        );
        // Each stop must be followed by a restart (pairs are complete).
        for (down, up) in &out.stop_events {
            assert!(up > down);
        }
    }

    #[test]
    fn waveform_contains_the_wrapper_signals() {
        let out = reproduce_fig2();
        for sig in [
            "node_a.clk",
            "node_a.clken",
            "node_a.ring0.sbena",
            "node_a.ring0.hold",
            "node_a.ring0.recycle",
            "ring0.tok_to_node_b",
        ] {
            assert!(out.ascii.contains(sig), "missing {sig} in ascii waveform");
            assert!(out.vcd.contains(sig), "missing {sig} in vcd");
        }
    }

    #[test]
    fn vcd_is_structurally_valid() {
        let out = reproduce_fig2();
        assert!(out.vcd.starts_with("$timescale"));
        assert!(out.vcd.contains("$enddefinitions $end"));
        let stamps: Vec<u64> = out
            .vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stop_restart_cadence_is_periodic() {
        // The late token arrives at a fixed offset each rotation;
        // deterministic behaviour means the stop durations repeat.
        let out = reproduce_fig2();
        assert!(out.stop_events.len() >= 2);
        let durations: Vec<u64> = out
            .stop_events
            .iter()
            .map(|(d, u)| u.since(*d).as_fs())
            .collect();
        // Skip the first (phase-in) pair; the rest must be identical.
        let steady = &durations[1..];
        assert!(
            steady.windows(2).all(|w| w[0] == w[1]),
            "stop durations vary: {durations:?}"
        );
    }
}
