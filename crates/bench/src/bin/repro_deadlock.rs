//! E6 — the §5 deadlock paragraph: deterministic deadlock and the
//! reconstructed prevention rules.
use st_sim::time::SimDuration;
use synchro_tokens::deadlock::{analyze, apply_prevention_rule};
use synchro_tokens::prelude::*;
use synchro_tokens::rules::ScaleRange;
use synchro_tokens::scenarios::{build_e1, starved_triangle_spec};

fn main() {
    let spec = starved_triangle_spec();
    println!("{}", spec.describe());
    let verdict = analyze(&spec, ScaleRange::NOMINAL);
    println!("static analysis: {verdict}");

    let mut runs = Vec::new();
    for attempt in 0..3 {
        let mut sys = build_e1(spec.clone(), 0, 10);
        let out = sys
            .run_until_cycles(500, SimDuration::us(500))
            .expect("run");
        let cycles: Vec<u64> = (0..3).map(|i| sys.cycles(SbId(i))).collect();
        println!("run {attempt}: {out:?} at local cycles {cycles:?}");
        runs.push((format!("{out:?}"), cycles));
    }
    assert!(runs.windows(2).all(|w| w[0] == w[1]));
    println!("-> deadlock occurs and is deterministic (paper: 'whether or not");
    println!("   deadlock occurs is deterministic; thus, no detection or recovery");
    println!("   methodology is needed')");

    let fixed = apply_prevention_rule(spec, ScaleRange::NOMINAL);
    println!(
        "\nafter prevention rule: {}",
        analyze(&fixed, ScaleRange::NOMINAL)
    );
    let mut sys = build_e1(fixed, 0, 10);
    let out = sys
        .run_until_cycles(300, SimDuration::us(2000))
        .expect("run");
    println!("fixed system: {out:?}");
    assert_eq!(out, RunOutcome::Reached);
}
