//! Runs every reproduction binary's logic in sequence (smoke scale).
use std::process::Command;

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    let bins = [
        ("repro_table1", vec![]),
        ("repro_fig2", vec![]),
        ("repro_perf", vec!["120".to_string()]),
        ("repro_tradeoff", vec![]),
        (
            "repro_determinism",
            vec!["300".to_string(), "60".to_string()],
        ),
        ("repro_deadlock", vec![]),
        ("repro_debug", vec![]),
        ("repro_scale", vec!["60".to_string()]),
    ];
    for (bin, args) in bins {
        println!("\n=============== {bin} ===============");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall reproductions completed");
}
