//! E2 — regenerates Table 1 (component area models).
fn main() {
    println!("{}", st_bench::area_report());
}
