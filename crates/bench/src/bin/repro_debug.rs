//! E7 — the §4.2 debug and test features, exercised end to end.
use st_sim::time::SimDuration;
use st_testkit::{shmoo, TestAccess};
use synchro_tokens::scenarios::{build_e1, e1_spec, MixerLogic};
use synchro_tokens::spec::SbId;

fn main() {
    let mut sys = build_e1(e1_spec(), 0, 50);
    sys.run_until_cycles(50, SimDuration::us(2000))
        .expect("warm up");

    // Interlocked-mode breakpoint via the TAP.
    let mut access = TestAccess::new(SbId(0), 0xC0DE_0001);
    println!("IDCODE: {:#010x}", access.read_idcode());
    let report = access
        .breakpoint(&mut sys, SimDuration::us(100))
        .expect("breakpoint");
    println!(
        "breakpoint: stopped {:?} at cycles {:?}",
        report.stopped, report.cycles
    );

    // Scan out architectural state while stopped.
    let (counter, acc) = sys.logic::<MixerLogic>(SbId(1)).state();
    let read = access.scan_state_word(counter);
    println!("scanned beta state: counter={read} (acc={acc:#x})");

    // Single-step a few cycles at a time.
    for step in 0..3 {
        let r = access
            .single_step(&mut sys, 4, SimDuration::us(200))
            .expect("step");
        println!("single-step {step}: cycles now {:?}", r.cycles);
    }
    access.resume(&mut sys);

    // Frequency shmoo against an injected 6 ns critical path in beta.
    let mut spec = e1_spec();
    spec.sbs[1].logic_delay = SimDuration::ns(6);
    let periods: Vec<SimDuration> = [4u64, 5, 6, 7, 8, 10, 12]
        .iter()
        .map(|n| SimDuration::ns(*n))
        .collect();
    let result = shmoo(&spec, SbId(1), &periods, 60, &|s, seed| {
        build_e1(s, seed, 60)
    });
    println!("\nshmoo of beta (injected critical path 6 ns):");
    for p in &result.points {
        println!(
            "  period {:>5}  {}  ({} setup violations)",
            p.period.to_string(),
            if p.pass { "PASS" } else { "FAIL" },
            p.violations
        );
    }
    println!(
        "critical path located between {} (fail) and {} (pass)",
        result.max_failing_period().unwrap(),
        result.min_passing_period().unwrap()
    );
}
