//! E1 — the §5 determinism campaign.
//!
//! Usage: `repro_determinism [runs] [bypass_runs]` — defaults to the
//! paper-scale 16,200 synchro-tokens runs and 400 bypass runs; pass
//! smaller numbers for a smoke test (CI runs `repro_determinism 60 20`).
//!
//! Runs are fanned across worker threads (`ST_THREADS` overrides the
//! default of one per core); the campaign report is byte-identical at
//! any thread count, only the wall time changes.
use st_bench::pausible_baseline::{run_pausible_link, PausibleLinkSpec};
use st_sim::time::SimDuration;
use synchro_tokens::campaign::default_threads;
use synchro_tokens::determinism::{run_campaign_threads, CampaignConfig};
use synchro_tokens::scenarios::{build_e1, build_e1_bypass, e1_spec};

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16_200);
    let bypass_runs: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let threads = default_threads();
    let spec = e1_spec();
    println!("{}", spec.describe());

    println!(
        "synchro-tokens campaign: {runs} delay configurations, 100 local cycles \
         compared, {threads} worker thread(s)"
    );
    let cfg = CampaignConfig {
        runs,
        ..CampaignConfig::default()
    };
    let (result, stats) =
        run_campaign_threads(&spec, &cfg, &|s, seed| build_e1(s, seed, 100), threads);
    println!("  {result}");
    println!("  {stats}");
    assert!(
        result.all_match(),
        "synchro-tokens must match nominal in every run"
    );
    println!("  -> all data sequences match exactly (paper: 'in all simulations - over");
    println!("     16,000 of them - all data sequences were found to match exactly')");

    println!("\nbypass campaign: {bypass_runs} configurations with wrapper control defeated");
    let cfg = CampaignConfig {
        runs: bypass_runs,
        bypass: true,
        ..CampaignConfig::default()
    };
    let (result, stats) = run_campaign_threads(
        &spec,
        &cfg,
        &|s, seed| build_e1_bypass(s, seed, 100),
        threads,
    );
    println!("  {result}");
    println!("  {stats}");
    assert!(
        !result.mismatches.is_empty(),
        "bypass mode must be observably nondeterministic"
    );
    println!("  -> sequences diverge (paper: 'the data sequences were observed to be");
    println!("     nondeterministic')");

    // Second baseline: mainstream pausible clocking (paper refs [9][10]).
    println!("\npausible-clocking baseline (Yun/Dooply-style link):");
    let nominal = run_pausible_link(PausibleLinkSpec::default(), 1);
    let mut diverged = 0;
    let corners = [50u64, 75, 150, 200];
    for pct in corners {
        let spec = PausibleLinkSpec {
            stage_delay: SimDuration::ns(1).percent(pct),
            transfer_delay: SimDuration::ns(2).percent(pct),
            ..PausibleLinkSpec::default()
        };
        if run_pausible_link(spec, 1) != nominal {
            diverged += 1;
        }
    }
    println!(
        "  {} of {} delay corners shifted the consumption schedule",
        diverged,
        corners.len()
    );
    println!("  -> pausible clocking moves data safely but at delay-dependent local");
    println!("     cycles; synchro-tokens is the only deterministic one of the three.");
}
