//! E3 — regenerates Figure 2 (node state-machine waveforms).
//!
//! Prints the annotated ASCII waveform and writes `fig2.vcd` next to the
//! working directory for GTKWave.
use st_bench::fig2::{reproduce_fig2, FIG2_LEGEND};

fn main() {
    let out = reproduce_fig2();
    println!("{FIG2_LEGEND}");
    println!("{}", out.spec.describe());
    println!("waveform (one column = 5 ns):\n");
    println!("{}", out.ascii);
    println!("clock stop/restart events (J -> L):");
    for (down, up) in &out.stop_events {
        println!(
            "  stopped at {down}, restarted at {up} (parked {})",
            up.since(*down)
        );
    }
    if let Err(e) = std::fs::write("fig2.vcd", &out.vcd) {
        eprintln!("could not write fig2.vcd: {e}");
    } else {
        println!("\nwrote fig2.vcd ({} bytes)", out.vcd.len());
    }
}
