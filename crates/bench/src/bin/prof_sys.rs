//! Quick command-line profiler for the system backends — a coarse
//! wall-clock companion to the `system_sim` criterion bench, handy for
//! perf/flamegraph runs. Mode is picked by substring of the first arg:
//! `event` selects the event backend (default compiled), `dense` the
//! bidirectional ping-pong (default one-way pair), `idle` drops the
//! logic so only clocks and tokens run.

use st_sim::prelude::*;
use synchro_tokens::prelude::*;
use synchro_tokens::scenarios::{build_pingpong_backend, pingpong_spec, producer_consumer_spec};

fn build_pair(backend: Backend) -> AnySystem {
    SystemBuilder::new(producer_consumer_spec())
        .expect("valid spec")
        .with_logic(SbId(0), SequenceSource::new(100, 1))
        .with_logic(SbId(1), SinkCollect::new())
        .with_trace_limit(100)
        .build_backend(backend)
}

fn build_idle(spec: SystemSpec, backend: Backend) -> AnySystem {
    SystemBuilder::new(spec)
        .expect("valid spec")
        .with_trace_limit(100)
        .build_backend(backend)
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    let idle = arg.contains("idle");
    let dense = arg.contains("dense");
    let backend = if arg.contains("event") {
        Backend::Event
    } else {
        Backend::Compiled
    };
    let build = || match (dense, idle) {
        (true, true) => build_idle(pingpong_spec(), backend),
        (true, false) => build_pingpong_backend(100, backend),
        (false, true) => build_idle(producer_consumer_spec(), backend),
        (false, false) => build_pair(backend),
    };
    let t0 = std::time::Instant::now();
    let mut total = 0u64;
    for _ in 0..2000 {
        let mut sys = build();
        sys.run_until_cycles(2000, SimDuration::us(3000)).unwrap();
        total += sys.cycles(SbId(0));
    }
    let el = t0.elapsed();
    println!(
        "{backend:?}: {total} cycles in {el:?} ({:.1} ns/SB-cycle)",
        el.as_nanos() as f64 / (2.0 * total as f64)
    );
    let t1 = std::time::Instant::now();
    for _ in 0..2000 {
        let sys = build();
        std::hint::black_box(&sys);
    }
    println!("build only: {:?}/2000", t1.elapsed());
}
