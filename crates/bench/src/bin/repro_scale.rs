//! E8 (extension) — scalability of the fabric and the harness.
use st_bench::scale::{render_table, sweep_threads};
use synchro_tokens::campaign::default_threads;

fn main() {
    let cycles: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let threads = default_threads();
    let points = sweep_threads(&[2, 4, 8, 16, 32], cycles, threads);
    println!("{}", render_table(&points));
    println!("determinism digests are stable per N across reruns and thread counts");
    println!("({threads} worker thread(s), override with ST_THREADS); each chain's own");
    println!("event kernel stays single-threaded, so wall time per point grows roughly");
    println!("linearly with N x cycles.");
}
