//! E8 (extension) — scalability of the fabric and the harness.
use st_bench::scale::{render_table, sweep};

fn main() {
    let cycles: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let points = sweep(&[2, 4, 8, 16, 32], cycles);
    println!("{}", render_table(&points));
    println!("determinism digests are stable per N across reruns; wall time grows");
    println!("roughly linearly with N x cycles (single-threaded event kernel).");
}
