//! E5 — regenerates the §5 width-compensation area/performance trade-off.
use st_bench::tradeoff::{measure_widened_sim, render_table, sweep};

fn main() {
    let rows = sweep(16, &[(2, 6), (4, 8), (4, 12), (8, 8), (8, 24), (16, 16)]);
    println!("{}", render_table(&rows));
    println!("widening by (H+R)/H restores 1 base-word/cycle (STARI parity);");
    println!("the area cost stays below the width factor because control is fixed.");

    println!("\nsimulated verification (H=4, minimal matched R):");
    for lanes in 1..=4u32 {
        let tp = measure_widened_sim(4, lanes, 400);
        println!("  {lanes} lane(s): payload throughput {tp:.3} base words per rx cycle");
    }
    println!("-> payload throughput scales with the packed width, crossing 1.0");
    println!("   (STARI parity) exactly as the paper's trade-off predicts.");
}
