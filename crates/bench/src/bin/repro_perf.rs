//! E4 — regenerates the §5 performance comparison (Eq. 1 / Eq. 2 and
//! the throughput bound) by measuring both synchro-tokens and STARI.
use st_bench::chart::{render, Series};
use st_bench::perf::{render_table, sweep_hold};
use st_sim::time::SimDuration;

fn main() {
    let words: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    for (t_ns, f_ns) in [(10u64, 1u64), (10, 2), (20, 1)] {
        let rows = sweep_hold(
            SimDuration::ns(t_ns),
            SimDuration::ns(f_ns),
            &[2, 4, 8, 16],
            words,
        );
        println!("{}", render_table(&rows));
    }
    // Figure-style view: latency vs H for both disciplines (T=10, F=1).
    let rows = sweep_hold(
        SimDuration::ns(10),
        SimDuration::ns(1),
        &[2, 4, 8, 16],
        words,
    );
    let syn = Series::new(
        "synchro-tokens",
        rows.iter()
            .map(|(s, _)| (f64::from(s.hold), s.latency.as_ns_f64()))
            .collect(),
    );
    let stari = Series::new(
        "STARI",
        rows.iter()
            .map(|(_, t)| (f64::from(t.hold), t.latency.as_ns_f64()))
            .collect(),
    );
    println!(
        "{}",
        render(
            "measured latency [ns] vs H (T=10ns, F=1ns)",
            &[syn, stari],
            56,
            14
        )
    );

    println!("shape checks: STARI throughput ~1 word/cycle; synchro ~H/(H+R);");
    println!("synchro latency above STARI latency, both linear in H (Eqs. 1-2).");
}
