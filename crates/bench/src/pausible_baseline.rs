//! A pausible-clocking GALS baseline (paper refs \[9\] Yun & Dooply, \[10\]
//! Muttersbach et al.) — the mainstream *nondeterministic* alternative
//! the paper positions synchro-tokens against.
//!
//! A producer pushes words into a self-timed FIFO from its own free
//! clock domain. The consumer's input port, on seeing new data, requests
//! a pause of the consumer's **pausible clock**, transfers the word
//! safely, and releases. The transfer is glitch-free — but the *local
//! cycle index* at which each word becomes visible to the consumer logic
//! depends on where the asynchronous arrival falls relative to the clock
//! edge (and on metastable arbitration when it falls close). Sweeping
//! physical delays therefore changes the consumption schedule: exactly
//! the nondeterminism synchro-tokens eliminates.

use st_channel::{FifoPorts, SelfTimedFifo};
use st_clocking::{PausibleClock, PausibleClockSpec};
use st_sim::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// `(consumer local cycle, word)` pairs in consumption order.
pub type ConsumptionLog = Vec<(u64, u64)>;

#[derive(Debug)]
struct Producer {
    clk: BitSignal,
    ports: FifoPorts,
    prev: Bit,
    next: u64,
    parity: bool,
    limit: u64,
}

impl Component for Producer {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        if let Wake::Signal(_) = cause {
            let v = ctx.bit(self.clk);
            let rising = !self.prev.is_one() && v.is_one();
            self.prev = v;
            if !rising || self.next >= self.limit || ctx.bit(self.ports.full).is_one() {
                return;
            }
            ctx.drive_word(self.ports.put_data, self.next, SimDuration::ZERO);
            self.next += 1;
            self.parity = !self.parity;
            ctx.drive_bit(self.ports.put_req, self.parity, SimDuration::fs(1));
        }
    }
}

/// Timer tags for the consumer port.
const TAG_TRANSFER: u64 = 1;

#[derive(Debug)]
struct Consumer {
    clk: BitSignal,
    pause_req: BitSignal,
    ports: FifoPorts,
    prev_clk: Bit,
    prev_valid: Bit,
    ack_parity: bool,
    cycle: u64,
    pending: Option<u64>,
    transfer_delay: SimDuration,
    log: Rc<RefCell<ConsumptionLog>>,
}

impl Component for Consumer {
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
        match cause {
            Wake::Start => {
                ctx.drive_bit(self.pause_req, Bit::Zero, SimDuration::ZERO);
            }
            Wake::Signal(sig) if sig == self.clk.id() => {
                let v = ctx.bit(self.clk);
                let rising = !self.prev_clk.is_one() && v.is_one();
                self.prev_clk = v;
                if !rising {
                    return;
                }
                self.cycle += 1;
                if let Some(w) = self.pending.take() {
                    self.log.borrow_mut().push((self.cycle, w));
                }
            }
            Wake::Signal(sig) if sig == self.ports.head_valid.id() => {
                let v = ctx.bit(self.ports.head_valid);
                let rose = !self.prev_valid.is_one() && v.is_one();
                self.prev_valid = v;
                if rose && self.pending.is_none() {
                    // New data: request a safe (paused) transfer window.
                    ctx.drive_bit(self.pause_req, Bit::One, SimDuration::ZERO);
                    ctx.set_timer(self.transfer_delay, TAG_TRANSFER);
                }
            }
            Wake::Timer(TAG_TRANSFER) => {
                if ctx.bit(self.ports.head_valid).is_one() {
                    let w = ctx.word(self.ports.head_data).expect("valid head");
                    self.pending = Some(w);
                    self.ack_parity = !self.ack_parity;
                    ctx.drive_bit(self.ports.get_ack, self.ack_parity, SimDuration::fs(1));
                }
                ctx.drive_bit(self.pause_req, Bit::Zero, SimDuration::ZERO);
            }
            _ => {}
        }
    }
}

/// Parameters of the pausible link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PausibleLinkSpec {
    /// Producer clock period.
    pub t_producer: SimDuration,
    /// Consumer clock period.
    pub t_consumer: SimDuration,
    /// FIFO stage delay.
    pub stage_delay: SimDuration,
    /// Port transfer time while the clock is held off.
    pub transfer_delay: SimDuration,
    /// Words to transfer.
    pub words: u64,
}

impl Default for PausibleLinkSpec {
    fn default() -> Self {
        PausibleLinkSpec {
            t_producer: SimDuration::ns(10),
            t_consumer: SimDuration::ns(13),
            stage_delay: SimDuration::ns(1),
            transfer_delay: SimDuration::ns(2),
            words: 40,
        }
    }
}

/// Runs the pausible link and returns the consumer's consumption log.
///
/// # Panics
///
/// Panics if the run fails or no words arrive.
pub fn run_pausible_link(spec: PausibleLinkSpec, seed: u64) -> ConsumptionLog {
    let mut b = SimBuilder::new().with_seed(seed);
    let p_clk = b.add_bit_signal("p.clk");
    let c_clk = b.add_bit_signal("c.clk");
    let pause = b.add_bit_signal_init("c.pause", Bit::Zero);
    let ports = FifoPorts::declare(&mut b, "link");
    let _fifo = SelfTimedFifo::new(ports, 4, spec.stage_delay).install(&mut b, "link");

    // Producer clock free-runs; the consumer's is pausible.
    let p_pause = b.add_bit_signal_init("p.pause", Bit::Zero);
    let pc = b.add_component(
        "p.clock",
        PausibleClock::new(
            PausibleClockSpec::from_period(spec.t_producer),
            p_clk,
            p_pause,
        ),
    );
    b.watch(pc.id(), p_pause.id());
    let cc = b.add_component(
        "c.clock",
        PausibleClock::new(
            PausibleClockSpec::from_period(spec.t_consumer),
            c_clk,
            pause,
        ),
    );
    b.watch(cc.id(), pause.id());

    let prod = b.add_component(
        "producer",
        Producer {
            clk: p_clk,
            ports,
            prev: Bit::X,
            next: 0,
            parity: false,
            limit: spec.words,
        },
    );
    b.watch(prod.id(), p_clk.id());
    let log = Rc::new(RefCell::new(Vec::new()));
    let cons = b.add_component(
        "consumer",
        Consumer {
            clk: c_clk,
            pause_req: pause,
            ports,
            prev_clk: Bit::X,
            prev_valid: Bit::X,
            ack_parity: false,
            cycle: 0,
            pending: None,
            transfer_delay: spec.transfer_delay,
            log: Rc::clone(&log),
        },
    );
    b.watch(cons.id(), c_clk.id());
    b.watch(cons.id(), ports.head_valid.id());

    let mut sim = b.build();
    sim.run_for(spec.t_consumer * (spec.words * 4 + 100))
        .expect("pausible run");
    let out = log.borrow().clone();
    assert!(!out.is_empty(), "no words consumed");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_flow_in_order_without_loss() {
        let log = run_pausible_link(PausibleLinkSpec::default(), 1);
        let words: Vec<u64> = log.iter().map(|(_, w)| *w).collect();
        let expect: Vec<u64> = (0..words.len() as u64).collect();
        assert_eq!(
            words, expect,
            "pausible clocking is safe, just not deterministic"
        );
    }

    #[test]
    fn same_configuration_is_reproducible() {
        let a = run_pausible_link(PausibleLinkSpec::default(), 7);
        let b = run_pausible_link(PausibleLinkSpec::default(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn consumption_schedule_depends_on_physical_delays() {
        // The defining contrast with synchro-tokens: scale a delay the
        // paper's sweep scales and the *cycle indices* at which words are
        // consumed change.
        let nominal = run_pausible_link(PausibleLinkSpec::default(), 1);
        let mut distinct = 0;
        for pct in [50u64, 75, 150, 200] {
            let spec = PausibleLinkSpec {
                stage_delay: SimDuration::ns(1).percent(pct),
                transfer_delay: SimDuration::ns(2).percent(pct),
                ..PausibleLinkSpec::default()
            };
            let log = run_pausible_link(spec, 1);
            if log != nominal {
                distinct += 1;
            }
        }
        assert!(
            distinct >= 2,
            "pausible clocking should be schedule-sensitive to delays"
        );
    }
}
