//! # st-bench — the experiment harness
//!
//! One module per paper artefact; one `repro_*` binary per table/figure
//! (see `src/bin/`), each printing the rows/series the paper reports.
//!
//! | Experiment | Paper artefact | Module | Binary |
//! |---|---|---|---|
//! | E1 | §5 determinism campaign | [`synchro_tokens::determinism`] | `repro_determinism` |
//! | E2 | Table 1 area models | [`st_cells::Table1`] + [`area_report`] | `repro_table1` |
//! | E3 | Figure 2 waveforms | [`fig2`] | `repro_fig2` |
//! | E4 | §5 throughput/latency vs STARI | [`perf`] | `repro_perf` |
//! | E5 | §5 width-compensation trade-off | [`tradeoff`] | `repro_tradeoff` |
//! | E6 | §5 deadlock determinism + rules | [`synchro_tokens::deadlock`] | `repro_deadlock` |
//! | E7 | §4.2 debug & test features | [`st_testkit::debug`] | `repro_debug` |
//! | E8 | future work: larger systems | [`scale`] | `repro_scale` |

pub mod chart;
pub mod fig2;
pub mod pausible_baseline;
pub mod perf;
pub mod scale;
pub mod tradeoff;

use st_cells::{
    node_netlist, scan_cell_netlist, system_wrapper_netlist, tap_netlist, ChannelShape, Table1,
};

/// Extended E2 report: Table 1 plus the system-wide overhead of the E1
/// platform and the test-feature components ("the system-wide area
/// overhead is reasonably low").
pub fn area_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let table1 = Table1::compute();
    let _ = writeln!(out, "{table1}");
    let e1 = synchro_tokens::scenarios::e1_spec();
    let channels: Vec<ChannelShape> = e1
        .channels
        .iter()
        .map(|c| ChannelShape {
            bits: u64::from(c.bits),
            fifo_depth: c.fifo_depth as u64,
        })
        .collect();
    // Two nodes per ring.
    let nodes = 2 * e1.rings.len() as u64;
    let whole = system_wrapper_netlist(nodes, &channels);
    let nodes_only = node_netlist().area_ge() * nodes as f64;
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "E1 platform wrapper area: {:.0} GE total; nodes only {:.0} GE \
         ({} nodes — the paper's GALS-comparable overhead)",
        whole.area_ge(),
        nodes_only,
        nodes
    );
    let _ = writeln!(
        out,
        "test features: TAP(4-bit IR) = {:.0} GE, self-timed scan cell = {:.1} GE",
        tap_netlist(4).area_ge(),
        scan_cell_netlist().area_ge()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_report_has_all_sections() {
        let r = area_report();
        assert!(r.contains("Table 1"));
        assert!(r.contains("paper: 145"));
        assert!(r.contains("E1 platform wrapper area"));
        assert!(r.contains("TAP"));
    }
}
