//! E5 — the §5 area/performance trade-off.
//!
//! "The synchro-tokens FIFO can match the throughput of STARI by
//! increasing the channel width by a factor of at least (H+R)/H and
//! providing hardware within the SB to synchronously queue data …
//! Obviously, this is an area/performance tradeoff."
//!
//! This module quantifies that trade: for each `(H, R)`, the required
//! width factor and the resulting wrapper-area factor (from the Table 1
//! models), plus a simulated verification that the widened channel
//! really recovers STARI-level *payload* throughput.

use st_cells::{fifo_netlist, interface_netlist};
use st_sim::time::SimDuration;
use synchro_tokens::logic::{PackingSource, UnpackingSink};
use synchro_tokens::prelude::*;
use synchro_tokens::rules::{synchro_throughput_bound, width_compensation_factor};
use synchro_tokens::scenarios::matched_ring_recycles;

/// One row of the trade-off table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffRow {
    /// Hold register value.
    pub hold: u32,
    /// Recycle register value.
    pub recycle: u32,
    /// Base channel width in bits.
    pub bits: u64,
    /// Throughput bound `H/(H+R)` at the base width.
    pub base_throughput: f64,
    /// Width factor `(H+R)/H` needed to match STARI.
    pub width_factor: f64,
    /// Widened channel width (bits, rounded up).
    pub widened_bits: u64,
    /// Payload throughput after widening, in base-words per cycle.
    pub widened_throughput: f64,
    /// Channel area (2 interfaces + FIFO) at base width, gate equivalents.
    pub base_area: f64,
    /// Channel area at the widened width.
    pub widened_area: f64,
}

impl TradeoffRow {
    /// Area paid per unit of recovered throughput.
    pub fn area_factor(&self) -> f64 {
        self.widened_area / self.base_area
    }
}

/// Computes a trade-off row for a channel of `bits` with FIFO depth `H`.
pub fn tradeoff_row(hold: u32, recycle: u32, bits: u64) -> TradeoffRow {
    let base_tp = synchro_throughput_bound(hold, recycle);
    let wf = width_compensation_factor(hold, recycle);
    let widened_bits = ((bits as f64) * wf).ceil() as u64;
    let depth = u64::from(hold);
    let area = |b: u64| 2.0 * interface_netlist(b).area_ge() + fifo_netlist(b, depth).area_ge();
    // Each transfer now carries `widened_bits / bits` base words.
    let widened_tp = base_tp * (widened_bits as f64 / bits as f64);
    TradeoffRow {
        hold,
        recycle,
        bits,
        base_throughput: base_tp,
        width_factor: wf,
        widened_bits,
        widened_throughput: widened_tp,
        base_area: area(bits),
        widened_area: area(widened_bits),
    }
}

/// Simulated verification of the trade-off: builds a real pair whose
/// channel carries `lanes` base words per transfer (64-bit words packing
/// `lanes` 16-bit lanes) and measures the *payload* throughput in base
/// words per receiver cycle.
///
/// # Panics
///
/// Panics if the run fails or words arrive out of sequence.
pub fn measure_widened_sim(hold: u32, lanes: u32, cycles: u64) -> f64 {
    let period = SimDuration::ns(10);
    let stage_delay = SimDuration::ps(500);
    let mut spec = SystemSpec::default();
    let tx = spec.add_sb("tx", period);
    let rx = spec.add_sb("rx", period);
    let ring = spec.add_ring(
        tx,
        rx,
        NodeParams::new(hold, 1),
        stage_delay * u64::from(hold),
    );
    spec.add_channel(tx, rx, ring, 64, hold as usize, stage_delay);
    matched_ring_recycles(&mut spec, 0);
    let mut sys = SystemBuilder::new(spec)
        .expect("widened spec valid")
        .with_logic(tx, PackingSource::new(0, lanes))
        .with_logic(rx, UnpackingSink::new(0, lanes))
        .with_trace_limit(1)
        .build();
    let out = sys
        .run_until_cycles(cycles, SimDuration::us(10_000))
        .expect("widened run");
    assert_eq!(out, RunOutcome::Reached);
    let sink: &UnpackingSink = sys.logic(rx);
    assert_eq!(sink.sequence_errors, 0, "payload corrupted");
    sink.base_words_received as f64 / sys.cycles(rx) as f64
}

/// The sweep used by the `repro_tradeoff` binary.
pub fn sweep(bits: u64, pairs: &[(u32, u32)]) -> Vec<TradeoffRow> {
    pairs
        .iter()
        .map(|&(h, r)| tradeoff_row(h, r, bits))
        .collect()
}

/// Formats the sweep as a printable table.
pub fn render_table(rows: &[TradeoffRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§5 area/performance trade-off (channel width compensation)"
    );
    let _ = writeln!(
        out,
        "{:>3} {:>3} | {:>8} {:>7} {:>6} {:>8} | {:>9} {:>9} {:>6}",
        "H", "R", "tp_base", "factor", "bits'", "tp_wide", "area_base", "area_wide", "cost"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>3} {:>3} | {:>8.3} {:>7.2} {:>6} {:>8.3} | {:>9.1} {:>9.1} {:>6.2}",
            r.hold,
            r.recycle,
            r.base_throughput,
            r.width_factor,
            r.widened_bits,
            r.widened_throughput,
            r.base_area,
            r.widened_area,
            r.area_factor(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_restores_at_least_stari_throughput() {
        for (h, r) in [(2u32, 6u32), (4, 8), (8, 8), (4, 12)] {
            let row = tradeoff_row(h, r, 16);
            assert!(
                row.widened_throughput >= 0.999,
                "H={h} R={r}: widened tp {}",
                row.widened_throughput
            );
        }
    }

    #[test]
    fn area_factor_tracks_width_factor() {
        // Area grows slightly slower than the width factor because the
        // per-channel control is fixed.
        let row = tradeoff_row(4, 8, 16);
        assert!(row.area_factor() > 1.0);
        assert!(row.area_factor() <= row.width_factor + 1e-9);
    }

    #[test]
    fn degenerate_zero_penalty_case() {
        // R can never be 0 in this architecture, but with a tiny R the
        // width factor approaches 1.
        let row = tradeoff_row(16, 1, 16);
        assert!(row.width_factor < 1.1);
        assert_eq!(row.widened_bits, 17);
    }

    #[test]
    fn simulated_widening_recovers_throughput() {
        // H=4 with minimal matched R gives H/(H+R) ~ 0.44; packing 3
        // lanes lifts payload throughput to ~3x that, past STARI parity.
        let narrow = measure_widened_sim(4, 1, 400);
        let wide = measure_widened_sim(4, 3, 400);
        assert!(narrow < 0.55, "narrow {narrow}");
        assert!(
            (wide / narrow - 3.0).abs() < 0.15,
            "3 lanes must triple payload: {wide} vs {narrow}"
        );
        assert!(wide >= 1.0, "widened channel reaches STARI parity: {wide}");
    }

    #[test]
    fn table_lists_every_pair() {
        let rows = sweep(16, &[(2, 6), (4, 8)]);
        let t = render_table(&rows);
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("factor"));
    }
}
