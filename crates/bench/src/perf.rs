//! E4 — the §5 performance comparison: synchro-tokens vs STARI.
//!
//! The paper's claims:
//!
//! * STARI throughput is 1 word/cycle; synchro-tokens is at most
//!   `H/(H+R)`.
//! * `L_STARI = F·H/2 + T·H/2` (Eq. 1).
//! * `L_SYNCHRO = T·(R+H+1)/2 + F·H + T·(H+1)/2` (Eq. 2).
//!
//! Both systems are *measured* here (full event simulation) and compared
//! with the closed forms.

use st_channel::{build_stari_link, stari_latency_model, StariSpec};
use st_sim::prelude::*;
use synchro_tokens::prelude::*;
use synchro_tokens::rules::{synchro_latency_model, synchro_throughput_bound};
use synchro_tokens::scenarios::matched_ring_recycles;

/// One measured configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfPoint {
    /// Hold register / FIFO depth `H`.
    pub hold: u32,
    /// Recycle register `R` actually used.
    pub recycle: u32,
    /// Clock period `T`.
    pub period: SimDuration,
    /// Stage delay `F`.
    pub stage_delay: SimDuration,
    /// Measured steady-state throughput, words per receiver cycle.
    pub throughput: f64,
    /// Measured mean transmit-to-delivery latency.
    pub latency: SimDuration,
    /// The paper's model throughput (`1` for STARI, `H/(H+R)` here).
    pub model_throughput: f64,
    /// The paper's model latency (Eq. 1 or Eq. 2).
    pub model_latency: SimDuration,
}

/// Measures a synchro-tokens channel: a producer/consumer pair whose
/// ring uses hold `h`, the minimal product-matched recycle, FIFO depth
/// `h` (as in the paper's comparison, "the FIFO depth equals the hold
/// register value"), and a ring delay approximately equal to the FIFO
/// delay.
pub fn measure_synchro(
    period: SimDuration,
    stage_delay: SimDuration,
    hold: u32,
    words: usize,
) -> PerfPoint {
    let depth = hold as usize;
    let mut spec = SystemSpec::default();
    let tx = spec.add_sb("tx", period);
    let rx = spec.add_sb("rx", period);
    // "the token delay (which is approximately equal to the FIFO delay)"
    let ring_delay = stage_delay * u64::from(hold);
    let ring = spec.add_ring(tx, rx, NodeParams::new(hold, 1), ring_delay);
    spec.add_channel(tx, rx, ring, 16, depth, stage_delay);
    matched_ring_recycles(&mut spec, 0);
    let recycle = spec.rings[0].holder_node.recycle;

    let mut sys = SystemBuilder::new(spec)
        .expect("valid perf spec")
        .with_logic(tx, SequenceSource::new(0, 1))
        .with_logic(rx, SinkCollect::new())
        .with_trace_limit(0)
        .build();
    let budget_cycles =
        (words as u64 + 32) * u64::from(hold + recycle).div_ceil(u64::from(hold)) + 256;
    let out = sys
        .run_until_cycles(budget_cycles, SimDuration::us(100_000))
        .expect("perf run");
    assert!(
        matches!(out, RunOutcome::Reached),
        "perf run did not finish: {out:?}"
    );

    let (throughput, latency) = extract_link_metrics(&sys, tx, rx, words);
    PerfPoint {
        hold,
        recycle,
        period,
        stage_delay,
        throughput,
        latency,
        model_throughput: synchro_throughput_bound(hold, recycle),
        model_latency: synchro_latency_model(period, stage_delay, hold, recycle),
    }
}

/// Extracts steady-state throughput and mean transmit→delivery latency
/// for the single channel of a producer/consumer pair.
fn extract_link_metrics(
    sys: &synchro_tokens::System,
    tx: SbId,
    rx: SbId,
    words: usize,
) -> (f64, SimDuration) {
    let tx_rows = sys.io_trace(tx);
    let rx_rows = sys.io_trace(rx);
    let tx_times = sys.edge_times(tx);
    let rx_times = sys.edge_times(rx);
    // Cycles at which words were transmitted/delivered, in word order.
    let sent: Vec<u64> = tx_rows
        .rows()
        .iter()
        .filter(|r| r.writes.first().copied().flatten().is_some())
        .map(|r| r.cycle)
        .collect();
    let recv: Vec<u64> = rx_rows
        .rows()
        .iter()
        .filter(|r| r.reads.first().copied().flatten().is_some())
        .map(|r| r.cycle)
        .collect();
    let n = sent.len().min(recv.len()).min(words);
    assert!(n >= 8, "need enough words for a steady-state estimate");
    // Throughput over the received span, skipping warm-up.
    let skip = n / 5;
    let span_words = (n - 1 - skip) as f64;
    let span_cycles = (recv[n - 1] - recv[skip]) as f64;
    let throughput = span_words / span_cycles;
    // Latency: transmit edge to delivery edge, averaged.
    let mut sum = 0u128;
    let mut count = 0u128;
    for k in skip..n {
        let t_tx = tx_times[usize::try_from(sent[k]).expect("cycle fits")];
        let t_rx = rx_times[usize::try_from(recv[k]).expect("cycle fits")];
        sum += u128::from(t_rx.since(t_tx).as_fs());
        count += 1;
    }
    let latency = SimDuration::fs(u64::try_from(sum / count).expect("latency fits"));
    (throughput, latency)
}

/// Measures the STARI baseline at the same `T`, `F`, depth `H`.
pub fn measure_stari(
    period: SimDuration,
    stage_delay: SimDuration,
    hold: u32,
    words: u64,
) -> PerfPoint {
    let depth = hold as usize;
    let mut b = SimBuilder::new();
    let spec = StariSpec::new(period, stage_delay, depth);
    let link = build_stari_link(&mut b, spec, words);
    let mut sim = b.build();
    sim.run_for(period * (words + 64)).expect("stari run");
    let stats = link.stats.borrow();
    let skip = (words / 5) as usize;
    let throughput = {
        let pops = &stats.pops;
        assert!(pops.len() >= 8, "STARI delivered too few words");
        let n = pops.len();
        let span_words = (n - 1 - skip) as f64;
        let span_time = pops[n - 1].1.since(pops[skip].1);
        // words per receiver cycle = words / (time / T).
        span_words / (span_time.as_fs() as f64 / period.as_fs() as f64)
    };
    let latency = stats.mean_latency(skip).expect("latency");
    PerfPoint {
        hold,
        recycle: 0,
        period,
        stage_delay,
        throughput,
        latency,
        model_throughput: 1.0,
        model_latency: stari_latency_model(period, stage_delay, depth),
    }
}

/// The E4 sweep: for each `H`, measure both disciplines.
pub fn sweep_hold(
    period: SimDuration,
    stage_delay: SimDuration,
    holds: &[u32],
    words: usize,
) -> Vec<(PerfPoint, PerfPoint)> {
    holds
        .iter()
        .map(|&h| {
            (
                measure_synchro(period, stage_delay, h, words),
                measure_stari(period, stage_delay, h, words as u64),
            )
        })
        .collect()
}

/// Renders the sweep as the paper-style comparison table.
pub fn render_table(rows: &[(PerfPoint, PerfPoint)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§5 performance: synchro-tokens vs STARI (T={}, F={})",
        rows.first()
            .map(|(s, _)| s.period)
            .unwrap_or(SimDuration::ZERO),
        rows.first()
            .map(|(s, _)| s.stage_delay)
            .unwrap_or(SimDuration::ZERO),
    );
    let _ = writeln!(
        out,
        "{:>3} {:>3} | {:>9} {:>9} {:>10} {:>10} | {:>9} {:>10} {:>10}",
        "H",
        "R",
        "tp_meas",
        "tp_model",
        "lat_meas",
        "lat_model",
        "stari_tp",
        "stari_lat",
        "eq1_lat"
    );
    for (syn, stari) in rows {
        let _ = writeln!(
            out,
            "{:>3} {:>3} | {:>9.3} {:>9.3} {:>10} {:>10} | {:>9.3} {:>10} {:>10}",
            syn.hold,
            syn.recycle,
            syn.throughput,
            syn.model_throughput,
            syn.latency,
            syn.model_latency,
            stari.throughput,
            stari.latency,
            stari.model_latency,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchro_throughput_tracks_h_over_h_plus_r() {
        let p = measure_synchro(SimDuration::ns(10), SimDuration::ns(1), 4, 120);
        let rel = (p.throughput - p.model_throughput).abs() / p.model_throughput;
        assert!(
            rel < 0.15,
            "throughput {} vs model {} ({:.1} % off)",
            p.throughput,
            p.model_throughput,
            rel * 100.0
        );
    }

    #[test]
    fn stari_throughput_is_one_word_per_cycle() {
        let p = measure_stari(SimDuration::ns(10), SimDuration::ns(1), 8, 400);
        assert!(p.throughput > 0.95, "throughput {}", p.throughput);
    }

    #[test]
    fn stari_latency_matches_equation_one_in_shape() {
        let p = measure_stari(SimDuration::ns(10), SimDuration::ns(2), 8, 400);
        let (m, model) = (p.latency.as_fs() as f64, p.model_latency.as_fs() as f64);
        assert!(m / model < 2.0 && model / m < 2.0, "{m} vs {model}");
    }

    #[test]
    fn synchro_loses_throughput_but_factor_matches() {
        // The headline §5 comparison: STARI wins throughput by (H+R)/H.
        let t = SimDuration::ns(10);
        let f = SimDuration::ns(1);
        let syn = measure_synchro(t, f, 4, 120);
        let stari = measure_stari(t, f, 4, 300);
        let measured_factor = stari.throughput / syn.throughput;
        let model_factor = f64::from(syn.hold + syn.recycle) / f64::from(syn.hold);
        let rel = (measured_factor - model_factor).abs() / model_factor;
        assert!(
            rel < 0.25,
            "factor {measured_factor:.2} vs model {model_factor:.2}"
        );
    }

    #[test]
    fn synchro_latency_exceeds_stari_latency() {
        let t = SimDuration::ns(10);
        let f = SimDuration::ns(1);
        let syn = measure_synchro(t, f, 4, 120);
        let stari = measure_stari(t, f, 4, 300);
        assert!(
            syn.latency > stari.latency,
            "synchro {} should exceed stari {}",
            syn.latency,
            stari.latency
        );
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = sweep_hold(SimDuration::ns(10), SimDuration::ns(1), &[2, 4], 80);
        let table = render_table(&rows);
        assert!(table.contains("stari_tp"));
        assert_eq!(table.lines().count(), 2 + rows.len());
    }
}
