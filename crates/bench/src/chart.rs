//! Minimal ASCII chart rendering for the figure-style outputs of the
//! experiment binaries (no plotting dependencies by design).

/// A labelled series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label; its first character is the plot marker.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.to_owned(),
            points,
        }
    }
}

/// Renders series on a `width`×`height` character grid with linear axes.
///
/// # Panics
///
/// Panics if no series has any points or the grid is degenerate.
pub fn render(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "grid too small");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    assert!(!all.is_empty(), "nothing to plot");
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (0.0f64, f64::NEG_INFINITY);
    for (x, y) in &all {
        x0 = x0.min(*x);
        x1 = x1.max(*x);
        y0 = y0.min(*y);
        y1 = y1.max(*y);
    }
    if (x1 - x0).abs() < f64::EPSILON {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < f64::EPSILON {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let marker = s.label.chars().next().unwrap_or('*');
        for (x, y) in &s.points {
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            grid[row][col] = if grid[row][col] == ' ' { marker } else { '#' };
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_here = y1 - (y1 - y0) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_here:>9.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}+{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>11}{:<width$.2}{:.2}\n",
        "",
        x0,
        x1,
        width = width.saturating_sub(4)
    ));
    for s in series {
        out.push_str(&format!(
            "{:>11}{} = {}\n",
            "",
            s.label.chars().next().unwrap_or('*'),
            s.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_two_series_with_legend() {
        let a = Series::new("synchro", vec![(2.0, 30.0), (4.0, 50.0), (8.0, 90.0)]);
        let b = Series::new("tari", vec![(2.0, 12.5), (4.0, 22.5), (8.0, 42.5)]);
        let chart = render("latency vs H", &[a, b], 40, 12);
        assert!(chart.contains("latency vs H"));
        assert!(chart.contains("s = synchro"));
        assert!(chart.contains("t = tari"));
        assert!(chart.contains('s'));
        assert!(chart.contains('t'));
        assert_eq!(chart.lines().count(), 1 + 12 + 2 + 2);
    }

    #[test]
    fn overlapping_points_marked_as_hash() {
        let a = Series::new("a", vec![(1.0, 1.0)]);
        let b = Series::new("b", vec![(1.0, 1.0)]);
        let chart = render("overlap", &[a, b], 10, 5);
        assert!(chart.contains('#'));
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_series_rejected() {
        let _ = render("empty", &[Series::new("x", vec![])], 20, 10);
    }
}
