//! Gossip membership: who is in the cluster, how healthy, and which
//! node set the ring should be built from.
//!
//! This is the *state machine* only — pure data, injected clocks, no
//! sockets — so every transition is unit-testable without timing races.
//! st-serve drives it: a background thread periodically exchanges
//! membership snapshots with one peer over HTTP (`/peer/gossip`) and
//! feeds the replies back in here, in the PALS/FATAL+ spirit the issue
//! cites — neighbourhood exchange suffices, no master.
//!
//! Evidence grades:
//!
//! * **direct** — we talked to the peer (a gossip round-trip, a served
//!   forward): `last_seen` resets, health returns to Alive.
//! * **relayed** — a peer reported having heard from it `age` ago: only
//!   *fresher* evidence is accepted, so stale rumours cannot resurrect
//!   a dead node.
//! * **failure** — a connection to the peer failed: immediately
//!   Suspect; a Suspect node is still ring-resident (requests fall back
//!   past it) until `evict_after` passes without contrary evidence,
//!   when it is evicted and the ring rebuilt.
//!
//! Every mutation that changes the *member set* bumps `epoch`, the
//! cheap "rebuild your ring" signal.

use crate::NodeId;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Peer health, coarse on purpose: routing only needs "try it first"
/// vs "try it last".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Heard from recently; a routing candidate.
    Alive,
    /// A contact failed or went quiet; skipped when an Alive candidate
    /// exists, evicted if it stays silent.
    Suspect,
}

impl Health {
    /// Wire name used by `/cluster` and the gossip payload.
    pub fn name(self) -> &'static str {
        match self {
            Health::Alive => "alive",
            Health::Suspect => "suspect",
        }
    }
}

/// One known peer.
#[derive(Debug, Clone)]
pub struct PeerEntry {
    /// The peer's stable node id.
    pub id: NodeId,
    /// Its HTTP address (`host:port`).
    pub addr: String,
    /// Current health.
    pub health: Health,
    /// When evidence of life was last accepted.
    pub last_seen: Instant,
}

impl PeerEntry {
    /// Age of the last accepted evidence at `now`.
    pub fn age(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.last_seen)
    }
}

/// Membership timeouts.
#[derive(Debug, Clone, Copy)]
pub struct Timeouts {
    /// Silence after which an Alive peer turns Suspect.
    pub suspect_after: Duration,
    /// Silence after which a Suspect peer is evicted from membership
    /// (and therefore the ring).
    pub evict_after: Duration,
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts {
            suspect_after: Duration::from_secs(3),
            evict_after: Duration::from_secs(10),
        }
    }
}

/// The membership table: this node plus every peer it knows about.
#[derive(Debug)]
pub struct Membership {
    self_id: NodeId,
    self_addr: String,
    peers: BTreeMap<NodeId, PeerEntry>,
    timeouts: Timeouts,
    /// Bumped whenever the member *set* changes (join, eviction,
    /// explicit leave) — the ring-rebuild signal.
    epoch: u64,
}

impl Membership {
    /// A table knowing only this node.
    pub fn new(self_id: NodeId, self_addr: String, timeouts: Timeouts) -> Membership {
        Membership {
            self_id,
            self_addr,
            peers: BTreeMap::new(),
            timeouts,
            epoch: 0,
        }
    }

    /// This node's id.
    pub fn self_id(&self) -> &NodeId {
        &self.self_id
    }

    /// This node's advertised address.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// Current membership epoch; changes exactly when the member set
    /// does.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All known peers (not including self), id-sorted.
    pub fn peers(&self) -> impl Iterator<Item = &PeerEntry> {
        self.peers.values()
    }

    /// The peer entry for `id`, if known.
    pub fn get(&self, id: &NodeId) -> Option<&PeerEntry> {
        self.peers.get(id)
    }

    /// The node set the ring should be built from: self plus every
    /// non-evicted peer (Suspect nodes stay ring-resident so placement
    /// does not flap on one dropped packet; routing simply tries Alive
    /// candidates first).
    pub fn ring_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.peers.keys().cloned().collect();
        nodes.push(self.self_id.clone());
        nodes.sort();
        nodes
    }

    /// Alive peers only, id-sorted — gossip partners and first-choice
    /// routing targets.
    pub fn alive_peers(&self) -> Vec<PeerEntry> {
        self.peers
            .values()
            .filter(|p| p.health == Health::Alive)
            .cloned()
            .collect()
    }

    /// Direct evidence of life: a round-trip with the peer succeeded.
    /// Unknown peers join (epoch bump); known peers refresh, Suspect
    /// recovers to Alive, and an address change is adopted.
    pub fn observe_direct(&mut self, id: &NodeId, addr: &str, now: Instant) {
        if *id == self.self_id {
            return;
        }
        match self.peers.get_mut(id) {
            Some(p) => {
                p.last_seen = now;
                p.health = Health::Alive;
                if p.addr != addr {
                    p.addr = addr.to_owned();
                }
            }
            None => {
                self.peers.insert(
                    id.clone(),
                    PeerEntry {
                        id: id.clone(),
                        addr: addr.to_owned(),
                        health: Health::Alive,
                        last_seen: now,
                    },
                );
                self.epoch += 1;
            }
        }
    }

    /// Relayed evidence: a gossip partner reported hearing from `id`
    /// `age` ago. Accepted only when fresher than what we hold, so a
    /// stale rumour can neither resurrect nor age a peer.
    pub fn observe_relayed(&mut self, id: &NodeId, addr: &str, age: Duration, now: Instant) {
        if *id == self.self_id {
            return;
        }
        let seen = now.checked_sub(age).unwrap_or(now);
        match self.peers.get_mut(id) {
            Some(p) => {
                if seen > p.last_seen {
                    p.last_seen = seen;
                    if age < self.timeouts.suspect_after {
                        p.health = Health::Alive;
                    }
                }
            }
            None => {
                // A rumour older than the eviction window is history,
                // not membership.
                if age >= self.timeouts.evict_after {
                    return;
                }
                self.peers.insert(
                    id.clone(),
                    PeerEntry {
                        id: id.clone(),
                        addr: addr.to_owned(),
                        health: if age < self.timeouts.suspect_after {
                            Health::Alive
                        } else {
                            Health::Suspect
                        },
                        last_seen: seen,
                    },
                );
                self.epoch += 1;
            }
        }
    }

    /// A contact with the peer failed: immediate Suspect. The eviction
    /// clock keeps running from the last *accepted* evidence.
    pub fn mark_failed(&mut self, id: &NodeId) {
        if let Some(p) = self.peers.get_mut(id) {
            p.health = Health::Suspect;
        }
    }

    /// An explicit, clean departure (`/peer/leave`): removed at once —
    /// no suspicion window for a node that said goodbye.
    pub fn remove(&mut self, id: &NodeId) -> bool {
        let removed = self.peers.remove(id).is_some();
        if removed {
            self.epoch += 1;
        }
        removed
    }

    /// Advances the suspicion/eviction clocks. Returns `true` when the
    /// member set changed (somebody was evicted).
    pub fn tick(&mut self, now: Instant) -> bool {
        let before = self.epoch;
        let mut evict = Vec::new();
        for p in self.peers.values_mut() {
            let age = p.age(now);
            if age >= self.timeouts.evict_after {
                evict.push(p.id.clone());
            } else if age >= self.timeouts.suspect_after {
                p.health = Health::Suspect;
            }
        }
        for id in evict {
            self.peers.remove(&id);
            self.epoch += 1;
        }
        self.epoch != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(s: &str) -> NodeId {
        NodeId(s.to_owned())
    }

    fn quick() -> Timeouts {
        Timeouts {
            suspect_after: Duration::from_millis(100),
            evict_after: Duration::from_millis(300),
        }
    }

    #[test]
    fn direct_contact_joins_refreshes_and_recovers() {
        let t0 = Instant::now();
        let mut m = Membership::new(node("me"), "127.0.0.1:1".into(), quick());
        assert_eq!(m.ring_nodes(), vec![node("me")]);

        m.observe_direct(&node("p1"), "127.0.0.1:2", t0);
        assert_eq!(m.epoch(), 1, "join bumps the epoch");
        assert_eq!(m.ring_nodes(), vec![node("me"), node("p1")]);

        // Failure → Suspect, still ring-resident.
        m.mark_failed(&node("p1"));
        assert_eq!(m.get(&node("p1")).unwrap().health, Health::Suspect);
        assert!(m.alive_peers().is_empty());
        assert_eq!(m.ring_nodes().len(), 2);

        // Fresh direct contact recovers it without an epoch bump.
        m.observe_direct(&node("p1"), "127.0.0.1:2", t0 + Duration::from_millis(50));
        assert_eq!(m.get(&node("p1")).unwrap().health, Health::Alive);
        assert_eq!(m.epoch(), 1, "recovery is not a membership change");

        // Self-observations are ignored.
        m.observe_direct(&node("me"), "127.0.0.1:9", t0);
        assert_eq!(m.peers().count(), 1);
    }

    #[test]
    fn silence_suspects_then_evicts() {
        let t0 = Instant::now();
        let mut m = Membership::new(node("me"), "a:1".into(), quick());
        m.observe_direct(&node("p1"), "a:2", t0);

        assert!(!m.tick(t0 + Duration::from_millis(50)), "fresh: no change");
        assert_eq!(m.get(&node("p1")).unwrap().health, Health::Alive);

        assert!(!m.tick(t0 + Duration::from_millis(150)));
        assert_eq!(
            m.get(&node("p1")).unwrap().health,
            Health::Suspect,
            "past suspect_after"
        );

        assert!(m.tick(t0 + Duration::from_millis(400)), "eviction");
        assert!(m.get(&node("p1")).is_none());
        assert_eq!(m.ring_nodes(), vec![node("me")]);
        let epoch = m.epoch();

        // Evidence after eviction re-joins cleanly.
        m.observe_direct(&node("p1"), "a:2", t0 + Duration::from_millis(500));
        assert_eq!(m.epoch(), epoch + 1);
    }

    #[test]
    fn relayed_evidence_only_moves_forward() {
        let t0 = Instant::now();
        let now = t0 + Duration::from_millis(200);
        let mut m = Membership::new(node("me"), "a:1".into(), quick());

        // A fresh rumour introduces an Alive peer.
        m.observe_relayed(&node("p1"), "a:2", Duration::from_millis(10), now);
        assert_eq!(m.get(&node("p1")).unwrap().health, Health::Alive);

        // A staler rumour cannot rewind last_seen or health.
        m.mark_failed(&node("p1"));
        m.observe_relayed(&node("p1"), "a:2", Duration::from_millis(190), now);
        assert_eq!(
            m.get(&node("p1")).unwrap().health,
            Health::Suspect,
            "stale rumours do not resurrect"
        );

        // A fresher one does.
        m.observe_relayed(
            &node("p1"),
            "a:2",
            Duration::ZERO,
            now + Duration::from_millis(10),
        );
        assert_eq!(m.get(&node("p1")).unwrap().health, Health::Alive);

        // A rumour at suspect-age joins as Suspect; one past the
        // eviction window does not join at all.
        m.observe_relayed(&node("p2"), "a:3", Duration::from_millis(150), now);
        assert_eq!(m.get(&node("p2")).unwrap().health, Health::Suspect);
        m.observe_relayed(&node("p3"), "a:4", Duration::from_millis(900), now);
        assert!(m.get(&node("p3")).is_none(), "history is not membership");
    }

    #[test]
    fn explicit_leave_removes_immediately() {
        let t0 = Instant::now();
        let mut m = Membership::new(node("me"), "a:1".into(), quick());
        m.observe_direct(&node("p1"), "a:2", t0);
        m.observe_direct(&node("p2"), "a:3", t0);
        let epoch = m.epoch();
        assert!(m.remove(&node("p1")));
        assert_eq!(m.epoch(), epoch + 1);
        assert!(!m.remove(&node("p1")), "double-leave is a no-op");
        assert_eq!(m.ring_nodes(), vec![node("me"), node("p2")]);
    }
}
