//! Consistent-hash ring over the content-addressed key space.
//!
//! Determinism makes sharding trivial: a result is a pure function of
//! its request, the request's [`ContentKey`] bytes are already
//! avalanche-mixed (`st_serve::hash`), so the first eight key bytes are
//! a uniform point on a `u64` circle. Each node projects [`VNODES`]
//! virtual points onto the same circle from nothing but its node id, so
//! **every node that knows the same membership derives the same ring**
//! — no coordinator, no negotiation, no persisted placement table.
//!
//! Placement: a key is owned by the node whose virtual point is the
//! first at-or-after the key's point (wrapping). Replication walks
//! clockwise to the next *distinct* nodes. Adding or removing one node
//! moves only the keys adjacent to that node's virtual points — the
//! classic consistent-hashing minimal-movement property, proven by the
//! tests below.

use crate::NodeId;
use st_conformance::{fnv1a64, mix64};

/// Virtual points each node projects onto the ring. 64 keeps the
/// per-node share within a few percent of fair at cluster sizes this
/// repo targets (≤ dozens of nodes) while a full rebuild stays O(n·64).
pub const VNODES: usize = 64;

/// The deterministic ring: every node with the same member list builds
/// byte-identical placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, node index)` sorted by point; ties broken by node id
    /// order so collisions cannot produce divergent rings.
    points: Vec<(u64, u32)>,
    nodes: Vec<NodeId>,
}

/// The ring point of a virtual node: node id hashed, then mixed with
/// the vnode ordinal so a node's points scatter independently.
fn vnode_point(node: &NodeId, vnode: usize) -> u64 {
    mix64(fnv1a64(node.0.as_bytes()) ^ mix64(vnode as u64 + 1))
}

/// The ring point of a content key: its first eight bytes, which
/// `ContentKey::of` already finished with a splitmix avalanche.
pub fn key_point(key: &[u8; 16]) -> u64 {
    u64::from_le_bytes(key[..8].try_into().expect("8 bytes"))
}

impl HashRing {
    /// Builds the ring for `nodes` (deduplicated, order-insensitive:
    /// the member *set* determines the ring).
    ///
    /// # Panics
    ///
    /// Panics on an empty node list — a ring with no owners cannot
    /// place anything.
    pub fn build(nodes: &[NodeId]) -> HashRing {
        let mut nodes: Vec<NodeId> = nodes.to_vec();
        nodes.sort();
        nodes.dedup();
        assert!(!nodes.is_empty(), "a hash ring needs at least one node");
        let mut points = Vec::with_capacity(nodes.len() * VNODES);
        for (i, node) in nodes.iter().enumerate() {
            for v in 0..VNODES {
                points.push((vnode_point(node, v), i as u32));
            }
        }
        // Sort by (point, node id) — the id tiebreak keeps even a
        // 64-bit point collision deterministic across nodes.
        points.sort_by(|a, b| (a.0, &nodes[a.1 as usize].0).cmp(&(b.0, &nodes[b.1 as usize].0)));
        HashRing { points, nodes }
    }

    /// The member list, sorted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the ring has no members (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when `node` is a member.
    pub fn contains(&self, node: &NodeId) -> bool {
        self.nodes.binary_search(node).is_ok()
    }

    /// Index of the first virtual point at-or-after `point`, wrapping.
    fn first_at_or_after(&self, point: u64) -> usize {
        self.points.partition_point(|&(p, _)| p < point) % self.points.len()
    }

    /// The node that owns `key`.
    pub fn owner(&self, key: &[u8; 16]) -> &NodeId {
        let at = self.first_at_or_after(key_point(key));
        &self.nodes[self.points[at].1 as usize]
    }

    /// The first `n` *distinct* nodes clockwise from `key`'s point —
    /// the owner first, then its replication successors. Returns fewer
    /// than `n` when the cluster is smaller than `n`.
    pub fn successors(&self, key: &[u8; 16], n: usize) -> Vec<&NodeId> {
        let mut out: Vec<&NodeId> = Vec::with_capacity(n.min(self.nodes.len()));
        let start = self.first_at_or_after(key_point(key));
        for step in 0..self.points.len() {
            let (_, idx) = self.points[(start + step) % self.points.len()];
            let node = &self.nodes[idx as usize];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == n.min(self.nodes.len()) {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(s: &str) -> NodeId {
        NodeId(s.to_owned())
    }

    fn key(i: u64) -> [u8; 16] {
        st_conformance::content_key16(&i.to_le_bytes())
    }

    #[test]
    fn ring_is_a_pure_function_of_the_member_set() {
        let a = HashRing::build(&[node("n1"), node("n2"), node("n3")]);
        let b = HashRing::build(&[node("n3"), node("n1"), node("n2"), node("n1")]);
        assert_eq!(a, b, "order and duplicates must not matter");
        for i in 0..256 {
            assert_eq!(a.owner(&key(i)), b.owner(&key(i)));
        }
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let nodes: Vec<NodeId> = (0..4).map(|i| node(&format!("node-{i}"))).collect();
        let ring = HashRing::build(&nodes);
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..4096u64 {
            *counts.entry(ring.owner(&key(i)).clone()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4, "every node owns some keys");
        for (n, c) in &counts {
            // Fair share is 1024; allow a generous band — the point is
            // that no node is starved or hot by an order of magnitude.
            assert!((300..=2200).contains(c), "{n:?} owns {c} of 4096");
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_own_keys() {
        let full = HashRing::build(&[node("a"), node("b"), node("c"), node("d")]);
        let less = HashRing::build(&[node("a"), node("b"), node("c")]);
        let mut moved = 0usize;
        for i in 0..2048u64 {
            let k = key(i);
            let before = full.owner(&k);
            let after = less.owner(&k);
            if before != after {
                assert_eq!(
                    before,
                    &node("d"),
                    "only keys owned by the removed node may move"
                );
                moved += 1;
            }
        }
        assert!(moved > 0, "the removed node owned something");
        assert!(moved < 1024, "movement stays near the 1/4 fair share");
    }

    #[test]
    fn successors_are_distinct_start_with_the_owner_and_cap_at_cluster_size() {
        let ring = HashRing::build(&[node("a"), node("b"), node("c")]);
        for i in 0..64u64 {
            let k = key(i);
            let succ = ring.successors(&k, 2);
            assert_eq!(succ.len(), 2);
            assert_eq!(succ[0], ring.owner(&k));
            assert_ne!(succ[0], succ[1]);
            // Asking for more replicas than nodes caps cleanly.
            let all = ring.successors(&k, 9);
            assert_eq!(all.len(), 3);
            let mut sorted: Vec<&NodeId> = all.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "successors are distinct nodes");
        }
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let ring = HashRing::build(&[node("solo")]);
        for i in 0..32u64 {
            assert_eq!(ring.owner(&key(i)), &node("solo"));
            assert_eq!(ring.successors(&key(i), 3).len(), 1);
        }
    }
}
