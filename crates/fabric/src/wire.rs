//! The peer wire envelope: the fail-closed frame every inter-node
//! result transfer travels in.
//!
//! Content addressing makes verification free — the receiver already
//! knows the 16-byte key it asked for, so the envelope echoes that key
//! and carries an FNV checksum of the payload, and decoding **fails
//! closed**: a frame whose key echo disagrees with the expected key, or
//! whose payload does not hash to the carried checksum, is rejected
//! before a single payload byte is trusted (the caller counts it into
//! `corrupt_discards`, the same ledger the disk store uses —
//! ST-CLU-015). The frame optionally carries the executing node's
//! [`WitnessRecord`] so provenance survives forwarding and the
//! forwarder's `/conformance` can tally remote executions (ST-WIT-013's
//! offline-verify property crosses the wire intact).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "STPF" | version u16 | flags u16 | key [16] | payload_len u64
//!        | payload_checksum u64 (fnv1a64)
//!        | [witness block when flags & WITNESS]   | payload bytes
//! ```
//!
//! The witness block is the record's canonical fields plus its chain
//! links: `seq u64 | n_ids u32 | (len u32, bytes)* | config [16]
//! | result [16] | prev u64 | chain u64`.

use st_conformance::{fnv1a64, WitnessRecord};

/// Frame magic.
pub const MAGIC: &[u8; 4] = b"STPF";
/// Current frame version.
pub const VERSION: u16 = 1;
/// Flag: a witness block follows the header.
const FLAG_WITNESS: u16 = 1;
/// Decode ceiling on the payload length field, mirroring the HTTP
/// layer's body cap so a corrupt length cannot ask for a huge buffer.
pub const MAX_PAYLOAD: u64 = 8 * 1024 * 1024;
/// Decode ceilings on witness-block fields; real records are tiny.
const MAX_WITNESS_IDS: u32 = 64;
const MAX_ID_LEN: u32 = 128;

/// One peer-transfer frame: a verified payload plus optional witness
/// provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The content key the payload claims to be stored under.
    pub key: [u8; 16],
    /// The payload bytes (a canonical result entry).
    pub payload: Vec<u8>,
    /// The executing node's witness record, when one was minted.
    pub witness: Option<WitnessRecord>,
}

/// Why a frame was rejected. Every variant is a *discard* — the caller
/// must not fall back to trusting any decoded field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Too short, bad magic, bad version, or a truncated field.
    Malformed(&'static str),
    /// The frame's key echo is not the key the receiver asked for.
    KeyMismatch,
    /// The payload does not hash to the carried checksum.
    ChecksumMismatch,
    /// The carried witness record fails its own offline verification.
    WitnessInvalid,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Malformed(what) => write!(f, "malformed peer frame: {what}"),
            FrameError::KeyMismatch => write!(f, "peer frame key echo mismatch"),
            FrameError::ChecksumMismatch => write!(f, "peer frame payload checksum mismatch"),
            FrameError::WitnessInvalid => write!(f, "peer frame witness record fails verification"),
        }
    }
}

impl Frame {
    /// Encodes the frame. The checksum is computed here, so an encoded
    /// frame always decodes against its own key.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let flags = if self.witness.is_some() {
            FLAG_WITNESS
        } else {
            0
        };
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&self.key);
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        if let Some(w) = &self.witness {
            out.extend_from_slice(&w.seq.to_le_bytes());
            out.extend_from_slice(&(w.ids.len() as u32).to_le_bytes());
            for id in &w.ids {
                out.extend_from_slice(&(id.len() as u32).to_le_bytes());
                out.extend_from_slice(id.as_bytes());
            }
            out.extend_from_slice(&w.config);
            out.extend_from_slice(&w.result);
            out.extend_from_slice(&w.prev.to_le_bytes());
            out.extend_from_slice(&w.chain.to_le_bytes());
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes and verifies a frame against the key the receiver asked
    /// for. Fail-closed: any structural defect, key disagreement,
    /// checksum disagreement, or invalid witness record rejects the
    /// whole frame.
    pub fn decode(bytes: &[u8], expected_key: &[u8; 16]) -> Result<Frame, FrameError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(4)? != MAGIC {
            return Err(FrameError::Malformed("magic"));
        }
        if r.u16()? != VERSION {
            return Err(FrameError::Malformed("version"));
        }
        let flags = r.u16()?;
        if flags & !FLAG_WITNESS != 0 {
            return Err(FrameError::Malformed("unknown flags"));
        }
        let key: [u8; 16] = r.take(16)?.try_into().expect("16 bytes");
        let payload_len = r.u64()?;
        if payload_len > MAX_PAYLOAD {
            return Err(FrameError::Malformed("payload length over cap"));
        }
        let checksum = r.u64()?;
        let witness = if flags & FLAG_WITNESS != 0 {
            let seq = r.u64()?;
            let n_ids = r.u32()?;
            if n_ids == 0 || n_ids > MAX_WITNESS_IDS {
                return Err(FrameError::Malformed("witness id count"));
            }
            let mut ids = Vec::with_capacity(n_ids as usize);
            for _ in 0..n_ids {
                let len = r.u32()?;
                if len == 0 || len > MAX_ID_LEN {
                    return Err(FrameError::Malformed("witness id length"));
                }
                let id = std::str::from_utf8(r.take(len as usize)?)
                    .map_err(|_| FrameError::Malformed("witness id utf8"))?;
                ids.push(id.to_owned());
            }
            let config: [u8; 16] = r.take(16)?.try_into().expect("16 bytes");
            let result: [u8; 16] = r.take(16)?.try_into().expect("16 bytes");
            let prev = r.u64()?;
            let chain = r.u64()?;
            Some(WitnessRecord {
                seq,
                ids,
                config,
                result,
                prev,
                chain,
            })
        } else {
            None
        };
        let payload = r.take(payload_len as usize)?.to_vec();
        if r.at != bytes.len() {
            return Err(FrameError::Malformed("trailing bytes"));
        }
        // Verification order: identity first (did we even get the key
        // we asked for?), then integrity, then provenance.
        if key != *expected_key {
            return Err(FrameError::KeyMismatch);
        }
        if fnv1a64(&payload) != checksum {
            return Err(FrameError::ChecksumMismatch);
        }
        if let Some(w) = &witness {
            if !w.verify() {
                return Err(FrameError::WitnessInvalid);
            }
        }
        Ok(Frame {
            key,
            payload,
            witness,
        })
    }
}

/// Bounds-checked cursor over the frame bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(FrameError::Malformed("truncated"))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_conformance::{content_key16, witnesses, WitnessLog};

    fn frame_with_witness() -> Frame {
        let payload = b"canonical result entry bytes".to_vec();
        let key = content_key16(b"the request");
        let mut log = WitnessLog::new();
        let witness = log.append(&["ST-DET-001"], key, content_key16(&payload));
        Frame {
            key,
            payload,
            witness: Some(witness),
        }
    }

    #[test]
    fn frames_round_trip_with_and_without_witness() {
        let with = frame_with_witness();
        let decoded = Frame::decode(&with.encode(), &with.key).expect("round trip");
        assert_eq!(decoded, with);
        assert!(decoded.witness.as_ref().unwrap().verify());

        let without = Frame {
            witness: None,
            ..with
        };
        assert_eq!(
            Frame::decode(&without.encode(), &without.key).expect("round trip"),
            without
        );
    }

    #[test]
    fn decode_fails_closed_on_every_tampered_field() {
        // A replicated entry MUST verify against its content key on
        // arrival — this is the wire half of ST-CLU-015, and the same
        // discard ledger as the disk store's corrupt-entry handling
        // (ST-STORE-011).
        witnesses!(["ST-CLU-015", "ST-STORE-011"]);
        let frame = frame_with_witness();
        let good = frame.encode();

        // Wrong expected key: the receiver asked for something else.
        let other = content_key16(b"a different request");
        assert_eq!(
            Frame::decode(&good, &other).unwrap_err(),
            FrameError::KeyMismatch
        );

        // Flip one payload byte: checksum catches it.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(
            Frame::decode(&flipped, &frame.key).unwrap_err(),
            FrameError::ChecksumMismatch
        );

        // Tamper with the witness result digest: the record's own chain
        // hash catches it even though the payload checksum still holds.
        let mut bad_witness = frame.clone();
        bad_witness.witness.as_mut().unwrap().result = [0xAB; 16];
        assert_eq!(
            Frame::decode(&bad_witness.encode(), &frame.key).unwrap_err(),
            FrameError::WitnessInvalid
        );

        // Structural damage: truncation, magic, version, trailing junk.
        assert!(matches!(
            Frame::decode(&good[..good.len() - 1], &frame.key).unwrap_err(),
            FrameError::Malformed(_)
        ));
        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(matches!(
            Frame::decode(&magic, &frame.key).unwrap_err(),
            FrameError::Malformed("magic")
        ));
        let mut version = good.clone();
        version[4] = 0xFF;
        assert!(matches!(
            Frame::decode(&version, &frame.key).unwrap_err(),
            FrameError::Malformed("version")
        ));
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            Frame::decode(&trailing, &frame.key).unwrap_err(),
            FrameError::Malformed("trailing bytes")
        ));
        assert!(matches!(
            Frame::decode(b"", &frame.key).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    #[test]
    fn decode_caps_hostile_length_fields() {
        let frame = Frame {
            key: [7; 16],
            payload: vec![1, 2, 3],
            witness: None,
        };
        let mut bytes = frame.encode();
        // Payload length field sits at offset 24; write an absurd value.
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes, &frame.key).unwrap_err(),
            FrameError::Malformed("payload length over cap")
        ));
    }
}
