//! # st-fabric — distributed campaign fabric primitives
//!
//! Synchro-Tokens' determinism makes every campaign result a pure
//! function of its configuration, so a result is fully identified by
//! the content key of its request — which makes a result store
//! trivially shardable (the key decides the owner), replicable (any
//! copy is as good as any other) and verifiable (the key *is* the
//! checksum). This crate holds the three pure pieces a multi-node
//! st-serve cluster is built from, in the masterless spirit of FATAL+
//! and PALS — no coordinator, no consensus, just deterministic
//! placement plus gossip:
//!
//! * [`ring`] — the consistent-hash ring: every node derives identical
//!   placement from the member set alone.
//! * [`gossip`] — the membership state machine: direct/relayed
//!   evidence, suspicion and eviction timeouts, epochs that signal
//!   ring rebuilds.
//! * [`wire`] — the fail-closed peer frame: key echo + payload
//!   checksum + optional chained witness record, rejected whole on any
//!   disagreement.
//!
//! Everything here is std-only pure data with injected clocks; the
//! sockets, threads and HTTP live in `st-serve`'s `cluster` module.

pub mod gossip;
pub mod ring;
pub mod wire;

pub use gossip::{Health, Membership, PeerEntry, Timeouts};
pub use ring::{key_point, HashRing, VNODES};
pub use wire::{Frame, FrameError};

/// A node's stable identity within the cluster. Ordered so member
/// lists sort deterministically — the ring is a pure function of the
/// sorted member set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub String);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
