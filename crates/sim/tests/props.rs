//! Property-based tests of the kernel's foundational guarantees.

use proptest::prelude::*;
use st_sim::prelude::*;

proptest! {
    /// Duration arithmetic is consistent with raw femtoseconds.
    #[test]
    fn duration_add_sub_round_trip(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (da, db) = (SimDuration::fs(a), SimDuration::fs(b));
        prop_assert_eq!((da + db).as_fs(), a + b);
        prop_assert_eq!(((da + db) - db).as_fs(), a);
    }

    /// Percent scaling is monotone and exact at 100 %.
    #[test]
    fn percent_scaling_properties(fs in 0u64..u64::MAX / 512, pct in 1u64..400) {
        let d = SimDuration::fs(fs);
        prop_assert_eq!(d.percent(100), d);
        let scaled = d.percent(pct);
        if pct >= 100 {
            prop_assert!(scaled >= d);
        } else {
            prop_assert!(scaled <= d);
        }
        // Rounding error is at most half a femtosecond (i.e. none,
        // since we round to nearest).
        let back = (u128::from(fs) * u128::from(pct) + 50) / 100;
        prop_assert!(u128::from(scaled.as_fs()).abs_diff(back) <= 1);
    }

    /// Division and remainder agree with multiplication.
    #[test]
    fn div_rem_identity(fs in 1u64..u64::MAX / 4, q in 1u64..1_000_000) {
        let d = SimDuration::fs(fs);
        let unit = SimDuration::fs(q);
        let n = d / unit;
        let r = d % unit;
        prop_assert_eq!(unit * n + r, d);
        prop_assert!(r < unit);
    }

    /// Scheduled drives are applied in time order regardless of the
    /// order they were scheduled in, and the final value at each time
    /// wins ties by schedule order.
    #[test]
    fn drives_apply_in_time_order(mut times in proptest::collection::vec(1u64..1000, 1..40)) {
        let mut b = SimBuilder::new();
        let s = b.add_word_signal("w");
        b.trace(s.id());
        let mut sim = b.build();
        for (i, t) in times.iter().enumerate() {
            sim.drive(s.id(), Value::Word(i as u64), SimDuration::ns(*t));
        }
        sim.run_for(SimDuration::us(2)).unwrap();
        // The final value must be the last-scheduled drive among those
        // with the maximum time.
        times.reverse();
        let max_t = *times.iter().max().unwrap();
        let winner_rev_idx = times.iter().position(|t| *t == max_t).unwrap();
        let winner = times.len() - 1 - winner_rev_idx;
        prop_assert_eq!(sim.word(s), Some(winner as u64));
        // Trace times strictly increase.
        let stamps: Vec<u64> = sim.trace().changes(s.id()).map(|(t, _)| t.as_fs()).collect();
        prop_assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    }

    /// A run is exactly reproducible: same build + same seed => same
    /// trace; and end time never exceeds the deadline.
    #[test]
    fn runs_are_reproducible(seed in any::<u64>(), deadline_ns in 1u64..500) {
        fn run(seed: u64, deadline_ns: u64) -> (Vec<(u64, String)>, u64) {
            struct Noise { out: BitSignal }
            impl Component for Noise {
                fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                    if matches!(cause, Wake::Start | Wake::Timer(_)) {
                        use rand::Rng;
                        let v: bool = ctx.rng().gen();
                        ctx.drive_bit(self.out, v, SimDuration::ZERO);
                        ctx.set_timer(SimDuration::ns(3), 0);
                    }
                }
            }
            let mut b = SimBuilder::new().with_seed(seed);
            let s = b.add_bit_signal("n");
            b.trace(s.id());
            b.add_component("noise", Noise { out: s });
            let mut sim = b.build();
            let summary = sim.run_for(SimDuration::ns(deadline_ns)).unwrap();
            let tr = sim
                .trace()
                .changes(s.id())
                .map(|(t, v)| (t.as_fs(), v.to_string()))
                .collect();
            (tr, summary.end_time.as_fs())
        }
        let a = run(seed, deadline_ns);
        let b = run(seed, deadline_ns);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.1 <= SimDuration::ns(deadline_ns).as_fs());
    }

    /// The trace's `value_at` is consistent with replaying its changes.
    #[test]
    fn trace_value_at_matches_replay(changes in proptest::collection::vec((1u64..200, 0u64..16), 1..30)) {
        let mut b = SimBuilder::new();
        let s = b.add_word_signal("w");
        b.trace(s.id());
        let mut sim = b.build();
        for (t, v) in &changes {
            sim.drive(s.id(), Value::Word(*v), SimDuration::ns(*t));
        }
        sim.run_for(SimDuration::us(1)).unwrap();
        // Replay manually.
        let mut sorted = changes.clone();
        sorted.sort_by_key(|(t, _)| *t);
        for probe_ns in [0u64, 50, 100, 150, 250] {
            let probe = SimTime::ZERO + SimDuration::ns(probe_ns);
            let expected = {
                // Last write at or before probe, later schedule index
                // winning ties -> scan in schedule order keeping max time.
                let mut best: Option<(u64, u64, usize)> = None; // (t, v, idx)
                for (idx, (t, v)) in changes.iter().enumerate() {
                    if *t <= probe_ns {
                        let better = match best {
                            None => true,
                            Some((bt, _, bidx)) => *t > bt || (*t == bt && idx > bidx),
                        };
                        if better {
                            best = Some((*t, *v, idx));
                        }
                    }
                }
                best.map(|(_, v, _)| v)
            };
            let got = sim.trace().value_at(s.id(), probe).and_then(Value::as_word);
            prop_assert_eq!(got, expected, "probe at {}ns", probe_ns);
        }
    }
}
