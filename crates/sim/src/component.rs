//! The component model.
//!
//! A [`Component`] is a behavioural process: it owns private state, is woken
//! by the kernel when something it watches happens, and reacts by reading
//! signals, driving signals after a delay, and setting timers. All hardware
//! in this repository — clocks, FIFO stages, wrapper nodes, TAP controllers
//! — is expressed as components.

use crate::kernel::{Ctx, SignalId};
use std::any::Any;
use std::fmt;

/// Identifies a component registered with a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// Builds an id from its raw index (checkpoint deserialization; ids
    /// are only meaningful against the simulator they were minted by).
    pub const fn from_raw(raw: u32) -> Self {
        ComponentId(raw)
    }

    /// The raw index (checkpoint serialization).
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    pub(crate) const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A typed handle to a component, for post-simulation inspection.
///
/// Returned by [`SimBuilder::add_component`](crate::kernel::SimBuilder::add_component);
/// pass it to [`Simulator::get`](crate::kernel::Simulator::get) to read the
/// component's final state after a run.
pub struct Handle<T> {
    id: ComponentId,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    pub(crate) fn new(id: ComponentId) -> Self {
        Handle {
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// The untyped component id (usable with `watch`).
    pub fn id(&self) -> ComponentId {
        self.id
    }
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}

impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Handle({})", self.id)
    }
}

/// Why a component was woken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// First wake, delivered once at time zero before any event fires.
    Start,
    /// A watched signal changed value at the current time.
    Signal(SignalId),
    /// A timer set with [`Ctx::set_timer`] expired; carries the caller's tag.
    Timer(u64),
}

/// A behavioural simulation process.
///
/// Implementations react to [`Wake`] causes inside [`Component::wake`];
/// they must not block and must only interact with the simulation through
/// the provided [`Ctx`]. Determinism contract: given the same wake sequence
/// and signal values, a component must make the same calls on `Ctx`
/// (randomness is allowed only via [`Ctx::rng`], which is seeded).
pub trait Component: Any {
    /// Reacts to a wake cause. See the type-level documentation.
    fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_id_display_and_order() {
        let a = ComponentId::from_raw(1);
        let b = ComponentId::from_raw(2);
        assert!(a < b);
        assert_eq!(a.to_string(), "c1");
        assert_eq!(a.index(), 1);
    }

    #[test]
    fn handle_is_copy_and_debug() {
        struct Dummy;
        impl Component for Dummy {
            fn wake(&mut self, _: &mut Ctx<'_>, _: Wake) {}
        }
        let h: Handle<Dummy> = Handle::new(ComponentId::from_raw(3));
        let h2 = h;
        assert_eq!(h.id(), h2.id());
        assert_eq!(format!("{h:?}"), "Handle(c3)");
    }
}
