//! # st-sim — a deterministic discrete-event simulation kernel
//!
//! This crate is the simulation substrate for the reproduction of
//! *"Eliminating Nondeterminism to Enable Chip-Level Test of
//! Globally-Asynchronous Locally-Synchronous SoCs"* (Heath, Burleson,
//! Harris — DATE 2004). The paper validated synchro-tokens in Verilog,
//! relying on its "ability to specify nonzero delays and concurrent
//! events"; `st-sim` provides the same facilities natively in Rust:
//!
//! * femtosecond-resolution [`time::SimTime`] stamps,
//! * transport-delay signal drives with delta cycles,
//! * a [`component::Component`] process model with sensitivity lists and
//!   timers,
//! * waveform capture with VCD export and ASCII rendering
//!   ([`trace::TraceBuffer`]),
//! * a seeded RNG as the *only* source of randomness, so every run is
//!   reproducible.
//!
//! The kernel itself is strictly deterministic; the GALS nondeterminism the
//! paper studies is modelled *on top of it* (metastable synchronizers and
//! arbiters in `st-channel`), as sensitivity to swept delay parameters.
//!
//! ## Example
//!
//! ```
//! use st_sim::prelude::*;
//!
//! struct Blinker { led: BitSignal }
//! impl Component for Blinker {
//!     fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
//!         if matches!(cause, Wake::Start | Wake::Timer(_)) {
//!             ctx.toggle_bit(self.led, SimDuration::ZERO);
//!             ctx.set_timer(SimDuration::ns(10), 0);
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), st_sim::SimError> {
//! let mut b = SimBuilder::new();
//! let led = b.add_bit_signal_init("led", Bit::Zero);
//! b.trace(led.id());
//! b.add_component("blinker", Blinker { led });
//! let mut sim = b.build();
//! sim.run_for(SimDuration::ns(95))?;
//! assert_eq!(sim.trace().changes(led.id()).count(), 10);
//! # Ok(())
//! # }
//! ```

pub mod component;
pub mod event;
pub mod kernel;
pub mod time;
pub mod trace;
pub mod value;

pub use component::{Component, ComponentId, Handle, Wake};
pub use kernel::{
    BitSignal, Ctx, DelayModel, KernelEvent, KernelEventKind, KernelSnapshot, RunSummary, SignalId,
    SimBuilder, SimError, Simulator, WordSignal,
};
pub use time::{SimDuration, SimTime};
pub use trace::TraceBuffer;
pub use value::{Bit, Value};

/// Convenient glob import for model code and tests.
pub mod prelude {
    pub use crate::component::{Component, ComponentId, Handle, Wake};
    pub use crate::kernel::{
        BitSignal, Ctx, DelayModel, KernelEvent, KernelEventKind, KernelSnapshot, RunSummary,
        SignalId, SimBuilder, SimError, Simulator, WordSignal,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::value::{Bit, Value};
}
