//! The time-ordered event queue.
//!
//! Events are totally ordered by `(time, sequence number)`. The sequence
//! number is assigned at scheduling time, so two events scheduled for the
//! same instant fire in the order they were scheduled — this is what makes
//! the kernel deterministic: there are no ties left for a hash map or
//! thread scheduler to break.

use crate::component::ComponentId;
use crate::kernel::SignalId;
use crate::time::SimTime;
use crate::value::Value;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Set a signal to a value (transport delay semantics).
    Drive { sig: SignalId, value: Value },
    /// Wake a component with `Wake::Timer(tag)`.
    Timer { comp: ComponentId, tag: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of events.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event, assigning the next sequence number.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    /// The timestamp of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops the earliest event if it fires at exactly `time`.
    pub fn pop_at(&mut self, time: SimTime) -> Option<Event> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.time == time => self.heap.pop().map(|Reverse(e)| e),
            _ => None,
        }
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer(comp: u32, tag: u64) -> EventKind {
        EventKind::Timer {
            comp: ComponentId::from_raw(comp),
            tag,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |n| SimTime::ZERO + SimDuration::ns(n);
        q.schedule(t(5), timer(0, 0));
        q.schedule(t(1), timer(0, 1));
        q.schedule(t(3), timer(0, 2));
        assert_eq!(q.next_time(), Some(t(1)));
        assert_eq!(q.pop_at(t(1)).unwrap().kind, timer(0, 1));
        assert_eq!(q.next_time(), Some(t(3)));
        assert!(q.pop_at(t(1)).is_none());
        assert_eq!(q.pop_at(t(3)).unwrap().kind, timer(0, 2));
        assert_eq!(q.pop_at(t(5)).unwrap().kind, timer(0, 0));
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_fires_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::ns(1);
        for tag in 0..100 {
            q.schedule(t, timer(0, tag));
        }
        for tag in 0..100 {
            assert_eq!(q.pop_at(t).unwrap().kind, timer(0, tag));
        }
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.scheduled_total(), 0);
        q.schedule(SimTime::ZERO, timer(0, 0));
        q.schedule(SimTime::ZERO, timer(0, 1));
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 2);
        q.pop_at(SimTime::ZERO);
        assert_eq!(q.scheduled_total(), 2, "popping must not change the total");
    }
}
