//! The time-ordered event queue.
//!
//! Events are totally ordered by `(time, sequence number)`. The sequence
//! number is assigned at scheduling time, so two events scheduled for the
//! same instant fire in the order they were scheduled — this is what makes
//! the kernel deterministic: there are no ties left for a hash map or
//! thread scheduler to break.
//!
//! # Same-instant fast path
//!
//! Discrete-event workloads are bursty: a clock edge or a delta storm
//! schedules many events *at the current instant*, and the kernel drains
//! them before simulated time advances. Routing those through the binary
//! heap costs `O(log n)` sifts per push/pop for no ordering benefit —
//! sequence numbers are monotonic, so same-instant arrivals are already
//! FIFO. The queue therefore keeps a FIFO *bucket* for the instant
//! currently being drained: [`EventQueue::pop_at`] activates the bucket
//! for its timestamp, and every subsequent [`EventQueue::schedule`] at
//! that exact instant is an `O(1)` `push_back` instead of a heap push.
//!
//! Ordering invariant: any heap event at the bucket's instant was
//! scheduled *before* the bucket was activated (smaller sequence number
//! — activation happens only once the instant is being drained, and
//! later schedules go to the bucket), so `pop_at` drains the heap's
//! same-instant events before touching the bucket.

use crate::component::ComponentId;
use crate::kernel::SignalId;
use crate::time::SimTime;
use crate::value::Value;
use std::cmp::Reverse;
use std::collections::binary_heap::PeekMut;
use std::collections::{BinaryHeap, VecDeque};

/// What an event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// Set a signal to a value (transport delay semantics).
    Drive { sig: SignalId, value: Value },
    /// Wake a component with `Wake::Timer(tag)`.
    Timer { comp: ComponentId, tag: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of events with a same-instant FIFO bucket.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    /// FIFO of events at `bucket_time`, in scheduling order.
    bucket: VecDeque<Event>,
    /// The instant the bucket collects for (valid while draining that
    /// instant; stale once `pop_at` moves to a new time).
    bucket_time: Option<SimTime>,
    next_seq: u64,
    scheduled_total: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event, assigning the next sequence number.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let ev = Event { time, seq, kind };
        if self.bucket_time == Some(time) {
            // Same-instant burst: FIFO order == seq order, skip the heap.
            self.bucket.push_back(ev);
        } else {
            self.heap.push(Reverse(ev));
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        let heap_t = self.heap.peek().map(|Reverse(e)| e.time);
        let bucket_t = if self.bucket.is_empty() {
            None
        } else {
            self.bucket_time
        };
        match (heap_t, bucket_t) {
            (Some(h), Some(b)) => Some(h.min(b)),
            (h, None) => h,
            (None, b) => b,
        }
    }

    /// Pops the earliest event if it fires at exactly `time`.
    ///
    /// Also activates the same-instant bucket for `time`, so events
    /// scheduled at `time` from now on bypass the heap.
    pub fn pop_at(&mut self, time: SimTime) -> Option<Event> {
        if self.bucket.is_empty() {
            self.bucket_time = Some(time);
        } else if self.bucket_time.is_some_and(|bt| bt < time) {
            // Earlier-timed bucket entries exist; nothing fires at `time`.
            return None;
        }
        // Heap events at `time` predate any bucket events at `time`
        // (smaller sequence numbers), so they fire first. `peek_mut`
        // keeps this to a single ordered-head check per event.
        if let Some(head) = self.heap.peek_mut() {
            if head.0.time == time {
                return Some(PeekMut::pop(head).0);
            }
        }
        if self.bucket_time == Some(time) {
            return self.bucket.pop_front();
        }
        None
    }

    /// Every pending event, sorted by `(time, seq)` — i.e. exactly the
    /// order they would fire in. Used by kernel checkpointing; the queue
    /// is left untouched.
    pub fn pending_sorted(&self) -> Vec<Event> {
        let mut evs: Vec<Event> = self.heap.iter().map(|Reverse(e)| *e).collect();
        evs.extend(self.bucket.iter().copied());
        evs.sort_unstable();
        evs
    }

    /// Replaces the queue contents from a checkpoint. All events go into
    /// the heap with the bucket idle; ordering is unaffected because the
    /// heap orders purely by `(time, seq)` and every restored event keeps
    /// its original sequence number.
    pub fn restore(&mut self, events: &[Event], next_seq: u64, scheduled_total: u64) {
        self.heap.clear();
        self.bucket.clear();
        self.bucket_time = None;
        for ev in events {
            self.heap.push(Reverse(*ev));
        }
        self.next_seq = next_seq;
        self.scheduled_total = scheduled_total;
    }

    /// The sequence number the next scheduled event would receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.bucket.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len() + self.bucket.len()
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer(comp: u32, tag: u64) -> EventKind {
        EventKind::Timer {
            comp: ComponentId::from_raw(comp),
            tag,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |n| SimTime::ZERO + SimDuration::ns(n);
        q.schedule(t(5), timer(0, 0));
        q.schedule(t(1), timer(0, 1));
        q.schedule(t(3), timer(0, 2));
        assert_eq!(q.next_time(), Some(t(1)));
        assert_eq!(q.pop_at(t(1)).unwrap().kind, timer(0, 1));
        assert_eq!(q.next_time(), Some(t(3)));
        assert!(q.pop_at(t(1)).is_none());
        assert_eq!(q.pop_at(t(3)).unwrap().kind, timer(0, 2));
        assert_eq!(q.pop_at(t(5)).unwrap().kind, timer(0, 0));
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_fires_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::ns(1);
        for tag in 0..100 {
            q.schedule(t, timer(0, tag));
        }
        for tag in 0..100 {
            assert_eq!(q.pop_at(t).unwrap().kind, timer(0, tag));
        }
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.scheduled_total(), 0);
        q.schedule(SimTime::ZERO, timer(0, 0));
        q.schedule(SimTime::ZERO, timer(0, 1));
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 2);
        q.pop_at(SimTime::ZERO);
        assert_eq!(q.scheduled_total(), 2, "popping must not change the total");
    }

    #[test]
    fn bucket_interleaves_with_heap_in_seq_order() {
        // Events scheduled at `t` before the instant is drained sit in
        // the heap; events scheduled at `t` *while draining* go to the
        // bucket. Global order must still be pure scheduling order.
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::ns(2);
        q.schedule(t, timer(0, 0));
        q.schedule(t, timer(0, 1));
        assert_eq!(q.pop_at(t).unwrap().kind, timer(0, 0)); // activates bucket
        q.schedule(t, timer(0, 2)); // -> bucket
        q.schedule(t, timer(0, 3)); // -> bucket
        assert_eq!(q.pop_at(t).unwrap().kind, timer(0, 1)); // heap first
        assert_eq!(q.pop_at(t).unwrap().kind, timer(0, 2));
        q.schedule(t, timer(0, 4));
        assert_eq!(q.pop_at(t).unwrap().kind, timer(0, 3));
        assert_eq!(q.pop_at(t).unwrap().kind, timer(0, 4));
        assert!(q.pop_at(t).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn bucket_drains_before_later_instants() {
        let mut q = EventQueue::new();
        let t = |n| SimTime::ZERO + SimDuration::ns(n);
        q.schedule(t(1), timer(0, 0));
        assert_eq!(q.pop_at(t(1)).unwrap().kind, timer(0, 0));
        // Bucket now active at t=1; schedule both a same-instant and a
        // future event.
        q.schedule(t(1), timer(0, 1));
        q.schedule(t(5), timer(0, 2));
        assert_eq!(q.next_time(), Some(t(1)));
        // Asking for the future instant while earlier bucket events are
        // pending must yield nothing.
        assert!(q.pop_at(t(5)).is_none());
        assert_eq!(q.pop_at(t(1)).unwrap().kind, timer(0, 1));
        assert_eq!(q.next_time(), Some(t(5)));
        assert_eq!(q.pop_at(t(5)).unwrap().kind, timer(0, 2));
        assert!(q.is_empty());
    }

    #[test]
    fn stale_bucket_time_does_not_misroute() {
        let mut q = EventQueue::new();
        let t = |n| SimTime::ZERO + SimDuration::ns(n);
        q.schedule(t(1), timer(0, 0));
        assert_eq!(q.pop_at(t(1)).unwrap().kind, timer(0, 0));
        // Bucket is empty but bucket_time == t(1). A later-instant pop
        // re-activates the bucket for its own time.
        q.schedule(t(3), timer(0, 1));
        assert_eq!(q.pop_at(t(3)).unwrap().kind, timer(0, 1));
        q.schedule(t(3), timer(0, 2));
        assert_eq!(q.pop_at(t(3)).unwrap().kind, timer(0, 2));
        assert!(q.is_empty());
    }
}
