//! The simulation kernel: signals, scheduling, and the run loop.
//!
//! # Determinism
//!
//! The kernel is single-threaded and breaks every tie explicitly: events at
//! the same timestamp fire in scheduling order, and components woken in the
//! same delta step are woken in the order the triggering events fired.
//! The only randomness available to models is the seeded [`Ctx::rng`].
//! Two runs with the same build sequence and seed produce bit-identical
//! traces — nondeterminism in *modelled hardware* (synchronizers, arbiters)
//! is expressed as sensitivity to model parameters, exactly the kind of
//! variation the paper's experiments sweep.
//!
//! # Examples
//!
//! ```
//! use st_sim::prelude::*;
//!
//! /// Toggles `out` forever with the given half period.
//! struct Toggler { out: BitSignal, half: SimDuration }
//! impl Component for Toggler {
//!     fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
//!         match cause {
//!             Wake::Start | Wake::Timer(_) => {
//!                 let next = !ctx.bit(self.out);
//!                 ctx.drive_bit(self.out, next, SimDuration::ZERO);
//!                 ctx.set_timer(self.half, 0);
//!             }
//!             _ => {}
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), st_sim::SimError> {
//! let mut b = SimBuilder::new();
//! let clk = b.add_bit_signal_init("clk", Bit::Zero);
//! b.add_component("osc", Toggler { out: clk, half: SimDuration::ns(5) });
//! let mut sim = b.build();
//! sim.run_until(SimTime::ZERO + SimDuration::ns(42))?;
//! assert_eq!(sim.bit(clk), Bit::One); // toggles at 0,5,...,40: nine in total
//! # Ok(())
//! # }
//! ```

use crate::component::{Component, ComponentId, Handle, Wake};
use crate::event::{EventKind, EventQueue};
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceBuffer;
use crate::value::{Bit, Value};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::fmt;

/// Maximum zero-delay (delta) iterations permitted at a single timestamp
/// before the kernel reports a combinational loop.
const MAX_DELTAS: u32 = 10_000;

/// Identifies a signal (net) in the simulated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(u32);

impl SignalId {
    pub(crate) const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from its raw index (checkpoint deserialization; ids
    /// are only meaningful against the simulator they were minted by).
    pub const fn from_raw(raw: u32) -> Self {
        SignalId(raw)
    }

    /// The raw index (checkpoint serialization).
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A typed handle to a single-bit signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitSignal(SignalId);

impl BitSignal {
    /// The untyped signal id.
    pub fn id(self) -> SignalId {
        self.0
    }
}

/// A typed handle to a data-word signal (up to 64 bits of bundled data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordSignal(SignalId);

impl WordSignal {
    /// The untyped signal id.
    pub fn id(self) -> SignalId {
        self.0
    }
}

#[derive(Debug)]
struct SignalState {
    name: Box<str>,
    value: Value,
    /// Set at build time when the signal is enabled for tracing; lets the
    /// hot loop skip the trace-buffer call entirely for untraced signals.
    traced: bool,
    watchers: Vec<ComponentId>,
}

struct ComponentSlot {
    name: Box<str>,
    comp: Option<Box<dyn Component>>,
}

impl fmt::Debug for ComponentSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComponentSlot")
            .field("name", &self.name)
            .field("present", &self.comp.is_some())
            .finish()
    }
}

/// Errors reported by the run loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Zero-delay events kept firing at one timestamp; the model contains a
    /// combinational loop (e.g. an undelayed ring).
    CombinationalLoop {
        /// The timestamp at which the loop was detected.
        time: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalLoop { time } => {
                write!(f, "combinational loop detected at t={time}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Statistics for a completed run segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// Events fired during this run segment.
    pub events_fired: u64,
    /// Component wake calls delivered.
    pub wakes: u64,
    /// Simulation time at the end of the segment.
    pub end_time: SimTime,
    /// True if the run ended because the event queue drained.
    pub quiescent: bool,
}

/// A hook that perturbs the latency of scheduled signal drives.
///
/// The kernel consults the installed model once per drive, *at the
/// moment the drive is scheduled*, and uses the returned duration in
/// place of the nominal one. Timers ([`Ctx::set_timer`]) are never
/// perturbed — they model a component's internal bookkeeping, not a
/// physical wire. A model must be deterministic in its inputs and call
/// history to keep seeded runs reproducible; the fault-injection layer
/// in the core crate builds its analog jitter/drift models on top of
/// this hook.
pub trait DelayModel {
    /// Returns the delay to use for a drive of `value` onto `sig`,
    /// scheduled at `now` with nominal latency `nominal`.
    fn perturb(
        &mut self,
        sig: SignalId,
        value: &Value,
        now: SimTime,
        nominal: SimDuration,
    ) -> SimDuration;

    /// Serializes the model's mutable call-history state (occurrence
    /// counters and the like) for checkpointing. Stateless models return
    /// an empty vector (the default).
    fn snapshot_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`DelayModel::snapshot_state`].
    /// Returns false if the bytes are not understood (the default
    /// accepts only an empty snapshot).
    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        bytes.is_empty()
    }
}

/// A pending event in serializable form (public mirror of the internal
/// queue entry). Ids are raw indices into the owning simulator's signal
/// and component tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelEvent {
    /// Absolute fire time.
    pub time: SimTime,
    /// Scheduling sequence number (total order within one instant).
    pub seq: u64,
    /// What fires.
    pub kind: KernelEventKind,
}

/// Serializable event payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelEventKind {
    /// Set a signal to a value.
    Drive {
        /// Target signal.
        sig: SignalId,
        /// Value to apply.
        value: Value,
    },
    /// Wake a component with `Wake::Timer(tag)`.
    Timer {
        /// Target component.
        comp: ComponentId,
        /// The tag the component passed to `set_timer`.
        tag: u64,
    },
}

/// A full snapshot of the kernel's dynamic state (signals, pending
/// events, counters) at an instant between run segments.
///
/// The snapshot intentionally excludes the RNG and the waveform trace
/// buffer: it is only valid for workloads that draw no randomness and
/// trace no signals (the caller is expected to gate on that — the
/// synchro-tokens deterministic mode qualifies). Component state is
/// also *not* included; components checkpoint themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSnapshot {
    /// Simulation time at capture.
    pub now: SimTime,
    /// Whether `Wake::Start` has already been delivered.
    pub started: bool,
    /// Next event sequence number.
    pub next_seq: u64,
    /// Total events ever scheduled.
    pub scheduled_total: u64,
    /// Total events fired.
    pub events_fired: u64,
    /// Total component wakes delivered.
    pub wakes: u64,
    /// Every signal's current value, indexed by raw signal id.
    pub signals: Vec<Value>,
    /// Pending events sorted by `(time, seq)`.
    pub events: Vec<KernelEvent>,
    /// Installed delay model's mutable state (empty when none).
    pub delay_model: Vec<u8>,
}

/// Everything the kernel owns apart from the component boxes.
///
/// Splitting this out lets [`Ctx`] borrow the world mutably while one
/// component is temporarily removed from the arena and being woken.
struct Inner {
    signals: Vec<SignalState>,
    queue: EventQueue,
    now: SimTime,
    rng: SmallRng,
    trace: TraceBuffer,
    stop_requested: bool,
    events_fired: u64,
    wakes: u64,
    /// Reusable wake-batch buffer (hoisted out of the delta loop so the
    /// steady state allocates nothing per delta).
    wake_scratch: Vec<(ComponentId, Wake)>,
    /// Per-signal batch marks: `sig_mark[s] == batch_epoch` means signal
    /// `s` already queued its watchers in the current delta batch, so a
    /// second value change in the same batch must not queue them again
    /// (the pending wakes observe the final value either way).
    sig_mark: Vec<u64>,
    batch_epoch: u64,
    /// True when at least one signal is traced. Hoisted out of the drive
    /// hot path: the common no-tracing run skips the per-signal `traced`
    /// check on every value change.
    any_traced: bool,
    /// Optional per-drive latency perturbation (fault injection). `None`
    /// in ordinary runs, so the hot path pays one branch.
    delay_model: Option<Box<dyn DelayModel>>,
}

impl Inner {
    fn value(&self, sig: SignalId) -> Value {
        self.signals[sig.index()].value
    }

    fn schedule_drive(&mut self, sig: SignalId, value: Value, delay: SimDuration) {
        let delay = match self.delay_model.as_mut() {
            Some(m) => m.perturb(sig, &value, self.now, delay),
            None => delay,
        };
        self.queue
            .schedule(self.now + delay, EventKind::Drive { sig, value });
    }

    /// Applies one drive event: updates the signal, records the trace
    /// (only when `any_traced`, pre-checked once per run instead of per
    /// drive) and queues the watchers once per signal per batch.
    #[inline]
    fn apply_drive(
        &mut self,
        t: SimTime,
        sig: SignalId,
        value: Value,
        epoch: u64,
        any_traced: bool,
        wake_list: &mut Vec<(ComponentId, Wake)>,
    ) {
        let st = &mut self.signals[sig.index()];
        if st.value == value {
            return;
        }
        st.value = value;
        if any_traced && st.traced {
            self.trace.record(t, sig, value);
        }
        // If this signal already queued its watchers in this batch, the
        // pending wakes will observe the final value — don't queue
        // duplicates.
        let mark = &mut self.sig_mark[sig.index()];
        if *mark != epoch {
            *mark = epoch;
            for w in &st.watchers {
                wake_list.push((*w, Wake::Signal(sig)));
            }
        }
    }
}

/// The component-facing view of the kernel, passed to [`Component::wake`].
pub struct Ctx<'a> {
    inner: &'a mut Inner,
    me: ComponentId,
}

impl<'a> Ctx<'a> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// The id of the component being woken.
    pub fn me(&self) -> ComponentId {
        self.me
    }

    /// Reads a bit signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal currently holds a word value (shape misuse is a
    /// model bug, not a runtime condition).
    pub fn bit(&self, sig: BitSignal) -> Bit {
        self.inner
            .value(sig.id())
            .as_bit()
            .expect("bit signal holds a word value")
    }

    /// Reads a word signal; `None` while the bus is undriven (`WordX`).
    pub fn word(&self, sig: WordSignal) -> Option<u64> {
        match self.inner.value(sig.id()) {
            Value::Word(w) => Some(w),
            Value::WordX => None,
            Value::Bit(_) => panic!("word signal holds a bit value"),
        }
    }

    /// Reads any signal's raw value.
    pub fn value(&self, sig: SignalId) -> Value {
        self.inner.value(sig)
    }

    /// Schedules a bit transition after `delay` (transport semantics).
    pub fn drive_bit(&mut self, sig: BitSignal, v: impl Into<Bit>, delay: SimDuration) {
        self.inner
            .schedule_drive(sig.id(), Value::Bit(v.into()), delay);
    }

    /// Schedules a word transition after `delay` (transport semantics).
    pub fn drive_word(&mut self, sig: WordSignal, v: u64, delay: SimDuration) {
        self.inner.schedule_drive(sig.id(), Value::Word(v), delay);
    }

    /// Toggles a bit signal after `delay`, based on its *current* value.
    ///
    /// Transition-signalling (two-phase) handshakes and token passes are
    /// expressed as toggles.
    pub fn toggle_bit(&mut self, sig: BitSignal, delay: SimDuration) {
        let next = match self.bit(sig) {
            Bit::X => Bit::One,
            b => !b,
        };
        self.drive_bit(sig, next, delay);
    }

    /// Wakes this component again after `delay` with `Wake::Timer(tag)`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.inner.queue.schedule(
            self.inner.now + delay,
            EventKind::Timer { comp: self.me, tag },
        );
    }

    /// The kernel's seeded random-number generator.
    ///
    /// Used only to resolve modelled metastability; see the crate docs for
    /// the determinism contract.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.inner.rng
    }

    /// Requests that the run loop stop after the current delta step.
    pub fn stop(&mut self) {
        self.inner.stop_requested = true;
    }
}

/// Constructs a [`Simulator`]: declare signals, register components, wire
/// up sensitivity lists, then [`build`](SimBuilder::build).
#[derive(Default)]
pub struct SimBuilder {
    signals: Vec<SignalState>,
    comps: Vec<ComponentSlot>,
    traced: Vec<SignalId>,
    seed: u64,
    delay_model: Option<Box<dyn DelayModel>>,
}

impl fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBuilder")
            .field("signals", &self.signals.len())
            .field("components", &self.comps.len())
            .finish()
    }
}

impl SimBuilder {
    /// Creates an empty builder (seed 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the seed for the kernel RNG (metastability resolution).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a [`DelayModel`] that perturbs every scheduled signal
    /// drive. At most one model is active; a second call replaces the
    /// first.
    pub fn set_delay_model(&mut self, model: Box<dyn DelayModel>) {
        self.delay_model = Some(model);
    }

    fn add_signal(&mut self, name: &str, value: Value) -> SignalId {
        let id = SignalId(u32::try_from(self.signals.len()).expect("too many signals"));
        self.signals.push(SignalState {
            name: name.into(),
            value,
            traced: false,
            watchers: Vec::new(),
        });
        id
    }

    /// Declares a bit signal, initialized to `X`.
    pub fn add_bit_signal(&mut self, name: &str) -> BitSignal {
        BitSignal(self.add_signal(name, Value::Bit(Bit::X)))
    }

    /// Declares a bit signal with a defined reset value.
    pub fn add_bit_signal_init(&mut self, name: &str, init: Bit) -> BitSignal {
        BitSignal(self.add_signal(name, Value::Bit(init)))
    }

    /// Declares a word signal, initialized to `WordX`.
    pub fn add_word_signal(&mut self, name: &str) -> WordSignal {
        WordSignal(self.add_signal(name, Value::WordX))
    }

    /// Declares a word signal with a defined reset value.
    pub fn add_word_signal_init(&mut self, name: &str, init: u64) -> WordSignal {
        WordSignal(self.add_signal(name, Value::Word(init)))
    }

    /// Registers a component and returns a typed handle for later
    /// inspection with [`Simulator::get`].
    pub fn add_component<T: Component>(&mut self, name: &str, comp: T) -> Handle<T> {
        let id =
            ComponentId::from_raw(u32::try_from(self.comps.len()).expect("too many components"));
        self.comps.push(ComponentSlot {
            name: name.into(),
            comp: Some(Box::new(comp)),
        });
        Handle::new(id)
    }

    /// Makes `comp` sensitive to value changes on `sig`.
    ///
    /// Duplicate registrations are tolerated; they collapse into a single
    /// sensitivity entry at [`build`](SimBuilder::build) time (insertion
    /// order preserved), so structural netlist builders can register
    /// freely without quadratic membership scans here.
    pub fn watch(&mut self, comp: ComponentId, sig: SignalId) {
        self.signals[sig.index()].watchers.push(comp);
    }

    /// Enables waveform tracing for a signal (records every change).
    ///
    /// Duplicate requests collapse at build time, like
    /// [`watch`](SimBuilder::watch).
    pub fn trace(&mut self, sig: SignalId) {
        self.traced.push(sig);
    }

    /// Finishes construction. Components receive `Wake::Start` in
    /// registration order when the run loop first executes.
    pub fn build(mut self) -> Simulator {
        // Dedupe watcher lists in one pass, preserving first-occurrence
        // order. Epoch marking avoids reallocating the seen-set per
        // signal; component ids outside the arena (stale handles) are
        // left as-is — `deliver` already ignores them.
        let mut seen = vec![0u32; self.comps.len()];
        for (i, st) in self.signals.iter_mut().enumerate() {
            let epoch = i as u32 + 1;
            st.watchers.retain(|c| match seen.get_mut(c.index()) {
                Some(mark) if *mark == epoch => false,
                Some(mark) => {
                    *mark = epoch;
                    true
                }
                None => true,
            });
        }
        // Dedupe the traced list the same way.
        let mut traced_seen = vec![false; self.signals.len()];
        self.traced.retain(|s| {
            let mark = &mut traced_seen[s.index()];
            !std::mem::replace(mark, true)
        });
        let n_signals = self.signals.len();
        let mut trace = TraceBuffer::new();
        for sig in &self.traced {
            let st = &mut self.signals[sig.index()];
            st.traced = true;
            // Names are cloned only for traced signals.
            trace.enable(*sig, st.name.clone());
        }
        // Record initial values of traced signals at t=0.
        for sig in &self.traced {
            trace.record(SimTime::ZERO, *sig, self.signals[sig.index()].value);
        }
        Simulator {
            comps: self.comps,
            inner: Inner {
                signals: self.signals,
                queue: EventQueue::new(),
                now: SimTime::ZERO,
                rng: SmallRng::seed_from_u64(self.seed),
                trace,
                stop_requested: false,
                events_fired: 0,
                wakes: 0,
                wake_scratch: Vec::new(),
                sig_mark: vec![0; n_signals],
                batch_epoch: 0,
                any_traced: !self.traced.is_empty(),
                delay_model: self.delay_model,
            },
            started: false,
        }
    }
}

/// A built, runnable simulation.
pub struct Simulator {
    comps: Vec<ComponentSlot>,
    inner: Inner,
    started: bool,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.inner.now)
            .field("components", &self.comps.len())
            .field("signals", &self.inner.signals.len())
            .field("pending_events", &self.inner.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// Reads a bit signal's current value.
    ///
    /// # Panics
    ///
    /// Panics if the signal holds a word value.
    pub fn bit(&self, sig: BitSignal) -> Bit {
        self.inner
            .value(sig.id())
            .as_bit()
            .expect("bit signal holds a word value")
    }

    /// Reads a word signal's current value (`None` if undriven).
    pub fn word(&self, sig: WordSignal) -> Option<u64> {
        self.inner.value(sig.id()).as_word()
    }

    /// The recorded waveform trace.
    pub fn trace(&self) -> &TraceBuffer {
        &self.inner.trace
    }

    /// The name a signal was declared with.
    pub fn signal_name(&self, sig: SignalId) -> &str {
        &self.inner.signals[sig.index()].name
    }

    /// Immutable access to a component's state via its typed handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this simulator or the type
    /// does not match (both are programming errors).
    pub fn get<T: Component>(&self, handle: Handle<T>) -> &T {
        let slot = &self.comps[handle.id().index()];
        let comp = slot.comp.as_deref().expect("component is being woken");
        let any: &dyn Any = comp;
        any.downcast_ref::<T>()
            .expect("component handle type mismatch")
    }

    /// Mutable access to a component's state via its typed handle.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulator::get`].
    pub fn get_mut<T: Component>(&mut self, handle: Handle<T>) -> &mut T {
        let slot = &mut self.comps[handle.id().index()];
        let comp = slot.comp.as_deref_mut().expect("component is being woken");
        let any: &mut dyn Any = comp;
        any.downcast_mut::<T>()
            .expect("component handle type mismatch")
    }

    /// Externally drives a signal at the current time plus `delay`.
    ///
    /// This is how testbench code (outside any component) injects stimulus.
    pub fn drive(&mut self, sig: SignalId, value: Value, delay: SimDuration) {
        self.inner.schedule_drive(sig, value, delay);
    }

    fn deliver(&mut self, comp: ComponentId, cause: Wake) {
        let slot = &mut self.comps[comp.index()];
        let mut boxed = match slot.comp.take() {
            Some(b) => b,
            // A component that wakes itself (timer + watched signal in the
            // same delta) is already out of the arena only if re-entered,
            // which the single-threaded loop never does; absence means a
            // stale watcher on a removed component — ignore.
            None => return,
        };
        self.inner.wakes += 1;
        let mut ctx = Ctx {
            inner: &mut self.inner,
            me: comp,
        };
        boxed.wake(&mut ctx, cause);
        self.comps[comp.index()].comp = Some(boxed);
    }

    /// Sends `Wake::Start` to every component, once, in registration order.
    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.comps.len() {
            self.deliver(ComponentId::from_raw(i as u32), Wake::Start);
        }
    }

    /// Runs until simulated time would exceed `deadline`, the queue drains,
    /// or a component calls [`Ctx::stop`].
    ///
    /// Events scheduled exactly at `deadline` are processed. The kernel
    /// never executes an event and then "rewinds": after this returns, all
    /// state is consistent as of `end_time`.
    ///
    /// # Errors
    ///
    /// [`SimError::CombinationalLoop`] if zero-delay activity at one
    /// timestamp exceeds the delta limit.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<RunSummary, SimError> {
        self.start_if_needed();
        let fired_before = self.inner.events_fired;
        let wakes_before = self.inner.wakes;
        let mut quiescent = false;
        let mut stopped = false;
        // The wake batch is collected into a scratch buffer owned by the
        // kernel, so the steady state allocates nothing per delta.
        let mut wake_list = std::mem::take(&mut self.inner.wake_scratch);
        // Hoisted: whether tracing can ever apply this run.
        let any_traced = self.inner.any_traced;
        loop {
            if self.inner.stop_requested {
                self.inner.stop_requested = false;
                stopped = true;
                break;
            }
            let Some(t) = self.inner.queue.next_time() else {
                quiescent = true;
                break;
            };
            if t > deadline {
                break;
            }
            self.inner.now = t;
            let mut deltas = 0u32;
            // Delta loop: fire everything at `t`, including events newly
            // scheduled *at* `t` by the components we wake.
            while self.inner.queue.next_time() == Some(t) {
                deltas += 1;
                if deltas > MAX_DELTAS {
                    self.inner.wake_scratch = wake_list;
                    return Err(SimError::CombinationalLoop { time: t });
                }
                // Collect the batch currently queued at `t`; wakes are
                // delivered after the whole batch of value updates.
                wake_list.clear();
                self.inner.batch_epoch += 1;
                let epoch = self.inner.batch_epoch;
                while let Some(ev) = self.inner.queue.pop_at(t) {
                    self.inner.events_fired += 1;
                    match ev.kind {
                        EventKind::Drive { sig, value } => {
                            self.inner.apply_drive(
                                t,
                                sig,
                                value,
                                epoch,
                                any_traced,
                                &mut wake_list,
                            );
                        }
                        EventKind::Timer { comp, tag } => {
                            wake_list.push((comp, Wake::Timer(tag)));
                        }
                    }
                }
                for &(comp, cause) in &wake_list {
                    self.deliver(comp, cause);
                    if self.inner.stop_requested {
                        break;
                    }
                }
                if self.inner.stop_requested {
                    break;
                }
            }
        }
        self.inner.wake_scratch = wake_list;
        // When the run ends because nothing (more) happens before the
        // deadline, simulated time still passes up to the deadline. A run
        // halted by `Ctx::stop` keeps the stop instant as its end time.
        if !stopped && self.inner.now < deadline {
            self.inner.now = deadline;
        }
        Ok(RunSummary {
            events_fired: self.inner.events_fired - fired_before,
            wakes: self.inner.wakes - wakes_before,
            end_time: self.inner.now,
            quiescent,
        })
    }

    /// Runs for a further `span` of simulated time.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`Simulator::run_until`].
    pub fn run_for(&mut self, span: SimDuration) -> Result<RunSummary, SimError> {
        let deadline = self.inner.now + span;
        self.run_until(deadline)
    }

    /// Captures the kernel's dynamic state (see [`KernelSnapshot`] for
    /// what is and is not included).
    pub fn snapshot_kernel(&self) -> KernelSnapshot {
        let events = self
            .inner
            .queue
            .pending_sorted()
            .into_iter()
            .map(|e| KernelEvent {
                time: e.time,
                seq: e.seq,
                kind: match e.kind {
                    EventKind::Drive { sig, value } => KernelEventKind::Drive { sig, value },
                    EventKind::Timer { comp, tag } => KernelEventKind::Timer { comp, tag },
                },
            })
            .collect();
        KernelSnapshot {
            now: self.inner.now,
            started: self.started,
            next_seq: self.inner.queue.next_seq(),
            scheduled_total: self.inner.queue.scheduled_total(),
            events_fired: self.inner.events_fired,
            wakes: self.inner.wakes,
            signals: self.inner.signals.iter().map(|s| s.value).collect(),
            events,
            delay_model: self
                .inner
                .delay_model
                .as_ref()
                .map(|m| m.snapshot_state())
                .unwrap_or_default(),
        }
    }

    /// Restores the dynamic state captured by
    /// [`Simulator::snapshot_kernel`] into this simulator, which must
    /// have been built with the identical build sequence (same signals,
    /// components and sensitivity lists — ids are raw indices).
    ///
    /// Returns false (leaving the simulator in an unspecified mixed
    /// state) if the snapshot's shape does not match this simulator; the
    /// caller is expected to treat that as a hard error.
    pub fn restore_kernel(&mut self, snap: &KernelSnapshot) -> bool {
        if snap.signals.len() != self.inner.signals.len() {
            return false;
        }
        for (st, v) in self.inner.signals.iter_mut().zip(&snap.signals) {
            st.value = *v;
        }
        let events: Vec<crate::event::Event> = snap
            .events
            .iter()
            .map(|e| crate::event::Event {
                time: e.time,
                seq: e.seq,
                kind: match e.kind {
                    KernelEventKind::Drive { sig, value } => EventKind::Drive { sig, value },
                    KernelEventKind::Timer { comp, tag } => EventKind::Timer { comp, tag },
                },
            })
            .collect();
        self.inner
            .queue
            .restore(&events, snap.next_seq, snap.scheduled_total);
        self.inner.now = snap.now;
        self.inner.events_fired = snap.events_fired;
        self.inner.wakes = snap.wakes;
        self.inner.stop_requested = false;
        self.started = snap.started;
        match self.inner.delay_model.as_mut() {
            Some(m) => m.restore_state(&snap.delay_model),
            None => snap.delay_model.is_empty(),
        }
    }

    /// Total events ever scheduled (for benchmarking kernel overhead).
    pub fn events_scheduled(&self) -> u64 {
        self.inner.queue.scheduled_total()
    }

    /// Total events fired across every run segment so far.
    pub fn events_fired(&self) -> u64 {
        self.inner.events_fired
    }

    /// Total component wakes delivered across every run segment so far.
    pub fn wakes_delivered(&self) -> u64 {
        self.inner.wakes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::cell::RefCell;
    use std::rc::Rc;

    struct Pulser {
        out: BitSignal,
        period: SimDuration,
        count: u32,
    }
    impl Component for Pulser {
        fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
            match cause {
                Wake::Start => {
                    ctx.drive_bit(self.out, Bit::Zero, SimDuration::ZERO);
                    ctx.set_timer(self.period, 0);
                }
                Wake::Timer(_) => {
                    self.count += 1;
                    ctx.toggle_bit(self.out, SimDuration::ZERO);
                    ctx.set_timer(self.period, 0);
                }
                Wake::Signal(_) => {}
            }
        }
    }

    struct EdgeCounter {
        clk: BitSignal,
        prev: Bit,
        rising: u32,
        falling: u32,
    }
    impl Component for EdgeCounter {
        fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
            if let Wake::Signal(_) = cause {
                let v = ctx.bit(self.clk);
                if self.prev.is_zero() && v.is_one() {
                    self.rising += 1;
                }
                if self.prev.is_one() && v.is_zero() {
                    self.falling += 1;
                }
                self.prev = v;
            }
        }
    }

    #[test]
    fn pulser_and_edge_counter() {
        let mut b = SimBuilder::new();
        let clk = b.add_bit_signal("clk");
        let p = b.add_component(
            "pulser",
            Pulser {
                out: clk,
                period: SimDuration::ns(5),
                count: 0,
            },
        );
        let c = b.add_component(
            "ctr",
            EdgeCounter {
                clk,
                prev: Bit::X,
                rising: 0,
                falling: 0,
            },
        );
        b.watch(c.id(), clk.id());
        let mut sim = b.build();
        let summary = sim
            .run_until(SimTime::ZERO + SimDuration::ns(52))
            .expect("run");
        // Toggles at 5,10,...,50 -> 10 toggles, first toggle 0->1.
        assert_eq!(sim.get(p).count, 10);
        assert_eq!(sim.get(c).rising, 5);
        assert_eq!(sim.get(c).falling, 5);
        assert!(summary.events_fired > 0);
        assert!(!summary.quiescent);
    }

    #[test]
    fn redundant_drive_does_not_wake_watchers() {
        struct Driver {
            out: BitSignal,
        }
        impl Component for Driver {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                if matches!(cause, Wake::Start) {
                    ctx.drive_bit(self.out, Bit::One, SimDuration::ns(1));
                    ctx.drive_bit(self.out, Bit::One, SimDuration::ns(2));
                    ctx.drive_bit(self.out, Bit::One, SimDuration::ns(3));
                }
            }
        }
        let mut b = SimBuilder::new();
        let s = b.add_bit_signal("s");
        b.add_component("drv", Driver { out: s });
        let c = b.add_component(
            "ctr",
            EdgeCounter {
                clk: s,
                prev: Bit::Zero,
                rising: 0,
                falling: 0,
            },
        );
        b.watch(c.id(), s.id());
        let mut sim = b.build();
        sim.run_until(SimTime::ZERO + SimDuration::ns(10)).unwrap();
        assert_eq!(
            sim.get(c).rising,
            1,
            "only the first drive changes the value"
        );
    }

    #[test]
    fn same_instant_drives_apply_in_schedule_order() {
        struct Racer {
            out: WordSignal,
        }
        impl Component for Racer {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                if matches!(cause, Wake::Start) {
                    ctx.drive_word(self.out, 1, SimDuration::ns(1));
                    ctx.drive_word(self.out, 2, SimDuration::ns(1));
                }
            }
        }
        let mut b = SimBuilder::new();
        let s = b.add_word_signal("bus");
        b.add_component("racer", Racer { out: s });
        let mut sim = b.build();
        sim.run_until(SimTime::ZERO + SimDuration::ns(2)).unwrap();
        assert_eq!(sim.word(s), Some(2), "last scheduled write wins");
    }

    #[test]
    fn combinational_loop_detected() {
        struct Loop {
            a: BitSignal,
        }
        impl Component for Loop {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                match cause {
                    Wake::Start => ctx.drive_bit(self.a, Bit::One, SimDuration::ZERO),
                    Wake::Signal(_) => ctx.toggle_bit(self.a, SimDuration::ZERO),
                    _ => {}
                }
            }
        }
        let mut b = SimBuilder::new();
        let a = b.add_bit_signal("a");
        let l = b.add_component("loop", Loop { a });
        b.watch(l.id(), a.id());
        let mut sim = b.build();
        let err = sim
            .run_until(SimTime::ZERO + SimDuration::ns(1))
            .unwrap_err();
        assert_eq!(
            err,
            SimError::CombinationalLoop {
                time: SimTime::ZERO
            }
        );
        assert!(err.to_string().contains("combinational loop"));
    }

    #[test]
    fn same_batch_double_change_wakes_watcher_once() {
        // Two drives to the same signal in one batch: the watcher must be
        // woken exactly once (it would observe the final value twice
        // otherwise — pure overhead), and the value it reads is final.
        struct Glitcher {
            out: BitSignal,
        }
        impl Component for Glitcher {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                if matches!(cause, Wake::Start) {
                    ctx.drive_bit(self.out, Bit::One, SimDuration::ns(1));
                    ctx.drive_bit(self.out, Bit::Zero, SimDuration::ns(1));
                    ctx.drive_bit(self.out, Bit::One, SimDuration::ns(1));
                }
            }
        }
        struct WakeCounter {
            sig: BitSignal,
            wakes: u32,
            last: Bit,
        }
        impl Component for WakeCounter {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                if let Wake::Signal(_) = cause {
                    self.wakes += 1;
                    self.last = ctx.bit(self.sig);
                }
            }
        }
        let mut b = SimBuilder::new();
        let s = b.add_bit_signal_init("s", Bit::Zero);
        b.add_component("g", Glitcher { out: s });
        let c = b.add_component(
            "w",
            WakeCounter {
                sig: s,
                wakes: 0,
                last: Bit::X,
            },
        );
        b.watch(c.id(), s.id());
        let mut sim = b.build();
        let summary = sim.run_until(SimTime::ZERO + SimDuration::ns(2)).unwrap();
        assert_eq!(sim.get(c).wakes, 1, "batch-duplicate wakes must collapse");
        assert_eq!(sim.get(c).last, Bit::One, "watcher sees the final value");
        // The segment delivered exactly the one collapsed signal wake
        // (Start wakes precede the summary window); cumulatively the
        // kernel saw both Start wakes too.
        assert_eq!(summary.wakes, 1);
        assert_eq!(sim.wakes_delivered(), 3);
    }

    #[test]
    fn duplicate_watch_registrations_collapse() {
        struct WakeCounter {
            wakes: u32,
        }
        impl Component for WakeCounter {
            fn wake(&mut self, _ctx: &mut Ctx<'_>, cause: Wake) {
                if let Wake::Signal(_) = cause {
                    self.wakes += 1;
                }
            }
        }
        let mut b = SimBuilder::new();
        let s = b.add_bit_signal_init("s", Bit::Zero);
        let c = b.add_component("w", WakeCounter { wakes: 0 });
        for _ in 0..5 {
            b.watch(c.id(), s.id());
        }
        let mut sim = b.build();
        sim.drive(s.id(), Value::from(true), SimDuration::ns(1));
        sim.run_until(SimTime::ZERO + SimDuration::ns(2)).unwrap();
        assert_eq!(sim.get(c).wakes, 1, "five registrations, one wake");
    }

    #[test]
    fn cumulative_counters_accumulate_across_segments() {
        let mut b = SimBuilder::new();
        let clk = b.add_bit_signal_init("clk", Bit::Zero);
        b.add_component(
            "p",
            Pulser {
                out: clk,
                period: SimDuration::ns(5),
                count: 0,
            },
        );
        let mut sim = b.build();
        sim.run_until(SimTime::ZERO + SimDuration::ns(20)).unwrap();
        let fired_mid = sim.events_fired();
        assert!(fired_mid > 0);
        sim.run_until(SimTime::ZERO + SimDuration::ns(40)).unwrap();
        assert!(sim.events_fired() > fired_mid);
        assert!(sim.wakes_delivered() > 0);
        assert!(sim.events_scheduled() >= sim.events_fired());
    }

    #[test]
    fn quiescent_run_reports_deadline_time() {
        let mut b = SimBuilder::new();
        let _s = b.add_bit_signal("unused");
        let mut sim = b.build();
        let summary = sim.run_until(SimTime::ZERO + SimDuration::ns(100)).unwrap();
        assert!(summary.quiescent);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::ns(100));
    }

    #[test]
    fn stop_requested_halts_run() {
        struct Stopper;
        impl Component for Stopper {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                match cause {
                    Wake::Start => ctx.set_timer(SimDuration::ns(3), 7),
                    Wake::Timer(7) => ctx.stop(),
                    _ => {}
                }
            }
        }
        let mut b = SimBuilder::new();
        b.add_component("stopper", Stopper);
        let mut sim = b.build();
        let summary = sim.run_until(SimTime::ZERO + SimDuration::ns(100)).unwrap();
        assert_eq!(summary.end_time, SimTime::ZERO + SimDuration::ns(3));
        // A later run resumes cleanly.
        let summary2 = sim.run_until(SimTime::ZERO + SimDuration::ns(100)).unwrap();
        assert!(summary2.quiescent);
    }

    #[test]
    fn external_drive_reaches_watchers() {
        let mut b = SimBuilder::new();
        let s = b.add_bit_signal("pin");
        let c = b.add_component(
            "ctr",
            EdgeCounter {
                clk: s,
                prev: Bit::Zero,
                rising: 0,
                falling: 0,
            },
        );
        b.watch(c.id(), s.id());
        let mut sim = b.build();
        sim.drive(s.id(), Value::from(true), SimDuration::ns(1));
        sim.run_until(SimTime::ZERO + SimDuration::ns(2)).unwrap();
        assert_eq!(sim.get(c).rising, 1);
    }

    #[test]
    fn delay_model_perturbs_scheduled_drives() {
        struct Skew {
            target: SignalId,
            extra: SimDuration,
        }
        impl DelayModel for Skew {
            fn perturb(
                &mut self,
                sig: SignalId,
                _value: &Value,
                _now: SimTime,
                nominal: SimDuration,
            ) -> SimDuration {
                if sig == self.target {
                    nominal + self.extra
                } else {
                    nominal
                }
            }
        }
        let mut b = SimBuilder::new();
        let a = b.add_bit_signal_init("a", Bit::Zero);
        let u = b.add_bit_signal_init("u", Bit::Zero);
        b.trace(a.id());
        b.trace(u.id());
        b.set_delay_model(Box::new(Skew {
            target: a.id(),
            extra: SimDuration::ns(2),
        }));
        let mut sim = b.build();
        sim.drive(a.id(), Value::from(true), SimDuration::ns(1));
        sim.drive(u.id(), Value::from(true), SimDuration::ns(1));
        sim.run_until(SimTime::ZERO + SimDuration::ns(10)).unwrap();
        let edge = |sim: &Simulator, sig: SignalId| {
            sim.trace()
                .changes(sig)
                .find(|(_, v)| *v == Value::Bit(Bit::One))
                .map(|(t, _)| t)
                .expect("signal must rise")
        };
        // The targeted signal lands 2ns late; the other is untouched.
        assert_eq!(edge(&sim, a.id()), SimTime::ZERO + SimDuration::ns(3));
        assert_eq!(edge(&sim, u.id()), SimTime::ZERO + SimDuration::ns(1));
    }

    #[test]
    fn delay_model_does_not_perturb_timers() {
        struct TimedDriver {
            out: BitSignal,
        }
        impl Component for TimedDriver {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                match cause {
                    Wake::Start => ctx.set_timer(SimDuration::ns(5), 0),
                    Wake::Timer(0) => ctx.drive_bit(self.out, Bit::One, SimDuration::ZERO),
                    _ => {}
                }
            }
        }
        struct AddOne;
        impl DelayModel for AddOne {
            fn perturb(
                &mut self,
                _sig: SignalId,
                _value: &Value,
                _now: SimTime,
                nominal: SimDuration,
            ) -> SimDuration {
                nominal + SimDuration::ns(1)
            }
        }
        let mut b = SimBuilder::new();
        let s = b.add_bit_signal_init("s", Bit::Zero);
        b.trace(s.id());
        b.add_component("d", TimedDriver { out: s });
        b.set_delay_model(Box::new(AddOne));
        let mut sim = b.build();
        sim.run_until(SimTime::ZERO + SimDuration::ns(10)).unwrap();
        // Timer fires at the nominal 5ns; only the drive gains 1ns.
        let t = sim
            .trace()
            .changes(s.id())
            .find(|(_, v)| *v == Value::Bit(Bit::One))
            .map(|(t, _)| t)
            .expect("signal must rise");
        assert_eq!(t, SimTime::ZERO + SimDuration::ns(6));
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        fn run(seed: u64) -> Vec<(SimTime, Bit)> {
            struct Rand {
                out: BitSignal,
            }
            impl Component for Rand {
                fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                    match cause {
                        Wake::Start | Wake::Timer(_) => {
                            use rand::Rng;
                            let v: bool = ctx.rng().gen();
                            ctx.drive_bit(self.out, v, SimDuration::ZERO);
                            ctx.set_timer(SimDuration::ns(1), 0);
                        }
                        _ => {}
                    }
                }
            }
            let mut b = SimBuilder::new().with_seed(seed);
            let s = b.add_bit_signal("r");
            b.trace(s.id());
            b.add_component("rand", Rand { out: s });
            let mut sim = b.build();
            sim.run_until(SimTime::ZERO + SimDuration::ns(64)).unwrap();
            sim.trace()
                .changes(s.id())
                .map(|(t, v)| (t, v.as_bit().unwrap()))
                .collect()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn shared_state_between_components() {
        struct Writer {
            log: Rc<RefCell<Vec<u32>>>,
            tag: u32,
        }
        impl Component for Writer {
            fn wake(&mut self, _ctx: &mut Ctx<'_>, cause: Wake) {
                if matches!(cause, Wake::Start) {
                    self.log.borrow_mut().push(self.tag);
                }
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut b = SimBuilder::new();
        for tag in 0..4 {
            b.add_component(
                &format!("w{tag}"),
                Writer {
                    log: Rc::clone(&log),
                    tag,
                },
            );
        }
        let mut sim = b.build();
        sim.run_until(SimTime::ZERO).unwrap();
        assert_eq!(
            *log.borrow(),
            vec![0, 1, 2, 3],
            "Start wakes are delivered in registration order"
        );
    }
}
