//! Waveform capture: in-memory change records, VCD export, and an ASCII
//! waveform renderer (used to regenerate the paper's Figure 2).

use crate::kernel::SignalId;
use crate::time::{SimDuration, SimTime};
use crate::value::{Bit, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Records every change of the signals enabled for tracing.
#[derive(Debug, Default, Clone)]
pub struct TraceBuffer {
    /// Per-signal change lists, each sorted by time (recording order).
    changes: BTreeMap<SignalId, Vec<(SimTime, Value)>>,
    names: BTreeMap<SignalId, Box<str>>,
    /// Bitset over signal indices: bit set ⇔ signal enabled for tracing.
    /// Lets [`record`](TraceBuffer::record) reject untraced signals in
    /// O(1) without walking the tree.
    enabled: Vec<u64>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn is_enabled(&self, sig: SignalId) -> bool {
        let i = sig.index();
        self.enabled
            .get(i / 64)
            .is_some_and(|w| w >> (i % 64) & 1 == 1)
    }

    pub(crate) fn enable(&mut self, sig: SignalId, name: Box<str>) {
        let i = sig.index();
        if self.enabled.len() <= i / 64 {
            self.enabled.resize(i / 64 + 1, 0);
        }
        self.enabled[i / 64] |= 1 << (i % 64);
        self.changes.entry(sig).or_default();
        self.names.insert(sig, name);
    }

    pub(crate) fn record(&mut self, time: SimTime, sig: SignalId, value: Value) {
        // Untraced signals exit before the tree lookup.
        if !self.is_enabled(sig) {
            return;
        }
        if let Some(list) = self.changes.get_mut(&sig) {
            // Within one timestamp only the final value matters.
            if let Some(last) = list.last_mut() {
                if last.0 == time {
                    last.1 = value;
                    return;
                }
            }
            list.push((time, value));
        }
    }

    /// Iterates over the recorded `(time, value)` changes of one signal.
    pub fn changes(&self, sig: SignalId) -> impl Iterator<Item = (SimTime, Value)> + '_ {
        self.changes.get(&sig).into_iter().flatten().copied()
    }

    /// The traced signals, in id order.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.changes.keys().copied()
    }

    /// The declared name of a traced signal.
    pub fn name(&self, sig: SignalId) -> Option<&str> {
        self.names.get(&sig).map(AsRef::as_ref)
    }

    /// The value a traced signal held at `time` (last change at or before).
    pub fn value_at(&self, sig: SignalId, time: SimTime) -> Option<Value> {
        let list = self.changes.get(&sig)?;
        let idx = list.partition_point(|(t, _)| *t <= time);
        idx.checked_sub(1).map(|i| list[i].1)
    }

    /// Serializes the trace as a Value Change Dump (IEEE 1364 §18) with a
    /// 1 fs timescale.
    ///
    /// # Examples
    ///
    /// ```
    /// # use st_sim::prelude::*;
    /// # let mut b = SimBuilder::new();
    /// # let s = b.add_bit_signal("clk");
    /// # b.trace(s.id());
    /// # let sim = b.build();
    /// let vcd = sim.trace().to_vcd("testbench");
    /// assert!(vcd.starts_with("$timescale 1 fs $end"));
    /// ```
    pub fn to_vcd(&self, scope: &str) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1 fs $end\n");
        let _ = writeln!(out, "$scope module {scope} $end");
        let idcode = |i: usize| -> String {
            // Printable VCD identifier codes: ! .. ~
            let mut n = i;
            let mut s = String::new();
            loop {
                s.push(char::from(b'!' + (n % 94) as u8));
                n /= 94;
                if n == 0 {
                    break;
                }
            }
            s
        };
        let ids: Vec<(SignalId, String)> = self
            .changes
            .keys()
            .enumerate()
            .map(|(i, sig)| (*sig, idcode(i)))
            .collect();
        for (sig, code) in &ids {
            let name = self.names.get(sig).map_or("unnamed", AsRef::as_ref);
            let sanitized: String = name
                .chars()
                .map(|c| if c.is_whitespace() { '_' } else { c })
                .collect();
            let width = match self.changes[sig].first() {
                Some((_, Value::Bit(_))) | None => 1,
                Some(_) => 64,
            };
            let _ = writeln!(out, "$var wire {width} {code} {sanitized} $end");
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        // Merge all change lists into one time-ordered stream.
        let mut merged: Vec<(SimTime, usize, Value)> = Vec::new();
        for (i, (sig, _)) in ids.iter().enumerate() {
            for (t, v) in &self.changes[sig] {
                merged.push((*t, i, *v));
            }
        }
        merged.sort_by_key(|(t, i, _)| (*t, *i));
        let mut last_t: Option<SimTime> = None;
        for (t, i, v) in merged {
            if last_t != Some(t) {
                let _ = writeln!(out, "#{}", t.as_fs());
                last_t = Some(t);
            }
            let code = &ids[i].1;
            match v {
                Value::Bit(Bit::Zero) => {
                    let _ = writeln!(out, "0{code}");
                }
                Value::Bit(Bit::One) => {
                    let _ = writeln!(out, "1{code}");
                }
                Value::Bit(Bit::X) => {
                    let _ = writeln!(out, "x{code}");
                }
                Value::Word(w) => {
                    let _ = writeln!(out, "b{w:b} {code}");
                }
                Value::WordX => {
                    let _ = writeln!(out, "bx {code}");
                }
            }
        }
        out
    }

    /// Renders bit signals as an ASCII waveform sampled every `step`,
    /// starting at `from`, for `cols` columns. Word signals are shown as
    /// their low hex digit. Used for the Figure 2 reproduction.
    pub fn render_ascii(&self, from: SimTime, step: SimDuration, cols: usize) -> String {
        let mut out = String::new();
        let name_w = self
            .names
            .values()
            .map(|n| n.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for sig in self.changes.keys() {
            let name = self.names.get(sig).map_or("?", AsRef::as_ref);
            let _ = write!(out, "{name:>name_w$} ");
            let mut t = from;
            for _ in 0..cols {
                let ch = match self.value_at(*sig, t) {
                    Some(Value::Bit(Bit::One)) => '█',
                    Some(Value::Bit(Bit::Zero)) => '_',
                    Some(Value::Bit(Bit::X)) | None => '·',
                    Some(Value::Word(w)) => char::from_digit((w % 16) as u32, 16).unwrap_or('?'),
                    Some(Value::WordX) => '·',
                };
                out.push(ch);
                t += step;
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn traced_sim() -> (crate::kernel::Simulator, BitSignal, WordSignal) {
        struct Drv {
            b: BitSignal,
            w: WordSignal,
        }
        impl Component for Drv {
            fn wake(&mut self, ctx: &mut Ctx<'_>, cause: Wake) {
                if matches!(cause, Wake::Start) {
                    ctx.drive_bit(self.b, Bit::Zero, SimDuration::ZERO);
                    ctx.drive_bit(self.b, Bit::One, SimDuration::ns(2));
                    ctx.drive_bit(self.b, Bit::Zero, SimDuration::ns(4));
                    ctx.drive_word(self.w, 0xAB, SimDuration::ns(1));
                    ctx.drive_word(self.w, 0xCD, SimDuration::ns(3));
                }
            }
        }
        let mut b = SimBuilder::new();
        let bs = b.add_bit_signal("req");
        let ws = b.add_word_signal("data");
        b.trace(bs.id());
        b.trace(ws.id());
        b.add_component("drv", Drv { b: bs, w: ws });
        let mut sim = b.build();
        sim.run_until(SimTime::ZERO + SimDuration::ns(10)).unwrap();
        (sim, bs, ws)
    }

    #[test]
    fn records_changes_in_order() {
        let (sim, bs, _) = traced_sim();
        let ch: Vec<_> = sim.trace().changes(bs.id()).collect();
        // The initial X at t=0 collapses with the drive to 0 at t=0.
        assert_eq!(ch.len(), 3);
        assert_eq!(ch[0], (SimTime::ZERO, Value::Bit(Bit::Zero)));
        assert_eq!(
            ch[1],
            (SimTime::ZERO + SimDuration::ns(2), Value::Bit(Bit::One))
        );
        assert_eq!(
            ch[2],
            (SimTime::ZERO + SimDuration::ns(4), Value::Bit(Bit::Zero))
        );
    }

    #[test]
    fn value_at_interpolates() {
        let (sim, bs, ws) = traced_sim();
        let t = |n| SimTime::ZERO + SimDuration::ns(n);
        assert_eq!(
            sim.trace().value_at(bs.id(), t(3)),
            Some(Value::Bit(Bit::One))
        );
        assert_eq!(
            sim.trace().value_at(bs.id(), t(5)),
            Some(Value::Bit(Bit::Zero))
        );
        assert_eq!(sim.trace().value_at(ws.id(), t(2)), Some(Value::Word(0xAB)));
        assert_eq!(sim.trace().value_at(ws.id(), t(0)), Some(Value::WordX));
    }

    #[test]
    fn same_instant_collapses_to_final_value() {
        let mut buf = TraceBuffer::new();
        let sig = {
            // Forge a SignalId through a builder to keep the type opaque.
            let mut b = SimBuilder::new();
            b.add_bit_signal("s").id()
        };
        buf.enable(sig, "s".into());
        buf.record(SimTime::ZERO, sig, Value::from(false));
        buf.record(SimTime::ZERO, sig, Value::from(true));
        assert_eq!(buf.changes(sig).count(), 1);
        assert_eq!(buf.value_at(sig, SimTime::ZERO), Some(Value::from(true)));
    }

    #[test]
    fn vcd_output_structure() {
        let (sim, _, _) = traced_sim();
        let vcd = sim.trace().to_vcd("tb");
        assert!(vcd.contains("$scope module tb $end"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$var wire 64"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("b10101011 ")); // 0xAB
                                             // Strictly increasing timestamps.
        let stamps: Vec<u64> = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#'))
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ascii_render_shows_levels() {
        let (sim, _, _) = traced_sim();
        let art = sim
            .trace()
            .render_ascii(SimTime::ZERO, SimDuration::ns(1), 6);
        let req_line = art.lines().find(|l| l.contains("req")).unwrap();
        // t=0:0, 1:0, 2:1, 3:1, 4:0, 5:0
        assert!(req_line.ends_with("__██__"));
        let data_line = art.lines().find(|l| l.contains("data")).unwrap();
        assert!(data_line.contains('b')); // 0xAB % 16 == 0xb
    }

    #[test]
    fn untraced_signal_yields_nothing() {
        let mut b = SimBuilder::new();
        let traced = b.add_bit_signal("traced");
        let other = b.add_bit_signal("other");
        b.trace(traced.id());
        let sim = b.build();
        assert_eq!(sim.trace().changes(other.id()).count(), 0);
        assert_eq!(sim.trace().name(other.id()), None);
        assert_eq!(sim.trace().name(traced.id()), Some("traced"));
    }
}
