//! Signal values.
//!
//! The kernel carries two shapes of value on its nets: single bits with an
//! unknown state (`Bit`), and bundled-data words up to 64 bits (`Word`).
//! Control wires (clocks, requests, acknowledges, tokens) are bits; data
//! buses are words. A freshly created signal is `X` / unknown until first
//! driven, mirroring 4-state HDL semantics closely enough for this model.

use std::fmt;

/// A single-bit logic value with an unknown state.
///
/// # Examples
///
/// ```
/// use st_sim::value::Bit;
/// assert_eq!(Bit::from(true), Bit::One);
/// assert!(Bit::X.is_unknown());
/// assert_eq!(!Bit::Zero, Bit::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Bit {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / uninitialized.
    #[default]
    X,
}

impl Bit {
    /// True when the bit is logic high.
    pub const fn is_one(self) -> bool {
        matches!(self, Bit::One)
    }

    /// True when the bit is logic low.
    pub const fn is_zero(self) -> bool {
        matches!(self, Bit::Zero)
    }

    /// True when the bit is in the unknown state.
    pub const fn is_unknown(self) -> bool {
        matches!(self, Bit::X)
    }

    /// Converts to `bool`, treating `X` as an error.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Bit::Zero => Some(false),
            Bit::One => Some(true),
            Bit::X => None,
        }
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl std::ops::Not for Bit {
    type Output = Bit;
    fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
            Bit::X => Bit::X,
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bit::Zero => write!(f, "0"),
            Bit::One => write!(f, "1"),
            Bit::X => write!(f, "x"),
        }
    }
}

/// A value carried by a signal: either a single bit or a data word.
///
/// Words model bundled-data buses of up to 64 bits; the paper's channels
/// are "arbitrarily wide bundled data words", and 64 bits comfortably
/// covers every workload in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A single-bit control value.
    Bit(Bit),
    /// A bundled-data word.
    Word(u64),
    /// An unknown word (bus not yet driven).
    WordX,
}

impl Value {
    /// The unknown single-bit value.
    pub const X: Value = Value::Bit(Bit::X);

    /// Extracts the bit, if this is a bit-shaped value.
    pub fn as_bit(self) -> Option<Bit> {
        match self {
            Value::Bit(b) => Some(b),
            _ => None,
        }
    }

    /// Extracts the word, if this is a known word.
    pub fn as_word(self) -> Option<u64> {
        match self {
            Value::Word(w) => Some(w),
            _ => None,
        }
    }

    /// True for `Bit(X)` and `WordX`.
    pub fn is_unknown(self) -> bool {
        matches!(self, Value::Bit(Bit::X) | Value::WordX)
    }
}

impl From<Bit> for Value {
    fn from(b: Bit) -> Self {
        Value::Bit(b)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bit(b.into())
    }
}

impl From<u64> for Value {
    fn from(w: u64) -> Self {
        Value::Word(w)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bit(b) => write!(f, "{b}"),
            Value::Word(w) => write!(f, "{w:#x}"),
            Value::WordX => write!(f, "xx"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_predicates() {
        assert!(Bit::One.is_one());
        assert!(Bit::Zero.is_zero());
        assert!(Bit::X.is_unknown());
        assert!(!Bit::X.is_one());
        assert_eq!(Bit::default(), Bit::X);
    }

    #[test]
    fn bit_bool_round_trip() {
        assert_eq!(Bit::from(true).to_bool(), Some(true));
        assert_eq!(Bit::from(false).to_bool(), Some(false));
        assert_eq!(Bit::X.to_bool(), None);
    }

    #[test]
    fn bit_not() {
        assert_eq!(!Bit::Zero, Bit::One);
        assert_eq!(!Bit::One, Bit::Zero);
        assert_eq!(!Bit::X, Bit::X);
    }

    #[test]
    fn value_extraction() {
        assert_eq!(Value::from(true).as_bit(), Some(Bit::One));
        assert_eq!(Value::from(7u64).as_word(), Some(7));
        assert_eq!(Value::Word(7).as_bit(), None);
        assert_eq!(Value::WordX.as_word(), None);
        assert!(Value::X.is_unknown());
        assert!(Value::WordX.is_unknown());
        assert!(!Value::Word(0).is_unknown());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bit(Bit::One).to_string(), "1");
        assert_eq!(Value::Word(255).to_string(), "0xff");
        assert_eq!(Value::WordX.to_string(), "xx");
    }
}
