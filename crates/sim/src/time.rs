//! Simulation time.
//!
//! Time is measured in integer femtoseconds so that every delay used by the
//! models (gate delays, wire delays, clock periods) is exactly
//! representable; determinism of the kernel depends on never rounding.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute point in simulation time, in femtoseconds since reset.
///
/// `SimTime` is totally ordered and wraps a `u64`, which covers about
/// 5 hours of simulated time at femtosecond resolution — far beyond any
/// workload in this repository.
///
/// # Examples
///
/// ```
/// use st_sim::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::ns(3);
/// assert_eq!(t.as_fs(), 3_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in femtoseconds.
///
/// # Examples
///
/// ```
/// use st_sim::time::SimDuration;
/// assert_eq!(SimDuration::ps(1), SimDuration::fs(1000));
/// assert_eq!(SimDuration::ns(2) / 4, SimDuration::ps(500));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw femtoseconds.
    pub const fn from_fs(fs: u64) -> Self {
        SimTime(fs)
    }

    /// Returns the raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration (a delta-cycle delay).
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from femtoseconds.
    pub const fn fs(v: u64) -> Self {
        SimDuration(v)
    }

    /// Creates a duration from picoseconds.
    pub const fn ps(v: u64) -> Self {
        SimDuration(v * 1_000)
    }

    /// Creates a duration from nanoseconds.
    pub const fn ns(v: u64) -> Self {
        SimDuration(v * 1_000_000)
    }

    /// Creates a duration from microseconds.
    pub const fn us(v: u64) -> Self {
        SimDuration(v * 1_000_000_000)
    }

    /// Returns the raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Returns the duration as (possibly truncated) picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as nanoseconds in floating point.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a rational factor `num/den`, rounding to the
    /// nearest femtosecond. Used by the delay-variation sweeps (e.g. 150 %
    /// of nominal is `scaled(3, 2)`).
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn scaled(self, num: u64, den: u64) -> SimDuration {
        assert!(den != 0, "scale denominator must be non-zero");
        let v = (u128::from(self.0) * u128::from(num) + u128::from(den / 2)) / u128::from(den);
        SimDuration(u64::try_from(v).expect("scaled duration overflows u64"))
    }

    /// Scales by an integer percentage (100 = unchanged).
    pub fn percent(self, pct: u64) -> SimDuration {
        self.scaled(pct, 100)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs = self.0;
        if fs == 0 {
            write!(f, "0s")
        } else if fs.is_multiple_of(1_000_000_000) {
            write!(f, "{}us", fs / 1_000_000_000)
        } else if fs.is_multiple_of(1_000_000) {
            write!(f, "{}ns", fs / 1_000_000)
        } else if fs.is_multiple_of(1_000) {
            write!(f, "{}ps", fs / 1_000)
        } else {
            write!(f, "{fs}fs")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::ns(1), SimDuration::ps(1000));
        assert_eq!(SimDuration::ps(1), SimDuration::fs(1000));
        assert_eq!(SimDuration::us(1), SimDuration::ns(1000));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::ns(5);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::ns(5));
        assert_eq!((t - SimDuration::ns(2)).as_fs(), 3_000_000);
        assert_eq!(
            t.saturating_since(t + SimDuration::ns(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn since_panics_when_reversed() {
        SimTime::ZERO.since(SimTime::from_fs(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::ns(10);
        assert_eq!(d.percent(50), SimDuration::ns(5));
        assert_eq!(d.percent(150), SimDuration::ns(15));
        assert_eq!(d.percent(200), SimDuration::ns(20));
        assert_eq!(d.scaled(1, 3), SimDuration::fs(3_333_333));
    }

    #[test]
    fn duration_division_and_remainder() {
        assert_eq!(SimDuration::ns(10) / SimDuration::ns(3), 3);
        assert_eq!(SimDuration::ns(10) % SimDuration::ns(3), SimDuration::ns(1));
        assert_eq!(SimDuration::ns(9) / 3, SimDuration::ns(3));
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(SimDuration::ns(3).to_string(), "3ns");
        assert_eq!(SimDuration::ps(1500).to_string(), "1500ps");
        assert_eq!(SimDuration::fs(42).to_string(), "42fs");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
        assert_eq!(SimDuration::us(7).to_string(), "7us");
    }

    #[test]
    fn display_time_matches_duration() {
        assert_eq!((SimTime::ZERO + SimDuration::ps(2)).to_string(), "2ps");
    }
}
