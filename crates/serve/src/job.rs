//! The service's job model: plain-data requests over the engines built
//! in PRs 1–4, canonical byte encodings for content addressing, and the
//! executor the worker pool runs.
//!
//! Every request kind is a *pure function* of its fields — that is the
//! paper's determinism invariant surfacing as a systems property. A
//! [`JobRequest`]'s canonical bytes therefore content-address its
//! result: equal bytes ⇒ equal result bytes, on any machine, at any
//! thread count, on either backend where the request pins one.
//!
//! Three kinds are served:
//!
//! * **sim** — a seed campaign over a named scenario: one simulation
//!   per seed through [`synchro_tokens::campaign::run_jobs`], each
//!   returning its outcome and every SB's canonical I/O trace;
//! * **shmoo** — the §4.2 frequency sweep via
//!   [`st_testkit::shmoo_any_hooked`];
//! * **chaos** — a differential fault-injection campaign via
//!   [`st_testkit::run_chaos_campaign_hooked`].

use st_sim::time::SimDuration;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use synchro_tokens::scenarios::{self, chain_spec, e1_spec, pingpong_spec, producer_consumer_spec};
use synchro_tokens::system::{RunOutcome, SystemBuilder};
use synchro_tokens::{
    run_jobs_hooked, AnySystem, Backend, BatchedSystem, RunHooks, SbId, SystemSpec,
};

/// Magic prefix of canonical request bytes.
pub const REQUEST_MAGIC: &[u8; 4] = b"STJR";
/// Magic prefix of canonical result bytes.
pub const RESULT_MAGIC: &[u8; 4] = b"STJQ";
/// Version byte shared by both encodings.
pub const WIRE_VERSION: u8 = 1;

/// A named, parameterizable system the service can build.
///
/// Requests name scenarios instead of shipping arbitrary specs because
/// a spec alone does not determine behaviour — the synchronous blocks'
/// *logic* is attached at build time and is not serializable. Each
/// scenario pairs a spec from [`synchro_tokens::scenarios`] with the
/// deterministic mixer workload used by the chaos campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// [`producer_consumer_spec`]: the smallest interesting system.
    ProducerConsumer,
    /// [`pingpong_spec`]: the dense bidirectional reference workload.
    PingPong,
    /// [`e1_spec`]: the paper's §5 three-SB / six-FIFO platform.
    E1,
    /// [`chain_spec`]: a linear pipeline of `n` SBs (2..=64 here).
    Chain(u32),
}

impl Scenario {
    /// The scenario's spec.
    pub fn spec(self) -> SystemSpec {
        match self {
            Scenario::ProducerConsumer => producer_consumer_spec(),
            Scenario::PingPong => pingpong_spec(),
            Scenario::E1 => e1_spec(),
            Scenario::Chain(n) => chain_spec(n as usize),
        }
    }

    /// Wire name (JSON) of the scenario.
    pub fn name(self) -> String {
        match self {
            Scenario::ProducerConsumer => "producer_consumer".to_owned(),
            Scenario::PingPong => "pingpong".to_owned(),
            Scenario::E1 => "e1".to_owned(),
            Scenario::Chain(n) => format!("chain{n}"),
        }
    }

    /// Parses the wire name.
    pub fn parse(name: &str) -> Option<Scenario> {
        match name {
            "producer_consumer" => Some(Scenario::ProducerConsumer),
            "pingpong" => Some(Scenario::PingPong),
            "e1" => Some(Scenario::E1),
            _ => {
                let n: u32 = name.strip_prefix("chain")?.parse().ok()?;
                (2..=64).contains(&n).then_some(Scenario::Chain(n))
            }
        }
    }

    fn encode(self, out: &mut Vec<u8>) {
        match self {
            Scenario::ProducerConsumer => out.push(0),
            Scenario::PingPong => out.push(1),
            Scenario::E1 => out.push(2),
            Scenario::Chain(n) => {
                out.push(3);
                out.extend_from_slice(&n.to_le_bytes());
            }
        }
    }
}

fn backend_tag(b: Backend) -> u8 {
    match b {
        Backend::Event => 0,
        Backend::Compiled => 1,
    }
}

/// Parses a wire backend name.
pub fn backend_from_name(name: &str) -> Option<Backend> {
    match name {
        "event" => Some(Backend::Event),
        "compiled" => Some(Backend::Compiled),
        _ => None,
    }
}

/// Wire name of a backend.
pub fn backend_name(b: Backend) -> &'static str {
    match b {
        Backend::Event => "event",
        Backend::Compiled => "compiled",
    }
}

/// A seed campaign: one independent simulation per seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRequest {
    /// System under simulation.
    pub scenario: Scenario,
    /// Engine to run on. Both are byte-identical; the field exists so
    /// differential clients can pin one and compare served bytes.
    pub backend: Backend,
    /// One simulation per seed (the builder seed and workload salt).
    pub seeds: Vec<u64>,
    /// Local cycles every SB must reach.
    pub cycles: u64,
    /// I/O trace capture limit per SB, in cycles.
    pub trace_cycles: u32,
    /// Simulated-time budget per run, in femtoseconds.
    pub budget_fs: u64,
}

/// A §4.2 frequency shmoo over one SB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShmooRequest {
    /// System under sweep.
    pub scenario: Scenario,
    /// Engine to run on.
    pub backend: Backend,
    /// The SB whose clock period is swept.
    pub sb: u32,
    /// Candidate periods, in femtoseconds, in sweep order.
    pub periods_fs: Vec<u64>,
    /// Local cycles per point.
    pub cycles: u64,
}

/// A differential fault-injection campaign (seed × 3 fault classes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRequest {
    /// System under attack.
    pub scenario: Scenario,
    /// Number of plan seeds; the campaign runs `3 × seeds` configs.
    pub seeds: u64,
    /// Local cycles every run must reach.
    pub cycles: u64,
    /// Simulated-time budget per run, in femtoseconds.
    pub budget_fs: u64,
}

/// A complete, self-contained unit of service work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobRequest {
    /// Seed campaign.
    Sim(SimRequest),
    /// Frequency shmoo.
    Shmoo(ShmooRequest),
    /// Chaos campaign.
    Chaos(ChaosRequest),
}

impl JobRequest {
    /// The canonical byte form — the content that is addressed.
    ///
    /// Fixed little-endian layout, pure function of the request value;
    /// [`ContentKey::of`](crate::hash::ContentKey::of) over these bytes
    /// is the cache key.
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(REQUEST_MAGIC);
        out.push(WIRE_VERSION);
        match self {
            JobRequest::Sim(r) => {
                out.push(0);
                r.scenario.encode(&mut out);
                out.push(backend_tag(r.backend));
                out.extend_from_slice(&(r.seeds.len() as u64).to_le_bytes());
                for s in &r.seeds {
                    out.extend_from_slice(&s.to_le_bytes());
                }
                out.extend_from_slice(&r.cycles.to_le_bytes());
                out.extend_from_slice(&r.trace_cycles.to_le_bytes());
                out.extend_from_slice(&r.budget_fs.to_le_bytes());
            }
            JobRequest::Shmoo(r) => {
                out.push(1);
                r.scenario.encode(&mut out);
                out.push(backend_tag(r.backend));
                out.extend_from_slice(&r.sb.to_le_bytes());
                out.extend_from_slice(&(r.periods_fs.len() as u64).to_le_bytes());
                for p in &r.periods_fs {
                    out.extend_from_slice(&p.to_le_bytes());
                }
                out.extend_from_slice(&r.cycles.to_le_bytes());
            }
            JobRequest::Chaos(r) => {
                out.push(2);
                r.scenario.encode(&mut out);
                out.extend_from_slice(&r.seeds.to_le_bytes());
                out.extend_from_slice(&r.cycles.to_le_bytes());
                out.extend_from_slice(&r.budget_fs.to_le_bytes());
            }
        }
        out
    }

    /// The conformance requirement IDs (see `conformance/requirements.toml`)
    /// a successful run of this request bears witness to. Every job kind
    /// exercises the determinism invariant and the content-addressed
    /// campaign contract; multi-seed compiled sims additionally take the
    /// batched lane path, and chaos campaigns replay fault plans.
    pub fn witnessed_ids(&self) -> Vec<&'static str> {
        let mut ids = vec!["ST-DET-001", "ST-CAMP-005"];
        match self {
            JobRequest::Sim(r) => {
                if r.backend == Backend::Compiled && r.seeds.len() >= 2 {
                    ids.push("ST-EQ-003");
                }
            }
            JobRequest::Shmoo(_) => {}
            JobRequest::Chaos(_) => ids.push("ST-CHAOS-006"),
        }
        ids
    }

    /// Builds a request from its JSON wire form (the `/submit` body).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first missing or
    /// ill-typed field.
    pub fn from_json(v: &crate::json::Json) -> Result<JobRequest, String> {
        use crate::json::Json;
        let field = |key: &str| -> Result<&Json, String> {
            v.get(key).ok_or_else(|| format!("missing field {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
        };
        let scenario = || -> Result<Scenario, String> {
            let name = field("scenario")?
                .as_str()
                .ok_or("field \"scenario\" must be a string")?;
            Scenario::parse(name).ok_or_else(|| format!("unknown scenario {name:?}"))
        };
        let backend = || -> Result<Backend, String> {
            let name = field("backend")?
                .as_str()
                .ok_or("field \"backend\" must be a string")?;
            backend_from_name(name).ok_or_else(|| format!("unknown backend {name:?}"))
        };
        let u64_list = |key: &str| -> Result<Vec<u64>, String> {
            field(key)?
                .as_arr()
                .ok_or_else(|| format!("field {key:?} must be an array"))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| format!("field {key:?} must hold integers"))
                })
                .collect()
        };
        let kind = field("type")?
            .as_str()
            .ok_or("field \"type\" must be a string")?;
        match kind {
            "sim" => {
                let seeds = u64_list("seeds")?;
                if seeds.is_empty() || seeds.len() > 100_000 {
                    return Err("seeds must hold 1..=100000 entries".to_owned());
                }
                Ok(JobRequest::Sim(SimRequest {
                    scenario: scenario()?,
                    backend: backend()?,
                    seeds,
                    cycles: u64_field("cycles")?,
                    trace_cycles: u64_field("trace_cycles")?
                        .try_into()
                        .map_err(|_| "trace_cycles out of range".to_owned())?,
                    budget_fs: u64_field("budget_fs")?,
                }))
            }
            "shmoo" => {
                let periods_fs = u64_list("periods_fs")?;
                if periods_fs.is_empty() || periods_fs.len() > 100_000 {
                    return Err("periods_fs must hold 1..=100000 entries".to_owned());
                }
                Ok(JobRequest::Shmoo(ShmooRequest {
                    scenario: scenario()?,
                    backend: backend()?,
                    sb: u64_field("sb")?
                        .try_into()
                        .map_err(|_| "sb out of range".to_owned())?,
                    periods_fs,
                    cycles: u64_field("cycles")?,
                }))
            }
            "chaos" => {
                let seeds = u64_field("seeds")?;
                if seeds == 0 || seeds > 100_000 {
                    return Err("seeds must be 1..=100000".to_owned());
                }
                Ok(JobRequest::Chaos(ChaosRequest {
                    scenario: scenario()?,
                    seeds,
                    cycles: u64_field("cycles")?,
                    budget_fs: u64_field("budget_fs")?,
                }))
            }
            other => Err(format!("unknown job type {other:?}")),
        }
    }

    /// The JSON wire form (what a CLI submits).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        match self {
            JobRequest::Sim(r) => Json::obj([
                ("type", Json::str("sim")),
                ("scenario", Json::Str(r.scenario.name())),
                ("backend", Json::str(backend_name(r.backend))),
                (
                    "seeds",
                    Json::Arr(r.seeds.iter().map(|&s| Json::UInt(s)).collect()),
                ),
                ("cycles", Json::UInt(r.cycles)),
                ("trace_cycles", Json::UInt(r.trace_cycles.into())),
                ("budget_fs", Json::UInt(r.budget_fs)),
            ]),
            JobRequest::Shmoo(r) => Json::obj([
                ("type", Json::str("shmoo")),
                ("scenario", Json::Str(r.scenario.name())),
                ("backend", Json::str(backend_name(r.backend))),
                ("sb", Json::UInt(r.sb.into())),
                (
                    "periods_fs",
                    Json::Arr(r.periods_fs.iter().map(|&p| Json::UInt(p)).collect()),
                ),
                ("cycles", Json::UInt(r.cycles)),
            ]),
            JobRequest::Chaos(r) => Json::obj([
                ("type", Json::str("chaos")),
                ("scenario", Json::Str(r.scenario.name())),
                ("seeds", Json::UInt(r.seeds)),
                ("cycles", Json::UInt(r.cycles)),
                ("budget_fs", Json::UInt(r.budget_fs)),
            ]),
        }
    }

    /// Validates semantic bounds the wire form cannot express.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        let (scenario, cycles) = match self {
            JobRequest::Sim(r) => (r.scenario, r.cycles),
            JobRequest::Shmoo(r) => {
                let n_sbs = r.scenario.spec().sbs.len();
                if (r.sb as usize) >= n_sbs {
                    return Err(format!(
                        "sb {} out of range for {} ({n_sbs} SBs)",
                        r.sb,
                        r.scenario.name()
                    ));
                }
                if r.periods_fs.contains(&0) {
                    return Err("periods_fs must be positive".to_owned());
                }
                (r.scenario, r.cycles)
            }
            JobRequest::Chaos(r) => (r.scenario, r.cycles),
        };
        let _ = scenario;
        if cycles == 0 || cycles > 1_000_000 {
            return Err("cycles must be 1..=1000000".to_owned());
        }
        Ok(())
    }
}

/// The outcome of one simulation run, in wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRunResult {
    /// The run's seed.
    pub seed: u64,
    /// `RunOutcome` label (`reached` / `deadlock` / `timed-out`) or
    /// `error: …` for a kernel error.
    pub outcome: String,
    /// Canonical I/O trace bytes, one per SB, in SB order.
    pub traces: Vec<Vec<u8>>,
}

/// One shmoo point, in wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmooPointResult {
    /// The candidate period, femtoseconds.
    pub period_fs: u64,
    /// Whether every SB's trace matched the golden run.
    pub pass: bool,
    /// Setup-time violations the swept SB took.
    pub violations: u64,
}

/// One chaos configuration's verdict, in wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRunResult {
    /// Plan seed.
    pub seed: u64,
    /// Fault class name (`analog` / `protocol` / `state`).
    pub class: String,
    /// `(backend kind, classified outcome)` rendered per backend,
    /// in `[event, compiled]` order.
    pub outcomes: Vec<(String, String)>,
    /// Oracle violations (empty on a conforming run).
    pub violations: Vec<String>,
}

/// A completed job's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobResult {
    /// Per-seed outcomes, in seed order.
    Sim(Vec<SimRunResult>),
    /// Sweep points, in sweep order.
    Shmoo(Vec<ShmooPointResult>),
    /// Per-configuration verdicts, in job order.
    Chaos(Vec<ChaosRunResult>),
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u64).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

impl JobResult {
    /// The canonical byte form served by `/result/<id>` — a pure
    /// function of the result value, so a served body is byte-identical
    /// to an encoding of the same job computed locally.
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(RESULT_MAGIC);
        out.push(WIRE_VERSION);
        match self {
            JobResult::Sim(runs) => {
                out.push(0);
                out.extend_from_slice(&(runs.len() as u64).to_le_bytes());
                for run in runs {
                    out.extend_from_slice(&run.seed.to_le_bytes());
                    put_str(&mut out, &run.outcome);
                    out.extend_from_slice(&(run.traces.len() as u64).to_le_bytes());
                    for t in &run.traces {
                        put_bytes(&mut out, t);
                    }
                }
            }
            JobResult::Shmoo(points) => {
                out.push(1);
                out.extend_from_slice(&(points.len() as u64).to_le_bytes());
                for p in points {
                    out.extend_from_slice(&p.period_fs.to_le_bytes());
                    out.push(u8::from(p.pass));
                    out.extend_from_slice(&p.violations.to_le_bytes());
                }
            }
            JobResult::Chaos(runs) => {
                out.push(2);
                out.extend_from_slice(&(runs.len() as u64).to_le_bytes());
                for run in runs {
                    out.extend_from_slice(&run.seed.to_le_bytes());
                    put_str(&mut out, &run.class);
                    out.extend_from_slice(&(run.outcomes.len() as u64).to_le_bytes());
                    for (kind, outcome) in &run.outcomes {
                        put_str(&mut out, kind);
                        put_str(&mut out, outcome);
                    }
                    out.extend_from_slice(&(run.violations.len() as u64).to_le_bytes());
                    for v in &run.violations {
                        put_str(&mut out, v);
                    }
                }
            }
        }
        out
    }
}

/// The executor was cancelled before finishing (token or deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCancelled;

impl fmt::Display for ExecCancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job cancelled before completion")
    }
}

impl std::error::Error for ExecCancelled {}

/// The deterministic mixer workload on `spec`, salted exactly like the
/// chaos campaigns: different seeds produce different golden traces.
fn mixer_builder(spec: &SystemSpec, seed: u64, trace_cycles: usize) -> SystemBuilder {
    let n = spec.sbs.len();
    let mut b = SystemBuilder::new(spec.clone())
        .expect("scenario specs are valid")
        .with_seed(seed)
        .with_trace_limit(trace_cycles);
    for i in 0..n {
        let salt = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x1000 * i as u64);
        b = b.with_logic(SbId(i), scenarios::MixerLogic::new(salt));
    }
    b
}

// Cumulative batched-execution counters, surfaced on `/metrics` as
// batch-occupancy gauges (lanes / groups = average lockstep sharing).
static BATCHES_FORMED: AtomicU64 = AtomicU64::new(0);
static BATCH_LANES: AtomicU64 = AtomicU64::new(0);
static BATCH_GROUPS: AtomicU64 = AtomicU64::new(0);

/// Cumulative batched-execution counters since process start:
/// `(batches formed, total lanes, total lockstep groups after runs)`.
pub fn batch_metrics() -> (u64, u64, u64) {
    (
        BATCHES_FORMED.load(Ordering::Relaxed),
        BATCH_LANES.load(Ordering::Relaxed),
        BATCH_GROUPS.load(Ordering::Relaxed),
    )
}

/// Attempts to run a whole [`SimRequest`] through the batched
/// lane-parallel engine: all seeds share the scenario spec, so they
/// lower into lockstep groups and the event-loop cost is paid once per
/// group instead of once per seed.
///
/// The seed list is sharded so up to `threads` workers run whole
/// lockstep groups concurrently (via
/// [`synchro_tokens::run_jobs_hooked`], which also caps the fan-out at
/// the machine's parallelism). Shards never exceed the `ST_BATCH` lane
/// cap, so sharding costs no group sharing, and one shard — not the
/// whole request — is the indivisible unit of batched work:
/// cancellation is honoured between shards and progress fires per
/// completed seed.
///
/// Returns `Ok(None)` when the request should take the scalar path —
/// an `event`-backend pin (the client asked for that engine
/// specifically), a single seed, `ST_BATCH=1`, or builders outside the
/// batched envelope. Results are byte-identical either way (the
/// differential suite in `synchro-tokens` proves per-lane identity),
/// so the choice is invisible on the wire.
///
/// # Errors
///
/// [`ExecCancelled`] when the token trips before the last shard is
/// claimed; completed shards are discarded.
fn run_sim_batched(
    r: &SimRequest,
    threads: usize,
    hooks: &RunHooks<'_>,
) -> Result<Option<Vec<SimRunResult>>, ExecCancelled> {
    let limit = synchro_tokens::batch_limit_from_env();
    if r.backend != Backend::Compiled || r.seeds.len() < 2 || limit <= 1 {
        return Ok(None);
    }
    let spec = r.scenario.spec();
    // The envelope is a property of the spec and trace limit, shared
    // by every seed: one probe builder decides for the whole request.
    if !BatchedSystem::supports(&mixer_builder(&spec, r.seeds[0], r.trace_cycles as usize)) {
        return Ok(None);
    }
    // Shard by the thread count that will actually run (requested,
    // capped at the machine's parallelism): sizing by the raw request
    // would fragment lane sharing with no parallelism to show for it.
    let workers = synchro_tokens::effective_threads(threads);
    let shard = r.seeds.len().div_ceil(workers).clamp(1, limit);
    let shards: Vec<&[u64]> = r.seeds.chunks(shard).collect();
    let total = r.seeds.len();
    let done = AtomicUsize::new(0);
    let lane_done = |n: usize| {
        let completed = done.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(p) = hooks.progress {
            p(completed.min(total), total);
        }
    };
    // Per-seed progress is reported from inside the shard workers, so
    // the fan-out itself runs with progress disabled (its unit is the
    // shard, not the seed).
    let shard_hooks = RunHooks {
        cancel: hooks.cancel,
        progress: None,
    };
    let runs = run_jobs_hooked(&shards, threads, shard_hooks, |_, seeds: &&[u64]| {
        let builders: Vec<SystemBuilder> = seeds
            .iter()
            .map(|&seed| mixer_builder(&spec, seed, r.trace_cycles as usize))
            .collect();
        let Ok(mut batch) = BatchedSystem::build(builders) else {
            // Unreachable given the probe above, but a scalar fallback
            // keeps the result correct if the envelope ever drifts.
            let runs: Vec<SimRunResult> = seeds.iter().map(|&seed| run_sim_once(r, seed)).collect();
            lane_done(runs.len());
            return runs;
        };
        let outcomes = batch.run_until_cycles(r.cycles, SimDuration::fs(r.budget_fs));
        BATCHES_FORMED.fetch_add(1, Ordering::Relaxed);
        BATCH_LANES.fetch_add(batch.lanes() as u64, Ordering::Relaxed);
        BATCH_GROUPS.fetch_add(batch.group_count() as u64, Ordering::Relaxed);
        let runs: Vec<SimRunResult> = seeds
            .iter()
            .zip(outcomes)
            .enumerate()
            .map(|(lane, (&seed, outcome))| {
                let outcome = match outcome {
                    RunOutcome::Reached => "reached".to_owned(),
                    RunOutcome::Deadlock { stopped } => {
                        let names: Vec<String> = stopped.iter().map(ToString::to_string).collect();
                        format!("deadlock: {}", names.join(","))
                    }
                    RunOutcome::TimedOut => "timed-out".to_owned(),
                };
                let traces = (0..spec.sbs.len())
                    .map(|i| batch.io_trace(lane, SbId(i)).to_canonical_bytes())
                    .collect();
                SimRunResult {
                    seed,
                    outcome,
                    traces,
                }
            })
            .collect();
        lane_done(runs.len());
        runs
    })
    .map_err(|_| ExecCancelled)?;
    Ok(Some(runs.into_iter().flatten().collect()))
}

/// Runs one simulation of a [`SimRequest`] at `seed`.
///
/// Public so clients (tests, the smoke script) can reproduce a served
/// result *directly*: fan seeds through
/// [`synchro_tokens::campaign::run_jobs`] with this worker and encode
/// via [`JobResult::to_canonical_bytes`] — the service must serve the
/// same bytes.
pub fn run_sim_once(req: &SimRequest, seed: u64) -> SimRunResult {
    let spec = req.scenario.spec();
    let mut sys: AnySystem =
        mixer_builder(&spec, seed, req.trace_cycles as usize).build_backend(req.backend);
    let outcome = match sys.run_until_cycles(req.cycles, SimDuration::fs(req.budget_fs)) {
        Ok(RunOutcome::Reached) => "reached".to_owned(),
        Ok(RunOutcome::Deadlock { stopped }) => {
            let names: Vec<String> = stopped.iter().map(ToString::to_string).collect();
            format!("deadlock: {}", names.join(","))
        }
        Ok(RunOutcome::TimedOut) => "timed-out".to_owned(),
        Err(e) => format!("error: {e}"),
    };
    let traces = (0..spec.sbs.len())
        .map(|i| sys.io_trace(SbId(i)).to_canonical_bytes())
        .collect();
    SimRunResult {
        seed,
        outcome,
        traces,
    }
}

/// Executes a request through the existing campaign entry points,
/// honouring `hooks` (cancellation between sub-jobs, progress per
/// completed sub-job).
///
/// # Errors
///
/// [`ExecCancelled`] when the token trips first; partial sub-results
/// are discarded (a cancelled job has no servable result).
pub fn execute(
    req: &JobRequest,
    threads: usize,
    hooks: RunHooks<'_>,
) -> Result<JobResult, ExecCancelled> {
    match req {
        JobRequest::Sim(r) => {
            if let Some(runs) = run_sim_batched(r, threads, &hooks)? {
                return Ok(JobResult::Sim(runs));
            }
            let runs = run_jobs_hooked(&r.seeds, threads, hooks, |_, &seed| run_sim_once(r, seed))
                .map_err(|_| ExecCancelled)?;
            Ok(JobResult::Sim(runs))
        }
        JobRequest::Shmoo(r) => {
            let spec = r.scenario.spec();
            let periods: Vec<SimDuration> =
                r.periods_fs.iter().map(|&p| SimDuration::fs(p)).collect();
            let backend = r.backend;
            let result = st_testkit::shmoo_any_hooked(
                &spec,
                SbId(r.sb as usize),
                &periods,
                r.cycles,
                &move |s, seed| mixer_builder(&s, seed, 0).build_backend(backend),
                threads,
                hooks,
            )
            .map_err(|_| ExecCancelled)?;
            Ok(JobResult::Shmoo(
                result
                    .points
                    .iter()
                    .map(|p| ShmooPointResult {
                        period_fs: p.period.as_fs(),
                        pass: p.pass,
                        violations: p.violations,
                    })
                    .collect(),
            ))
        }
        JobRequest::Chaos(r) => {
            let spec = r.scenario.spec();
            let jobs = st_testkit::chaos_jobs(r.seeds);
            let report = st_testkit::run_chaos_campaign_hooked(
                &spec,
                &jobs,
                r.cycles,
                SimDuration::fs(r.budget_fs),
                threads,
                hooks,
            )
            .map_err(|_| ExecCancelled)?;
            Ok(JobResult::Chaos(
                report
                    .runs
                    .iter()
                    .map(|run| ChaosRunResult {
                        seed: run.job.seed,
                        class: run.job.class.to_string(),
                        outcomes: run
                            .outcomes
                            .iter()
                            .map(|(kind, outcome)| (format!("{kind:?}"), outcome.to_string()))
                            .collect(),
                        violations: run.violations.clone(),
                    })
                    .collect(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::ContentKey;

    fn tiny_sim(backend: Backend) -> JobRequest {
        JobRequest::Sim(SimRequest {
            scenario: Scenario::PingPong,
            backend,
            seeds: vec![1, 2],
            cycles: 30,
            trace_cycles: 30,
            budget_fs: SimDuration::us(2000).as_fs(),
        })
    }

    #[test]
    fn canonical_bytes_are_stable_and_field_sensitive() {
        let a = tiny_sim(Backend::Event);
        assert_eq!(a.to_canonical_bytes(), a.clone().to_canonical_bytes());
        let b = tiny_sim(Backend::Compiled);
        assert_ne!(a.to_canonical_bytes(), b.to_canonical_bytes());
        let JobRequest::Sim(mut r) = a.clone() else {
            unreachable!()
        };
        r.seeds.push(3);
        assert_ne!(
            JobRequest::Sim(r).to_canonical_bytes(),
            a.to_canonical_bytes()
        );
        // The content key follows the bytes.
        assert_ne!(
            ContentKey::of(&a.to_canonical_bytes()),
            ContentKey::of(&b.to_canonical_bytes())
        );
    }

    #[test]
    fn json_round_trips_every_kind() {
        let reqs = [
            tiny_sim(Backend::Compiled),
            JobRequest::Shmoo(ShmooRequest {
                scenario: Scenario::ProducerConsumer,
                backend: Backend::Event,
                sb: 0,
                periods_fs: vec![10_000_000, 9_000_000],
                cycles: 40,
            }),
            JobRequest::Chaos(ChaosRequest {
                scenario: Scenario::PingPong,
                seeds: 2,
                cycles: 40,
                budget_fs: SimDuration::us(2000).as_fs(),
            }),
        ];
        for req in reqs {
            let text = req.to_json().encode();
            let parsed = JobRequest::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, req, "{text}");
            parsed.validate().unwrap();
        }
    }

    #[test]
    fn scenario_names_round_trip() {
        for s in [
            Scenario::ProducerConsumer,
            Scenario::PingPong,
            Scenario::E1,
            Scenario::Chain(5),
        ] {
            assert_eq!(Scenario::parse(&s.name()), Some(s));
        }
        assert_eq!(Scenario::parse("chain1"), None, "chain needs >= 2 SBs");
        assert_eq!(Scenario::parse("nonsense"), None);
    }

    #[test]
    fn malformed_requests_are_rejected_with_field_names() {
        let bad = crate::json::Json::parse(
            "{\"type\":\"sim\",\"scenario\":\"pingpong\",\"backend\":\"event\",\"seeds\":[],\"cycles\":10,\"trace_cycles\":10,\"budget_fs\":1}",
        )
        .unwrap();
        assert!(JobRequest::from_json(&bad).unwrap_err().contains("seeds"));
        let bad = crate::json::Json::parse("{\"type\":\"warp\"}").unwrap();
        assert!(JobRequest::from_json(&bad).unwrap_err().contains("warp"));
        let bad = JobRequest::Shmoo(ShmooRequest {
            scenario: Scenario::PingPong,
            backend: Backend::Event,
            sb: 9,
            periods_fs: vec![1],
            cycles: 10,
        });
        assert!(bad.validate().unwrap_err().contains("sb 9"));
    }

    #[test]
    fn executor_result_matches_direct_run_jobs() {
        // The byte-identity contract, service-free: executing a sim
        // request equals fanning its seeds through run_jobs directly.
        let JobRequest::Sim(r) = tiny_sim(Backend::Event) else {
            unreachable!()
        };
        let direct = JobResult::Sim(synchro_tokens::run_jobs(&r.seeds, 1, |_, &seed| {
            run_sim_once(&r, seed)
        }))
        .to_canonical_bytes();
        let executed = execute(&JobRequest::Sim(r), 2, RunHooks::default())
            .unwrap()
            .to_canonical_bytes();
        assert_eq!(executed, direct);
    }

    #[test]
    fn batched_sim_serves_the_scalar_bytes() {
        // Compiled multi-seed requests take the batched path; the wire
        // bytes must equal the scalar per-seed computation exactly.
        let JobRequest::Sim(r) = tiny_sim(Backend::Compiled) else {
            unreachable!()
        };
        let direct = JobResult::Sim(r.seeds.iter().map(|&s| run_sim_once(&r, s)).collect())
            .to_canonical_bytes();
        let executed = execute(&JobRequest::Sim(r), 1, RunHooks::default())
            .unwrap()
            .to_canonical_bytes();
        assert_eq!(executed, direct);
        let (batches, lanes, groups) = batch_metrics();
        assert!(batches >= 1, "the batched path must have been taken");
        assert!(lanes >= groups);
    }

    #[test]
    fn execute_honours_cancellation() {
        let token = synchro_tokens::CancelToken::new();
        token.cancel();
        let hooks = RunHooks {
            cancel: Some(&token),
            progress: None,
        };
        assert_eq!(
            execute(&tiny_sim(Backend::Event), 1, hooks),
            Err(ExecCancelled)
        );
        // The batched compiled path checks the same token between
        // shards; a pre-tripped token refuses the first shard claim.
        assert_eq!(
            execute(&tiny_sim(Backend::Compiled), 1, hooks),
            Err(ExecCancelled)
        );
    }

    #[test]
    fn batched_sim_shards_across_threads_and_serves_scalar_bytes() {
        // Nine seeds over three requested workers shard into chunks
        // sized by the effective thread count (three on a 3+-core
        // machine, one shard of nine on a single core); either way the
        // merged wire bytes must equal the scalar per-seed computation
        // and per-seed progress must cover every seed exactly once.
        let r = SimRequest {
            scenario: Scenario::PingPong,
            backend: Backend::Compiled,
            seeds: (1..=9).collect(),
            cycles: 30,
            trace_cycles: 30,
            budget_fs: SimDuration::us(2000).as_fs(),
        };
        let direct = JobResult::Sim(r.seeds.iter().map(|&s| run_sim_once(&r, s)).collect())
            .to_canonical_bytes();
        let seen = std::sync::Mutex::new(Vec::new());
        let progress = |done: usize, total: usize| {
            seen.lock().unwrap().push((done, total));
        };
        let hooks = RunHooks {
            cancel: None,
            progress: Some(&progress),
        };
        let executed = execute(&JobRequest::Sim(r), 3, hooks)
            .unwrap()
            .to_canonical_bytes();
        assert_eq!(executed, direct);
        let reports = seen.into_inner().unwrap();
        assert_eq!(
            reports.iter().map(|&(_, t)| t).max(),
            Some(9),
            "progress totals must count seeds, not shards"
        );
        assert_eq!(
            reports.iter().map(|&(d, _)| d).max(),
            Some(9),
            "every seed must be reported completed"
        );
    }
}
