//! Content-addressed result store: an exact-LRU memory front over an
//! optional checksum-verified disk layer.
//!
//! Determinism is what makes this sound: a [`ContentKey`] over a
//! request's canonical bytes *fully determines* the result bytes, so a
//! hit can be served forever without revalidation. The store is
//! therefore write-once per key — there is no invalidation path at all.
//!
//! Corruption tolerance: disk entries carry an FNV-1a checksum; a
//! truncated, bit-flipped or wrong-key file is deleted and reported as
//! a miss, and the service falls back to recomputing (which, again by
//! determinism, reproduces the identical bytes and rewrites the entry).

use crate::hash::{fnv1a64, ContentKey};
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic prefix of on-disk cache entries.
pub const DISK_MAGIC: &[u8; 4] = b"STRC";
/// On-disk format version.
pub const DISK_VERSION: u8 = 1;

/// Monotonically-counted cache statistics (all `Relaxed`; they feed
/// `/metrics`, not control flow).
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Hits served from the memory LRU.
    pub mem_hits: AtomicU64,
    /// Hits served from disk (after checksum verification).
    pub disk_hits: AtomicU64,
    /// Lookups that found nothing and forced a compute.
    pub misses: AtomicU64,
    /// Entries evicted from the memory LRU.
    pub evictions: AtomicU64,
    /// Disk entries rejected (bad magic/version/key/checksum/length)
    /// and deleted.
    pub corrupt_discards: AtomicU64,
}

struct MemEntry {
    bytes: Vec<u8>,
    /// Logical access clock value at last touch; the eviction victim is
    /// the minimum. O(capacity) scan — exact LRU, and at the default
    /// capacity (256) the scan is noise next to a single FNV pass.
    last_used: u64,
}

/// The store. All methods take `&self`; internal state is mutexed so
/// the worker pool and HTTP threads share one instance.
pub struct ResultStore {
    mem: Mutex<HashMap<ContentKey, MemEntry>>,
    clock: AtomicU64,
    capacity: usize,
    dir: Option<PathBuf>,
    /// Counters for `/metrics`.
    pub stats: StoreStats,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("capacity", &self.capacity)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl ResultStore {
    /// A memory-only store holding at most `capacity` results.
    pub fn in_memory(capacity: usize) -> Self {
        ResultStore {
            mem: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            capacity: capacity.max(1),
            dir: None,
            stats: StoreStats::default(),
        }
    }

    /// A store that also persists every result under `dir` (created on
    /// demand), surviving process restarts.
    pub fn with_dir(capacity: usize, dir: impl Into<PathBuf>) -> Self {
        let mut s = Self::in_memory(capacity);
        s.dir = Some(dir.into());
        s
    }

    /// The persistence directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks `key` up: memory first, then disk (promoting a disk hit
    /// into memory). `None` means compute-and-[`put`](Self::put).
    pub fn get(&self, key: ContentKey) -> Option<Vec<u8>> {
        {
            let mut mem = self.mem.lock().unwrap();
            if let Some(e) = mem.get_mut(&key) {
                e.last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                self.stats.mem_hits.fetch_add(1, Ordering::Relaxed);
                return Some(e.bytes.clone());
            }
        }
        if let Some(bytes) = self.read_disk(key) {
            self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.insert_mem(key, bytes.clone());
            return Some(bytes);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `bytes` under `key` in memory (evicting the LRU entry at
    /// capacity) and on disk when a directory is configured.
    pub fn put(&self, key: ContentKey, bytes: Vec<u8>) {
        self.write_disk(key, &bytes);
        self.insert_mem(key, bytes);
    }

    /// Number of entries currently resident in memory.
    pub fn mem_len(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    /// The keys currently resident in memory — the working set a
    /// departing cluster node hands off to the keys' new owners.
    /// (Disk-resident entries are not enumerated: determinism makes
    /// dropping them safe, the bytes recompute identically on demand.)
    pub fn mem_keys(&self) -> Vec<ContentKey> {
        self.mem.lock().unwrap().keys().copied().collect()
    }

    fn insert_mem(&self, key: ContentKey, bytes: Vec<u8>) {
        let mut mem = self.mem.lock().unwrap();
        let last_used = self.tick();
        if mem.len() >= self.capacity && !mem.contains_key(&key) {
            if let Some(victim) = mem.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k) {
                mem.remove(&victim);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        mem.insert(key, MemEntry { bytes, last_used });
    }

    /// The store key of an engine checkpoint: domain-separated from
    /// result keys (an `STCK` tag) over the checkpoint's configuration
    /// hash and cycle. Determinism makes this sound for the same reason
    /// result caching is: `(configuration, cycle)` fully determines the
    /// canonical checkpoint bytes, so a cached blob can seed any
    /// prefix-forked run of that configuration forever.
    pub fn checkpoint_key(spec_hash: [u8; 16], cycle: u64) -> ContentKey {
        let mut bytes = Vec::with_capacity(28);
        bytes.extend_from_slice(b"STCK");
        bytes.extend_from_slice(&spec_hash);
        bytes.extend_from_slice(&cycle.to_le_bytes());
        ContentKey::of(&bytes)
    }

    /// Looks up a cached checkpoint blob for `(spec_hash, cycle)`.
    ///
    /// Fail-closed: the returned blob's *embedded* configuration hash
    /// and cycle must echo the requested pair. A checksum-valid entry
    /// filed under the wrong key (a buggy writer, a copied cache file)
    /// would otherwise seed a resume of the wrong configuration — the
    /// one corruption the transport checksum cannot catch. Mismatches
    /// count as [`StoreStats::corrupt_discards`] and miss, so the
    /// caller recomputes from cycle 0 exactly like `resume` itself
    /// refuses a foreign checkpoint.
    pub fn get_checkpoint(&self, spec_hash: [u8; 16], cycle: u64) -> Option<Vec<u8>> {
        let bytes = self.get(Self::checkpoint_key(spec_hash, cycle))?;
        let embedded = synchro_tokens::Checkpoint::from_canonical_bytes(&bytes)
            .ok()
            .map(|c| (c.spec_hash(), c.cycle()));
        if embedded != Some((spec_hash, cycle)) {
            self.stats.corrupt_discards.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(bytes)
    }

    /// Caches a checkpoint's canonical bytes under `(spec_hash, cycle)`.
    pub fn put_checkpoint(&self, spec_hash: [u8; 16], cycle: u64, bytes: Vec<u8>) {
        self.put(Self::checkpoint_key(spec_hash, cycle), bytes);
    }

    fn entry_path(&self, key: ContentKey) -> Option<PathBuf> {
        Some(self.dir.as_ref()?.join(format!("{}.stres", key.to_hex())))
    }

    /// Disk entry layout (all integers LE):
    /// `magic(4) version(1) key(16) payload_len(8) checksum(8) payload`.
    fn write_disk(&self, key: ContentKey, bytes: &[u8]) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let Some(dir) = self.dir.as_ref() else {
            return;
        };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut blob = Vec::with_capacity(37 + bytes.len());
        blob.extend_from_slice(DISK_MAGIC);
        blob.push(DISK_VERSION);
        blob.extend_from_slice(&key.0);
        blob.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        blob.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
        blob.extend_from_slice(bytes);
        // Write-to-temp + rename so a crash mid-write can never leave a
        // plausible-looking half entry under the final name.
        let tmp = path.with_extension("tmp");
        let ok = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&blob))
            .and_then(|()| fs::rename(&tmp, &path));
        if ok.is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    fn read_disk(&self, key: ContentKey) -> Option<Vec<u8>> {
        let path = self.entry_path(key)?;
        let blob = fs::read(&path).ok()?;
        match Self::decode_entry(key, &blob) {
            Some(payload) => Some(payload),
            None => {
                // Corrupt: discard so the recomputed entry replaces it.
                let _ = fs::remove_file(&path);
                self.stats.corrupt_discards.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn decode_entry(key: ContentKey, blob: &[u8]) -> Option<Vec<u8>> {
        if blob.len() < 37 || &blob[..4] != DISK_MAGIC || blob[4] != DISK_VERSION {
            return None;
        }
        if blob[5..21] != key.0 {
            return None;
        }
        let len = u64::from_le_bytes(blob[21..29].try_into().unwrap());
        let checksum = u64::from_le_bytes(blob[29..37].try_into().unwrap());
        let payload = &blob[37..];
        if payload.len() as u64 != len || fnv1a64(payload) != checksum {
            return None;
        }
        Some(payload.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> ContentKey {
        ContentKey::of(&[n])
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("st-serve-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let store = ResultStore::in_memory(2);
        store.put(key(1), vec![1]);
        store.put(key(2), vec![2]);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(store.get(key(1)), Some(vec![1]));
        store.put(key(3), vec![3]);
        assert_eq!(store.mem_len(), 2);
        assert_eq!(store.get(key(2)), None, "victim was the LRU entry");
        assert_eq!(store.get(key(1)), Some(vec![1]));
        assert_eq!(store.get(key(3)), Some(vec![3]));
        assert_eq!(store.stats.evictions.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let store = ResultStore::in_memory(2);
        store.put(key(1), vec![1]);
        store.put(key(2), vec![2]);
        store.put(key(2), vec![2, 2]);
        assert_eq!(store.mem_len(), 2);
        assert_eq!(store.stats.evictions.load(Ordering::Relaxed), 0);
        assert_eq!(store.get(key(2)), Some(vec![2, 2]));
    }

    #[test]
    fn disk_layer_survives_memory_eviction_and_restart() {
        let dir = tempdir("persist");
        let payload = vec![7u8; 100];
        {
            let store = ResultStore::with_dir(1, &dir);
            store.put(key(1), payload.clone());
            store.put(key(2), vec![8]); // evicts key 1 from memory
            assert_eq!(
                store.get(key(1)).as_deref(),
                Some(&payload[..]),
                "served from disk after eviction"
            );
            assert_eq!(store.stats.disk_hits.load(Ordering::Relaxed), 1);
        }
        // "Restart": a fresh store over the same directory.
        let store = ResultStore::with_dir(4, &dir);
        assert_eq!(store.get(key(1)).as_deref(), Some(&payload[..]));
        assert_eq!(store.stats.disk_hits.load(Ordering::Relaxed), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_are_discarded_not_served() {
        st_conformance::witnesses!(["ST-STORE-011"]);
        let dir = tempdir("corrupt");
        let store = ResultStore::with_dir(1, &dir);
        store.put(key(1), b"golden".to_vec());
        store.put(key(2), vec![0]); // push key 1 out of memory
        let path = store.entry_path(key(1)).unwrap();

        // Flip one payload bit on disk.
        let mut blob = fs::read(&path).unwrap();
        *blob.last_mut().unwrap() ^= 1;
        fs::write(&path, &blob).unwrap();
        assert_eq!(store.get(key(1)), None, "checksum mismatch is a miss");
        assert!(!path.exists(), "corrupt entry deleted");
        assert_eq!(store.stats.corrupt_discards.load(Ordering::Relaxed), 1);

        // Recompute path: the rewritten entry serves again.
        store.put(key(1), b"golden".to_vec());
        store.put(key(3), vec![0]);
        assert_eq!(store.get(key(1)).as_deref(), Some(&b"golden"[..]));

        // Truncation is also a miss. (The get above promoted key 1
        // back into memory; push it out first.)
        store.put(key(3), vec![0]);
        let blob = fs::read(&path).unwrap();
        fs::write(&path, &blob[..10]).unwrap();
        assert_eq!(store.get(key(1)), None);

        // A full entry filed under the wrong name (key echo mismatch).
        store.put(key(4), b"other".to_vec());
        fs::copy(
            store.entry_path(key(4)).unwrap(),
            store.entry_path(key(5)).unwrap(),
        )
        .unwrap();
        store.put(key(6), vec![0]);
        store.put(key(7), vec![0]); // ensure key 5 is not in memory
        assert_eq!(store.get(key(5)), None, "key echo must match file name");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_cache_round_trips_engine_blobs() {
        use synchro_tokens::prelude::*;
        use synchro_tokens::scenarios::{pingpong_spec, MixerLogic};

        let spec = pingpong_spec();
        let builder = || {
            let mut b = SystemBuilder::new(spec.clone())
                .unwrap()
                .with_trace_limit(64);
            for i in 0..spec.sbs.len() {
                b = b.with_logic(SbId(i), MixerLogic::new(0x1000 * i as u64));
            }
            b
        };
        let mut sys = builder().build_backend(Backend::Compiled);
        sys.run_until_cycles(12, st_sim::time::SimDuration::us(3000))
            .unwrap();
        let ckpt = sys.checkpoint().unwrap();

        let store = ResultStore::in_memory(4);
        assert_eq!(store.get_checkpoint(ckpt.spec_hash(), ckpt.cycle()), None);
        store.put_checkpoint(ckpt.spec_hash(), ckpt.cycle(), ckpt.to_canonical_bytes());
        let bytes = store
            .get_checkpoint(ckpt.spec_hash(), ckpt.cycle())
            .expect("cached checkpoint");
        let cached = synchro_tokens::Checkpoint::from_canonical_bytes(&bytes).unwrap();
        assert!(AnySystem::resume(builder(), &cached).is_ok());

        // The key is domain-separated and cycle-sensitive: a different
        // cycle is a different entry, and the raw payload's result key
        // can never collide with a checkpoint key.
        assert_eq!(
            store.get_checkpoint(ckpt.spec_hash(), ckpt.cycle() + 1),
            None
        );
        assert_ne!(
            ResultStore::checkpoint_key(ckpt.spec_hash(), ckpt.cycle()),
            ContentKey::of(&bytes)
        );
    }

    #[test]
    fn checkpoint_lookup_fails_closed_on_embedded_identity_mismatch() {
        st_conformance::witnesses!(["ST-STORE-012", "ST-CKPT-007"]);
        use synchro_tokens::prelude::*;
        use synchro_tokens::scenarios::{pingpong_spec, MixerLogic};

        let spec = pingpong_spec();
        let mut b = SystemBuilder::new(spec.clone())
            .unwrap()
            .with_trace_limit(64);
        for i in 0..spec.sbs.len() {
            b = b.with_logic(SbId(i), MixerLogic::new(0x1000 * i as u64));
        }
        let mut sys = b.build_backend(Backend::Event);
        sys.run_until_cycles(12, st_sim::time::SimDuration::us(3000))
            .unwrap();
        let ckpt = sys.checkpoint().unwrap();
        let bytes = ckpt.to_canonical_bytes();

        let store = ResultStore::in_memory(8);
        // A checksum-valid blob filed under the wrong cycle: the store
        // transport layer cannot see the problem (put/get agree on the
        // key), only the embedded identity check can.
        store.put_checkpoint(ckpt.spec_hash(), ckpt.cycle() + 5, bytes.clone());
        assert_eq!(
            store.get_checkpoint(ckpt.spec_hash(), ckpt.cycle() + 5),
            None,
            "embedded cycle mismatch must miss, not serve"
        );
        assert_eq!(store.stats.corrupt_discards.load(Ordering::Relaxed), 1);

        // Same blob under a foreign configuration hash.
        let mut other = ckpt.spec_hash();
        other[0] ^= 0xFF;
        store.put_checkpoint(other, ckpt.cycle(), bytes.clone());
        assert_eq!(store.get_checkpoint(other, ckpt.cycle()), None);
        assert_eq!(store.stats.corrupt_discards.load(Ordering::Relaxed), 2);

        // Garbage that decodes as no checkpoint at all also misses.
        store.put_checkpoint(ckpt.spec_hash(), 99, b"not a checkpoint".to_vec());
        assert_eq!(store.get_checkpoint(ckpt.spec_hash(), 99), None);
        assert_eq!(store.stats.corrupt_discards.load(Ordering::Relaxed), 3);

        // The honestly-filed entry still serves.
        store.put_checkpoint(ckpt.spec_hash(), ckpt.cycle(), bytes.clone());
        assert_eq!(
            store.get_checkpoint(ckpt.spec_hash(), ckpt.cycle()),
            Some(bytes)
        );
        assert_eq!(store.stats.corrupt_discards.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn unwritable_dir_degrades_to_memory_only() {
        let store = ResultStore::with_dir(4, "/proc/definitely-not-writable/st-serve");
        store.put(key(1), vec![1]);
        assert_eq!(store.get(key(1)), Some(vec![1]), "memory front still works");
    }
}
