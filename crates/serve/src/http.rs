//! A std-only HTTP/1.1 front end over [`JobService`].
//!
//! Deliberately hand-rolled on [`std::net::TcpListener`]: no tokio, no
//! hyper, no serde — the crate must build offline with the workspace's
//! zero-external-dependency policy (`scripts/offline_dev.sh`). The
//! subset implemented is exactly what the service needs: one request
//! per connection (`Connection: close`), `Content-Length` bodies, and
//! a handful of fixed routes:
//!
//! | Route                | Method | Body / reply                           |
//! |----------------------|--------|----------------------------------------|
//! | `/submit`            | POST   | job JSON (+ optional `deadline_ms`) → `{status,id,key}` |
//! | `/status/<id>`       | GET    | `{id,status,key[,error][,witness]}`    |
//! | `/result/<id>`       | GET    | canonical result bytes (octet-stream)  |
//! | `/cancel/<id>`       | POST   | `{cancelled}`                          |
//! | `/healthz`           | GET    | `{status:"ok"}`                        |
//! | `/metrics`           | GET    | text counters/gauges                   |
//! | `/conformance`       | GET    | requirements registry + witness counts |
//! | `/shutdown`          | POST   | `{status:"shutting-down"}`, then stops |
//! | `/cluster`           | GET    | ring state, peers, per-peer counters   |
//! | `/peer/gossip`       | POST   | membership exchange (cluster nodes)    |
//! | `/peer/get/<key>`    | GET    | stored entry as a verified peer frame  |
//! | `/peer/put/<key>`    | POST   | replicate an entry (frame, fail-closed)|
//! | `/peer/execute`      | POST   | job JSON → `{status,id,key}`, no re-forward |
//! | `/peer/leave`        | POST   | `{id}` → drop the peer from membership |
//!
//! Connections are served sequentially by one acceptor thread; request
//! handling never blocks on job execution (that is the worker pool's
//! business), so the accept loop stays responsive even while long
//! campaigns run.

use crate::json::Json;
use crate::service::{JobService, Submission};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const MAX_HEAD: usize = 16 * 1024;
const MAX_BODY: usize = 8 * 1024 * 1024;
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request: method, path, body.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Reads one HTTP/1.1 request off `stream`.
fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || !path.starts_with('/') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad request line",
        ));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

struct Response {
    code: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn json(code: u16, v: &Json) -> Response {
        Response {
            code,
            content_type: "application/json",
            body: v.encode().into_bytes(),
        }
    }

    fn error(code: u16, msg: &str) -> Response {
        Self::json(code, &Json::obj([("error", Json::str(msg))]))
    }

    fn write(self, stream: &mut TcpStream) -> io::Result<()> {
        let reason = match self.code {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            503 => "Service Unavailable",
            _ => "Unknown",
        };
        let head = format!(
            "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.code,
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

fn handle(service: &JobService, req: &Request, stop: &AtomicBool) -> Response {
    let route = (req.method.as_str(), req.path.as_str());
    match route {
        ("GET", "/healthz") => Response::json(200, &Json::obj([("status", Json::str("ok"))])),
        ("GET", "/metrics") => Response {
            code: 200,
            content_type: "text/plain; charset=utf-8",
            body: service.metrics_text().into_bytes(),
        },
        ("GET", "/conformance") => handle_conformance(service),
        ("GET", "/cluster") => handle_cluster(service),
        ("POST", "/peer/gossip") => handle_peer_gossip(service, &req.body),
        ("POST", "/peer/execute") => handle_peer_execute(service, &req.body),
        ("POST", "/peer/leave") => handle_peer_leave(service, &req.body),
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::Release);
            Response::json(200, &Json::obj([("status", Json::str("shutting-down"))]))
        }
        ("POST", "/submit") => handle_submit(service, &req.body),
        (method, path) => {
            if let Some(hex) = path.strip_prefix("/peer/get/") {
                if method != "GET" {
                    return Response::error(405, "use GET");
                }
                return handle_peer_get(service, hex);
            }
            if let Some(hex) = path.strip_prefix("/peer/put/") {
                if method != "POST" {
                    return Response::error(405, "use POST");
                }
                return handle_peer_put(service, hex, &req.body);
            }
            if let Some(id) = path.strip_prefix("/status/").and_then(|s| s.parse().ok()) {
                if method != "GET" {
                    return Response::error(405, "use GET");
                }
                return handle_status(service, id);
            }
            if let Some(id) = path.strip_prefix("/result/").and_then(|s| s.parse().ok()) {
                if method != "GET" {
                    return Response::error(405, "use GET");
                }
                return handle_result(service, id);
            }
            if let Some(id) = path.strip_prefix("/cancel/").and_then(|s| s.parse().ok()) {
                if method != "POST" {
                    return Response::error(405, "use POST");
                }
                let cancelled = service.cancel(id);
                return Response::json(200, &Json::obj([("cancelled", Json::Bool(cancelled))]));
            }
            Response::error(404, "no such route")
        }
    }
}

fn handle_submit(service: &JobService, body: &[u8]) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body must be UTF-8 JSON"),
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let request = match crate::job::JobRequest::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &e),
    };
    if let Err(e) = request.validate() {
        return Response::error(400, &e);
    }
    let deadline = parsed
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis);
    let (status, id) = match service.submit(request, deadline) {
        Submission::Cached(id) => ("cached", id),
        Submission::Coalesced(id) => ("coalesced", id),
        Submission::Queued(id) => ("queued", id),
        Submission::QueueFull => return Response::error(503, "queue full, retry later"),
    };
    let key = service
        .status(id)
        .map(|(_, k, _)| k.to_hex())
        .unwrap_or_default();
    Response::json(
        202,
        &Json::obj([
            ("status", Json::str(status)),
            ("id", Json::UInt(id)),
            ("key", Json::Str(key)),
        ]),
    )
}

fn handle_status(service: &JobService, id: u64) -> Response {
    match service.status(id) {
        None => Response::error(404, "unknown job"),
        Some((status, key, error)) => {
            let mut fields = vec![
                ("id".to_owned(), Json::UInt(id)),
                ("status".to_owned(), Json::str(status.name())),
                ("key".to_owned(), Json::Str(key.to_hex())),
            ];
            if let Some(e) = error {
                fields.push(("error".to_owned(), Json::Str(e)));
            }
            if let Some(w) = service.witness(id) {
                fields.push(("witness".to_owned(), witness_json(&w)));
            }
            Response::json(200, &Json::Obj(fields))
        }
    }
}

/// The wire form of a witness record. Chain values are 16-hex-digit
/// strings (JSON numbers lose u64 precision past 2^53); everything a
/// client needs to recompute `chain = mix64(prev ^ fnv1a64(canonical))`
/// offline is present.
fn witness_json(w: &st_conformance::WitnessRecord) -> Json {
    Json::obj([
        ("seq", Json::UInt(w.seq)),
        (
            "requirements",
            Json::Arr(w.ids.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        ("config", Json::Str(st_conformance::key_hex(w.config))),
        ("result", Json::Str(st_conformance::key_hex(w.result))),
        ("prev", Json::Str(format!("{:016x}", w.prev))),
        ("chain", Json::Str(format!("{:016x}", w.chain))),
    ])
}

/// `GET /conformance`: the full builtin requirements registry (id,
/// level, title, text, tags, static floor) joined with this service
/// instance's runtime witness tallies, plus the log head and length.
fn handle_conformance(service: &JobService) -> Response {
    let registry = st_conformance::Registry::builtin();
    let (head, len, counts) = service.witness_summary();
    let count_of = |id: &str| {
        counts
            .iter()
            .find(|(cid, _)| cid == id)
            .map_or(0, |&(_, n)| n)
    };
    let requirements: Vec<Json> = registry
        .requirements
        .iter()
        .map(|r| {
            Json::obj([
                ("id", Json::Str(r.id.clone())),
                ("level", Json::str(r.level.name())),
                ("title", Json::Str(r.title.clone())),
                ("text", Json::Str(r.text.clone())),
                (
                    "tags",
                    Json::Arr(r.tags.iter().map(|t| Json::Str(t.clone())).collect()),
                ),
                ("min_witnesses", Json::UInt(r.min_witnesses)),
                ("witnessed", Json::UInt(count_of(&r.id))),
            ])
        })
        .collect();
    Response::json(
        200,
        &Json::obj([
            ("registry_version", Json::UInt(registry.version)),
            (
                "registry_hash",
                Json::Str(st_conformance::key_hex(registry.content_hash())),
            ),
            (
                "witness_genesis",
                Json::Str(format!("{:016x}", st_conformance::witness_genesis())),
            ),
            ("witness_head", Json::Str(format!("{head:016x}"))),
            ("witness_records", Json::UInt(len)),
            ("requirements", Json::Arr(requirements)),
        ]),
    )
}

/// `GET /cluster`: ring/membership/counter snapshot, or
/// `{"clustered": false}` on a standalone node.
fn handle_cluster(service: &JobService) -> Response {
    match service.cluster() {
        Some(cluster) => Response::json(200, &cluster.cluster_json()),
        None => Response::json(200, &Json::obj([("clustered", Json::Bool(false))])),
    }
}

/// `POST /peer/gossip`: fold the sender's membership into ours, reply
/// with our snapshot. Only meaningful on clustered nodes.
fn handle_peer_gossip(service: &JobService, body: &[u8]) -> Response {
    let Some(cluster) = service.cluster() else {
        return Response::error(409, "node is not clustered");
    };
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body must be UTF-8 JSON"),
    };
    let payload = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    Response::json(200, &cluster.handle_gossip(&payload))
}

/// `POST /peer/leave`: a peer's clean goodbye — drop it immediately.
fn handle_peer_leave(service: &JobService, body: &[u8]) -> Response {
    let Some(cluster) = service.cluster() else {
        return Response::error(409, "node is not clustered");
    };
    let id = std::str::from_utf8(body)
        .ok()
        .and_then(|t| Json::parse(t).ok())
        .and_then(|v| v.get("id").and_then(Json::as_str).map(str::to_owned));
    match id {
        Some(id) => {
            let removed = cluster.handle_leave(&id);
            Response::json(200, &Json::obj([("removed", Json::Bool(removed))]))
        }
        None => Response::error(400, "body must be {\"id\": \"...\"}"),
    }
}

/// `GET /peer/get/<keyhex>`: the stored entry wrapped in a verified
/// peer frame, carrying this node's witness record for the key when an
/// execution here minted one. Works unclustered too — the store is the
/// store.
fn handle_peer_get(service: &JobService, hex: &str) -> Response {
    let Some(key) = crate::hash::ContentKey::from_hex(hex) else {
        return Response::error(400, "bad content key");
    };
    match service.store.get(key) {
        None => Response::error(404, "miss"),
        Some(bytes) => {
            let frame = st_fabric::Frame {
                key: key.0,
                payload: bytes,
                witness: service.witness_for_key(key),
            };
            Response {
                code: 200,
                content_type: "application/octet-stream",
                body: frame.encode(),
            }
        }
    }
}

/// `POST /peer/put/<keyhex>`: store a replicated entry. Fail-closed —
/// the frame must verify against the key in the path (key echo,
/// payload checksum, witness consistency) before a byte is stored;
/// failures count into the store's corrupt-discard ledger and answer
/// 400 (ST-CLU-015).
fn handle_peer_put(service: &JobService, hex: &str, body: &[u8]) -> Response {
    let Some(key) = crate::hash::ContentKey::from_hex(hex) else {
        return Response::error(400, "bad content key");
    };
    match crate::cluster::decode_verified(body, key) {
        Ok(frame) => {
            service.store.put(key, frame.payload);
            Response::json(200, &Json::obj([("stored", Json::Bool(true))]))
        }
        Err(e) => {
            service
                .store
                .stats
                .corrupt_discards
                .fetch_add(1, Ordering::Relaxed);
            Response::error(400, &e)
        }
    }
}

/// `POST /peer/execute`: a forwarded job. Identical wire shape to
/// `/submit`, but the job is pinned to this node — it will execute
/// here, never be re-forwarded, which is what makes forwarding
/// loop-free under transient ring disagreement.
fn handle_peer_execute(service: &JobService, body: &[u8]) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body must be UTF-8 JSON"),
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let request = match crate::job::JobRequest::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &e),
    };
    if let Err(e) = request.validate() {
        return Response::error(400, &e);
    }
    let deadline = parsed
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis);
    let (status, id) = match service.submit_peer(request, deadline) {
        Submission::Cached(id) => ("cached", id),
        Submission::Coalesced(id) => ("coalesced", id),
        Submission::Queued(id) => ("queued", id),
        Submission::QueueFull => return Response::error(503, "queue full, retry later"),
    };
    let key = service
        .status(id)
        .map(|(_, k, _)| k.to_hex())
        .unwrap_or_default();
    Response::json(
        202,
        &Json::obj([
            ("status", Json::str(status)),
            ("id", Json::UInt(id)),
            ("key", Json::Str(key)),
        ]),
    )
}

fn handle_result(service: &JobService, id: u64) -> Response {
    match service.status(id) {
        None => Response::error(404, "unknown job"),
        Some((status, _, _)) if !status.is_terminal() => {
            Response::error(409, &format!("job is {}", status.name()))
        }
        Some(_) => match service.result(id) {
            Some(bytes) => Response {
                code: 200,
                content_type: "application/octet-stream",
                body: bytes,
            },
            None => Response::error(409, "job did not produce a result"),
        },
    }
}

/// A running server: acceptor thread + shared service.
pub struct Server {
    addr: SocketAddr,
    service: Arc<JobService>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving on a background acceptor thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, service: Arc<JobService>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("st-serve-acceptor".to_owned())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(mut stream) = stream else { continue };
                        let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                        let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                        let response = match read_request(&mut stream) {
                            Ok(req) => handle(&service, &req, &stop),
                            Err(e) => Response::error(400, &e.to_string()),
                        };
                        let _ = response.write(&mut stream);
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                    }
                })?
        };
        Ok(Server {
            addr: local,
            service,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the server.
    pub fn service(&self) -> &Arc<JobService> {
        &self.service
    }

    /// Blocks until the acceptor exits (i.e. until a client POSTs
    /// `/shutdown`), then stops the worker pool. The foreground-server
    /// mode of the CLI.
    pub fn join_acceptor(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.stop.store(true, Ordering::Release);
        self.service.shutdown();
    }

    /// Stops accepting, joins the acceptor, and shuts the worker pool
    /// down. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock a blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.service.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One-shot blocking HTTP client used by the CLI, the tests and the
/// smoke script: sends `method path` with `body`, returns
/// `(status code, body bytes)`.
///
/// # Errors
///
/// Propagates connect/read/write failures.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = find_head_end(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no response head"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let code: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((code, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn serve_manual() -> Server {
        let svc = JobService::start(ServiceConfig {
            workers: 0,
            ..ServiceConfig::default()
        });
        Server::bind("127.0.0.1:0", svc).expect("bind ephemeral")
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let server = serve_manual();
        let (code, body) = request(server.addr(), "GET", "/healthz", b"").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, br#"{"status":"ok"}"#);
        let (code, body) = request(server.addr(), "GET", "/metrics", b"").unwrap();
        assert_eq!(code, 200);
        assert!(String::from_utf8(body)
            .unwrap()
            .contains("st_serve_queue_depth"));
    }

    #[test]
    fn unknown_routes_and_bad_bodies_are_client_errors() {
        let server = serve_manual();
        let (code, _) = request(server.addr(), "GET", "/nope", b"").unwrap();
        assert_eq!(code, 404);
        let (code, _) = request(server.addr(), "POST", "/submit", b"not json").unwrap();
        assert_eq!(code, 400);
        let (code, _) = request(server.addr(), "POST", "/submit", br#"{"type":"warp"}"#).unwrap();
        assert_eq!(code, 400);
        let (code, _) = request(server.addr(), "GET", "/status/999", b"").unwrap();
        assert_eq!(code, 404);
        let (code, _) = request(server.addr(), "POST", "/status/999", b"").unwrap();
        assert_eq!(code, 405);
    }

    #[test]
    fn shutdown_route_stops_the_acceptor() {
        let mut server = serve_manual();
        let (code, _) = request(server.addr(), "POST", "/shutdown", b"").unwrap();
        assert_eq!(code, 200);
        server.shutdown(); // must be idempotent with the route
        assert!(
            request(server.addr(), "GET", "/healthz", b"").is_err(),
            "acceptor is gone"
        );
    }
}
