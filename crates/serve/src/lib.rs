//! # st-serve — a campaign service with content-addressed result caching
//!
//! Every campaign this workspace can run — seed sweeps, §4.2 frequency
//! shmoos, chaos fault-injection — is *deterministic*: its result is a
//! pure function of (scenario, seeds, config). That is the paper's
//! central claim turned into a systems property, and this crate cashes
//! it in: if the result is a pure function of the request, then the
//! request's canonical bytes are a complete cache key, a cached result
//! never needs revalidation, and two concurrent identical submissions
//! can share one execution without ever comparing outputs.
//!
//! The pieces:
//!
//! * [`hash`] — stable FNV-1a/splitmix64 content keys (no
//!   `DefaultHasher`: keys persist on disk across Rust releases),
//! * [`json`] — a deterministic, dependency-free JSON codec for the
//!   wire protocol (`u64`-exact: seeds survive beyond 2⁵³),
//! * [`job`] — the request/result model, canonical encodings, and the
//!   executor over [`synchro_tokens::campaign::run_jobs`] /
//!   [`st_testkit`] entry points,
//! * [`store`] — the LRU + checksummed-disk result store,
//! * [`service`] — bounded queue, worker pool, coalescing, deadlines,
//!   cancellation, metrics,
//! * [`http`] — a std-only HTTP/1.1 front end (no tokio/hyper/serde:
//!   offline builds stay dependency-free),
//! * [`cluster`] — the multi-node fabric over `st-fabric`'s pure
//!   primitives: consistent-hash routing, replication, gossip
//!   membership, and the fail-closed peer protocol.
//!
//! ## Example
//!
//! ```
//! use st_serve::job::{JobRequest, Scenario, SimRequest};
//! use st_serve::service::{JobService, ServiceConfig, Submission};
//! use st_serve::http::{request, Server};
//! use synchro_tokens::Backend;
//!
//! # fn main() -> std::io::Result<()> {
//! let service = JobService::start(ServiceConfig::default());
//! let mut server = Server::bind("127.0.0.1:0", service)?;
//! let (code, body) = request(server.addr(), "GET", "/healthz", b"")?;
//! assert_eq!((code, body.as_slice()), (200, &br#"{"status":"ok"}"#[..]));
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod hash;
pub mod http;
pub mod job;
pub mod json;
pub mod service;
pub mod store;

pub use cluster::{Cluster, ClusterConfig};
pub use hash::ContentKey;
pub use http::Server;
pub use job::{run_sim_once, JobRequest, JobResult, Scenario};
pub use json::Json;
pub use service::{JobService, JobStatus, ServiceConfig, Submission};
pub use store::ResultStore;
