//! `st_serve` — serve campaigns over HTTP, or talk to a running server.
//!
//! ```text
//! st_serve serve [ADDR]                 # default 127.0.0.1:7878
//! st_serve submit ADDR JSON             # POST /submit, print reply
//! st_serve status ADDR ID               # GET /status/<id>
//! st_serve result ADDR ID OUT_FILE      # GET /result/<id> into a file
//! st_serve cancel ADDR ID               # POST /cancel/<id>
//! st_serve metrics ADDR                 # GET /metrics
//! ```
//!
//! Environment (documented in EXPERIMENTS.md): `ST_SERVE_THREADS` sets
//! the worker count (clamp-and-warn like `ST_THREADS`),
//! `ST_SERVE_CACHE_DIR` enables the persistent result cache.

use st_serve::http::{request, Server};
use st_serve::service::{JobService, ServiceConfig};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: st_serve serve [ADDR]\n\
         \x20      st_serve submit ADDR JSON\n\
         \x20      st_serve status ADDR ID\n\
         \x20      st_serve result ADDR ID OUT_FILE\n\
         \x20      st_serve cancel ADDR ID\n\
         \x20      st_serve metrics ADDR"
    );
    ExitCode::from(2)
}

fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

fn one_shot(addr: &str, method: &str, path: &str, body: &[u8]) -> ExitCode {
    let Some(addr) = resolve(addr) else {
        eprintln!("st_serve: cannot resolve address {addr:?}");
        return ExitCode::FAILURE;
    };
    match request(addr, method, path, body) {
        Ok((code, body)) => {
            println!("{}", String::from_utf8_lossy(&body));
            if (200..300).contains(&code) {
                ExitCode::SUCCESS
            } else {
                eprintln!("st_serve: server answered HTTP {code}");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("st_serve: request failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve(addr: &str) -> ExitCode {
    let config = ServiceConfig::default().from_env();
    let service = JobService::start(config);
    let mut server = match Server::bind(addr, service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("st_serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The smoke script and tests key off this exact line.
    println!("listening on {}", server.addr());
    let cfg = server.service().config().clone();
    eprintln!(
        "workers={} threads/job={} queue_cap={} cache_entries={} cache_dir={}",
        cfg.workers,
        cfg.threads_per_job,
        cfg.queue_cap,
        cfg.cache_entries,
        cfg.cache_dir
            .as_deref()
            .map_or("<memory only>".to_owned(), |d| d.display().to_string()),
    );
    // Serve until POST /shutdown stops the acceptor.
    server.join_acceptor();
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["serve"] => serve("127.0.0.1:7878"),
        ["serve", addr] => serve(addr),
        ["submit", addr, json] => one_shot(addr, "POST", "/submit", json.as_bytes()),
        ["status", addr, id] => one_shot(addr, "GET", &format!("/status/{id}"), b""),
        ["cancel", addr, id] => one_shot(addr, "POST", &format!("/cancel/{id}"), b""),
        ["metrics", addr] => one_shot(addr, "GET", "/metrics", b""),
        ["result", addr, id, out] => {
            let Some(sock) = resolve(addr) else {
                eprintln!("st_serve: cannot resolve address {addr:?}");
                return ExitCode::FAILURE;
            };
            match request(sock, "GET", &format!("/result/{id}"), b"") {
                Ok((200, body)) => {
                    if let Err(e) = std::fs::write(out, &body) {
                        eprintln!("st_serve: cannot write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {} bytes to {out}", body.len());
                    ExitCode::SUCCESS
                }
                Ok((code, body)) => {
                    eprintln!("st_serve: HTTP {code}: {}", String::from_utf8_lossy(&body));
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("st_serve: request failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
