//! `st_serve` — serve campaigns over HTTP, or talk to a running server.
//!
//! ```text
//! st_serve serve [ADDR] [--node-id ID] [--peers HOST:PORT,...]
//! st_serve submit ADDR JSON             # POST /submit, print reply
//! st_serve status ADDR ID               # GET /status/<id>
//! st_serve result ADDR ID OUT_FILE      # GET /result/<id> into a file
//! st_serve cancel ADDR ID               # POST /cancel/<id>
//! st_serve metrics ADDR                 # GET /metrics
//! st_serve cluster ADDR                 # GET /cluster
//! ```
//!
//! Environment (documented in EXPERIMENTS.md): `ST_SERVE_THREADS` sets
//! the worker count (clamp-and-warn like `ST_THREADS`),
//! `ST_SERVE_CACHE_DIR` enables the persistent result cache, and
//! `ST_PEERS` lists cluster seed peers (same contract as `--peers`,
//! which wins when both are given; setting either opts the node into
//! cluster mode).

use st_serve::cluster::{parse_peers, peers_from_env, Cluster, ClusterConfig};
use st_serve::http::{request, Server};
use st_serve::service::{JobService, ServiceConfig};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: st_serve serve [ADDR] [--node-id ID] [--peers HOST:PORT,...]\n\
         \x20      st_serve submit ADDR JSON\n\
         \x20      st_serve status ADDR ID\n\
         \x20      st_serve result ADDR ID OUT_FILE\n\
         \x20      st_serve cancel ADDR ID\n\
         \x20      st_serve metrics ADDR\n\
         \x20      st_serve cluster ADDR"
    );
    ExitCode::from(2)
}

/// The `serve` subcommand's arguments: an optional positional address
/// plus the cluster flags, in any order.
struct ServeArgs {
    addr: String,
    node_id: Option<String>,
    /// `Some` when `--peers` was given (even empty after validation) —
    /// presence opts into cluster mode, like a set `ST_PEERS`.
    peers: Option<Vec<String>>,
}

fn parse_serve_args(args: &[&str]) -> Result<ServeArgs, String> {
    let mut out = ServeArgs {
        addr: "127.0.0.1:7878".to_owned(),
        node_id: None,
        peers: None,
    };
    let mut positional = 0usize;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--node-id" => {
                let v = it.next().ok_or("--node-id needs a value")?;
                out.node_id = Some((*v).to_owned());
            }
            "--peers" => {
                let v = it.next().ok_or("--peers needs a value")?;
                out.peers = Some(parse_peers(v));
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag {arg:?}")),
            _ => {
                positional += 1;
                if positional > 1 {
                    return Err(format!("unexpected argument {arg:?}"));
                }
                out.addr = arg.to_owned();
            }
        }
    }
    Ok(out)
}

fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

fn one_shot(addr: &str, method: &str, path: &str, body: &[u8]) -> ExitCode {
    let Some(addr) = resolve(addr) else {
        eprintln!("st_serve: cannot resolve address {addr:?}");
        return ExitCode::FAILURE;
    };
    match request(addr, method, path, body) {
        Ok((code, body)) => {
            println!("{}", String::from_utf8_lossy(&body));
            if (200..300).contains(&code) {
                ExitCode::SUCCESS
            } else {
                eprintln!("st_serve: server answered HTTP {code}");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("st_serve: request failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve(args: ServeArgs) -> ExitCode {
    let config = ServiceConfig::default().from_env();
    let service = JobService::start(config);
    let mut server = match Server::bind(&args.addr, service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("st_serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // The smoke script and tests key off this exact line.
    println!("listening on {}", server.addr());
    // Cluster mode: opted into by --node-id, --peers, or a set
    // ST_PEERS (--peers wins over the environment when both appear).
    let peers = args.peers.or_else(|| peers_from_env("ST_PEERS"));
    let clustered = args.node_id.is_some() || peers.is_some();
    if clustered {
        let cluster_config = ClusterConfig {
            node_id: args
                .node_id
                .unwrap_or_else(|| format!("node@{}", server.addr())),
            seeds: peers.unwrap_or_default(),
            ..ClusterConfig::default()
        };
        eprintln!(
            "cluster node_id={} replicas={} seeds={:?}",
            cluster_config.node_id, cluster_config.replicas, cluster_config.seeds
        );
        let cluster = Cluster::start(cluster_config, server.addr(), server.service());
        server.service().attach_cluster(cluster);
    }
    let cfg = server.service().config().clone();
    eprintln!(
        "workers={} threads/job={} queue_cap={} cache_entries={} cache_dir={}",
        cfg.workers,
        cfg.threads_per_job,
        cfg.queue_cap,
        cfg.cache_entries,
        cfg.cache_dir
            .as_deref()
            .map_or("<memory only>".to_owned(), |d| d.display().to_string()),
    );
    // Serve until POST /shutdown stops the acceptor.
    server.join_acceptor();
    // A clustered node leaves cleanly: hand memory-resident entries to
    // their new owners and tell the peers goodbye.
    if let Some(cluster) = server.service().cluster() {
        let handed = cluster.leave_and_handoff();
        eprintln!("cluster leave: handed off {handed} entries");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["serve", rest @ ..] => match parse_serve_args(rest) {
            Ok(args) => serve(args),
            Err(e) => {
                eprintln!("st_serve: {e}");
                usage()
            }
        },
        ["submit", addr, json] => one_shot(addr, "POST", "/submit", json.as_bytes()),
        ["status", addr, id] => one_shot(addr, "GET", &format!("/status/{id}"), b""),
        ["cancel", addr, id] => one_shot(addr, "POST", &format!("/cancel/{id}"), b""),
        ["metrics", addr] => one_shot(addr, "GET", "/metrics", b""),
        ["cluster", addr] => one_shot(addr, "GET", "/cluster", b""),
        ["result", addr, id, out] => {
            let Some(sock) = resolve(addr) else {
                eprintln!("st_serve: cannot resolve address {addr:?}");
                return ExitCode::FAILURE;
            };
            match request(sock, "GET", &format!("/result/{id}"), b"") {
                Ok((200, body)) => {
                    if let Err(e) = std::fs::write(out, &body) {
                        eprintln!("st_serve: cannot write {out}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {} bytes to {out}", body.len());
                    ExitCode::SUCCESS
                }
                Ok((code, body)) => {
                    eprintln!("st_serve: HTTP {code}: {}", String::from_utf8_lossy(&body));
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("st_serve: request failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_args_default_then_positional_then_flags_in_any_order() {
        let d = parse_serve_args(&[]).unwrap();
        assert_eq!(d.addr, "127.0.0.1:7878");
        assert_eq!(d.node_id, None);
        assert_eq!(d.peers, None, "no flags: not clustered");

        let a = parse_serve_args(&["0.0.0.0:9000"]).unwrap();
        assert_eq!(a.addr, "0.0.0.0:9000");

        let b =
            parse_serve_args(&["--peers", "a:1,b:2", "127.0.0.1:0", "--node-id", "n1"]).unwrap();
        assert_eq!(b.addr, "127.0.0.1:0");
        assert_eq!(b.node_id.as_deref(), Some("n1"));
        assert_eq!(b.peers, Some(vec!["a:1".to_owned(), "b:2".to_owned()]));
    }

    #[test]
    fn serve_args_reject_unknown_flags_missing_values_and_extra_positionals() {
        assert!(parse_serve_args(&["--bogus"]).is_err());
        assert!(parse_serve_args(&["--node-id"]).is_err());
        assert!(parse_serve_args(&["--peers"]).is_err());
        assert!(parse_serve_args(&["a:1", "b:2"]).is_err());
    }

    #[test]
    fn serve_args_peers_flag_applies_the_knob_validation_contract() {
        // Malformed/duplicate entries are dropped by the shared peer
        // parser, but the flag's *presence* survives even when nothing
        // does — an explicitly-given knob opts into clustering.
        let a = parse_serve_args(&["--peers", "garbage,also bad"]).unwrap();
        assert_eq!(a.peers, Some(vec![]));
        let b = parse_serve_args(&["--peers", " x:1 ,x:1,,y:2 "]).unwrap();
        assert_eq!(b.peers, Some(vec!["x:1".to_owned(), "y:2".to_owned()]));
    }
}
