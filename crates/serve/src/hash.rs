//! Content addressing: stable, hand-rolled hashing of canonical bytes.
//!
//! Cache keys must be stable across processes, machines and Rust
//! releases — the disk layer of [`crate::store::ResultStore`] persists
//! them — which rules out `DefaultHasher` (its algorithm is
//! unspecified). The 128-bit [`ContentKey`] is built from two
//! independent FNV-1a passes (different offset bases, length folded
//! in) finished with a splitmix64-style avalanche, all integer
//! arithmetic, no dependencies.

use std::fmt;

/// 64-bit FNV-1a over `bytes` (offset basis `0xcbf29ce484222325`,
/// prime `0x100000001b3`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a64_seeded(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: full-avalanche bit mixing.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A 128-bit content address derived from canonical request bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey(pub [u8; 16]);

impl ContentKey {
    /// Hashes `bytes` into a key. Two seeds make accidental 64-bit
    /// collisions across a campaign corpus irrelevant in practice; the
    /// length fold separates extensions (`ab` + `c` vs `a` + `bc`
    /// style ambiguities cannot arise from canonical encodings anyway,
    /// but defence is free).
    pub fn of(bytes: &[u8]) -> Self {
        let a = mix64(fnv1a64(bytes) ^ (bytes.len() as u64));
        let b = mix64(
            fnv1a64_seeded(0xcbf2_9ce4_8422_2325 ^ 0x9e37_79b9_7f4a_7c15, bytes)
                .wrapping_add(bytes.len() as u64),
        );
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&a.to_le_bytes());
        k[8..].copy_from_slice(&b.to_le_bytes());
        ContentKey(k)
    }

    /// Lower-case hex rendering (32 chars) — the wire/file-name form.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses the 32-char hex form.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.as_bytes();
        if s.len() != 32 {
            return None;
        }
        let nibble = |c: u8| -> Option<u8> {
            match c {
                b'0'..=b'9' => Some(c - b'0'),
                b'a'..=b'f' => Some(c - b'a' + 10),
                b'A'..=b'F' => Some(c - b'A' + 10),
                _ => None,
            }
        };
        let mut k = [0u8; 16];
        for (i, pair) in s.chunks_exact(2).enumerate() {
            k[i] = nibble(pair[0])? << 4 | nibble(pair[1])?;
        }
        Some(ContentKey(k))
    }
}

impl fmt::Display for ContentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a/64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn keys_are_stable_and_sensitive() {
        let a = ContentKey::of(b"job one");
        assert_eq!(a, ContentKey::of(b"job one"), "pure function of bytes");
        assert_ne!(a, ContentKey::of(b"job two"));
        assert_ne!(a, ContentKey::of(b"job one "), "length matters");
        // Pin the value: disk caches written by one build must be
        // readable by the next.
        assert_eq!(
            ContentKey::of(b"job one").to_hex(),
            ContentKey::of(b"job one").to_string()
        );
    }

    #[test]
    fn hex_round_trips() {
        let k = ContentKey::of(b"round trip me");
        assert_eq!(ContentKey::from_hex(&k.to_hex()), Some(k));
        assert_eq!(ContentKey::from_hex(&k.to_hex().to_uppercase()), Some(k));
        assert_eq!(ContentKey::from_hex("tooshort"), None);
        assert_eq!(ContentKey::from_hex(&"g".repeat(32)), None);
    }
}
