//! Cluster fabric: the st-serve side of the multi-node campaign
//! cluster.
//!
//! `st-fabric` holds the pure pieces (ring, membership, wire frame);
//! this module owns everything with a socket or a thread in it:
//!
//! * **Routing** ([`Cluster::try_remote`]) — called from the worker's
//!   `run_job` path, never the single-threaded acceptor, so forwarding
//!   can block on a peer without stalling request intake. A non-owner
//!   probes the owner's cache (`/peer/get`), falls back to remote
//!   execution (`/peer/execute` + status polling), then to replica
//!   probes, and finally *steals* the job — executes it locally —
//!   when the owner is unreachable. Determinism makes every fallback
//!   byte-identical to the path it replaces (ST-CLU-014).
//! * **Replication** ([`Cluster::replicate`]) — after a local
//!   execution the result is pushed to the key's successor nodes in
//!   [`Frame`] envelopes; receivers verify fail-closed (ST-CLU-015).
//! * **Gossip** ([`Cluster::gossip_round`]) — periodic peer exchange
//!   of membership (PALS-style neighbourhood gossip: no master), with
//!   suspicion/eviction driven by [`st_fabric::Membership`].
//! * **Leave** ([`Cluster::leave_and_handoff`]) — a clean departure
//!   hands memory-resident entries to their new owners and tells the
//!   peers goodbye; disk-resident or missed entries are safe to drop
//!   because determinism recomputes identical bytes on demand.
//!
//! Configuration comes from `--peers`/`--node-id` or the `ST_PEERS`
//! environment knob, with the same tolerate-and-warn contract as the
//! `*_THREADS` variables: malformed entries are dropped loudly, never
//! silently obeyed.

use crate::hash::ContentKey;
use crate::http::request;
use crate::job::JobRequest;
use crate::json::Json;
use crate::service::JobService;
use st_conformance::WitnessRecord;
use st_fabric::{Frame, HashRing, Membership, NodeId, Timeouts};
use std::collections::BTreeMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use synchro_tokens::CancelToken;

/// How long a forwarder waits for a remote execution before stealing
/// the job, when the submission carries no deadline of its own.
const REMOTE_WAIT_DEFAULT: Duration = Duration::from_secs(120);
/// Poll cadence against the owner's `/status` during remote execution.
const REMOTE_POLL: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// Peer-list parsing: the ST_PEERS / --peers contract
// ---------------------------------------------------------------------------

/// Splits a peer list into accepted `host:port` entries and rejected
/// raw entries. The pure core of [`parse_peers`], separated so the
/// corner cases test without stderr capture:
///
/// * entries are comma-separated and whitespace-trimmed,
/// * empty entries (from `"a,,b"`, trailing commas, or an all-blank
///   list) vanish silently — they carry no intent to warn about,
/// * an entry must be `host:port` with a non-empty host and a valid
///   decimal port (1..=65535); anything else is rejected,
/// * duplicates keep their first occurrence only.
pub fn split_peers(src: &str) -> (Vec<String>, Vec<String>) {
    let mut accepted: Vec<String> = Vec::new();
    let mut rejected = Vec::new();
    for raw in src.split(',') {
        let entry = raw.trim();
        if entry.is_empty() {
            continue;
        }
        let valid = entry.rsplit_once(':').is_some_and(|(host, port)| {
            !host.is_empty() && port.parse::<u16>().map(|p| p > 0).unwrap_or(false)
        });
        if !valid {
            rejected.push(entry.to_owned());
        } else if !accepted.iter().any(|a| a == entry) {
            accepted.push(entry.to_owned());
        }
    }
    (accepted, rejected)
}

/// Parses a `--peers`/`ST_PEERS` list with the workspace's
/// tolerate-and-warn knob policy: valid entries are kept (deduplicated,
/// order preserved), malformed ones are dropped with a stderr warning
/// naming the rejected value — a silently ignored peer is worse than a
/// noisy one.
pub fn parse_peers(src: &str) -> Vec<String> {
    let (accepted, rejected) = split_peers(src);
    for bad in rejected {
        eprintln!("warning: ignoring malformed peer {bad:?} (want host:port)");
    }
    accepted
}

/// Resolves the `ST_PEERS` environment knob: unset returns `None`
/// (the caller decides whether to cluster at all); set — even to an
/// empty or entirely malformed list — returns `Some` with whatever
/// survived [`parse_peers`], so an explicitly-set knob always opts the
/// node into cluster mode.
pub fn peers_from_env(var: &str) -> Option<Vec<String>> {
    std::env::var(var).ok().map(|v| parse_peers(&v))
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Cluster tunables, resolved once at startup.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's stable identity. Must differ from every peer's.
    pub node_id: String,
    /// Seed peer addresses (`host:port`) gossiped with at join time.
    pub seeds: Vec<String>,
    /// Replication factor R: each entry lives on the owner plus R-1
    /// ring successors.
    pub replicas: usize,
    /// Background gossip cadence. `None` disables the thread — the
    /// test mode, driven by explicit [`Cluster::gossip_round`] calls,
    /// mirroring the job service's `workers: 0` manual stepping.
    pub gossip_interval: Option<Duration>,
    /// Suspicion/eviction timeouts for the membership layer.
    pub timeouts: Timeouts,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            node_id: String::new(),
            seeds: Vec::new(),
            replicas: 2,
            gossip_interval: Some(Duration::from_millis(500)),
            timeouts: Timeouts::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Per-peer traffic counters, reported by `/cluster`.
#[derive(Debug, Default, Clone)]
pub struct PeerCounters {
    /// `/peer/get` probes answered with a valid frame.
    pub hits: u64,
    /// `/peer/get` probes answered 404.
    pub misses: u64,
    /// Jobs forwarded to this peer for execution.
    pub forwards: u64,
    /// Connections to this peer that failed.
    pub failures: u64,
}

/// Cluster-level counters (the store's `corrupt_discards` ledger also
/// counts network-path discards; it lives in `StoreStats`).
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Jobs routed to a remote owner (served or executed there).
    pub forwards: AtomicU64,
    /// Results served from a peer's store.
    pub peer_hits: AtomicU64,
    /// Owner cache probes that missed (forcing remote execution).
    pub peer_misses: AtomicU64,
    /// Jobs executed locally despite a remote owner (owner down).
    pub steals: AtomicU64,
    /// Entries successfully pushed to a replica.
    pub replications: AtomicU64,
    /// Entries pushed to new owners during a clean leave.
    pub handoffs: AtomicU64,
    /// Gossip rounds initiated.
    pub gossip_rounds: AtomicU64,
    /// Peer connections that failed.
    pub peer_failures: AtomicU64,
    per_peer: Mutex<BTreeMap<String, PeerCounters>>,
}

impl ClusterStats {
    fn peer<F: FnOnce(&mut PeerCounters)>(&self, id: &NodeId, f: F) {
        let mut map = self.per_peer.lock().unwrap();
        f(map.entry(id.0.clone()).or_default());
    }

    /// Snapshot of the per-peer counters.
    pub fn per_peer(&self) -> BTreeMap<String, PeerCounters> {
        self.per_peer.lock().unwrap().clone()
    }
}

// ---------------------------------------------------------------------------
// The cluster
// ---------------------------------------------------------------------------

/// A result served from a peer instead of computed locally.
pub struct ServedRemote {
    /// The verified result bytes (frame-checked against the key).
    pub bytes: Vec<u8>,
    /// The requirement IDs from the executing node's witness record,
    /// when the remote actually executed (a plain peer cache hit mints
    /// no witness, mirroring local cache hits).
    pub witness_ids: Option<Vec<String>>,
}

enum PeerGet {
    Hit(Frame),
    Miss,
    /// A frame arrived but failed verification — already counted into
    /// the corrupt-discard ledger by the caller of record.
    Corrupt,
    Unreachable,
}

/// The live cluster state attached to a [`JobService`].
pub struct Cluster {
    config: ClusterConfig,
    self_id: NodeId,
    self_addr: SocketAddr,
    service: Weak<JobService>,
    membership: Mutex<Membership>,
    /// `(membership epoch, ring)` — rebuilt lazily when the epoch moves.
    ring_cache: Mutex<(u64, Arc<HashRing>)>,
    /// Counters for `/cluster` and `/metrics`.
    pub stats: ClusterStats,
    stop: Arc<AtomicBool>,
    gossiper: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("node_id", &self.self_id)
            .field("addr", &self.self_addr)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Builds the cluster layer for a bound server and starts the
    /// gossip thread (when an interval is configured). The caller must
    /// follow with [`JobService::attach_cluster`] so workers route
    /// through it.
    pub fn start(
        config: ClusterConfig,
        self_addr: SocketAddr,
        service: &Arc<JobService>,
    ) -> Arc<Cluster> {
        let self_id = NodeId(config.node_id.clone());
        let membership = Membership::new(self_id.clone(), self_addr.to_string(), config.timeouts);
        let ring = Arc::new(HashRing::build(std::slice::from_ref(&self_id)));
        let cluster = Arc::new(Cluster {
            config,
            self_id,
            self_addr,
            service: Arc::downgrade(service),
            membership: Mutex::new(membership),
            ring_cache: Mutex::new((0, ring)),
            stats: ClusterStats::default(),
            stop: Arc::new(AtomicBool::new(false)),
            gossiper: Mutex::new(None),
        });
        if let Some(interval) = cluster.config.gossip_interval {
            let me = Arc::clone(&cluster);
            let stop = Arc::clone(&cluster.stop);
            let handle = std::thread::Builder::new()
                .name("st-serve-gossip".to_owned())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        me.gossip_round();
                        // Sleep in slices so shutdown is prompt.
                        let deadline = Instant::now() + interval;
                        while Instant::now() < deadline && !stop.load(Ordering::Acquire) {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                })
                .expect("spawn gossip thread");
            *cluster.gossiper.lock().unwrap() = Some(handle);
        }
        cluster
    }

    /// This node's identity.
    pub fn node_id(&self) -> &NodeId {
        &self.self_id
    }

    /// This node's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.self_addr
    }

    /// The replication factor in force.
    pub fn replicas(&self) -> usize {
        self.config.replicas
    }

    /// The current ring, rebuilt when membership changed.
    pub fn ring(&self) -> Arc<HashRing> {
        let m = self.membership.lock().unwrap();
        let epoch = m.epoch();
        let mut cache = self.ring_cache.lock().unwrap();
        if cache.0 != epoch {
            *cache = (epoch, Arc::new(HashRing::build(&m.ring_nodes())));
        }
        Arc::clone(&cache.1)
    }

    /// Current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.membership.lock().unwrap().epoch()
    }

    // -- gossip ------------------------------------------------------------

    /// Our half of a gossip exchange: who we are plus everything we
    /// know, with evidence ages (instants do not serialize; ages do).
    fn snapshot_json(&self) -> Json {
        let m = self.membership.lock().unwrap();
        let now = Instant::now();
        let members: Vec<Json> = m
            .peers()
            .map(|p| {
                Json::obj([
                    ("id", Json::Str(p.id.0.clone())),
                    ("addr", Json::Str(p.addr.clone())),
                    ("health", Json::str(p.health.name())),
                    ("age_ms", Json::UInt(p.age(now).as_millis() as u64)),
                ])
            })
            .collect();
        Json::obj([
            (
                "from",
                Json::obj([
                    ("id", Json::Str(self.self_id.0.clone())),
                    ("addr", Json::Str(m.self_addr().to_owned())),
                ]),
            ),
            ("members", Json::Arr(members)),
        ])
    }

    /// Folds a gossip payload (a request we received, or a reply to
    /// one we sent) into membership: the sender is direct evidence,
    /// its member list is relayed evidence.
    fn learn(&self, payload: &Json) {
        let now = Instant::now();
        let mut m = self.membership.lock().unwrap();
        if let Some(from) = payload.get("from") {
            if let (Some(id), Some(addr)) = (
                from.get("id").and_then(Json::as_str),
                from.get("addr").and_then(Json::as_str),
            ) {
                m.observe_direct(&NodeId(id.to_owned()), addr, now);
            }
        }
        for member in payload.get("members").and_then(Json::as_arr).unwrap_or(&[]) {
            if let (Some(id), Some(addr), Some(age_ms)) = (
                member.get("id").and_then(Json::as_str),
                member.get("addr").and_then(Json::as_str),
                member.get("age_ms").and_then(Json::as_u64),
            ) {
                m.observe_relayed(
                    &NodeId(id.to_owned()),
                    addr,
                    Duration::from_millis(age_ms),
                    now,
                );
            }
        }
    }

    /// Serves a peer's `POST /peer/gossip`: learn from its payload,
    /// answer with ours.
    pub fn handle_gossip(&self, body: &Json) -> Json {
        self.learn(body);
        self.snapshot_json()
    }

    /// Serves a peer's `POST /peer/leave`.
    pub fn handle_leave(&self, id: &str) -> bool {
        self.membership
            .lock()
            .unwrap()
            .remove(&NodeId(id.to_owned()))
    }

    /// One gossip round: exchange membership with every known peer and
    /// every not-yet-identified seed, then advance the failure clocks.
    /// The background thread calls this on its cadence; tests call it
    /// directly for deterministic convergence.
    pub fn gossip_round(&self) {
        self.stats.gossip_rounds.fetch_add(1, Ordering::Relaxed);
        let snapshot = self.snapshot_json().encode().into_bytes();
        // Targets: known peers by id, plus seed addresses we have not
        // identified yet (their reply introduces them).
        let (mut targets, self_addr_str) = {
            let m = self.membership.lock().unwrap();
            let known: Vec<(Option<NodeId>, String)> = m
                .peers()
                .map(|p| (Some(p.id.clone()), p.addr.clone()))
                .collect();
            (known, m.self_addr().to_owned())
        };
        for seed in &self.config.seeds {
            if *seed != self_addr_str && !targets.iter().any(|(_, a)| a == seed) {
                targets.push((None, seed.clone()));
            }
        }
        for (id, addr) in targets {
            let Some(sock) = resolve(&addr) else { continue };
            match request(sock, "POST", "/peer/gossip", &snapshot) {
                Ok((200, body)) => {
                    if let Ok(reply) = Json::parse(&String::from_utf8_lossy(&body)) {
                        self.learn(&reply);
                    }
                }
                _ => {
                    self.stats.peer_failures.fetch_add(1, Ordering::Relaxed);
                    if let Some(id) = &id {
                        self.stats.peer(id, |c| c.failures += 1);
                        self.membership.lock().unwrap().mark_failed(id);
                    }
                }
            }
        }
        self.membership.lock().unwrap().tick(Instant::now());
    }

    // -- routing -----------------------------------------------------------

    /// Attempts to serve `key` remotely. `None` means "execute
    /// locally" — we own the key, the cluster is degenerate, or every
    /// remote path failed (a steal, already counted). Called from the
    /// worker's `run_job`, so blocking here never stalls the acceptor.
    pub fn try_remote(
        &self,
        request_: &JobRequest,
        key: ContentKey,
        cancel: &CancelToken,
        deadline: Option<Instant>,
    ) -> Option<ServedRemote> {
        let ring = self.ring();
        if ring.len() <= 1 {
            return None;
        }
        let owner = ring.owner(&key.0).clone();
        if owner == self.self_id {
            return None;
        }
        self.stats.forwards.fetch_add(1, Ordering::Relaxed);
        self.stats.peer(&owner, |c| c.forwards += 1);

        let owner_suspect = {
            let m = self.membership.lock().unwrap();
            m.get(&owner).map(|p| p.health) != Some(st_fabric::Health::Alive)
        };
        if !owner_suspect {
            if let Some(addr) = self.addr_of(&owner) {
                match self.peer_get(&owner, addr, key) {
                    PeerGet::Hit(frame) => {
                        return Some(ServedRemote {
                            bytes: frame.payload,
                            witness_ids: frame.witness.map(|w| w.ids),
                        })
                    }
                    PeerGet::Miss => {
                        self.stats.peer_misses.fetch_add(1, Ordering::Relaxed);
                        if let Some(served) =
                            self.peer_execute(&owner, addr, request_, key, cancel, deadline)
                        {
                            return Some(served);
                        }
                    }
                    // A corrupt frame from the owner: do not trust it
                    // with execution either; fall to replicas/steal.
                    PeerGet::Corrupt | PeerGet::Unreachable => {}
                }
            }
        }
        // Owner out of reach (or suspect): a replica may hold the
        // bytes. Replicas are only probed, never asked to execute —
        // execution lands here if nothing has the result.
        for node in ring.successors(&key.0, self.config.replicas) {
            if *node == self.self_id || *node == owner {
                continue;
            }
            let node = node.clone();
            if let Some(addr) = self.addr_of(&node) {
                if let PeerGet::Hit(frame) = self.peer_get(&node, addr, key) {
                    return Some(ServedRemote {
                        bytes: frame.payload,
                        witness_ids: frame.witness.map(|w| w.ids),
                    });
                }
            }
        }
        self.stats.steals.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Probes one peer's store for `key` and verifies whatever comes
    /// back. Frame verification failures count into the *store's*
    /// corrupt-discard ledger: the network path and the disk path share
    /// one fail-closed counter (ST-CLU-015).
    fn peer_get(&self, id: &NodeId, addr: SocketAddr, key: ContentKey) -> PeerGet {
        let path = format!("/peer/get/{}", key.to_hex());
        match request(addr, "GET", &path, b"") {
            Ok((200, body)) => match decode_verified(&body, key) {
                Ok(frame) => {
                    self.stats.peer_hits.fetch_add(1, Ordering::Relaxed);
                    self.stats.peer(id, |c| c.hits += 1);
                    PeerGet::Hit(frame)
                }
                Err(e) => {
                    if let Some(svc) = self.service.upgrade() {
                        svc.store
                            .stats
                            .corrupt_discards
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    eprintln!("st-serve: discarding corrupt frame from {id}: {e}");
                    PeerGet::Corrupt
                }
            },
            Ok((404, _)) => {
                self.stats.peer(id, |c| c.misses += 1);
                PeerGet::Miss
            }
            Ok(_) => PeerGet::Miss,
            Err(_) => {
                self.stats.peer_failures.fetch_add(1, Ordering::Relaxed);
                self.stats.peer(id, |c| c.failures += 1);
                self.membership.lock().unwrap().mark_failed(id);
                PeerGet::Unreachable
            }
        }
    }

    /// Executes the job on the owner: submit with `/peer/execute`
    /// (which forbids re-forwarding, so transient ring disagreement
    /// cannot loop), poll its status, then fetch the verified bytes.
    fn peer_execute(
        &self,
        id: &NodeId,
        addr: SocketAddr,
        request_: &JobRequest,
        key: ContentKey,
        cancel: &CancelToken,
        deadline: Option<Instant>,
    ) -> Option<ServedRemote> {
        let body = request_.to_json().encode().into_bytes();
        let submitted = match request(addr, "POST", "/peer/execute", &body) {
            Ok((202, reply)) => Json::parse(&String::from_utf8_lossy(&reply)).ok()?,
            Ok(_) => return None,
            Err(_) => {
                self.stats.peer_failures.fetch_add(1, Ordering::Relaxed);
                self.stats.peer(id, |c| c.failures += 1);
                self.membership.lock().unwrap().mark_failed(id);
                return None;
            }
        };
        // The owner must agree on the key — a disagreement means the
        // request bytes did not survive the wire; trust nothing.
        if submitted.get("key").and_then(Json::as_str) != Some(key.to_hex().as_str()) {
            return None;
        }
        let job_id = submitted.get("id").and_then(Json::as_u64)?;
        let wait_until = deadline.unwrap_or_else(|| Instant::now() + REMOTE_WAIT_DEFAULT);
        loop {
            if cancel.is_cancelled() || Instant::now() >= wait_until {
                return None;
            }
            let status = match request(addr, "GET", &format!("/status/{job_id}"), b"") {
                Ok((200, body)) => Json::parse(&String::from_utf8_lossy(&body)).ok()?,
                Ok(_) => return None,
                Err(_) => {
                    self.stats.peer_failures.fetch_add(1, Ordering::Relaxed);
                    self.stats.peer(id, |c| c.failures += 1);
                    self.membership.lock().unwrap().mark_failed(id);
                    return None;
                }
            };
            match status.get("status").and_then(Json::as_str) {
                Some("done") => break,
                Some("queued" | "running") => std::thread::sleep(REMOTE_POLL),
                // Cancelled/expired remotely (or unparsable): steal.
                _ => return None,
            }
        }
        match self.peer_get(id, addr, key) {
            PeerGet::Hit(frame) => Some(ServedRemote {
                bytes: frame.payload,
                witness_ids: frame.witness.map(|w| w.ids),
            }),
            _ => None,
        }
    }

    // -- replication and handoff -------------------------------------------

    /// Pushes a freshly computed entry to the key's replica successors
    /// (everyone in the first R ring positions except ourselves).
    pub fn replicate(&self, key: ContentKey, bytes: &[u8], witness: Option<&WitnessRecord>) {
        let ring = self.ring();
        if ring.len() <= 1 {
            return;
        }
        let frame = Frame {
            key: key.0,
            payload: bytes.to_vec(),
            witness: witness.cloned(),
        }
        .encode();
        for node in ring.successors(&key.0, self.config.replicas) {
            if *node == self.self_id {
                continue;
            }
            let node = node.clone();
            if let Some(addr) = self.addr_of(&node) {
                self.push_entry(&node, addr, key, &frame, &self.stats.replications);
            }
        }
    }

    /// A clean departure: hand every memory-resident entry to its
    /// owner in the ring *without us*, tell the peers goodbye, and
    /// stop gossiping. Returns the number of entries handed off.
    /// Entries this misses (disk-resident, or a failed push) are safe
    /// to lose: determinism recomputes identical bytes on demand.
    pub fn leave_and_handoff(&self) -> usize {
        let Some(svc) = self.service.upgrade() else {
            return 0;
        };
        let remaining: Vec<NodeId> = {
            let m = self.membership.lock().unwrap();
            m.ring_nodes()
                .into_iter()
                .filter(|n| *n != self.self_id)
                .collect()
        };
        let mut handed = 0usize;
        if !remaining.is_empty() {
            let ring = HashRing::build(&remaining);
            for key in svc.store.mem_keys() {
                let Some(bytes) = svc.store.get(key) else {
                    continue;
                };
                let witness = svc.witness_for_key(key);
                let frame = Frame {
                    key: key.0,
                    payload: bytes,
                    witness,
                }
                .encode();
                let owner = ring.owner(&key.0).clone();
                if let Some(addr) = self.addr_of(&owner) {
                    if self.push_entry(&owner, addr, key, &frame, &self.stats.handoffs) {
                        handed += 1;
                    }
                }
            }
        }
        // Goodbye: peers drop us immediately, no suspicion window.
        let bye = Json::obj([("id", Json::Str(self.self_id.0.clone()))])
            .encode()
            .into_bytes();
        let peers: Vec<(NodeId, String)> = {
            let m = self.membership.lock().unwrap();
            m.peers().map(|p| (p.id.clone(), p.addr.clone())).collect()
        };
        for (id, addr) in peers {
            if let Some(sock) = resolve(&addr) {
                if request(sock, "POST", "/peer/leave", &bye).is_err() {
                    self.stats.peer_failures.fetch_add(1, Ordering::Relaxed);
                    self.stats.peer(&id, |c| c.failures += 1);
                }
            }
        }
        self.stop_gossip();
        handed
    }

    fn push_entry(
        &self,
        id: &NodeId,
        addr: SocketAddr,
        key: ContentKey,
        frame: &[u8],
        counter: &AtomicU64,
    ) -> bool {
        let path = format!("/peer/put/{}", key.to_hex());
        match request(addr, "POST", &path, frame) {
            Ok((200, _)) => {
                counter.fetch_add(1, Ordering::Relaxed);
                true
            }
            Ok(_) => false,
            Err(_) => {
                self.stats.peer_failures.fetch_add(1, Ordering::Relaxed);
                self.stats.peer(id, |c| c.failures += 1);
                self.membership.lock().unwrap().mark_failed(id);
                false
            }
        }
    }

    // -- observability ------------------------------------------------------

    /// The `/cluster` endpoint body: identity, ring, peers, counters.
    pub fn cluster_json(&self) -> Json {
        let ring = self.ring();
        let (peers, epoch) = {
            let m = self.membership.lock().unwrap();
            let now = Instant::now();
            let peers: Vec<Json> = m
                .peers()
                .map(|p| {
                    Json::obj([
                        ("id", Json::Str(p.id.0.clone())),
                        ("addr", Json::Str(p.addr.clone())),
                        ("health", Json::str(p.health.name())),
                        ("age_ms", Json::UInt(p.age(now).as_millis() as u64)),
                    ])
                })
                .collect();
            (peers, m.epoch())
        };
        let r = |a: &AtomicU64| Json::UInt(a.load(Ordering::Relaxed));
        let per_peer: Vec<Json> = self
            .stats
            .per_peer()
            .into_iter()
            .map(|(id, c)| {
                Json::obj([
                    ("id", Json::Str(id)),
                    ("hits", Json::UInt(c.hits)),
                    ("misses", Json::UInt(c.misses)),
                    ("forwards", Json::UInt(c.forwards)),
                    ("failures", Json::UInt(c.failures)),
                ])
            })
            .collect();
        Json::obj([
            ("clustered", Json::Bool(true)),
            ("node_id", Json::Str(self.self_id.0.clone())),
            ("addr", Json::Str(self.self_addr.to_string())),
            ("epoch", Json::UInt(epoch)),
            ("replicas", Json::UInt(self.config.replicas as u64)),
            (
                "ring",
                Json::obj([
                    (
                        "nodes",
                        Json::Arr(
                            ring.nodes()
                                .iter()
                                .map(|n| Json::Str(n.0.clone()))
                                .collect(),
                        ),
                    ),
                    ("vnodes", Json::UInt(st_fabric::VNODES as u64)),
                ]),
            ),
            ("peers", Json::Arr(peers)),
            (
                "stats",
                Json::obj([
                    ("forwards", r(&self.stats.forwards)),
                    ("peer_hits", r(&self.stats.peer_hits)),
                    ("peer_misses", r(&self.stats.peer_misses)),
                    ("steals", r(&self.stats.steals)),
                    ("replications", r(&self.stats.replications)),
                    ("handoffs", r(&self.stats.handoffs)),
                    ("gossip_rounds", r(&self.stats.gossip_rounds)),
                    ("peer_failures", r(&self.stats.peer_failures)),
                    ("per_peer", Json::Arr(per_peer)),
                ]),
            ),
        ])
    }

    /// Stops the background gossip thread. Idempotent.
    pub fn stop_gossip(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.gossiper.lock().unwrap().take() {
            let _ = h.join();
        }
    }

    fn addr_of(&self, node: &NodeId) -> Option<SocketAddr> {
        let addr = self.membership.lock().unwrap().get(node)?.addr.clone();
        resolve(&addr)
    }
}

/// Decodes a peer frame against the expected key and cross-checks any
/// carried witness record against the payload: the record's config
/// must be the request key and its result digest must match the bytes
/// actually carried — a frame that lies about its provenance is as
/// corrupt as one that fails its checksum.
pub(crate) fn decode_verified(body: &[u8], key: ContentKey) -> Result<Frame, String> {
    let frame = Frame::decode(body, &key.0).map_err(|e| e.to_string())?;
    if let Some(w) = &frame.witness {
        if w.config != key.0 {
            return Err("witness config does not match the request key".to_owned());
        }
        if w.result != ContentKey::of(&frame.payload).0 {
            return Err("witness result does not match the carried bytes".to_owned());
        }
    }
    Ok(frame)
}

fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ST_PEERS corner suite, mirroring the ST_THREADS/ST_BATCH
    // env-knob contract tests: the pure split is exercised on every
    // corner, and exactly one test owns the environment variable.

    #[test]
    fn peer_lists_drop_empty_and_whitespace_entries_silently() {
        assert_eq!(split_peers(""), (vec![], vec![]));
        assert_eq!(split_peers("   "), (vec![], vec![]));
        assert_eq!(split_peers(",,,"), (vec![], vec![]));
        assert_eq!(split_peers(" , \t ,"), (vec![], vec![]));
        let (ok, bad) = split_peers(" 10.0.0.1:7878 , ,host:99,");
        assert_eq!(ok, vec!["10.0.0.1:7878", "host:99"]);
        assert!(bad.is_empty());
    }

    #[test]
    fn malformed_peer_entries_are_rejected_not_obeyed() {
        let (ok, bad) = split_peers("nocolon,:7878,host:,host:port,host:0,host:70000,a:1");
        assert_eq!(ok, vec!["a:1"]);
        assert_eq!(
            bad,
            vec![
                "nocolon",
                ":7878",
                "host:",
                "host:port",
                "host:0",
                "host:70000"
            ]
        );
        // IPv6-ish entries with multiple colons parse on the last one.
        let (ok, bad) = split_peers("::1:7878");
        assert_eq!(ok, vec!["::1:7878"]);
        assert!(bad.is_empty());
    }

    #[test]
    fn duplicate_peers_keep_first_occurrence_only() {
        let (ok, bad) = split_peers("a:1,b:2,a:1,b:2,a:1,c:3");
        assert_eq!(ok, vec!["a:1", "b:2", "c:3"]);
        assert!(bad.is_empty());
        // Whitespace variants of the same entry still deduplicate.
        let (ok, _) = split_peers("a:1,  a:1 ,a:1\t");
        assert_eq!(ok, vec!["a:1"]);
    }

    #[test]
    fn st_peers_env_distinguishes_unset_from_set_but_useless() {
        // This test owns ST_PEERS (the only reader/mutator in this
        // binary; env mutation must not race other tests).
        std::env::remove_var("ST_PEERS");
        assert_eq!(peers_from_env("ST_PEERS"), None, "unset: not clustered");
        std::env::set_var("ST_PEERS", "n1:7878, n2:7879,n1:7878,garbage");
        assert_eq!(
            peers_from_env("ST_PEERS"),
            Some(vec!["n1:7878".to_owned(), "n2:7879".to_owned()])
        );
        // Set-but-empty still opts in (with zero peers): the caller
        // clusters, it just starts alone.
        std::env::set_var("ST_PEERS", "");
        assert_eq!(peers_from_env("ST_PEERS"), Some(vec![]));
        std::env::set_var("ST_PEERS", "all,of,these,are,bad");
        assert_eq!(peers_from_env("ST_PEERS"), Some(vec![]));
        std::env::remove_var("ST_PEERS");
    }

    #[test]
    fn corrupt_frames_fail_decode_verified() {
        let key = ContentKey::of(b"req");
        let payload = b"result bytes".to_vec();
        let ok = Frame {
            key: key.0,
            payload: payload.clone(),
            witness: None,
        };
        assert!(decode_verified(&ok.encode(), key).is_ok());

        // A witness whose result digest disagrees with the payload is
        // rejected even though the frame itself is internally valid.
        let mut log = st_conformance::WitnessLog::new();
        let lying = log.append(&["ST-DET-001"], key.0, ContentKey::of(b"other bytes").0);
        let framed = Frame {
            key: key.0,
            payload,
            witness: Some(lying),
        };
        let err = decode_verified(&framed.encode(), key).unwrap_err();
        assert!(err.contains("witness result"), "{err}");
    }
}
