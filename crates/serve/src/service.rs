//! The job service: a bounded queue, a worker pool, in-flight
//! coalescing, per-job deadlines, and service-level metrics.
//!
//! One [`JobService`] is shared by every HTTP connection thread. Its
//! invariants:
//!
//! * **Backpressure** — the queue is bounded; a submission that would
//!   exceed [`ServiceConfig::queue_cap`] is rejected immediately
//!   (HTTP 503) rather than buffered without bound.
//! * **Coalescing** — a submission whose [`ContentKey`] matches a job
//!   already queued or running returns that job's id instead of
//!   enqueueing a duplicate. Determinism makes this safe: the two
//!   executions could only ever produce identical bytes.
//! * **Deadlines** — each job may carry a wall-clock deadline; the
//!   worker trips the job's [`CancelToken`] from the progress hook the
//!   moment it passes, and the job classifies as `expired`.
//! * **Cancellation** — `/cancel/<id>` trips the same token; a still-
//!   queued job dies without ever starting.

use crate::hash::ContentKey;
use crate::job::{execute, JobRequest};
use crate::store::ResultStore;
use st_conformance::{WitnessLog, WitnessRecord};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use synchro_tokens::{threads_from_env, CancelToken, RunHooks};

/// Monotonic job identifier, unique within one service instance.
pub type JobId = u64;

/// Where a job currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; its result is in the store under the job's key.
    Done,
    /// Cancelled via [`JobService::cancel`] before completion.
    Cancelled,
    /// Its wall-clock deadline passed before completion.
    Expired,
}

impl JobStatus {
    /// Wire name used by `/status`.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Expired => "expired",
        }
    }

    /// True once the job can never change state again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Expired
        )
    }
}

/// What [`JobService::submit`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// The result already existed in the store; the job was registered
    /// directly as [`JobStatus::Done`] — no execution happens.
    Cached(JobId),
    /// An identical request is already in flight; `JobId` is *that*
    /// job's id and no new work was enqueued.
    Coalesced(JobId),
    /// A fresh job was enqueued.
    Queued(JobId),
    /// The queue is full — retry later (backpressure).
    QueueFull,
}

/// Tunables, resolved once at construction.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. `0` is the test/drive-by-hand mode: nothing
    /// executes until [`JobService::step`] is called.
    pub workers: usize,
    /// Simulation threads each worker fans a job out over.
    pub threads_per_job: usize,
    /// Maximum queued (not yet running) jobs.
    pub queue_cap: usize,
    /// Memory LRU capacity, in results.
    pub cache_entries: usize,
    /// Optional persistence directory for the result store.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            threads_per_job: 1,
            queue_cap: 64,
            cache_entries: 256,
            cache_dir: None,
        }
    }
}

impl ServiceConfig {
    /// Applies the environment knobs documented in EXPERIMENTS.md:
    /// `ST_SERVE_THREADS` (worker count, same clamp-and-warn contract
    /// as `ST_THREADS` via [`threads_from_env`]) and
    /// `ST_SERVE_CACHE_DIR` (persistence directory; empty disables).
    pub fn from_env(mut self) -> Self {
        if let Some(n) = threads_from_env("ST_SERVE_THREADS") {
            self.workers = n;
        }
        match std::env::var("ST_SERVE_CACHE_DIR") {
            Ok(dir) if !dir.is_empty() => self.cache_dir = Some(dir.into()),
            _ => {}
        }
        self
    }
}

struct JobEntry {
    key: ContentKey,
    request: Arc<JobRequest>,
    status: JobStatus,
    cancel: CancelToken,
    deadline: Option<Instant>,
    error: Option<String>,
    /// The chained witness record minted when this job completed.
    /// `None` until `Done`, and forever for cached/coalesced
    /// registrations — only an actual execution bears witness.
    witness: Option<WitnessRecord>,
    /// Set on jobs arriving via `/peer/execute`: this node must run
    /// the job itself, never re-forward it — the loop-prevention
    /// guarantee under transient ring disagreement.
    local_only: bool,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobEntry>,
    /// In-flight (queued or running) jobs by key — the coalescing index.
    inflight: HashMap<ContentKey, JobId>,
    next_id: JobId,
    /// Wall-clock milliseconds of recently completed jobs, newest last,
    /// bounded to [`LATENCY_WINDOW`]; feeds the p50/p99 gauges.
    latencies_ms: Vec<u64>,
}

const LATENCY_WINDOW: usize = 512;

/// Service-level counters (store counters live in [`ResultStore`]).
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Jobs accepted as fresh work.
    pub submitted: AtomicU64,
    /// Submissions answered from the store without execution.
    pub served_cached: AtomicU64,
    /// Submissions coalesced onto an in-flight job.
    pub coalesced: AtomicU64,
    /// Submissions rejected by backpressure.
    pub rejected: AtomicU64,
    /// Jobs that ran to completion.
    pub done: AtomicU64,
    /// Jobs cancelled before completion.
    pub cancelled: AtomicU64,
    /// Jobs that outlived their deadline.
    pub expired: AtomicU64,
}

/// The shared campaign service. Construct once, wrap in [`Arc`], hand
/// to the HTTP layer and (optionally) drive by hand with
/// [`step`](Self::step).
pub struct JobService {
    /// The content-addressed result store.
    pub store: ResultStore,
    /// Service counters for `/metrics`.
    pub stats: ServiceStats,
    state: Mutex<QueueState>,
    wake: Condvar,
    /// The hashed witness log; every executed job appends one record.
    witness: Mutex<WitnessLog>,
    /// The cluster layer, when this node is part of one. Attached
    /// after the server binds (the cluster needs the bound address);
    /// holds a `Weak` back-reference, so no cycle.
    cluster: Mutex<Option<Arc<crate::cluster::Cluster>>>,
    config: ServiceConfig,
    shutdown: AtomicBool,
    started: Instant,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for JobService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobService")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl JobService {
    /// Builds the service and spawns `config.workers` worker threads.
    pub fn start(config: ServiceConfig) -> Arc<JobService> {
        let store = match &config.cache_dir {
            Some(dir) => ResultStore::with_dir(config.cache_entries, dir.clone()),
            None => ResultStore::in_memory(config.cache_entries),
        };
        let svc = Arc::new(JobService {
            store,
            stats: ServiceStats::default(),
            state: Mutex::new(QueueState::default()),
            wake: Condvar::new(),
            witness: Mutex::new(WitnessLog::new()),
            cluster: Mutex::new(None),
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = svc.workers.lock().unwrap();
        for i in 0..svc.config.workers {
            let me = Arc::clone(&svc);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("st-serve-worker-{i}"))
                    .spawn(move || me.worker_loop())
                    .expect("spawn worker"),
            );
        }
        drop(workers);
        svc
    }

    /// The service configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Attaches the cluster layer. Call once, after the HTTP server
    /// binds; workers route through it from then on.
    pub fn attach_cluster(&self, cluster: Arc<crate::cluster::Cluster>) {
        *self.cluster.lock().unwrap() = Some(cluster);
    }

    /// The attached cluster layer, if this node is part of one.
    pub fn cluster(&self) -> Option<Arc<crate::cluster::Cluster>> {
        self.cluster.lock().unwrap().clone()
    }

    /// Submits a request. See [`Submission`] for the four outcomes.
    /// `deadline` is wall-clock time from *now*.
    pub fn submit(&self, request: JobRequest, deadline: Option<Duration>) -> Submission {
        self.submit_with(request, deadline, false)
    }

    /// Submits a request on behalf of a peer (`/peer/execute`): the
    /// job is pinned to this node — executed here, never re-forwarded,
    /// so two nodes with momentarily different rings cannot bounce a
    /// job between each other.
    pub fn submit_peer(&self, request: JobRequest, deadline: Option<Duration>) -> Submission {
        self.submit_with(request, deadline, true)
    }

    fn submit_with(
        &self,
        request: JobRequest,
        deadline: Option<Duration>,
        local_only: bool,
    ) -> Submission {
        let key = ContentKey::of(&request.to_canonical_bytes());
        let mut st = self.state.lock().unwrap();
        // Coalesce before anything else: an in-flight twin means the
        // bytes are already being computed.
        if let Some(&id) = st.inflight.get(&key) {
            self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
            return Submission::Coalesced(id);
        }
        // A store hit needs no execution at all; register a terminal
        // job so /status and /result answer uniformly by id. In a
        // cluster this also serves replica-resident entries locally.
        if self.store.get(key).is_some() {
            let id = Self::register(&mut st, key, request, JobStatus::Done, None, local_only);
            self.stats.served_cached.fetch_add(1, Ordering::Relaxed);
            return Submission::Cached(id);
        }
        if st.queue.len() >= self.config.queue_cap {
            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Submission::QueueFull;
        }
        let deadline = deadline.map(|d| Instant::now() + d);
        let id = Self::register(
            &mut st,
            key,
            request,
            JobStatus::Queued,
            deadline,
            local_only,
        );
        st.queue.push_back(id);
        st.inflight.insert(key, id);
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.wake.notify_one();
        Submission::Queued(id)
    }

    fn register(
        st: &mut QueueState,
        key: ContentKey,
        request: JobRequest,
        status: JobStatus,
        deadline: Option<Instant>,
        local_only: bool,
    ) -> JobId {
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            JobEntry {
                key,
                request: Arc::new(request),
                status,
                cancel: CancelToken::new(),
                deadline,
                error: None,
                witness: None,
                local_only,
            },
        );
        id
    }

    /// The job's current status, key and (for failed runs) error text.
    pub fn status(&self, id: JobId) -> Option<(JobStatus, ContentKey, Option<String>)> {
        let st = self.state.lock().unwrap();
        st.jobs.get(&id).map(|e| (e.status, e.key, e.error.clone()))
    }

    /// The witness record minted when job `id` executed to completion.
    /// `None` for unknown jobs, unfinished jobs, and cache-served
    /// registrations (which executed nothing).
    pub fn witness(&self, id: JobId) -> Option<WitnessRecord> {
        let st = self.state.lock().unwrap();
        st.jobs.get(&id).and_then(|e| e.witness.clone())
    }

    /// The witness record of any completed execution of `key` on this
    /// node, for attaching provenance to `/peer/get` frames. `None`
    /// when every local registration of the key was a cache hit.
    pub fn witness_for_key(&self, key: ContentKey) -> Option<WitnessRecord> {
        let st = self.state.lock().unwrap();
        st.jobs
            .values()
            .find(|e| e.key == key && e.witness.is_some())
            .and_then(|e| e.witness.clone())
    }

    /// Snapshot of the witness log for `/conformance`: the chain head,
    /// the record count, and per-requirement witness tallies.
    pub fn witness_summary(&self) -> (u64, u64, Vec<(String, u64)>) {
        let log = self.witness.lock().unwrap();
        let counts = log.counts().map(|(id, n)| (id.to_owned(), n)).collect();
        (log.head(), log.len(), counts)
    }

    /// The job's result bytes, once [`JobStatus::Done`].
    pub fn result(&self, id: JobId) -> Option<Vec<u8>> {
        let key = {
            let st = self.state.lock().unwrap();
            let e = st.jobs.get(&id)?;
            if e.status != JobStatus::Done {
                return None;
            }
            e.key
        };
        self.store.get(key)
    }

    /// Requests cancellation. A queued job dies immediately; a running
    /// one stops at its next sub-job boundary. Returns `false` for
    /// unknown or already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.state.lock().unwrap();
        let Some(e) = st.jobs.get_mut(&id) else {
            return false;
        };
        if e.status.is_terminal() {
            return false;
        }
        e.cancel.cancel();
        if e.status == JobStatus::Queued {
            e.status = JobStatus::Cancelled;
            let key = e.key;
            st.inflight.remove(&key);
            self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            // The id stays in `queue`; workers skip terminal entries.
        }
        true
    }

    /// Executes one queued job on the calling thread. The test-mode
    /// companion to the worker pool (`workers: 0`): deterministic
    /// interleaving with no races to reason about. Returns `false` when
    /// the queue was empty.
    pub fn step(&self) -> bool {
        match self.claim() {
            Some(id) => {
                self.run_job(id);
                true
            }
            None => false,
        }
    }

    /// Current queue depth (queued, not yet claimed).
    pub fn queue_depth(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    fn claim(&self) -> Option<JobId> {
        let mut st = self.state.lock().unwrap();
        while let Some(id) = st.queue.pop_front() {
            let e = st.jobs.get_mut(&id)?;
            if e.status != JobStatus::Queued {
                continue; // cancelled while queued
            }
            e.status = JobStatus::Running;
            return Some(id);
        }
        None
    }

    fn worker_loop(&self) {
        loop {
            let claimed = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if !st.queue.is_empty() {
                        break;
                    }
                    st = self.wake.wait(st).unwrap();
                }
                drop(st);
                self.claim()
            };
            if let Some(id) = claimed {
                self.run_job(id);
            }
        }
    }

    fn run_job(&self, id: JobId) {
        let (request, cancel, deadline, key, local_only) = {
            let st = self.state.lock().unwrap();
            let e = &st.jobs[&id];
            (
                Arc::clone(&e.request),
                e.cancel.clone(),
                e.deadline,
                e.key,
                e.local_only,
            )
        };
        let started = Instant::now();
        // Cluster routing happens here, on the worker thread — the
        // acceptor never blocks on a peer. Peer-submitted jobs are
        // pinned local; everything else asks the ring who owns the key.
        if !local_only {
            if let Some(cluster) = self.cluster() {
                if let Some(served) = cluster.try_remote(&request, key, &cancel, deadline) {
                    self.finish_remote(id, key, served, started);
                    return;
                }
                // None: we own the key, or every remote path failed
                // (a steal) — fall through to local execution.
            }
        }
        // The deadline is enforced cooperatively: every completed
        // sub-job reports progress, and a report past the deadline
        // trips the job's own cancel token.
        let deadline_guard = {
            let cancel = cancel.clone();
            move |_done: usize, _total: usize| {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        cancel.cancel();
                    }
                }
            }
        };
        let expired_on_arrival = deadline.is_some_and(|d| Instant::now() >= d);
        let outcome = if expired_on_arrival {
            Err(crate::job::ExecCancelled)
        } else {
            let hooks = RunHooks {
                cancel: Some(&cancel),
                progress: Some(&deadline_guard),
            };
            execute(&request, self.config.threads_per_job, hooks)
        };
        let mut st = self.state.lock().unwrap();
        let elapsed_ms = started.elapsed().as_millis() as u64;
        match outcome {
            Ok(result) => {
                drop(st); // store I/O outside the lock
                let bytes = result.to_canonical_bytes();
                let result_key = ContentKey::of(&bytes);
                self.store.put(key, bytes.clone());
                // Mint the chained witness record: this execution is
                // evidence for the request's conformance clauses.
                let record = {
                    let mut log = self.witness.lock().unwrap();
                    log.append(&request.witnessed_ids(), key.0, result_key.0)
                };
                // Push the fresh entry to the key's ring successors;
                // peers verify the frame fail-closed before storing.
                if let Some(cluster) = self.cluster() {
                    cluster.replicate(key, &bytes, Some(&record));
                }
                st = self.state.lock().unwrap();
                if let Some(e) = st.jobs.get_mut(&id) {
                    e.status = JobStatus::Done;
                    e.witness = Some(record);
                }
                if st.latencies_ms.len() >= LATENCY_WINDOW {
                    st.latencies_ms.remove(0);
                }
                st.latencies_ms.push(elapsed_ms);
                self.stats.done.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                let past_deadline = deadline.is_some_and(|d| Instant::now() >= d);
                if let Some(e) = st.jobs.get_mut(&id) {
                    if past_deadline {
                        e.status = JobStatus::Expired;
                        e.error = Some("deadline exceeded".to_owned());
                        self.stats.expired.fetch_add(1, Ordering::Relaxed);
                    } else {
                        e.status = JobStatus::Cancelled;
                        self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        st.inflight.remove(&key);
    }

    /// Completes a job whose verified bytes came from a peer. When the
    /// remote actually executed (its frame carried a witness record),
    /// an equivalent record — same requirement IDs, same config and
    /// result digests — is appended to *this* node's chained log, so
    /// local `/conformance` tallies remote executions too; a plain
    /// peer cache hit mints nothing, mirroring local cache hits.
    fn finish_remote(
        &self,
        id: JobId,
        key: ContentKey,
        served: crate::cluster::ServedRemote,
        started: Instant,
    ) {
        let result_key = ContentKey::of(&served.bytes);
        self.store.put(key, served.bytes);
        let record = served.witness_ids.map(|ids| {
            let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
            let mut log = self.witness.lock().unwrap();
            log.append(&refs, key.0, result_key.0)
        });
        let mut st = self.state.lock().unwrap();
        if let Some(e) = st.jobs.get_mut(&id) {
            e.status = JobStatus::Done;
            e.witness = record;
        }
        if st.latencies_ms.len() >= LATENCY_WINDOW {
            st.latencies_ms.remove(0);
        }
        st.latencies_ms.push(started.elapsed().as_millis() as u64);
        self.stats.done.fetch_add(1, Ordering::Relaxed);
        st.inflight.remove(&key);
    }

    /// Latency percentiles over the recent completion window, in
    /// milliseconds: `(p50, p99)`. Zeros before the first completion.
    pub fn latency_percentiles_ms(&self) -> (u64, u64) {
        let st = self.state.lock().unwrap();
        if st.latencies_ms.is_empty() {
            return (0, 0);
        }
        let mut sorted = st.latencies_ms.clone();
        sorted.sort_unstable();
        let at = |q: f64| {
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        (at(0.50), (at(0.99)))
    }

    /// Renders the text `/metrics` exposition.
    pub fn metrics_text(&self) -> String {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let done = r(&self.stats.done);
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let (p50, p99) = self.latency_percentiles_ms();
        let mem_hits = r(&self.store.stats.mem_hits);
        let disk_hits = r(&self.store.stats.disk_hits);
        let misses = r(&self.store.stats.misses);
        let lookups = mem_hits + disk_hits + misses;
        let hit_ratio = if lookups == 0 {
            0.0
        } else {
            (mem_hits + disk_hits) as f64 / lookups as f64
        };
        let (batches, lanes, groups) = crate::job::batch_metrics();
        let occupancy = if groups == 0 {
            0.0
        } else {
            lanes as f64 / groups as f64
        };
        let mut text = format!(
            "st_serve_queue_depth {}\n\
             st_serve_jobs_submitted_total {}\n\
             st_serve_jobs_done_total {done}\n\
             st_serve_jobs_cancelled_total {}\n\
             st_serve_jobs_expired_total {}\n\
             st_serve_jobs_rejected_total {}\n\
             st_serve_coalesced_total {}\n\
             st_serve_served_cached_total {}\n\
             st_serve_cache_mem_hits_total {mem_hits}\n\
             st_serve_cache_disk_hits_total {disk_hits}\n\
             st_serve_cache_misses_total {misses}\n\
             st_serve_cache_evictions_total {}\n\
             st_serve_cache_corrupt_discards_total {}\n\
             st_serve_cache_hit_ratio {hit_ratio:.4}\n\
             st_serve_jobs_per_second {:.4}\n\
             st_serve_job_latency_p50_ms {p50}\n\
             st_serve_job_latency_p99_ms {p99}\n\
             st_serve_batches_formed_total {batches}\n\
             st_serve_batch_lanes_total {lanes}\n\
             st_serve_batch_groups_total {groups}\n\
             st_serve_batch_occupancy {occupancy:.4}\n",
            self.queue_depth(),
            r(&self.stats.submitted),
            r(&self.stats.cancelled),
            r(&self.stats.expired),
            r(&self.stats.rejected),
            r(&self.stats.coalesced),
            r(&self.stats.served_cached),
            r(&self.store.stats.evictions),
            r(&self.store.stats.corrupt_discards),
            done as f64 / elapsed,
        );
        // Cluster series appear only on clustered nodes, so the
        // single-node exposition stays byte-stable.
        if let Some(cluster) = self.cluster() {
            let c = &cluster.stats;
            text.push_str(&format!(
                "st_serve_cluster_nodes {}\n\
                 st_serve_cluster_epoch {}\n\
                 st_serve_cluster_forwards_total {}\n\
                 st_serve_cluster_peer_hits_total {}\n\
                 st_serve_cluster_peer_misses_total {}\n\
                 st_serve_cluster_steals_total {}\n\
                 st_serve_cluster_replications_total {}\n\
                 st_serve_cluster_handoffs_total {}\n\
                 st_serve_cluster_gossip_rounds_total {}\n\
                 st_serve_cluster_peer_failures_total {}\n",
                cluster.ring().len(),
                cluster.epoch(),
                r(&c.forwards),
                r(&c.peer_hits),
                r(&c.peer_misses),
                r(&c.steals),
                r(&c.replications),
                r(&c.handoffs),
                r(&c.gossip_rounds),
                r(&c.peer_failures),
            ));
        }
        text
    }

    /// Stops the worker pool (and the cluster gossip thread, when
    /// attached). Running jobs are cancelled cooperatively; queued
    /// jobs never start. Idempotent.
    pub fn shutdown(&self) {
        if let Some(cluster) = self.cluster.lock().unwrap().clone() {
            cluster.stop_gossip();
        }
        self.shutdown.store(true, Ordering::Release);
        {
            let st = self.state.lock().unwrap();
            for e in st.jobs.values() {
                if !e.status.is_terminal() {
                    e.cancel.cancel();
                }
            }
        }
        self.wake.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Scenario, SimRequest};
    use st_sim::time::SimDuration;
    use synchro_tokens::Backend;

    fn req(seed: u64) -> JobRequest {
        JobRequest::Sim(SimRequest {
            scenario: Scenario::PingPong,
            backend: Backend::Event,
            seeds: vec![seed],
            cycles: 20,
            trace_cycles: 20,
            budget_fs: SimDuration::us(2000).as_fs(),
        })
    }

    fn manual_service() -> Arc<JobService> {
        JobService::start(ServiceConfig {
            workers: 0,
            queue_cap: 2,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn submit_step_result_roundtrip_then_cache_hit() {
        let svc = manual_service();
        let Submission::Queued(id) = svc.submit(req(1), None) else {
            panic!("fresh request must queue")
        };
        assert_eq!(svc.status(id).unwrap().0, JobStatus::Queued);
        assert!(svc.step());
        assert_eq!(svc.status(id).unwrap().0, JobStatus::Done);
        let body = svc.result(id).unwrap();
        assert!(body.starts_with(crate::job::RESULT_MAGIC));
        // Identical resubmission: served from cache, no new work.
        let Submission::Cached(id2) = svc.submit(req(1), None) else {
            panic!("resubmission must hit the cache")
        };
        assert_eq!(svc.result(id2).unwrap(), body);
        assert!(!svc.step(), "nothing was queued for the cached submission");
        assert_eq!(svc.stats.served_cached.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn identical_inflight_submissions_coalesce() {
        let svc = manual_service();
        let Submission::Queued(id) = svc.submit(req(7), None) else {
            panic!()
        };
        let Submission::Coalesced(other) = svc.submit(req(7), None) else {
            panic!("in-flight twin must coalesce")
        };
        assert_eq!(other, id, "coalesced onto the queued job");
        // A *different* request does not coalesce.
        assert!(matches!(svc.submit(req(8), None), Submission::Queued(_)));
        assert!(svc.step());
        assert_eq!(svc.status(id).unwrap().0, JobStatus::Done);
    }

    #[test]
    fn full_queue_rejects() {
        let svc = manual_service(); // queue_cap 2
        assert!(matches!(svc.submit(req(1), None), Submission::Queued(_)));
        assert!(matches!(svc.submit(req(2), None), Submission::Queued(_)));
        assert_eq!(svc.submit(req(3), None), Submission::QueueFull);
        assert_eq!(svc.stats.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancelling_a_queued_job_prevents_execution() {
        let svc = manual_service();
        let Submission::Queued(id) = svc.submit(req(5), None) else {
            panic!()
        };
        assert!(svc.cancel(id));
        assert_eq!(svc.status(id).unwrap().0, JobStatus::Cancelled);
        assert!(!svc.step(), "cancelled job must not run");
        assert!(!svc.cancel(id), "terminal jobs cannot be re-cancelled");
        // The key is free again: resubmitting queues fresh work.
        assert!(matches!(svc.submit(req(5), None), Submission::Queued(_)));
    }

    #[test]
    fn elapsed_deadline_expires_instead_of_running() {
        let svc = manual_service();
        let Submission::Queued(id) = svc.submit(req(6), Some(Duration::ZERO)) else {
            panic!()
        };
        assert!(svc.step());
        assert_eq!(svc.status(id).unwrap().0, JobStatus::Expired);
        assert_eq!(svc.result(id), None);
        assert_eq!(svc.stats.expired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_pool_completes_jobs_without_manual_stepping() {
        let svc = JobService::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let ids: Vec<JobId> = (0..4)
            .map(|s| match svc.submit(req(100 + s), None) {
                Submission::Queued(id) => id,
                other => panic!("expected queue, got {other:?}"),
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(60);
        for id in ids {
            while svc.status(id).unwrap().0 != JobStatus::Done {
                assert!(Instant::now() < deadline, "worker pool stalled");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        svc.shutdown();
        let metrics = svc.metrics_text();
        assert!(metrics.contains("st_serve_jobs_done_total 4"), "{metrics}");
    }

    #[test]
    fn executed_jobs_mint_chained_witness_records_but_cache_hits_do_not() {
        let svc = manual_service();
        let Submission::Queued(a) = svc.submit(req(21), None) else {
            panic!()
        };
        assert_eq!(svc.witness(a), None, "no witness before execution");
        assert!(svc.step());
        let ra = svc.witness(a).expect("done job carries a record");
        assert!(ra.verify(), "served record must verify offline");
        assert_eq!(ra.seq, 0);
        assert_eq!(ra.prev, st_conformance::witness_genesis());
        assert_eq!(
            ra.ids,
            vec!["ST-CAMP-005".to_owned(), "ST-DET-001".to_owned()]
        );
        // Cache-served registration: no execution, no record; the log
        // keeps chaining from where the real run left it.
        let Submission::Cached(b) = svc.submit(req(21), None) else {
            panic!()
        };
        assert_eq!(svc.witness(b), None);
        let Submission::Queued(c) = svc.submit(req(22), None) else {
            panic!()
        };
        assert!(svc.step());
        let rc = svc.witness(c).unwrap();
        assert_eq!(rc.seq, 1);
        assert_eq!(rc.prev, ra.chain, "records chain in execution order");
        let (head, len, counts) = svc.witness_summary();
        assert_eq!((head, len), (rc.chain, 2));
        assert!(counts.contains(&("ST-DET-001".to_owned(), 2)));
    }

    #[test]
    fn metrics_render_all_series() {
        let svc = manual_service();
        svc.submit(req(1), None);
        svc.step();
        let text = svc.metrics_text();
        for series in [
            "st_serve_queue_depth",
            "st_serve_cache_hit_ratio",
            "st_serve_jobs_per_second",
            "st_serve_job_latency_p50_ms",
            "st_serve_job_latency_p99_ms",
        ] {
            assert!(text.contains(series), "missing {series} in {text}");
        }
    }
}
