//! A minimal, deterministic JSON codec — hand-rolled so `st-serve`
//! stays std-only (no `serde_json`; see the dependency policy in
//! DESIGN.md §7 and the offline builds of `scripts/offline_dev.sh`).
//!
//! Two properties matter here beyond RFC 8259 conformance:
//!
//! * **Determinism** — objects are ordered vectors, not hash maps, so
//!   encoding the same value always produces the same bytes (HTTP
//!   bodies can be compared byte-for-byte in tests and smoke scripts).
//! * **Exact `u64`** — campaign seeds use the full 64-bit range, which
//!   `f64`-only JSON numbers silently corrupt above 2^53. Integer
//!   tokens that fit a `u64` are kept exact in [`Json::UInt`].

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer token, kept exact (seeds are `u64`).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, so encoding is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64` (integer tokens only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Serializes to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                    // `{}` renders integral floats without a point;
                    // keep them re-parsable as the same variant family.
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error,
    /// with its byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // API's payloads; reject rather than emit
                            // garbage.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(self.err("invalid UTF-8")),
                        };
                        let end = start + width;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .and_then(|b| std::str::from_utf8(b).ok())
                            .ok_or_else(|| self.err("invalid UTF-8"))?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ASCII");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Json::obj([
            ("name", Json::str("e1 \"sweep\"\n")),
            (
                "seeds",
                Json::Arr(vec![Json::UInt(u64::MAX), Json::UInt(0)]),
            ),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("ratio", Json::Num(0.5)),
        ]);
        let text = v.encode();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // u64::MAX survives exactly — the reason UInt exists.
        assert_eq!(
            Json::parse(&text)
                .unwrap()
                .get("seeds")
                .unwrap()
                .as_arr()
                .unwrap()[0]
                .as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn encoding_is_deterministic_and_ordered() {
        let v = Json::obj([("b", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(v.encode(), "{\"b\":1,\"a\":2}");
        assert_eq!(v.encode(), v.encode());
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "01a",
            "{\"a\":1,}",
            "[1 2]",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse("\"caf\\u00e9 → naïve\"").unwrap();
        assert_eq!(v.as_str(), Some("café → naïve"));
        let enc = Json::str("tab\tnew\nline").encode();
        assert_eq!(enc, "\"tab\\tnew\\nline\"");
        assert_eq!(Json::parse(&enc).unwrap().as_str(), Some("tab\tnew\nline"));
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(Json::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::parse("2.5e2").unwrap().as_f64(), Some(250.0));
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
    }
}
