//! Multi-node cluster end-to-end tests, over real TCP sockets.
//!
//! Three in-process nodes form a ring (gossip driven manually, like
//! the job service's `workers: 0` stepping, so convergence is under
//! test control, not a race). The claims under test are the cluster's
//! conformance clauses:
//!
//! * **ST-CLU-014** — any node of a healthy cluster returns
//!   byte-identical results: forwarding, remote execution, replica
//!   serving, and stealing are all invisible in the served bytes.
//! * **ST-CLU-015** — replicated entries verify against their content
//!   key: a tampered peer frame is discarded and counted, never
//!   stored.

use st_fabric::Frame;
use st_serve::cluster::{Cluster, ClusterConfig};
use st_serve::hash::ContentKey;
use st_serve::http::{request, Server};
use st_serve::job::{JobRequest, Scenario, SimRequest};
use st_serve::service::{JobService, ServiceConfig};
use st_serve::{JobResult, Json};
use st_sim::time::SimDuration;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use synchro_tokens::Backend;

fn sim_request(seeds: Vec<u64>) -> JobRequest {
    JobRequest::Sim(SimRequest {
        scenario: Scenario::E1,
        backend: Backend::Event,
        seeds,
        cycles: 40,
        trace_cycles: 40,
        budget_fs: SimDuration::us(2000).as_fs(),
    })
}

struct Node {
    server: Server,
    cluster: Arc<Cluster>,
}

impl Node {
    fn addr(&self) -> SocketAddr {
        self.server.addr()
    }
    fn service(&self) -> &Arc<JobService> {
        self.server.service()
    }
}

/// Starts one clustered node seeded with every already-running node.
/// Gossip is manual (`gossip_interval: None`): tests call
/// [`converge`] to drive membership deterministically.
fn start_node(i: usize, seeds: &[&Node]) -> Node {
    let service = JobService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let server = Server::bind("127.0.0.1:0", service).unwrap();
    let cluster = Cluster::start(
        ClusterConfig {
            node_id: format!("n{i}"),
            seeds: seeds.iter().map(|n| n.addr().to_string()).collect(),
            replicas: 2,
            gossip_interval: None,
            ..ClusterConfig::default()
        },
        server.addr(),
        server.service(),
    );
    server.service().attach_cluster(Arc::clone(&cluster));
    Node { server, cluster }
}

fn start_cluster(n: usize) -> Vec<Node> {
    let mut nodes: Vec<Node> = Vec::new();
    for i in 0..n {
        let seeds: Vec<&Node> = nodes.iter().collect();
        let node = start_node(i, &seeds);
        nodes.push(node);
    }
    converge(&nodes, n);
    nodes
}

/// Gossips every node until every ring sees `want` members.
fn converge(nodes: &[Node], want: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        for node in nodes {
            node.cluster.gossip_round();
        }
        if nodes.iter().all(|n| n.cluster.ring().len() == want) {
            return;
        }
        assert!(Instant::now() < deadline, "cluster never converged");
    }
}

fn submit(addr: SocketAddr, req: &JobRequest) -> u64 {
    let body = req.to_json().encode();
    let (code, reply) = request(addr, "POST", "/submit", body.as_bytes()).unwrap();
    assert_eq!(code, 202, "{}", String::from_utf8_lossy(&reply));
    let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    v.get("id").unwrap().as_u64().unwrap()
}

fn wait_done(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, reply) = request(addr, "GET", &format!("/status/{id}"), b"").unwrap();
        assert_eq!(code, 200);
        let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        match v.get("status").unwrap().as_str().unwrap() {
            "done" => return,
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} stalled");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("job {id} ended as {other}"),
        }
    }
}

fn fetch_result(addr: SocketAddr, id: u64) -> Vec<u8> {
    let (code, body) = request(addr, "GET", &format!("/result/{id}"), b"").unwrap();
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    body
}

fn serve_and_fetch(addr: SocketAddr, req: &JobRequest) -> Vec<u8> {
    let id = submit(addr, req);
    wait_done(addr, id);
    fetch_result(addr, id)
}

/// The content key the service will derive for a request — computed
/// client-side so tests can pick submission targets by ring position.
fn key_of(req: &JobRequest) -> ContentKey {
    ContentKey::of(&req.to_canonical_bytes())
}

/// ST-CLU-014, healthy-cluster half: the same campaign submitted to
/// every node of a 3-node cluster serves bytes identical to a
/// single-node baseline — whether a node executed the job, forwarded
/// it to the ring owner, or answered from a replicated entry.
#[test]
fn every_node_of_a_healthy_cluster_serves_byte_identical_results() {
    st_conformance::witnesses!(["ST-CLU-014", "ST-SERVE-010"]);

    // Single-node baseline: no cluster anywhere in the path.
    let baseline_service = JobService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut baseline = Server::bind("127.0.0.1:0", baseline_service).unwrap();
    let req = sim_request(vec![101, 102, 103]);
    let expected = serve_and_fetch(baseline.addr(), &req);
    baseline.shutdown();

    let mut nodes = start_cluster(3);
    for node in &nodes {
        let served = serve_and_fetch(node.addr(), &req);
        assert_eq!(
            served,
            expected,
            "node {} served different bytes",
            node.cluster.node_id()
        );
    }

    // The ring routed at least one of those submissions: two of the
    // three nodes are not the owner, and the first non-owner to see
    // the job forwards it.
    let forwards: u64 = nodes
        .iter()
        .map(|n| n.cluster.stats.forwards.load(Ordering::Relaxed))
        .sum();
    assert!(forwards >= 1, "no submission was ever forwarded");

    // Exactly one execution happened cluster-wide: every other answer
    // came from a store (local, replicated, or peer-probed).
    let executed: u64 = nodes
        .iter()
        .map(|n| n.service().stats.done.load(Ordering::Relaxed))
        .sum();
    let steals: u64 = nodes
        .iter()
        .map(|n| n.cluster.stats.steals.load(Ordering::Relaxed))
        .sum();
    assert_eq!(steals, 0, "no steals in a healthy cluster");
    // finish_remote also counts into done; what must hold is that the
    // *owner* executed once and nothing else recomputed: the store
    // keyed by the content key coalesces all three nodes onto one
    // execution, so total done can exceed 1 only via remote serving,
    // never via recompute. Recompute would show as done > forwards+1.
    assert!(
        executed <= forwards + 1,
        "recompute happened: done={executed} forwards={forwards}"
    );

    // /cluster observability: every node reports the full ring and the
    // counters the routing above produced.
    for node in &nodes {
        let (code, body) = request(node.addr(), "GET", "/cluster", b"").unwrap();
        assert_eq!(code, 200);
        let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(v.get("clustered").unwrap(), &Json::Bool(true));
        let ring_nodes = v
            .get("ring")
            .unwrap()
            .get("nodes")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(ring_nodes.len(), 3);
        assert_eq!(v.get("replicas").unwrap().as_u64(), Some(2));
    }

    for node in &mut nodes {
        node.server.shutdown();
    }
}

/// ST-CLU-014, degraded half: kill the ring owner of a key after it
/// executed and replicated; a node that holds nothing locally still
/// serves byte-identical bytes from the surviving replica. Then kill
/// the replica too and verify the last node *steals* — executes
/// locally — and still matches.
#[test]
fn node_kill_is_served_from_a_replica_then_stolen_when_all_else_fails() {
    st_conformance::witnesses!(["ST-CLU-014"]);
    let mut nodes = start_cluster(3);
    let ring = nodes[0].cluster.ring();

    // Pick seeds whose key places the three nodes in three distinct
    // roles: owner, replica (second successor), and a bystander that
    // is in neither — the bystander is the node whose serving path
    // actually exercises failover.
    let ids: Vec<String> = nodes
        .iter()
        .map(|n| n.cluster.node_id().0.clone())
        .collect();
    let (req, owner_i, replica_i, bystander_i) = (0u64..)
        .find_map(|s| {
            let req = sim_request(vec![s, s + 1]);
            let key = key_of(&req);
            let succ = ring.successors(&key.0, 2);
            if succ.len() != 2 {
                return None;
            }
            let owner_i = ids.iter().position(|i| *i == succ[0].0)?;
            let replica_i = ids.iter().position(|i| *i == succ[1].0)?;
            let bystander_i = (0..3).find(|i| *i != owner_i && *i != replica_i)?;
            Some((req, owner_i, replica_i, bystander_i))
        })
        .unwrap();

    // Execute on the owner: it computes locally and (synchronously,
    // before the job reports done) replicates to the second successor.
    let expected = serve_and_fetch(nodes[owner_i].addr(), &req);
    let key = key_of(&req);
    assert_eq!(
        nodes[replica_i].service().store.get(key).as_deref(),
        Some(expected.as_slice()),
        "replication must land on the second successor"
    );
    assert!(
        nodes[bystander_i].service().store.get(key).is_none(),
        "the bystander holds nothing — its serve must go remote"
    );

    // Kill the owner. No gossip has run, so the survivors still
    // believe it is alive: the probe itself discovers the failure.
    nodes[owner_i].server.shutdown();
    let served = serve_and_fetch(nodes[bystander_i].addr(), &req);
    assert_eq!(served, expected, "replica-served bytes must be identical");
    assert!(
        nodes[bystander_i]
            .cluster
            .stats
            .peer_hits
            .load(Ordering::Relaxed)
            >= 1,
        "the bytes came from a peer store"
    );
    assert_eq!(
        nodes[bystander_i]
            .cluster
            .stats
            .steals
            .load(Ordering::Relaxed),
        0,
        "no steal while a replica survives"
    );

    // Gossip now runs its failure detection: the dead owner turns
    // suspect on the survivors.
    nodes[bystander_i].cluster.gossip_round();
    let (_, body) = request(nodes[bystander_i].addr(), "GET", "/cluster", b"").unwrap();
    let v = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let dead = v
        .get("peers")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|p| p.get("id").unwrap().as_str() == Some(&ids[owner_i]))
        .expect("dead owner still in membership during suspicion window");
    assert_eq!(dead.get("health").unwrap().as_str(), Some("suspect"));

    // Kill the replica too, leaving the bystander alone with a ring
    // that still names three nodes. A fresh campaign whose owner is a
    // dead node must be *stolen*: executed locally, byte-identical to
    // a direct computation.
    nodes[replica_i].server.shutdown();
    let fresh = (1000u64..)
        .find_map(|s| {
            let req = sim_request(vec![s]);
            let owner = ring.owner(&key_of(&req).0);
            (owner.0 != ids[bystander_i]).then_some(req)
        })
        .unwrap();
    let served = serve_and_fetch(nodes[bystander_i].addr(), &fresh);
    let seeds = match &fresh {
        JobRequest::Sim(r) => r.seeds.clone(),
        other => panic!("unexpected request {other:?}"),
    };
    let direct = JobResult::Sim(synchro_tokens::run_jobs(&seeds, 1, |_, &s| match &fresh {
        JobRequest::Sim(r) => st_serve::run_sim_once(r, s),
        other => panic!("unexpected request {other:?}"),
    }))
    .to_canonical_bytes();
    assert_eq!(served, direct, "stolen execution must be byte-identical");
    assert!(
        nodes[bystander_i]
            .cluster
            .stats
            .steals
            .load(Ordering::Relaxed)
            >= 1,
        "the dead-owner campaign was stolen"
    );

    nodes[bystander_i].server.shutdown();
}

/// Join and clean leave: a node joins an existing 2-node cluster via a
/// single seed and everyone converges; when it leaves, entries it
/// holds move to their new owners before the goodbye, and the
/// survivors drop it from the ring immediately (no suspicion window).
#[test]
fn join_and_leave_hand_off_keys_to_their_new_owners() {
    st_conformance::witnesses!(["ST-CLU-015"]);
    let mut nodes = start_cluster(2);

    // Join: the newcomer knows only one seed; gossip introduces it to
    // the rest and every ring agrees on three members.
    let joiner = start_node(2, &[&nodes[0]]);
    nodes.push(joiner);
    converge(&nodes, 3);
    let epoch_after_join = nodes[0].cluster.epoch();

    // Plant an entry that exists *only* on the leaver — content-keyed,
    // so the receiving node's fail-closed verification passes.
    let payload = b"planted campaign bytes".to_vec();
    let key = ContentKey::of(&payload);
    nodes[2].service().store.put(key, payload.clone());

    // Leave: the entry must land on its owner in the ring *without*
    // the leaver.
    let survivors: Vec<st_fabric::NodeId> = nodes[..2]
        .iter()
        .map(|n| n.cluster.node_id().clone())
        .collect();
    let new_owner_id = st_fabric::HashRing::build(&survivors).owner(&key.0).clone();
    let new_owner = nodes[..2]
        .iter()
        .find(|n| *n.cluster.node_id() == new_owner_id)
        .unwrap();
    assert!(new_owner.service().store.get(key).is_none());

    let handed = nodes[2].cluster.leave_and_handoff();
    assert_eq!(handed, 1, "exactly the planted entry moves");
    assert_eq!(
        new_owner.service().store.get(key),
        Some(payload),
        "the new owner verified and stored the handed-off entry"
    );

    // The goodbye removed the leaver immediately: both survivors'
    // rings are back to two nodes, at a fresh epoch.
    for node in &nodes[..2] {
        assert_eq!(node.cluster.ring().len(), 2);
        assert!(node.cluster.epoch() > epoch_after_join);
    }

    for node in &mut nodes {
        node.server.shutdown();
    }
}

/// ST-CLU-015 over the real socket: a replication push whose frame was
/// tampered with in flight is rejected with 400, counted into the
/// shared corrupt-discard ledger, and never stored — for every
/// tampering mode the wire can express.
#[test]
fn corrupt_peer_frames_are_discarded_and_counted_never_stored() {
    st_conformance::witnesses!(["ST-CLU-015", "ST-STORE-011"]);
    let mut nodes = start_cluster(2);
    let target = &nodes[0];
    let payload = b"replicated result bytes".to_vec();
    let key = ContentKey::of(&payload);
    let path = format!("/peer/put/{}", key.to_hex());

    let discards = || {
        target
            .service()
            .store
            .stats
            .corrupt_discards
            .load(Ordering::Relaxed)
    };
    let before = discards();

    // A payload bit flipped after framing: checksum mismatch.
    let mut flipped = Frame {
        key: key.0,
        payload: payload.clone(),
        witness: None,
    }
    .encode();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    let (code, _) = request(target.addr(), "POST", &path, &flipped).unwrap();
    assert_eq!(code, 400);

    // A frame honestly checksummed but carrying a different key than
    // the path names: key mismatch.
    let wrong_key = Frame {
        key: ContentKey::of(b"some other request").0,
        payload: payload.clone(),
        witness: None,
    }
    .encode();
    let (code, _) = request(target.addr(), "POST", &path, &wrong_key).unwrap();
    assert_eq!(code, 400);

    // A witness record lying about the result digest: provenance
    // mismatch, rejected even though the frame verifies internally.
    let mut log = st_conformance::WitnessLog::new();
    let lying = log.append(&["ST-DET-001"], key.0, ContentKey::of(b"other bytes").0);
    let lying_frame = Frame {
        key: key.0,
        payload: payload.clone(),
        witness: Some(lying),
    }
    .encode();
    let (code, _) = request(target.addr(), "POST", &path, &lying_frame).unwrap();
    assert_eq!(code, 400);

    // Not a frame at all.
    let (code, _) = request(target.addr(), "POST", &path, b"garbage").unwrap();
    assert_eq!(code, 400);

    assert_eq!(discards(), before + 4, "every rejection was counted");
    assert!(
        target.service().store.get(key).is_none(),
        "nothing corrupt was stored"
    );

    // The honest frame still lands: fail-closed, not fail-always.
    let good = Frame {
        key: key.0,
        payload: payload.clone(),
        witness: None,
    }
    .encode();
    let (code, body) = request(target.addr(), "POST", &path, &good).unwrap();
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(target.service().store.get(key), Some(payload));
    assert_eq!(discards(), before + 4, "the good frame was not counted");

    for node in &mut nodes {
        node.server.shutdown();
    }
}
