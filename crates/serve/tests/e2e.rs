//! End-to-end tests over a real TCP socket: the served bytes must be
//! *byte-identical* to computing the same campaign directly through
//! `campaign::run_jobs`, on both backends; caching and coalescing must
//! be observable and must never recompute.

use st_serve::http::{request, Server};
use st_serve::job::{JobRequest, Scenario, SimRequest};
use st_serve::service::{JobService, ServiceConfig};
use st_serve::{JobResult, Json};
use st_sim::time::SimDuration;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use synchro_tokens::Backend;

fn sim_request(backend: Backend, seeds: Vec<u64>) -> SimRequest {
    SimRequest {
        scenario: Scenario::E1,
        backend,
        seeds,
        cycles: 40,
        trace_cycles: 40,
        budget_fs: SimDuration::us(2000).as_fs(),
    }
}

fn submit(addr: SocketAddr, req: &JobRequest) -> (String, u64) {
    let body = req.to_json().encode();
    let (code, reply) = request(addr, "POST", "/submit", body.as_bytes()).unwrap();
    assert_eq!(code, 202, "{}", String::from_utf8_lossy(&reply));
    let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    (
        v.get("status").unwrap().as_str().unwrap().to_owned(),
        v.get("id").unwrap().as_u64().unwrap(),
    )
}

fn wait_done(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, reply) = request(addr, "GET", &format!("/status/{id}"), b"").unwrap();
        assert_eq!(code, 200);
        let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        match v.get("status").unwrap().as_str().unwrap() {
            "done" => return,
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} stalled");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("job {id} ended as {other}"),
        }
    }
}

fn fetch_result(addr: SocketAddr, id: u64) -> Vec<u8> {
    let (code, body) = request(addr, "GET", &format!("/result/{id}"), b"").unwrap();
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    body
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (code, body) = request(addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(code, 200);
    let text = String::from_utf8(body).unwrap();
    text.lines()
        .find_map(|l| l.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
}

/// The tentpole assertion: for each backend, the body served over HTTP
/// equals the canonical encoding of the same seeds fanned through
/// `campaign::run_jobs` directly — and the Event and Compiled bodies
/// equal *each other* (the traces a campaign produces are
/// backend-invariant; only the request encodings differ).
#[test]
fn served_results_are_byte_identical_to_direct_run_jobs_on_both_backends() {
    st_conformance::witnesses!(["ST-SERVE-010", "ST-CAMP-005"]);
    let service = JobService::start(ServiceConfig {
        workers: 1,
        threads_per_job: 2,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let seeds = vec![11, 22, 33];

    let mut bodies = Vec::new();
    for backend in [Backend::Event, Backend::Compiled] {
        let req = sim_request(backend, seeds.clone());
        let (status, id) = submit(server.addr(), &JobRequest::Sim(req.clone()));
        assert_eq!(status, "queued");
        wait_done(server.addr(), id);
        let served = fetch_result(server.addr(), id);

        // Direct computation, no service anywhere in the path.
        let direct = JobResult::Sim(synchro_tokens::run_jobs(&seeds, 1, |_, &s| {
            st_serve::run_sim_once(&req, s)
        }))
        .to_canonical_bytes();
        assert_eq!(served, direct, "served bytes differ on {backend:?}");
        bodies.push(served);
    }
    assert_eq!(
        bodies[0], bodies[1],
        "Event and Compiled must serve identical campaign bytes"
    );
    server.shutdown();
}

#[test]
fn resubmission_is_a_cache_hit_served_without_recompute() {
    let service = JobService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let req = JobRequest::Sim(sim_request(Backend::Event, vec![5, 6]));

    let (status, id) = submit(server.addr(), &req);
    assert_eq!(status, "queued");
    wait_done(server.addr(), id);
    let first = fetch_result(server.addr(), id);
    let done_before = metric(server.addr(), "st_serve_jobs_done_total");

    // Identical resubmission: answered from the store.
    let (status, id2) = submit(server.addr(), &req);
    assert_eq!(status, "cached");
    assert_ne!(id2, id, "a cached submission still gets its own job id");
    let second = fetch_result(server.addr(), id2);
    assert_eq!(second, first, "cache hit must serve identical bytes");

    // No recompute happened: the hit counter moved, the done counter
    // did not.
    assert_eq!(
        metric(server.addr(), "st_serve_jobs_done_total"),
        done_before
    );
    assert!(metric(server.addr(), "st_serve_served_cached_total") >= 1);
    assert!(metric(server.addr(), "st_serve_cache_mem_hits_total") >= 1);
    server.shutdown();
}

/// Coalescing, deterministically: with `workers: 0` nothing executes
/// until we say so, so the in-flight window is under test control
/// instead of a race.
#[test]
fn concurrent_identical_submissions_coalesce_onto_one_execution() {
    let service = JobService::start(ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let req = JobRequest::Sim(sim_request(Backend::Compiled, vec![42]));

    let (status, id) = submit(server.addr(), &req);
    assert_eq!(status, "queued");
    // Second submission lands while the first is in flight — even
    // racing HTTP clients funnel into the same coalescing check.
    let (status, id2) = submit(server.addr(), &req);
    assert_eq!(status, "coalesced");
    assert_eq!(id2, id, "coalesced submission shares the original job");
    assert_eq!(metric(server.addr(), "st_serve_coalesced_total"), 1);
    assert_eq!(
        metric(server.addr(), "st_serve_queue_depth"),
        1,
        "one queued execution for two submissions"
    );

    // Execute exactly one job; both ids now resolve to the same bytes.
    assert!(server.service().step());
    assert!(!server.service().step(), "no second execution exists");
    wait_done(server.addr(), id);
    let body = fetch_result(server.addr(), id);
    assert_eq!(fetch_result(server.addr(), id2), body);

    // After completion the flight is over: a third submission is a
    // cache hit, not a coalesce.
    let (status, _) = submit(server.addr(), &req);
    assert_eq!(status, "cached");
    assert_eq!(
        server.service().stats.done.load(Ordering::Relaxed),
        1,
        "exactly one execution for three submissions"
    );
    server.shutdown();
}

#[test]
fn cancel_over_http_stops_a_queued_job() {
    let service = JobService::start(ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let (status, id) = submit(
        server.addr(),
        &JobRequest::Sim(sim_request(Backend::Event, vec![9])),
    );
    assert_eq!(status, "queued");

    let (code, reply) = request(server.addr(), "POST", &format!("/cancel/{id}"), b"").unwrap();
    assert_eq!(code, 200);
    assert_eq!(reply, br#"{"cancelled":true}"#);

    let (code, reply) = request(server.addr(), "GET", &format!("/status/{id}"), b"").unwrap();
    assert_eq!(code, 200);
    let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("cancelled"));
    assert!(!server.service().step(), "cancelled job never runs");

    // Its result is gone for good — and a repeat cancel reports false.
    let (code, _) = request(server.addr(), "GET", &format!("/result/{id}"), b"").unwrap();
    assert_eq!(code, 409);
    let (_, reply) = request(server.addr(), "POST", &format!("/cancel/{id}"), b"").unwrap();
    assert_eq!(reply, br#"{"cancelled":false}"#);
    server.shutdown();
}

#[test]
fn full_queue_backpressure_is_http_503() {
    let service = JobService::start(ServiceConfig {
        workers: 0,
        queue_cap: 1,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let (status, _) = submit(
        server.addr(),
        &JobRequest::Sim(sim_request(Backend::Event, vec![1])),
    );
    assert_eq!(status, "queued");
    let over = JobRequest::Sim(sim_request(Backend::Event, vec![2]));
    let (code, reply) = request(
        server.addr(),
        "POST",
        "/submit",
        over.to_json().encode().as_bytes(),
    )
    .unwrap();
    assert_eq!(code, 503, "{}", String::from_utf8_lossy(&reply));
    server.shutdown();
}

fn status_json(addr: SocketAddr, id: u64) -> Json {
    let (code, reply) = request(addr, "GET", &format!("/status/{id}"), b"").unwrap();
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&reply));
    Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap()
}

fn hex_to_16(s: &str) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
    }
    out
}

/// The witness surface end to end: a completed job's `/status` carries
/// a chained witness record that a client can verify *offline* — and
/// `/conformance` exposes the registry those IDs resolve in, with this
/// instance's runtime tallies and the matching chain head.
#[test]
fn served_witness_records_verify_offline_and_conformance_reports_them() {
    st_conformance::witnesses!(["ST-WIT-013"]);
    let service = JobService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();

    // A multi-seed Compiled sim: the batched-lane path, so the record
    // must name ST-EQ-003 alongside the always-witnessed clauses.
    let (status, id) = submit(
        server.addr(),
        &JobRequest::Sim(sim_request(Backend::Compiled, vec![71, 72])),
    );
    assert_eq!(status, "queued");
    wait_done(server.addr(), id);

    let v = status_json(server.addr(), id);
    let w = v.get("witness").expect("done job carries witness metadata");
    let ids: Vec<String> = w
        .get("requirements")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|j| j.as_str().unwrap().to_owned())
        .collect();
    assert_eq!(ids, ["ST-CAMP-005", "ST-DET-001", "ST-EQ-003"]);

    // Reconstruct the record from the wire fields alone and verify the
    // chain hash — no access to the server-side log.
    let record = st_conformance::WitnessRecord {
        seq: w.get("seq").unwrap().as_u64().unwrap(),
        ids: ids.clone(),
        config: hex_to_16(w.get("config").unwrap().as_str().unwrap()),
        result: hex_to_16(w.get("result").unwrap().as_str().unwrap()),
        prev: u64::from_str_radix(w.get("prev").unwrap().as_str().unwrap(), 16).unwrap(),
        chain: u64::from_str_radix(w.get("chain").unwrap().as_str().unwrap(), 16).unwrap(),
    };
    assert!(record.verify(), "served witness must verify offline");
    assert_eq!(record.seq, 0, "first execution on this instance");
    assert_eq!(record.prev, st_conformance::witness_genesis());
    // The record's config key is the job's content key — the same hex
    // the submit reply advertised.
    assert_eq!(
        st_conformance::key_hex(record.config),
        v.get("key").unwrap().as_str().unwrap()
    );

    // /conformance: full registry, runtime tallies, matching head.
    let (code, body) = request(server.addr(), "GET", "/conformance", b"").unwrap();
    assert_eq!(code, 200);
    let c = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let registry = st_conformance::Registry::builtin();
    assert_eq!(
        c.get("registry_hash").unwrap().as_str().unwrap(),
        st_conformance::key_hex(registry.content_hash())
    );
    assert_eq!(
        c.get("witness_head").unwrap().as_str().unwrap(),
        format!("{:016x}", record.chain),
        "the log head is this sole record's chain value"
    );
    assert_eq!(c.get("witness_records").unwrap().as_u64(), Some(1));
    let reqs = c.get("requirements").unwrap().as_arr().unwrap();
    assert_eq!(reqs.len(), registry.requirements.len());
    for r in reqs {
        let rid = r.get("id").unwrap().as_str().unwrap();
        let witnessed = r.get("witnessed").unwrap().as_u64().unwrap();
        if ids.iter().any(|i| i == rid) {
            assert_eq!(witnessed, 1, "{rid} was exercised by the job");
        } else {
            assert_eq!(witnessed, 0, "{rid} was not exercised");
        }
    }
    server.shutdown();
}

/// Negative paths over the real socket: every malformed or unserviceable
/// request must come back as a clean client error, never a hang or a
/// connection drop.
#[test]
fn malformed_requests_fail_clean_over_http() {
    let service = JobService::start(ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();

    // Body that is not JSON at all.
    let (code, reply) = request(server.addr(), "POST", "/submit", b"{not json!").unwrap();
    assert_eq!(code, 400, "{}", String::from_utf8_lossy(&reply));
    let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert!(v.get("error").unwrap().as_str().unwrap().contains("JSON"));

    // Valid JSON, bogus job shape.
    let (code, _) = request(server.addr(), "POST", "/submit", br#"{"type":"warp"}"#).unwrap();
    assert_eq!(code, 400);

    // Unknown endpoint, and an id path that is not a number.
    let (code, _) = request(server.addr(), "GET", "/jobs/all", b"").unwrap();
    assert_eq!(code, 404);
    let (code, _) = request(server.addr(), "GET", "/status/banana", b"").unwrap();
    assert_eq!(code, 404);

    // A request line past MAX_HEAD: rejected promptly, not buffered
    // forever. The server answers 400 and closes with client bytes
    // still unread, so the client legitimately sees either the reply
    // or a reset — what it must never see is a hang or a 2xx.
    let huge = format!("/{}", "a".repeat(20 * 1024));
    match request(server.addr(), "GET", &huge, b"") {
        Ok((code, reply)) => assert_eq!(code, 400, "{}", String::from_utf8_lossy(&reply)),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected transport error: {e}"
        ),
    }

    // The server is still healthy after all of the abuse.
    let (code, _) = request(server.addr(), "GET", "/healthz", b"").unwrap();
    assert_eq!(code, 200);
    server.shutdown();
}

/// Cancelling a job *while a worker is executing it*: the cooperative
/// token stops the campaign at a sub-job boundary, the job classifies
/// as `cancelled`, and its result is gone for good.
#[test]
fn cancel_mid_run_stops_an_executing_job() {
    let service = JobService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    // Enough independent seeds that the run is still in progress when
    // the cancel lands (each seed is one cooperative check point).
    let seeds: Vec<u64> = (0..3000).collect();
    let (status, id) = submit(
        server.addr(),
        &JobRequest::Sim(sim_request(Backend::Event, seeds)),
    );
    assert_eq!(status, "queued");

    // Catch it running, then cancel. If the machine is so fast the job
    // finishes first, the cancel returns false and we skip — but the
    // common path is the one under test.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let v = status_json(server.addr(), id);
        match v.get("status").unwrap().as_str().unwrap() {
            "running" => break,
            "queued" => assert!(Instant::now() < deadline, "job never started"),
            other => panic!("job reached {other} before it could be cancelled"),
        }
    }
    let (code, reply) = request(server.addr(), "POST", &format!("/cancel/{id}"), b"").unwrap();
    assert_eq!(code, 200);
    assert_eq!(reply, br#"{"cancelled":true}"#);

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let v = status_json(server.addr(), id);
        match v.get("status").unwrap().as_str().unwrap() {
            "cancelled" => break,
            "running" => {
                assert!(Instant::now() < deadline, "cancel never took effect");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("cancelled job ended as {other}"),
        }
    }
    let (code, _) = request(server.addr(), "GET", &format!("/result/{id}"), b"").unwrap();
    assert_eq!(code, 409, "a cancelled job has no result");
    assert_eq!(metric(server.addr(), "st_serve_jobs_cancelled_total"), 1);
    server.shutdown();
}

/// A submission whose deadline has already elapsed when a worker picks
/// it up: classified `expired`, with the error text on `/status` and a
/// 409 on `/result`.
#[test]
fn expired_deadline_classifies_and_serves_no_result() {
    let service = JobService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let req = JobRequest::Sim(sim_request(Backend::Event, vec![314]));
    let mut body = match req.to_json() {
        Json::Obj(fields) => fields,
        other => panic!("job JSON must be an object, got {other:?}"),
    };
    body.push(("deadline_ms".to_owned(), Json::UInt(0)));
    let encoded = Json::Obj(body).encode();
    let (code, reply) = request(server.addr(), "POST", "/submit", encoded.as_bytes()).unwrap();
    assert_eq!(code, 202, "{}", String::from_utf8_lossy(&reply));
    let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    let id = v.get("id").unwrap().as_u64().unwrap();

    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let v = status_json(server.addr(), id);
        match v.get("status").unwrap().as_str().unwrap() {
            "expired" => {
                assert_eq!(
                    v.get("error").unwrap().as_str(),
                    Some("deadline exceeded"),
                    "expiry carries its reason"
                );
                assert!(v.get("witness").is_none(), "no witness for expired work");
                break;
            }
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job never expired");
                std::thread::sleep(Duration::from_millis(2));
            }
            other => panic!("zero-deadline job ended as {other}"),
        }
    }
    let (code, _) = request(server.addr(), "GET", &format!("/result/{id}"), b"").unwrap();
    assert_eq!(code, 409);
    assert_eq!(metric(server.addr(), "st_serve_jobs_expired_total"), 1);
    server.shutdown();
}

/// `ST_SERVE_THREADS` / `ST_SERVE_CACHE_DIR` resolution. One test owns
/// both variables — env mutation must not race other tests.
#[test]
fn serve_env_knobs_follow_the_st_threads_contract() {
    let base = || ServiceConfig {
        workers: 7,
        ..ServiceConfig::default()
    };
    std::env::remove_var("ST_SERVE_THREADS");
    std::env::remove_var("ST_SERVE_CACHE_DIR");
    let cfg = base().from_env();
    assert_eq!(cfg.workers, 7, "unset leaves the default");
    assert_eq!(cfg.cache_dir, None);

    std::env::set_var("ST_SERVE_THREADS", "3");
    assert_eq!(base().from_env().workers, 3);

    std::env::set_var("ST_SERVE_THREADS", "0");
    assert_eq!(base().from_env().workers, 1, "zero clamps to one");

    std::env::set_var("ST_SERVE_THREADS", "banana");
    assert_eq!(base().from_env().workers, 7, "garbage warns and is ignored");

    std::env::set_var("ST_SERVE_CACHE_DIR", "/tmp/st-serve-knob-test");
    assert_eq!(
        base().from_env().cache_dir.as_deref(),
        Some(std::path::Path::new("/tmp/st-serve-knob-test"))
    );
    std::env::set_var("ST_SERVE_CACHE_DIR", "");
    assert_eq!(base().from_env().cache_dir, None, "empty disables");

    std::env::remove_var("ST_SERVE_THREADS");
    std::env::remove_var("ST_SERVE_CACHE_DIR");
}
