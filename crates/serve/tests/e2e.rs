//! End-to-end tests over a real TCP socket: the served bytes must be
//! *byte-identical* to computing the same campaign directly through
//! `campaign::run_jobs`, on both backends; caching and coalescing must
//! be observable and must never recompute.

use st_serve::http::{request, Server};
use st_serve::job::{JobRequest, Scenario, SimRequest};
use st_serve::service::{JobService, ServiceConfig};
use st_serve::{JobResult, Json};
use st_sim::time::SimDuration;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use synchro_tokens::Backend;

fn sim_request(backend: Backend, seeds: Vec<u64>) -> SimRequest {
    SimRequest {
        scenario: Scenario::E1,
        backend,
        seeds,
        cycles: 40,
        trace_cycles: 40,
        budget_fs: SimDuration::us(2000).as_fs(),
    }
}

fn submit(addr: SocketAddr, req: &JobRequest) -> (String, u64) {
    let body = req.to_json().encode();
    let (code, reply) = request(addr, "POST", "/submit", body.as_bytes()).unwrap();
    assert_eq!(code, 202, "{}", String::from_utf8_lossy(&reply));
    let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    (
        v.get("status").unwrap().as_str().unwrap().to_owned(),
        v.get("id").unwrap().as_u64().unwrap(),
    )
}

fn wait_done(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, reply) = request(addr, "GET", &format!("/status/{id}"), b"").unwrap();
        assert_eq!(code, 200);
        let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
        match v.get("status").unwrap().as_str().unwrap() {
            "done" => return,
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} stalled");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("job {id} ended as {other}"),
        }
    }
}

fn fetch_result(addr: SocketAddr, id: u64) -> Vec<u8> {
    let (code, body) = request(addr, "GET", &format!("/result/{id}"), b"").unwrap();
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    body
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (code, body) = request(addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(code, 200);
    let text = String::from_utf8(body).unwrap();
    text.lines()
        .find_map(|l| l.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
}

/// The tentpole assertion: for each backend, the body served over HTTP
/// equals the canonical encoding of the same seeds fanned through
/// `campaign::run_jobs` directly — and the Event and Compiled bodies
/// equal *each other* (the traces a campaign produces are
/// backend-invariant; only the request encodings differ).
#[test]
fn served_results_are_byte_identical_to_direct_run_jobs_on_both_backends() {
    let service = JobService::start(ServiceConfig {
        workers: 1,
        threads_per_job: 2,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let seeds = vec![11, 22, 33];

    let mut bodies = Vec::new();
    for backend in [Backend::Event, Backend::Compiled] {
        let req = sim_request(backend, seeds.clone());
        let (status, id) = submit(server.addr(), &JobRequest::Sim(req.clone()));
        assert_eq!(status, "queued");
        wait_done(server.addr(), id);
        let served = fetch_result(server.addr(), id);

        // Direct computation, no service anywhere in the path.
        let direct = JobResult::Sim(synchro_tokens::run_jobs(&seeds, 1, |_, &s| {
            st_serve::run_sim_once(&req, s)
        }))
        .to_canonical_bytes();
        assert_eq!(served, direct, "served bytes differ on {backend:?}");
        bodies.push(served);
    }
    assert_eq!(
        bodies[0], bodies[1],
        "Event and Compiled must serve identical campaign bytes"
    );
    server.shutdown();
}

#[test]
fn resubmission_is_a_cache_hit_served_without_recompute() {
    let service = JobService::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let req = JobRequest::Sim(sim_request(Backend::Event, vec![5, 6]));

    let (status, id) = submit(server.addr(), &req);
    assert_eq!(status, "queued");
    wait_done(server.addr(), id);
    let first = fetch_result(server.addr(), id);
    let done_before = metric(server.addr(), "st_serve_jobs_done_total");

    // Identical resubmission: answered from the store.
    let (status, id2) = submit(server.addr(), &req);
    assert_eq!(status, "cached");
    assert_ne!(id2, id, "a cached submission still gets its own job id");
    let second = fetch_result(server.addr(), id2);
    assert_eq!(second, first, "cache hit must serve identical bytes");

    // No recompute happened: the hit counter moved, the done counter
    // did not.
    assert_eq!(
        metric(server.addr(), "st_serve_jobs_done_total"),
        done_before
    );
    assert!(metric(server.addr(), "st_serve_served_cached_total") >= 1);
    assert!(metric(server.addr(), "st_serve_cache_mem_hits_total") >= 1);
    server.shutdown();
}

/// Coalescing, deterministically: with `workers: 0` nothing executes
/// until we say so, so the in-flight window is under test control
/// instead of a race.
#[test]
fn concurrent_identical_submissions_coalesce_onto_one_execution() {
    let service = JobService::start(ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let req = JobRequest::Sim(sim_request(Backend::Compiled, vec![42]));

    let (status, id) = submit(server.addr(), &req);
    assert_eq!(status, "queued");
    // Second submission lands while the first is in flight — even
    // racing HTTP clients funnel into the same coalescing check.
    let (status, id2) = submit(server.addr(), &req);
    assert_eq!(status, "coalesced");
    assert_eq!(id2, id, "coalesced submission shares the original job");
    assert_eq!(metric(server.addr(), "st_serve_coalesced_total"), 1);
    assert_eq!(
        metric(server.addr(), "st_serve_queue_depth"),
        1,
        "one queued execution for two submissions"
    );

    // Execute exactly one job; both ids now resolve to the same bytes.
    assert!(server.service().step());
    assert!(!server.service().step(), "no second execution exists");
    wait_done(server.addr(), id);
    let body = fetch_result(server.addr(), id);
    assert_eq!(fetch_result(server.addr(), id2), body);

    // After completion the flight is over: a third submission is a
    // cache hit, not a coalesce.
    let (status, _) = submit(server.addr(), &req);
    assert_eq!(status, "cached");
    assert_eq!(
        server.service().stats.done.load(Ordering::Relaxed),
        1,
        "exactly one execution for three submissions"
    );
    server.shutdown();
}

#[test]
fn cancel_over_http_stops_a_queued_job() {
    let service = JobService::start(ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let (status, id) = submit(
        server.addr(),
        &JobRequest::Sim(sim_request(Backend::Event, vec![9])),
    );
    assert_eq!(status, "queued");

    let (code, reply) = request(server.addr(), "POST", &format!("/cancel/{id}"), b"").unwrap();
    assert_eq!(code, 200);
    assert_eq!(reply, br#"{"cancelled":true}"#);

    let (code, reply) = request(server.addr(), "GET", &format!("/status/{id}"), b"").unwrap();
    assert_eq!(code, 200);
    let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("cancelled"));
    assert!(!server.service().step(), "cancelled job never runs");

    // Its result is gone for good — and a repeat cancel reports false.
    let (code, _) = request(server.addr(), "GET", &format!("/result/{id}"), b"").unwrap();
    assert_eq!(code, 409);
    let (_, reply) = request(server.addr(), "POST", &format!("/cancel/{id}"), b"").unwrap();
    assert_eq!(reply, br#"{"cancelled":false}"#);
    server.shutdown();
}

#[test]
fn full_queue_backpressure_is_http_503() {
    let service = JobService::start(ServiceConfig {
        workers: 0,
        queue_cap: 1,
        ..ServiceConfig::default()
    });
    let mut server = Server::bind("127.0.0.1:0", service).unwrap();
    let (status, _) = submit(
        server.addr(),
        &JobRequest::Sim(sim_request(Backend::Event, vec![1])),
    );
    assert_eq!(status, "queued");
    let over = JobRequest::Sim(sim_request(Backend::Event, vec![2]));
    let (code, reply) = request(
        server.addr(),
        "POST",
        "/submit",
        over.to_json().encode().as_bytes(),
    )
    .unwrap();
    assert_eq!(code, 503, "{}", String::from_utf8_lossy(&reply));
    server.shutdown();
}

/// `ST_SERVE_THREADS` / `ST_SERVE_CACHE_DIR` resolution. One test owns
/// both variables — env mutation must not race other tests.
#[test]
fn serve_env_knobs_follow_the_st_threads_contract() {
    let base = || ServiceConfig {
        workers: 7,
        ..ServiceConfig::default()
    };
    std::env::remove_var("ST_SERVE_THREADS");
    std::env::remove_var("ST_SERVE_CACHE_DIR");
    let cfg = base().from_env();
    assert_eq!(cfg.workers, 7, "unset leaves the default");
    assert_eq!(cfg.cache_dir, None);

    std::env::set_var("ST_SERVE_THREADS", "3");
    assert_eq!(base().from_env().workers, 3);

    std::env::set_var("ST_SERVE_THREADS", "0");
    assert_eq!(base().from_env().workers, 1, "zero clamps to one");

    std::env::set_var("ST_SERVE_THREADS", "banana");
    assert_eq!(base().from_env().workers, 7, "garbage warns and is ignored");

    std::env::set_var("ST_SERVE_CACHE_DIR", "/tmp/st-serve-knob-test");
    assert_eq!(
        base().from_env().cache_dir.as_deref(),
        Some(std::path::Path::new("/tmp/st-serve-knob-test"))
    );
    std::env::set_var("ST_SERVE_CACHE_DIR", "");
    assert_eq!(base().from_env().cache_dir, None, "empty disables");

    std::env::remove_var("ST_SERVE_THREADS");
    std::env::remove_var("ST_SERVE_CACHE_DIR");
}
