//! Batched lane-parallel backend: N configurations in one engine.
//!
//! Campaigns over synchro-token systems (shmoo grids, chaos sweeps,
//! seed replications) run thousands of *near-identical* configurations.
//! Under the paper's determinism property each configuration's whole
//! behaviour is a pure function of its spec — so two lanes built from
//! the *same* spec make exactly the same control-flow decisions at
//! exactly the same instants, and the event loop, clock machinery, FIFO
//! occupancy evolution and token-ring FSMs only need to run **once**
//! for all of them. [`BatchedSystem`] exploits this with
//! *shared-control lockstep groups*:
//!
//! * **Shared control state** (one copy per group): the typed-event
//!   heap, per-SB clock slots, FIFO occupancy bitmasks and move
//!   cascades, node FSMs, cycle/edge/stop counters, timing-violation
//!   and dropped-word counters. This is the bulk of the scalar
//!   [`CompiledSystem`]'s per-run cost, amortized over every lane.
//! * **Per-lane data columns**: FIFO words (`Vec<u64>` stage-major
//!   columns), the `SyncLogic` instances, and the `SbIoTrace` rows.
//!   In-flight `Push` events carry one word per lane.
//!
//! # Group formation and divergence
//!
//! Lanes are grouped at build time by *full spec equality* (plus trace
//! limit), capped at a configurable lane count; lanes carrying a fault
//! plan start as singleton groups (their jitter perturbs event timing
//! immediately, so they share nothing). Within a group the only way
//! per-lane data can influence control flow is through the logic's
//! *send decision* on a rising edge — whether each output slot was
//! filled, against each slot's `can_send`. The engine detects this at
//! the tick: it partitions lanes by their `(word written, can_send)`
//! pattern, and on the first disagreement **splits the group** —
//! control state is cloned per partition, per-lane columns are
//! redistributed, and each subgroup finishes the rising edge with its
//! own (now uniform) pattern and runs on independently. Splitting is
//! permanent and exact: a split lane's observable behaviour is
//! byte-identical to its scalar run from the first divergent edge
//! onward, because the cloned control state *is* the scalar state.
//!
//! # Equivalence
//!
//! Every lane is **observationally byte-identical** to the scalar
//! [`CompiledSystem`] run of its builder (which is itself
//! byte-identical to the event backend): I/O trace rows, cycle counts,
//! edge times, clock/FIFO statistics, end times, outcomes, and even
//! the processed-event counts match exactly. `tests/batched_equiv.rs`
//! enforces this differentially under proptest, including adversarial
//! divergence schedules and per-lane fault plans.
//!
//! # Support envelope
//!
//! The scalar compiled envelope ([`CompiledSystem`]'s `supports`),
//! plus: at most 32 output channels per SB (the divergence pattern
//! packs two bits per output into a `u64`). [`BatchedSystem::build`]
//! hands the builders back untouched when any lane is unsupported, so
//! callers fall back to scalar backends without rebuilding.

use crate::checkpoint::{
    config_hash, encode_compiled_payload, Checkpoint, CheckpointBackend, CheckpointError,
    CompiledEvDump, CompiledFifoDump, CompiledSbDump, CompiledStateDump,
};
use crate::compiled_system::{
    slot_key, slot_time, ChaosState, ClockSlots, CompiledSystem, SLOT_EMPTY,
};
use crate::faults::{DataAction, TokenPassAction};
use crate::iotrace::{DigestHasher, SbIoTrace, TraceRow};
use crate::logic::{IdleLogic, InputView, OutputSlot, SbIo, SyncLogic};
use crate::node::{NodeFsm, TokenAction};
use crate::spec::{ChannelId, RingId, SbId, SystemSpec};
use crate::system::{RunOutcome, SystemBuilder};
use crate::wrapper::BUNDLE_DELAY;
use st_sim::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::{Hash, Hasher};
use std::mem;

/// A typed event, batched flavour: identical to the scalar engine's
/// except that a push carries one word per lane (lane-slot order).
#[derive(Debug, Clone)]
enum BEvKind {
    /// Bundled-data words arrive at channel `ch`'s tail, one per lane.
    Push { ch: u32, words: Box<[u64]> },
    /// The consumer's acknowledge arrives at channel `ch`'s head.
    Pop { ch: u32 },
    /// The word in `stage` of channel `ch` attempts to advance.
    Move { ch: u32, stage: u32 },
    /// A token toggle arrives at node `node` of SB `sb`.
    Token { sb: u32, node: u32 },
    /// SB `sb`'s clock enable takes value `ena`.
    Clken { sb: u32, ena: bool },
}

/// Heap entry ordered by `(time, seq)`; seqs are unique so the payload
/// is ignored — the shared seq stream is identical to each lane's
/// scalar stream while the group is in lockstep.
#[derive(Debug, Clone)]
struct BEv {
    time: SimTime,
    seq: u64,
    kind: BEvKind,
}

impl PartialEq for BEv {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for BEv {}
impl PartialOrd for BEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

#[inline]
fn sched(heap: &mut BinaryHeap<Reverse<BEv>>, seq: &mut u64, time: SimTime, kind: BEvKind) {
    let s = *seq;
    *seq += 1;
    heap.push(Reverse(BEv { time, seq: s, kind }));
}

/// One token-ring node with its pass destination pre-resolved (the
/// batched twin of the scalar engine's compiled node; control state,
/// so one copy per group).
#[derive(Debug, Clone)]
struct BNode {
    ring: RingId,
    fsm: NodeFsm,
    dest_sb: u32,
    dest_node: u32,
    pass_delay: SimDuration,
    to_holder: bool,
}

/// Columnar per-lane I/O trace: row fields append to flat vectors, so
/// the steady state records without per-row allocations (a [`TraceRow`]
/// costs two `Vec`s, which would dominate batched per-lane time). A
/// real [`SbIoTrace`] materializes once, on first access; digests
/// stream without materializing at all.
struct BTrace {
    limit: usize,
    n_in: usize,
    n_out: usize,
    rows: usize,
    cycles: Vec<u64>,
    /// Row-major, `n_in` entries per row.
    reads: Vec<Option<u64>>,
    /// Row-major, `n_out` entries per row.
    writes: Vec<Option<u64>>,
    /// Materialized view, built lazily and dropped on new rows.
    cache: Option<SbIoTrace>,
    /// Running digest over every recorded row, folded per edge as the
    /// row lands (so [`digest`](Self::digest) is O(1) instead of a
    /// whole-trace post-pass at verdict time).
    hasher: DigestHasher,
    /// Reusable scratch row for the per-edge fold: hashing must go
    /// through a real [`TraceRow`] so the stream is bit-identical to
    /// [`SbIoTrace::digest`]'s derived-`Hash` sequence.
    scratch: TraceRow,
}

impl BTrace {
    fn with_limit(limit: usize, n_in: usize, n_out: usize) -> BTrace {
        BTrace {
            limit,
            n_in,
            n_out,
            rows: 0,
            cycles: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
            cache: None,
            hasher: DigestHasher::default(),
            scratch: TraceRow {
                cycle: 0,
                reads: Vec::with_capacity(n_in),
                writes: Vec::with_capacity(n_out),
            },
        }
    }

    /// Mirrors [`SbIoTrace::is_full`].
    fn is_full(&self) -> bool {
        self.limit != 0 && self.rows >= self.limit
    }

    fn row(&self, r: usize) -> TraceRow {
        TraceRow {
            cycle: self.cycles[r],
            reads: self.reads[r * self.n_in..(r + 1) * self.n_in].to_vec(),
            writes: self.writes[r * self.n_out..(r + 1) * self.n_out].to_vec(),
        }
    }

    /// The equivalent [`SbIoTrace`], built on first use and cached.
    fn materialize(&mut self) -> &SbIoTrace {
        if self.cache.is_none() {
            let mut t = SbIoTrace::with_limit(self.limit);
            for r in 0..self.rows {
                t.record(self.row(r));
            }
            self.cache = Some(t);
        }
        self.cache.as_ref().expect("just filled")
    }

    /// Folds the most recently recorded row into the running digest —
    /// called once per recording edge, right after the row's fields
    /// land in the columnar vectors. The scratch row replays the exact
    /// derived-`Hash` sequence a materialized [`TraceRow`] would emit.
    fn fold_last_row(&mut self) {
        let r = self.rows - 1;
        self.scratch.cycle = self.cycles[r];
        self.scratch.reads.clear();
        self.scratch
            .reads
            .extend_from_slice(&self.reads[r * self.n_in..(r + 1) * self.n_in]);
        self.scratch.writes.clear();
        self.scratch
            .writes
            .extend_from_slice(&self.writes[r * self.n_out..(r + 1) * self.n_out]);
        self.scratch.hash(&mut self.hasher);
    }

    /// [`SbIoTrace::digest`] without materializing (or even walking)
    /// the rows: every row was folded into the running hasher as it
    /// was recorded, so only the finalizer remains.
    fn digest(&self) -> u64 {
        self.hasher.finish()
    }
}

/// Per-SB state: shared control scalars plus per-lane columns.
struct BSb {
    half: SimDuration,
    restart_delay: SimDuration,
    logic_delay: SimDuration,
    /// Per-lane synchronous logic (lane-slot order).
    logics: Vec<Box<dyn SyncLogic>>,
    nodes: Vec<BNode>,
    inputs: Vec<(u32, u32)>,
    outputs: Vec<(u32, u32)>,
    clk_high: bool,
    parked: bool,
    clken: bool,
    edges: u64,
    clock_stops: u64,
    cycle: u64,
    /// Per-lane determinism traces (lane-slot order). Within a group
    /// every lane records the same number of rows, so the recording
    /// flag is shared.
    traces: Vec<BTrace>,
    dropped_words: u64,
    timing_violations: u64,
    last_edge: Option<SimTime>,
    edge_times: Vec<SimTime>,
    edge_times_cap: usize,
    // Per-edge scratch, reused so the steady state allocates nothing.
    views: Vec<InputView>,
    slots: Vec<OutputSlot>,
    pops: Vec<bool>,
    /// Per input: `(interfaces enabled, head occupied)` — the shared
    /// shape of this edge's input views.
    shapes: Vec<(bool, bool)>,
    /// Per output: shared `can_send` snapshot.
    can_send: Vec<bool>,
}

impl BSb {
    /// A copy of the shared control state with fresh per-lane columns
    /// (the split primitive). Most per-edge scratch comes back empty,
    /// but `pops` is carried over: a divergence split happens *inside*
    /// a rising edge, after the pop decisions were taken but before
    /// `finish_posedge` schedules the input acknowledgments — every
    /// partition must still acknowledge the words its lanes consumed
    /// on the split edge.
    fn control_clone(&self, logics: Vec<Box<dyn SyncLogic>>, traces: Vec<BTrace>) -> BSb {
        BSb {
            half: self.half,
            restart_delay: self.restart_delay,
            logic_delay: self.logic_delay,
            logics,
            nodes: self.nodes.clone(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
            clk_high: self.clk_high,
            parked: self.parked,
            clken: self.clken,
            edges: self.edges,
            clock_stops: self.clock_stops,
            cycle: self.cycle,
            traces,
            dropped_words: self.dropped_words,
            timing_violations: self.timing_violations,
            last_edge: self.last_edge,
            edge_times: self.edge_times.clone(),
            edge_times_cap: self.edge_times_cap,
            views: Vec::with_capacity(self.inputs.len()),
            slots: Vec::with_capacity(self.outputs.len()),
            pops: self.pops.clone(),
            shapes: Vec::with_capacity(self.inputs.len()),
            can_send: Vec::with_capacity(self.outputs.len()),
        }
    }
}

/// Per-channel FIFO: shared occupancy/cascade control, per-lane word
/// columns (`words[stage * lanes + slot]`).
#[derive(Debug)]
struct BFifo {
    occ: u64,
    words: Vec<u64>,
    depth: u32,
    stage_delay: SimDuration,
    virtualized: bool,
    pending: Vec<(SimTime, u32)>,
    pushes: u64,
    pops: u64,
    overruns: u64,
    underruns: u64,
}

impl BFifo {
    fn control_clone(&self, words: Vec<u64>) -> BFifo {
        BFifo {
            occ: self.occ,
            words,
            depth: self.depth,
            stage_delay: self.stage_delay,
            virtualized: self.virtualized,
            pending: self.pending.clone(),
            pushes: self.pushes,
            pops: self.pops,
            overruns: self.overruns,
            underruns: self.underruns,
        }
    }

    /// Queues a stage-advance attempt on a virtualized channel (stable
    /// insert by fire time, as in the scalar engine).
    #[inline]
    fn queue_move(&mut self, at: SimTime, stage: u32) {
        if self.pending.last().is_none_or(|&(t, _)| t <= at) {
            self.pending.push((at, stage));
        } else {
            let pos = self.pending.partition_point(|&(t, _)| t <= at);
            self.pending.insert(pos, (at, stage));
        }
    }

    /// Applies every pending stage advance with fire time `<= upto`,
    /// counting each application like a dispatched event.
    fn drain(&mut self, upto: SimTime, events: &mut u64, lanes: usize) {
        let mut i = 0;
        while let Some(&(at, stage)) = self.pending.get(i) {
            if at > upto {
                break;
            }
            i += 1;
            self.apply_move(at, stage as usize, lanes);
        }
        if i > 0 {
            *events += i as u64;
            self.pending.drain(..i);
        }
    }

    /// One stage-advance attempt on a virtualized channel; the word
    /// copy moves the whole lane column.
    fn apply_move(&mut self, now: SimTime, stage: usize, lanes: usize) {
        let bit = 1u64 << stage;
        if self.occ & bit == 0 {
            return; // Stale movement.
        }
        if self.occ & (bit << 1) != 0 {
            return; // Blocked; a later pop/advance requeues.
        }
        self.occ ^= bit | (bit << 1);
        self.words
            .copy_within(stage * lanes..(stage + 1) * lanes, (stage + 1) * lanes);
        if stage as u32 + 2 < self.depth {
            self.queue_move(now + self.stage_delay, (stage + 1) as u32);
        }
        if stage > 0 && self.occ & (bit >> 1) != 0 {
            self.queue_move(now + self.stage_delay, (stage - 1) as u32);
        }
    }
}

/// One lockstep group: the scalar compiled engine with per-lane data
/// columns. All control flow (and the `seq` stream) is shared, so it
/// equals every member lane's scalar run while the group holds.
struct Group {
    spec: SystemSpec,
    trace_limit: usize,
    /// Global lane ids, in lane-slot order.
    lanes: Vec<usize>,
    sbs: Vec<BSb>,
    fifos: Vec<BFifo>,
    clk: Vec<ClockSlots>,
    heap: BinaryHeap<Reverse<BEv>>,
    now: SimTime,
    seq: u64,
    events: u64,
    /// Fault-injection mirror — only ever present on singleton groups
    /// (faulted lanes never share control state).
    chaos: Option<Box<ChaosState>>,
    /// Outcome of the latest `run_until_cycles` drive.
    outcome: Option<RunOutcome>,
    /// Per-edge scratch (lane-major output words), reused so the
    /// steady state allocates nothing.
    scratch_out: Vec<Option<u64>>,
    /// Per-edge scratch (per-lane divergence patterns).
    scratch_pat: Vec<u64>,
}

impl Group {
    /// Lowers one group of spec-identical builders. Mirrors the scalar
    /// `CompiledSystem::lower` exactly, with columns per lane.
    fn lower(mut builders: Vec<SystemBuilder>, lanes: Vec<usize>) -> Group {
        let nl = builders.len();
        debug_assert_eq!(nl, lanes.len());
        let spec = builders[0].spec.clone();
        let trace_limit = builders[0].trace_limit;
        let chaos = if nl == 1 {
            let (rings, channels) = (spec.rings.len(), spec.channels.len());
            builders[0]
                .faults
                .take()
                .and_then(|p| ChaosState::from_plan(p, rings, channels))
        } else {
            debug_assert!(
                builders.iter().all(|b| b.faults.is_none()),
                "faulted lanes must be singleton groups"
            );
            None
        };

        let fifos: Vec<BFifo> = spec
            .channels
            .iter()
            .map(|ch| BFifo {
                occ: 0,
                words: vec![0; ch.fifo_depth * nl],
                depth: ch.fifo_depth as u32,
                stage_delay: ch.stage_delay,
                virtualized: ch.stage_delay > BUNDLE_DELAY,
                pending: Vec::new(),
                pushes: 0,
                pops: 0,
                overruns: 0,
                underruns: 0,
            })
            .collect();

        let mut node_rings: Vec<Vec<RingId>> = Vec::with_capacity(spec.sbs.len());
        for i in 0..spec.sbs.len() {
            node_rings.push(spec.rings_of(SbId(i)).map(|(rid, _)| rid).collect());
        }
        let node_index = |sb: usize, ring: RingId| -> u32 {
            node_rings[sb]
                .iter()
                .position(|r| *r == ring)
                .expect("peer SB must have a node on the shared ring") as u32
        };

        let mut sbs = Vec::with_capacity(spec.sbs.len());
        for (i, sb_spec) in spec.sbs.iter().enumerate() {
            let sb = SbId(i);
            let half = sb_spec.period / 2;
            let mut nodes = Vec::new();
            for (ring_id, ring) in spec.rings_of(sb) {
                let holder_side = ring.holder == sb;
                let fsm = if holder_side {
                    NodeFsm::new_holder(ring.holder_node)
                } else {
                    let initial = ring.peer_initial_recycle.unwrap_or(ring.peer_node.recycle);
                    NodeFsm::new_waiter(ring.peer_node, initial)
                };
                let (dest, pass_delay) = if holder_side {
                    (ring.peer, ring.delay_fwd)
                } else {
                    (ring.holder, ring.delay_back)
                };
                nodes.push(BNode {
                    ring: ring_id,
                    fsm,
                    dest_sb: dest.0 as u32,
                    dest_node: node_index(dest.0, ring_id),
                    pass_delay,
                    to_holder: !holder_side,
                });
            }
            let inputs: Vec<(u32, u32)> = spec
                .inputs_of(sb)
                .map(|(cid, ch)| (cid.0 as u32, node_index(i, ch.ring)))
                .collect();
            let outputs: Vec<(u32, u32)> = spec
                .outputs_of(sb)
                .map(|(cid, ch)| (cid.0 as u32, node_index(i, ch.ring)))
                .collect();
            let logics: Vec<Box<dyn SyncLogic>> = builders
                .iter_mut()
                .map(|b| {
                    b.logics
                        .remove(&i)
                        .unwrap_or_else(|| Box::new(IdleLogic) as Box<dyn SyncLogic>)
                })
                .collect();
            let (n_inputs, n_outputs) = (inputs.len(), outputs.len());
            let traces = (0..nl)
                .map(|_| BTrace::with_limit(trace_limit, n_inputs, n_outputs))
                .collect();
            sbs.push(BSb {
                half,
                restart_delay: half / 10,
                logic_delay: sb_spec.logic_delay,
                logics,
                nodes,
                inputs,
                outputs,
                clk_high: false,
                parked: false,
                clken: true,
                edges: 0,
                clock_stops: 0,
                cycle: 0,
                traces,
                dropped_words: 0,
                timing_violations: 0,
                last_edge: None,
                edge_times: Vec::new(),
                edge_times_cap: if trace_limit == 0 {
                    1 << 20
                } else {
                    trace_limit
                },
                views: Vec::with_capacity(n_inputs),
                slots: Vec::with_capacity(n_outputs),
                pops: vec![false; n_inputs],
                shapes: Vec::with_capacity(n_inputs),
                can_send: Vec::with_capacity(n_outputs),
            });
        }

        let n_sbs = sbs.len();
        let mut g = Group {
            spec,
            trace_limit,
            lanes,
            sbs,
            fifos,
            clk: vec![
                ClockSlots {
                    phase: SLOT_EMPTY,
                    posedge: SLOT_EMPTY,
                };
                n_sbs
            ],
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            events: 0,
            chaos,
            outcome: None,
            scratch_out: Vec::new(),
            scratch_pat: Vec::new(),
        };
        for i in 0..n_sbs {
            g.clk[i].phase = slot_key(SimTime::ZERO + g.sbs[i].half, g.seq);
            g.seq += 1;
        }
        g
    }

    fn min_cycles(&self) -> u64 {
        self.sbs.iter().map(|s| s.cycle).min().unwrap_or(0)
    }

    fn stopped_sbs(&self) -> Vec<SbId> {
        self.sbs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parked)
            .map(|(i, _)| SbId(i))
            .collect()
    }

    /// The dispatch loop, a verbatim port of the scalar engine's
    /// `run_until` (same slot scan, same settle, same quiescence rule).
    /// Divergence splits append fully-formed subgroups to `splits`;
    /// this group keeps the first partition and keeps running.
    fn run_until(&mut self, deadline: SimTime, splits: &mut Vec<Group>) -> bool {
        let mut quiescent = false;
        let deadline_fs = deadline.as_fs();
        loop {
            let mut best = SLOT_EMPTY;
            let mut src_sb = usize::MAX;
            let mut is_posedge = false;
            for (i, c) in self.clk.iter().enumerate() {
                if c.phase < best {
                    best = c.phase;
                    src_sb = i;
                    is_posedge = false;
                }
                if c.posedge < best {
                    best = c.posedge;
                    src_sb = i;
                    is_posedge = true;
                }
            }
            let heap_first = match self.heap.peek() {
                Some(Reverse(ev)) => {
                    let k = slot_key(ev.time, ev.seq);
                    if k < best {
                        best = k;
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            if best == SLOT_EMPTY {
                quiescent = true;
                break;
            }
            if (best >> 64) as u64 > deadline_fs {
                break;
            }
            self.now = slot_time(best);
            self.events += 1;
            if heap_first {
                let Some(Reverse(ev)) = self.heap.pop() else {
                    unreachable!("heap top vanished");
                };
                match ev.kind {
                    BEvKind::Push { ch, words } => self.on_push(ch as usize, &words),
                    BEvKind::Pop { ch } => self.on_pop(ch as usize),
                    BEvKind::Move { ch, stage } => self.on_move(ch as usize, stage as usize),
                    BEvKind::Token { sb, node } => self.on_token(sb as usize, node as usize),
                    BEvKind::Clken { sb, ena } => self.on_clken(sb as usize, ena),
                }
            } else if is_posedge {
                self.clk[src_sb].posedge = SLOT_EMPTY;
                self.on_posedge(src_sb, splits);
            } else {
                self.clk[src_sb].phase = SLOT_EMPTY;
                self.on_phase(src_sb);
            }
        }
        let nl = self.lanes.len();
        for f in &mut self.fifos {
            if !f.pending.is_empty() {
                f.drain(deadline, &mut self.events, nl);
                if !f.pending.is_empty() {
                    quiescent = false;
                }
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        quiescent
    }

    // --- event handlers (ports of the scalar engine's) ------------------

    fn on_phase(&mut self, sbi: usize) {
        let now = self.now;
        let Self {
            sbs,
            clk,
            seq,
            chaos,
            ..
        } = self;
        let sb = &mut sbs[sbi];
        if sb.parked {
            return;
        }
        if sb.clk_high {
            sb.clk_high = false;
            clk[sbi].phase = slot_key(now + sb.half, *seq);
            *seq += 1;
        } else if sb.clken {
            sb.clk_high = true;
            sb.edges += 1;
            let j = match chaos.as_deref_mut() {
                Some(c) => c.clk_jitter(sbi as u32),
                None => SimDuration::ZERO,
            };
            clk[sbi].posedge = slot_key(now + j, *seq);
            *seq += 1;
            clk[sbi].phase = slot_key(now + sb.half, *seq);
            *seq += 1;
        } else {
            sb.parked = true;
            sb.clock_stops += 1;
        }
    }

    fn on_clken(&mut self, sbi: usize, ena: bool) {
        let now = self.now;
        let Self {
            sbs,
            clk,
            seq,
            chaos,
            ..
        } = self;
        let sb = &mut sbs[sbi];
        if ena == sb.clken {
            return;
        }
        sb.clken = ena;
        if sb.parked && ena {
            sb.parked = false;
            sb.clk_high = true;
            sb.edges += 1;
            let j = match chaos.as_deref_mut() {
                Some(c) => c.clk_jitter(sbi as u32),
                None => SimDuration::ZERO,
            };
            clk[sbi].posedge = slot_key(now + sb.restart_delay + j, *seq);
            *seq += 1;
            clk[sbi].phase = slot_key(now + sb.restart_delay + sb.half, *seq);
            *seq += 1;
        }
    }

    fn on_token(&mut self, sbi: usize, node: usize) {
        let now = self.now;
        let Self { sbs, heap, seq, .. } = self;
        let sb = &mut sbs[sbi];
        if sb.nodes[node].fsm.token_arrived() == TokenAction::RestartClock {
            let ena = sb.nodes.iter().all(|n| n.fsm.clock_enabled());
            sched(
                heap,
                seq,
                now,
                BEvKind::Clken {
                    sb: sbi as u32,
                    ena,
                },
            );
        }
    }

    fn on_push(&mut self, chi: usize, words: &[u64]) {
        let now = self.now;
        let nl = self.lanes.len();
        let Self {
            fifos,
            heap,
            seq,
            events,
            ..
        } = self;
        let f = &mut fifos[chi];
        if f.virtualized {
            f.drain(now, events, nl);
        }
        if f.occ & 1 != 0 {
            f.overruns += 1;
            return;
        }
        f.occ |= 1;
        f.words[..nl].copy_from_slice(words);
        f.pushes += 1;
        if f.depth > 1 {
            if f.virtualized {
                f.queue_move(now + f.stage_delay, 0);
            } else {
                sched(
                    heap,
                    seq,
                    now + f.stage_delay,
                    BEvKind::Move {
                        ch: chi as u32,
                        stage: 0,
                    },
                );
            }
        }
    }

    fn on_pop(&mut self, chi: usize) {
        let now = self.now;
        let nl = self.lanes.len();
        let Self {
            fifos,
            heap,
            seq,
            events,
            ..
        } = self;
        let f = &mut fifos[chi];
        if f.virtualized {
            f.drain(now, events, nl);
        }
        let head = (f.depth - 1) as usize;
        let head_bit = 1u64 << head;
        if f.occ & head_bit == 0 {
            f.underruns += 1;
            return;
        }
        f.occ ^= head_bit;
        f.pops += 1;
        if head > 0 && f.occ & (head_bit >> 1) != 0 {
            if f.virtualized {
                f.queue_move(now + f.stage_delay, (head - 1) as u32);
            } else {
                sched(
                    heap,
                    seq,
                    now + f.stage_delay,
                    BEvKind::Move {
                        ch: chi as u32,
                        stage: (head - 1) as u32,
                    },
                );
            }
        }
    }

    fn on_move(&mut self, chi: usize, stage: usize) {
        let now = self.now;
        let nl = self.lanes.len();
        let Self {
            fifos, heap, seq, ..
        } = self;
        let f = &mut fifos[chi];
        let bit = 1u64 << stage;
        if f.occ & bit == 0 {
            return; // Stale movement.
        }
        if f.occ & (bit << 1) != 0 {
            return; // Blocked; a later pop/advance reschedules.
        }
        f.occ ^= bit | (bit << 1);
        f.words
            .copy_within(stage * nl..(stage + 1) * nl, (stage + 1) * nl);
        let head = (f.depth - 1) as usize;
        if stage + 1 < head {
            sched(
                heap,
                seq,
                now + f.stage_delay,
                BEvKind::Move {
                    ch: chi as u32,
                    stage: (stage + 1) as u32,
                },
            );
        }
        if stage > 0 && f.occ & (bit >> 1) != 0 {
            sched(
                heap,
                seq,
                now + f.stage_delay,
                BEvKind::Move {
                    ch: chi as u32,
                    stage: (stage - 1) as u32,
                },
            );
        }
    }

    /// Rising edge: steps 0–3 are shared control, step 4 ticks every
    /// lane's logic and compares send patterns, steps 5–8 finish per
    /// (possibly split) group.
    fn on_posedge(&mut self, sbi: usize, splits: &mut Vec<Group>) {
        let now = self.now;
        let nl = self.lanes.len();
        let violated;
        {
            let Self {
                sbs, fifos, events, ..
            } = self;
            let sb = &mut sbs[sbi];

            // 0. Setup-time check against the modelled critical path.
            violated = match sb.last_edge {
                Some(prev) if !sb.logic_delay.is_zero() => now.since(prev) < sb.logic_delay,
                _ => false,
            };
            sb.last_edge = Some(now);
            if violated {
                sb.timing_violations += 1;
            }
            if sb.edge_times.len() < sb.edge_times_cap {
                sb.edge_times.push(now);
            }

            // 1–2. Input interface shapes, shared across lanes (the
            // occupancy bitmask and node FSMs are control state).
            sb.shapes.clear();
            sb.pops.iter_mut().for_each(|p| *p = false);
            for (i, &(ch, node_idx)) in sb.inputs.iter().enumerate() {
                let ena = sb.nodes[node_idx as usize].fsm.interfaces_enabled();
                let f = &mut fifos[ch as usize];
                if f.virtualized {
                    f.drain(now, events, nl);
                }
                let head_occ = f.occ & (1u64 << (f.depth - 1)) != 0;
                if ena && head_occ {
                    sb.pops[i] = true;
                }
                sb.shapes.push((ena, head_occ));
            }

            // 3. Output availability, shared.
            sb.can_send.clear();
            for &(ch, node_idx) in &sb.outputs {
                let f = &mut fifos[ch as usize];
                if f.virtualized {
                    f.drain(now, events, nl);
                }
                sb.can_send
                    .push(sb.nodes[node_idx as usize].fsm.interfaces_enabled() && f.occ & 1 == 0);
            }
        }

        // 4. Every lane's logic computes against its own data columns.
        // Views and slots are built once per edge from the shared
        // shapes; per lane only the popped input words and the output
        // words change. The determinism trace rows are recorded here
        // too, while the words are at hand — each lane logs its own
        // `(sent, can_send)` outcome, which is exactly what its scalar
        // run would log, so recording before any divergence split is
        // byte-identical.
        let n_out = self.sbs[sbi].outputs.len();
        let mut lane_out = mem::take(&mut self.scratch_out);
        lane_out.clear();
        lane_out.resize(nl * n_out, None);
        let mut patterns = mem::take(&mut self.scratch_pat);
        patterns.clear();
        {
            let Self { sbs, fifos, .. } = self;
            let sb = &mut sbs[sbi];
            let cycle = sb.cycle;
            // Lanes record in lockstep, so one lane's fullness speaks
            // for the group.
            let recording = !sb.traces[0].is_full();
            sb.views.clear();
            for (i, _) in sb.inputs.iter().enumerate() {
                let (ena, _) = sb.shapes[i];
                sb.views.push(if sb.pops[i] {
                    InputView {
                        data: None, // patched per lane below
                        enabled: true,
                        empty: false,
                    }
                } else {
                    InputView {
                        data: None,
                        enabled: ena,
                        empty: ena,
                    }
                });
            }
            sb.slots.clear();
            for k in 0..n_out {
                sb.slots.push(OutputSlot {
                    can_send: sb.can_send[k],
                    word: None,
                });
            }
            // Pre-resolve the popped inputs' head columns once per
            // edge; the lane loop then reads straight out of them.
            let popped: Vec<(usize, &[u64])> = sb
                .inputs
                .iter()
                .enumerate()
                .filter(|&(i, _)| sb.pops[i])
                .map(|(i, &(ch, _))| {
                    let f = &fifos[ch as usize];
                    let head = (f.depth - 1) as usize;
                    (i, &f.words[head * nl..head * nl + nl])
                })
                .collect();
            for slot in 0..nl {
                for &(i, col) in &popped {
                    sb.views[i].data = Some(col[slot]);
                }
                for k in 0..n_out {
                    sb.slots[k].can_send = sb.can_send[k];
                    sb.slots[k].word = None;
                }
                {
                    let logic = &mut sb.logics[slot];
                    let mut io = SbIo::new(&sb.views, &mut sb.slots);
                    logic.tick(cycle, &mut io);
                }
                let mut pat = 0u64;
                for k in 0..n_out {
                    if sb.slots[k].word.is_some() {
                        pat |= 1 << (2 * k);
                    }
                    if sb.slots[k].can_send {
                        pat |= 1 << (2 * k + 1);
                    }
                    lane_out[slot * n_out + k] = sb.slots[k].word;
                }
                patterns.push(pat);
                if recording {
                    let tr = &mut sb.traces[slot];
                    tr.cache = None;
                    tr.cycles.push(cycle);
                    tr.reads.extend(sb.views.iter().map(|v| v.data));
                    tr.writes.extend(sb.slots.iter().map(|s| {
                        if s.can_send {
                            s.word.map(|w| if violated { w ^ 0x5A5A } else { w })
                        } else {
                            None
                        }
                    }));
                    tr.rows += 1;
                    tr.fold_last_row();
                }
            }
        }

        // Divergence check: identical patterns keep the lockstep.
        if patterns.windows(2).all(|w| w[0] == w[1]) {
            let pat = patterns.first().copied().unwrap_or(0);
            self.finish_posedge(sbi, violated, &lane_out, pat);
            self.scratch_out = lane_out;
            self.scratch_pat = patterns;
            return;
        }

        // Split: partition lane slots by pattern, in first-appearance
        // order (deterministic in lane order).
        let mut order: Vec<u64> = Vec::new();
        let mut parts: Vec<Vec<usize>> = Vec::new();
        for (slot, &p) in patterns.iter().enumerate() {
            match order.iter().position(|&q| q == p) {
                Some(i) => parts[i].push(slot),
                None => {
                    order.push(p);
                    parts.push(vec![slot]);
                }
            }
        }
        let children = self.partition_into(&parts);
        let part_out = |part: &[usize]| -> Vec<Option<u64>> {
            part.iter()
                .flat_map(|&s| lane_out[s * n_out..(s + 1) * n_out].iter().copied())
                .collect()
        };
        self.finish_posedge(sbi, violated, &part_out(&parts[0]), order[0]);
        for (ci, mut child) in children.into_iter().enumerate() {
            child.finish_posedge(sbi, violated, &part_out(&parts[ci + 1]), order[ci + 1]);
            splits.push(child);
        }
        self.scratch_out = lane_out;
        self.scratch_pat = patterns;
    }

    /// Steps 5–8 of the rising edge under a uniform send pattern
    /// (2 bits per output: bit `2k` = word written, `2k+1` = can_send).
    fn finish_posedge(
        &mut self,
        sbi: usize,
        violated: bool,
        lane_out: &[Option<u64>],
        pattern: u64,
    ) {
        let now = self.now;
        let nl = self.lanes.len();
        let Self {
            sbs,
            heap,
            seq,
            chaos,
            ..
        } = self;
        let sb = &mut sbs[sbi];
        let n_out = sb.outputs.len();

        // 5. Transmit accepted words: one Push event carries the whole
        // lane column. The chaos mirror only exists on singletons, so
        // its draw sequence matches the scalar engine's exactly.
        for (k, &(ch, _)) in sb.outputs.iter().enumerate() {
            let sent = pattern & (1 << (2 * k)) != 0;
            let can = pattern & (1 << (2 * k + 1)) != 0;
            if sent && can {
                let words: Box<[u64]> = (0..nl)
                    .map(|s| {
                        let w = lane_out[s * n_out + k].expect("pattern bit set");
                        if violated {
                            w ^ 0x5A5A
                        } else {
                            w
                        }
                    })
                    .collect();
                let action = match chaos.as_deref_mut() {
                    Some(c) => c.on_push(ChannelId(ch as usize)),
                    None => DataAction::Deliver,
                };
                match action {
                    DataAction::Drop => {
                        // Request toggle lost on the wire; the trace
                        // still records the transmit.
                    }
                    DataAction::Delay(extra) => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.data_jitter(ch * 2),
                            None => SimDuration::ZERO,
                        };
                        sched(
                            heap,
                            seq,
                            now + BUNDLE_DELAY + extra + j,
                            BEvKind::Push { ch, words },
                        );
                    }
                    DataAction::Deliver => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.data_jitter(ch * 2),
                            None => SimDuration::ZERO,
                        };
                        sched(
                            heap,
                            seq,
                            now + BUNDLE_DELAY + j,
                            BEvKind::Push { ch, words },
                        );
                    }
                }
            } else if sent {
                sb.dropped_words += 1;
            }
        }

        // 6. Acknowledge consumed words.
        for (i, &(ch, _)) in sb.inputs.iter().enumerate() {
            if sb.pops[i] {
                let action = match chaos.as_deref_mut() {
                    Some(c) => c.on_ack(ChannelId(ch as usize)),
                    None => DataAction::Deliver,
                };
                match action {
                    DataAction::Drop => {}
                    DataAction::Delay(extra) => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.data_jitter(ch * 2 + 1),
                            None => SimDuration::ZERO,
                        };
                        sched(
                            heap,
                            seq,
                            now + BUNDLE_DELAY + extra + j,
                            BEvKind::Pop { ch },
                        );
                    }
                    DataAction::Deliver => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.data_jitter(ch * 2 + 1),
                            None => SimDuration::ZERO,
                        };
                        sched(heap, seq, now + BUNDLE_DELAY + j, BEvKind::Pop { ch });
                    }
                }
            }
        }

        // 7. Node FSMs advance; tokens pass; clock enable updates.
        let mut any_stop = false;
        for n in &mut sb.nodes {
            let action = n.fsm.on_posedge();
            if action.pass_token {
                let dest = BEvKind::Token {
                    sb: n.dest_sb,
                    node: n.dest_node,
                };
                let unit = (n.ring.0 * 2 + usize::from(n.to_holder)) as u32;
                let pass = match chaos.as_deref_mut() {
                    Some(c) => c.on_token_pass(n.ring, n.to_holder),
                    None => TokenPassAction::Deliver,
                };
                match pass {
                    TokenPassAction::Drop => {}
                    TokenPassAction::Delay(extra) => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.token_jitter(unit),
                            None => SimDuration::ZERO,
                        };
                        sched(heap, seq, now + n.pass_delay + extra + j, dest);
                    }
                    TokenPassAction::Duplicate(extra) => {
                        let (j1, j2) = match chaos.as_deref_mut() {
                            Some(c) => (c.token_jitter(unit), c.token_jitter(unit)),
                            None => (SimDuration::ZERO, SimDuration::ZERO),
                        };
                        sched(heap, seq, now + n.pass_delay + j1, dest.clone());
                        sched(heap, seq, now + n.pass_delay + extra + j2, dest);
                    }
                    TokenPassAction::Deliver => {
                        let j = match chaos.as_deref_mut() {
                            Some(c) => c.token_jitter(unit),
                            None => SimDuration::ZERO,
                        };
                        sched(heap, seq, now + n.pass_delay + j, dest);
                    }
                }
            }
            any_stop |= action.stop_clock;
        }
        if any_stop {
            let ena = sb.nodes.iter().all(|n| n.fsm.clock_enabled());
            sched(
                heap,
                seq,
                now,
                BEvKind::Clken {
                    sb: sbi as u32,
                    ena,
                },
            );
        }

        // 8. The determinism trace rows were already recorded in step
        // 4 (on_posedge), while the lane words were at hand.
        sb.cycle += 1;
    }

    /// Splits this group's lanes along `parts` (disjoint slot sets in
    /// lane order, covering every slot). The group keeps `parts[0]`;
    /// the rest come back as fully independent groups with cloned
    /// control state and redistributed lane columns.
    fn partition_into(&mut self, parts: &[Vec<usize>]) -> Vec<Group> {
        debug_assert!(
            self.chaos.is_none(),
            "faulted groups are singletons and never split"
        );
        let l_old = self.lanes.len();
        let old_lanes = mem::take(&mut self.lanes);
        let mut logic_pools: Vec<Vec<Option<Box<dyn SyncLogic>>>> = self
            .sbs
            .iter_mut()
            .map(|sb| mem::take(&mut sb.logics).into_iter().map(Some).collect())
            .collect();
        let mut trace_pools: Vec<Vec<Option<BTrace>>> = self
            .sbs
            .iter_mut()
            .map(|sb| mem::take(&mut sb.traces).into_iter().map(Some).collect())
            .collect();
        let old_words: Vec<Vec<u64>> = self
            .fifos
            .iter_mut()
            .map(|f| mem::take(&mut f.words))
            .collect();
        let old_heap: Vec<Reverse<BEv>> = mem::take(&mut self.heap).into_vec();

        let mut groups: Vec<Group> = parts
            .iter()
            .map(|part| {
                let nl = part.len();
                let sbs: Vec<BSb> = self
                    .sbs
                    .iter()
                    .enumerate()
                    .map(|(si, sb)| {
                        sb.control_clone(
                            part.iter()
                                .map(|&s| logic_pools[si][s].take().expect("slot moved once"))
                                .collect(),
                            part.iter()
                                .map(|&s| trace_pools[si][s].take().expect("slot moved once"))
                                .collect(),
                        )
                    })
                    .collect();
                let fifos: Vec<BFifo> = self
                    .fifos
                    .iter()
                    .enumerate()
                    .map(|(fi, f)| {
                        let depth = f.depth as usize;
                        let mut words = Vec::with_capacity(depth * nl);
                        for stage in 0..depth {
                            for &s in part {
                                words.push(old_words[fi][stage * l_old + s]);
                            }
                        }
                        f.control_clone(words)
                    })
                    .collect();
                let heap: BinaryHeap<Reverse<BEv>> = old_heap
                    .iter()
                    .map(|Reverse(ev)| {
                        Reverse(BEv {
                            time: ev.time,
                            seq: ev.seq,
                            kind: match &ev.kind {
                                BEvKind::Push { ch, words } => BEvKind::Push {
                                    ch: *ch,
                                    words: part.iter().map(|&s| words[s]).collect(),
                                },
                                other => other.clone(),
                            },
                        })
                    })
                    .collect();
                Group {
                    spec: self.spec.clone(),
                    trace_limit: self.trace_limit,
                    lanes: part.iter().map(|&s| old_lanes[s]).collect(),
                    sbs,
                    fifos,
                    clk: self.clk.clone(),
                    heap,
                    now: self.now,
                    seq: self.seq,
                    events: self.events,
                    chaos: None,
                    outcome: self.outcome.clone(),
                    scratch_out: Vec::new(),
                    scratch_pat: Vec::new(),
                }
            })
            .collect();
        *self = groups.remove(0);
        groups
    }
}

/// N configurations lowered into shared-control lockstep groups.
///
/// Build with [`BatchedSystem::build`] (or
/// [`build_with_limit`](Self::build_with_limit)); lane indices follow
/// the builder order of the `Vec` passed in. Every accessor takes a
/// lane index first and answers exactly what the scalar
/// [`CompiledSystem`] for that lane's builder would.
pub struct BatchedSystem {
    groups: Vec<Group>,
    /// Lane → (group index, slot within group), kept fresh after every
    /// run/split.
    lane_loc: Vec<(usize, usize)>,
    /// Lane → configuration hash of the builder it was lowered from
    /// (captured at build time, before the builders are consumed), so
    /// extracted checkpoints carry the same `spec_hash` the scalar
    /// engines would stamp.
    lane_hash: Vec<[u8; 16]>,
}

impl std::fmt::Debug for BatchedSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedSystem")
            .field("lanes", &self.lane_loc.len())
            .field("groups", &self.groups.len())
            .finish()
    }
}

impl BatchedSystem {
    /// Whether a single builder is inside the batched envelope: the
    /// scalar compiled envelope plus ≤ 32 outputs per SB (divergence
    /// patterns pack two bits per output into a `u64`).
    pub fn supports(builder: &SystemBuilder) -> bool {
        CompiledSystem::supports(builder)
            && (0..builder.spec.sbs.len()).all(|i| builder.spec.outputs_of(SbId(i)).count() <= 32)
    }

    /// Lowers the builders into lockstep groups with the environment's
    /// lane cap (`ST_BATCH`, default 64).
    ///
    /// # Errors
    ///
    /// Hands every builder back untouched when the batch is empty or
    /// any lane is outside the support envelope, so callers fall back
    /// to the scalar backends without rebuilding.
    #[allow(clippy::result_large_err)]
    pub fn build(builders: Vec<SystemBuilder>) -> Result<BatchedSystem, Vec<SystemBuilder>> {
        Self::build_with_limit(builders, crate::campaign::batch_limit_from_env())
    }

    /// [`build`](Self::build) with an explicit lane cap per group
    /// (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Hands every builder back untouched when the batch is empty or
    /// any lane is outside the support envelope.
    #[allow(clippy::result_large_err)]
    pub fn build_with_limit(
        builders: Vec<SystemBuilder>,
        max_lanes: usize,
    ) -> Result<BatchedSystem, Vec<SystemBuilder>> {
        if builders.is_empty() || !builders.iter().all(Self::supports) {
            return Err(builders);
        }
        // Before the builders are consumed below: the hash covers the
        // plan, which `Group::lower` takes out of singleton lanes.
        let lane_hash: Vec<[u8; 16]> = builders
            .iter()
            .map(|b| config_hash(&b.spec, b.seed, b.trace_limit, b.faults.as_ref()))
            .collect();
        let max_lanes = max_lanes.max(1);
        // Greedy grouping in lane order: a lane joins the first open
        // group with an identical spec and trace limit; faulted lanes
        // always open a singleton group.
        let mut buckets: Vec<(Vec<SystemBuilder>, Vec<usize>, bool)> = Vec::new();
        for (lane, b) in builders.into_iter().enumerate() {
            let shareable = b.faults.is_none();
            let found = if shareable {
                buckets.iter().position(|(bs, _, open)| {
                    *open
                        && bs.len() < max_lanes
                        && bs[0].spec == b.spec
                        && bs[0].trace_limit == b.trace_limit
                })
            } else {
                None
            };
            match found {
                Some(i) => {
                    buckets[i].0.push(b);
                    buckets[i].1.push(lane);
                }
                None => buckets.push((vec![b], vec![lane], shareable)),
            }
        }
        let groups: Vec<Group> = buckets
            .into_iter()
            .map(|(bs, lanes, _)| Group::lower(bs, lanes))
            .collect();
        let mut sys = BatchedSystem {
            groups,
            lane_loc: Vec::new(),
            lane_hash,
        };
        sys.relocate();
        Ok(sys)
    }

    fn relocate(&mut self) {
        let n: usize = self.groups.iter().map(|g| g.lanes.len()).sum();
        self.lane_loc = vec![(usize::MAX, usize::MAX); n];
        for (gi, g) in self.groups.iter().enumerate() {
            for (slot, &lane) in g.lanes.iter().enumerate() {
                self.lane_loc[lane] = (gi, slot);
            }
        }
    }

    /// Total lanes across all groups.
    pub fn lanes(&self) -> usize {
        self.lane_loc.len()
    }

    /// Current lockstep group count (grows on divergence splits); the
    /// batch occupancy metric is `lanes() / group_count()`.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Runs every lane until it has executed `cycles` local cycles,
    /// deadlocks, or exhausts `max_time` — the scalar
    /// `run_until_cycles` chunk loop, per group, with divergence
    /// splits resuming at the exact chunk boundary the scalar run
    /// would use. Returns one outcome per lane, byte-equal to the
    /// scalar backends' outcomes.
    pub fn run_until_cycles(&mut self, cycles: u64, max_time: SimDuration) -> Vec<RunOutcome> {
        struct Work {
            gi: usize,
            deadline: SimTime,
            chunk: SimDuration,
            pending: Option<SimTime>,
        }
        let chunk_of = |spec: &SystemSpec| -> SimDuration {
            spec.sbs
                .iter()
                .map(|s| s.period)
                .max()
                .unwrap_or(SimDuration::ns(10))
                * (cycles.max(16))
        };
        let mut work: Vec<Work> = (0..self.groups.len())
            .map(|gi| Work {
                gi,
                deadline: self.groups[gi].now + max_time,
                chunk: chunk_of(&self.groups[gi].spec),
                pending: None,
            })
            .collect();
        while let Some(mut w) = work.pop() {
            let outcome = loop {
                if let Some(target) = w.pending.take() {
                    let mut splits = Vec::new();
                    let quiescent = self.groups[w.gi].run_until(target, &mut splits);
                    for child in splits {
                        let gi = self.groups.len();
                        self.groups.push(child);
                        // A split-off subgroup first finishes the
                        // parent's current chunk, then continues its
                        // own loop on the same boundaries.
                        work.push(Work {
                            gi,
                            deadline: w.deadline,
                            chunk: w.chunk,
                            pending: Some(target),
                        });
                    }
                    if self.groups[w.gi].min_cycles() >= cycles {
                        break RunOutcome::Reached;
                    }
                    if quiescent {
                        break RunOutcome::Deadlock {
                            stopped: self.groups[w.gi].stopped_sbs(),
                        };
                    }
                    continue;
                }
                let g = &self.groups[w.gi];
                if g.min_cycles() >= cycles {
                    break RunOutcome::Reached;
                }
                if g.now >= w.deadline {
                    break RunOutcome::TimedOut;
                }
                w.pending = Some((g.now + w.chunk).min(w.deadline));
            };
            self.groups[w.gi].outcome = Some(outcome);
        }
        self.relocate();
        (0..self.lane_loc.len())
            .map(|lane| {
                let (gi, _) = self.lane_loc[lane];
                self.groups[gi]
                    .outcome
                    .clone()
                    .expect("every group was driven")
            })
            .collect()
    }

    #[inline]
    fn at(&self, lane: usize) -> (&Group, usize) {
        let (gi, slot) = self.lane_loc[lane];
        (&self.groups[gi], slot)
    }

    /// The specification lane `lane` was built from.
    pub fn spec(&self, lane: usize) -> &SystemSpec {
        &self.at(lane).0.spec
    }

    /// Local cycles elapsed in `sb` of lane `lane`.
    pub fn cycles(&self, lane: usize, sb: SbId) -> u64 {
        self.at(lane).0.sbs[sb.0].cycle
    }

    /// The I/O trace of `sb` in lane `lane`. Rows live in columnar
    /// form during the run; the `SbIoTrace` materializes on first
    /// access (and is cached until more rows arrive).
    pub fn io_trace(&mut self, lane: usize, sb: SbId) -> &SbIoTrace {
        let (gi, slot) = self.lane_loc[lane];
        self.groups[gi].sbs[sb.0].traces[slot].materialize()
    }

    /// `io_trace(lane, sb).digest()` without materializing the rows.
    /// Campaign verdicts compare digests; each row was folded into a
    /// running hasher as it was recorded, so this is O(1) and the
    /// batched fast path stays free of per-row allocations.
    pub fn trace_digest(&self, lane: usize, sb: SbId) -> u64 {
        let (g, slot) = self.at(lane);
        g.sbs[sb.0].traces[slot].digest()
    }

    /// The configuration hash of the builder lane `lane` was lowered
    /// from — identical to what the scalar engines compute for the
    /// same builder.
    pub fn spec_hash(&self, lane: usize) -> [u8; 16] {
        self.lane_hash[lane]
    }

    /// Extracts lane `lane`'s complete state as a **compiled-backend**
    /// [`Checkpoint`] — byte-identical to the checkpoint the scalar
    /// [`CompiledSystem`] of the lane's builder would produce at the
    /// same point, because a lockstep group's shared control state *is*
    /// each member lane's scalar state and the per-lane columns carry
    /// the rest. The checkpoint resumes through
    /// [`CompiledSystem::resume`] (or `AnySystem::resume`); there is no
    /// whole-batch checkpoint — lanes fork out of a batch one at a
    /// time, which is exactly the prefix-sharing campaign shape.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Unsupported`] when a logic attached to the
    /// lane does not implement
    /// [`SyncLogic::save_state`](crate::logic::SyncLogic::save_state).
    pub fn checkpoint(&mut self, lane: usize) -> Result<Checkpoint, CheckpointError> {
        let spec_hash = self.lane_hash[lane];
        let (gi, slot) = self.lane_loc[lane];
        let g = &mut self.groups[gi];
        let nl = g.lanes.len();
        let mut sbs = Vec::with_capacity(g.sbs.len());
        for sb in &mut g.sbs {
            let logic = sb.logics[slot]
                .save_state()
                .ok_or(CheckpointError::Unsupported(
                    "attached logic does not implement save_state",
                ))?;
            sbs.push(CompiledSbDump {
                clk_high: sb.clk_high,
                parked: sb.parked,
                clken: sb.clken,
                edges: sb.edges,
                clock_stops: sb.clock_stops,
                cycle: sb.cycle,
                dropped_words: sb.dropped_words,
                timing_violations: sb.timing_violations,
                last_edge: sb.last_edge,
                edge_times: sb.edge_times.clone(),
                trace: sb.traces[slot].materialize().clone(),
                nodes: sb.nodes.iter().map(|n| n.fsm.snapshot()).collect(),
                logic,
            });
        }
        let mut heap: Vec<&BEv> = g.heap.iter().map(|Reverse(ev)| ev).collect();
        heap.sort_unstable_by_key(|ev| (ev.time, ev.seq));
        let heap = heap
            .into_iter()
            .map(|ev| {
                let (kind, a, b) = match &ev.kind {
                    BEvKind::Push { ch, words } => (0, *ch, words[slot]),
                    BEvKind::Pop { ch } => (1, *ch, 0),
                    BEvKind::Move { ch, stage } => (2, *ch, u64::from(*stage)),
                    BEvKind::Token { sb, node } => (3, *sb, u64::from(*node)),
                    BEvKind::Clken { sb, ena } => (4, *sb, u64::from(*ena)),
                };
                CompiledEvDump {
                    time: ev.time,
                    seq: ev.seq,
                    kind,
                    a,
                    b,
                }
            })
            .collect();
        let (jitter, injector) = match g.chaos.as_ref() {
            Some(c) => c.snapshot_counters(),
            None => (None, None),
        };
        let dump = CompiledStateDump {
            now: g.now,
            seq: g.seq,
            events: g.events,
            clk: g.clk.iter().map(|c| (c.phase, c.posedge)).collect(),
            heap,
            sbs,
            fifos: g
                .fifos
                .iter()
                .map(|f| CompiledFifoDump {
                    occ: f.occ,
                    words: (0..f.depth as usize)
                        .map(|stage| f.words[stage * nl + slot])
                        .collect(),
                    pending: f.pending.clone(),
                    pushes: f.pushes,
                    pops: f.pops,
                    overruns: f.overruns,
                    underruns: f.underruns,
                })
                .collect(),
            jitter,
            injector,
        };
        Ok(Checkpoint::new(
            CheckpointBackend::Compiled,
            spec_hash,
            g.min_cycles(),
            g.now,
            encode_compiled_payload(&dump),
        ))
    }

    /// The final state of lane `lane`'s logic on `sb`, downcast.
    ///
    /// # Panics
    ///
    /// Panics if the logic attached there is not a `T`.
    pub fn logic<T: SyncLogic>(&self, lane: usize, sb: SbId) -> &T {
        let (g, slot) = self.at(lane);
        let logic: &dyn SyncLogic = g.sbs[sb.0].logics[slot].as_ref();
        (logic as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("logic type mismatch")
    }

    /// The node FSM of `sb` on `ring` in lane `lane`, if present.
    /// Node FSMs are control state: lanes sharing a group answer
    /// identically (which is exactly why they can share).
    pub fn node(&self, lane: usize, sb: SbId, ring: RingId) -> Option<&NodeFsm> {
        self.at(lane).0.sbs[sb.0]
            .nodes
            .iter()
            .find(|n| n.ring == ring)
            .map(|n| &n.fsm)
    }

    /// Mutable node access for lane `lane` (debug hooks, SEU
    /// injection). Mutating one lane's FSM is control-flow divergence
    /// by definition, so the lane is first split out of its group.
    pub fn node_mut(&mut self, lane: usize, sb: SbId, ring: RingId) -> Option<&mut NodeFsm> {
        self.isolate_lane(lane);
        let (gi, _) = self.lane_loc[lane];
        self.groups[gi].sbs[sb.0]
            .nodes
            .iter_mut()
            .find(|n| n.ring == ring)
            .map(|n| &mut n.fsm)
    }

    /// Splits `lane` into its own singleton group (no-op when it
    /// already is one).
    fn isolate_lane(&mut self, lane: usize) {
        let (gi, slot) = self.lane_loc[lane];
        if self.groups[gi].lanes.len() == 1 {
            return;
        }
        let rest: Vec<usize> = (0..self.groups[gi].lanes.len())
            .filter(|&s| s != slot)
            .collect();
        let parts = vec![rest, vec![slot]];
        let children = self.groups[gi].partition_into(&parts);
        self.groups.extend(children);
        self.relocate();
    }

    /// SBs of lane `lane` whose clocks are currently parked.
    pub fn stopped_sbs(&self, lane: usize) -> Vec<SbId> {
        self.at(lane).0.stopped_sbs()
    }

    /// Clock statistics of `sb` in lane `lane`: (edges, stops).
    pub fn clock_stats(&self, lane: usize, sb: SbId) -> (u64, u64) {
        let s = &self.at(lane).0.sbs[sb.0];
        (s.edges, s.clock_stops)
    }

    /// FIFO statistics of `channel` in lane `lane`:
    /// (pushes, pops, overruns, underruns).
    pub fn fifo_stats(&self, lane: usize, channel: ChannelId) -> (u64, u64, u64, u64) {
        let f = &self.at(lane).0.fifos[channel.0];
        (f.pushes, f.pops, f.overruns, f.underruns)
    }

    /// Words lane `lane`'s logic on `sb` attempted to send on blocked
    /// channels.
    pub fn dropped_words(&self, lane: usize, sb: SbId) -> u64 {
        self.at(lane).0.sbs[sb.0].dropped_words
    }

    /// Setup-time violations taken by `sb` in lane `lane`.
    pub fn timing_violations(&self, lane: usize, sb: SbId) -> u64 {
        self.at(lane).0.sbs[sb.0].timing_violations
    }

    /// Wall-clock times of `sb`'s rising edges in lane `lane`.
    pub fn edge_times(&self, lane: usize, sb: SbId) -> &[SimTime] {
        &self.at(lane).0.sbs[sb.0].edge_times
    }

    /// Lane `lane`'s current simulated time.
    pub fn now(&self, lane: usize) -> SimTime {
        self.at(lane).0.now
    }

    /// Typed events processed on lane `lane`'s behalf — equal to the
    /// scalar compiled engine's count for the same builder (the group
    /// dispatches each shared event once, and it stands for the event
    /// every member lane's scalar run would dispatch).
    pub fn events_processed(&self, lane: usize) -> u64 {
        self.at(lane).0.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled_system::Backend;
    use crate::logic::{SequenceSource, SinkCollect};
    use crate::spec::NodeParams;

    fn pair_spec() -> SystemSpec {
        let mut s = SystemSpec::default();
        let a = s.add_sb("tx", SimDuration::ns(10));
        let b = s.add_sb("rx", SimDuration::ns(10));
        let r = s.add_ring(a, b, NodeParams::new(4, 12), SimDuration::ns(30));
        s.add_channel(a, b, r, 16, 4, SimDuration::ns(1));
        s
    }

    fn pair_builder(start: u64) -> SystemBuilder {
        SystemBuilder::new(pair_spec())
            .expect("valid spec")
            .with_logic(SbId(0), SequenceSource::new(start, 1))
            .with_logic(SbId(1), SinkCollect::new())
    }

    #[test]
    fn identical_spec_lanes_share_one_group() {
        let sys =
            BatchedSystem::build_with_limit((0..5).map(|i| pair_builder(100 + i)).collect(), 64)
                .expect("supported");
        assert_eq!(sys.lanes(), 5);
        assert_eq!(sys.group_count(), 1);
    }

    #[test]
    fn lane_cap_splits_groups_at_build() {
        let sys = BatchedSystem::build_with_limit((0..5).map(pair_builder).collect(), 2)
            .expect("supported");
        assert_eq!(sys.group_count(), 3);
    }

    #[test]
    fn unsupported_specs_hand_the_builders_back() {
        let mut spec = pair_spec();
        spec.sbs[0].period = SimDuration::fs(1500); // below the bundle delay
        let b = SystemBuilder::new(spec).unwrap();
        let back = BatchedSystem::build_with_limit(vec![b], 64).expect_err("outside the envelope");
        assert_eq!(back.len(), 1);
        assert!(BatchedSystem::build_with_limit(Vec::new(), 64).is_err());
    }

    #[test]
    fn lanes_match_the_scalar_compiled_backend() {
        let mut batch = BatchedSystem::build_with_limit(
            (0..4).map(|i| pair_builder(100 + 7 * i)).collect(),
            64,
        )
        .expect("supported");
        let outcomes = batch.run_until_cycles(200, SimDuration::us(100));
        for (lane, outcome) in outcomes.iter().enumerate() {
            let mut scalar = pair_builder(100 + 7 * lane as u64).build_backend(Backend::Compiled);
            let scalar_outcome = scalar.run_until_cycles(200, SimDuration::us(100)).unwrap();
            assert_eq!(*outcome, scalar_outcome, "lane {lane}");
            assert_eq!(batch.now(lane), scalar.now(), "lane {lane}");
            for i in 0..2 {
                let sb = SbId(i);
                assert_eq!(batch.cycles(lane, sb), scalar.cycles(sb), "lane {lane}");
                assert_eq!(
                    batch.io_trace(lane, sb).rows(),
                    scalar.io_trace(sb).rows(),
                    "lane {lane} sb {i}"
                );
                assert_eq!(batch.edge_times(lane, sb), scalar.edge_times(sb));
            }
            assert_eq!(
                batch.fifo_stats(lane, ChannelId(0)),
                scalar.fifo_stats(ChannelId(0))
            );
            assert_eq!(batch.events_processed(lane), scalar.events_fired());
            let sink: &SinkCollect = batch.logic(lane, SbId(1));
            let sink_scalar: &SinkCollect = scalar.logic(SbId(1));
            assert_eq!(sink.received, sink_scalar.received);
        }
    }
}
