//! User-provided synchronous-block behaviour.
//!
//! A synchronous block is, per the paper's determinism definition (§1),
//! "delay-insensitive combinational logic \[that\] uniquely defines the next
//! state and outputs as a function of the current state and inputs". Here
//! that contract is a trait: [`SyncLogic::tick`] is called exactly once
//! per local clock cycle and must be a pure function of the block's own
//! state and the presented port values.

use std::any::Any;

/// What an input channel presents to the SB during one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InputView {
    /// The word delivered this cycle, if the interface is enabled and the
    /// channel FIFO had one at its head.
    pub data: Option<u64>,
    /// True while the interface is enabled by its node (`sbena`).
    pub enabled: bool,
    /// True when enabled and the FIFO head was empty ("informs the SB
    /// when the FIFO is empty").
    pub empty: bool,
}

/// One output channel's per-cycle state and send slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutputSlot {
    /// True when the interface is enabled and the FIFO can accept a word.
    pub can_send: bool,
    /// The word the logic wants to transmit this cycle.
    pub word: Option<u64>,
}

/// The per-cycle I/O view handed to [`SyncLogic::tick`].
///
/// Inputs and outputs are indexed in channel-id order of the channels
/// that end (respectively start) at this SB.
#[derive(Debug)]
pub struct SbIo<'a> {
    inputs: &'a [InputView],
    outputs: &'a mut [OutputSlot],
}

impl<'a> SbIo<'a> {
    pub(crate) fn new(inputs: &'a [InputView], outputs: &'a mut [OutputSlot]) -> Self {
        SbIo { inputs, outputs }
    }

    /// Number of input channels.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output channels.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The view of input channel `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn input(&self, idx: usize) -> InputView {
        self.inputs[idx]
    }

    /// Received word on input `idx`, if any, this cycle.
    pub fn recv(&self, idx: usize) -> Option<u64> {
        self.inputs[idx].data
    }

    /// True when output `idx` can accept a word this cycle.
    pub fn can_send(&self, idx: usize) -> bool {
        self.outputs[idx].can_send
    }

    /// Queues `word` on output `idx`; returns whether it will actually be
    /// transmitted (i.e. [`can_send`](Self::can_send) was true).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn send(&mut self, idx: usize, word: u64) -> bool {
        self.outputs[idx].word = Some(word);
        self.outputs[idx].can_send
    }
}

/// Deterministic synchronous-block behaviour.
///
/// The implementation must be a deterministic Mealy machine: no clocks,
/// no randomness, no wall-time — just current state and the `SbIo` view.
/// (`Any` is required so the block's final state can be inspected after
/// simulation via [`crate::system::System::logic`].)
pub trait SyncLogic: Any {
    /// Executes one local clock cycle. `cycle` is the 0-based local cycle
    /// index (it never counts stopped-clock wall time).
    fn tick(&mut self, cycle: u64, io: &mut SbIo<'_>);

    /// Serializes the logic's *dynamic* state for checkpointing.
    ///
    /// Returning `None` (the default) marks the logic as
    /// non-checkpointable; [`crate::checkpoint`] refuses to snapshot a
    /// system containing such a block. Construction-time parameters need
    /// not be included — resume rebuilds the logic from the same builder
    /// and then calls [`restore_state`](Self::restore_state) — but any
    /// value that evolves across [`tick`](Self::tick) calls must be. The
    /// encoding is private to the implementation; it only has to
    /// round-trip through `restore_state` on an identically-constructed
    /// instance.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state previously produced by [`save_state`](Self::save_state)
    /// on an identically-constructed instance. Returns `false` if the
    /// bytes are malformed (resume then fails cleanly).
    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let _ = bytes;
        false
    }
}

/// Splits `bytes` into `n`-byte little-endian `u64`s; `None` unless the
/// length is exactly `8 * n`. Shared by the stock logic codecs.
pub(crate) fn fixed_u64s<const N: usize>(bytes: &[u8]) -> Option<[u64; N]> {
    if bytes.len() != 8 * N {
        return None;
    }
    let mut out = [0u64; N];
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        out[i] = u64::from_le_bytes(chunk.try_into().unwrap());
    }
    Some(out)
}

pub(crate) fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Emits an arithmetic sequence on output 0 whenever the channel can
/// accept a word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceSource {
    next: u64,
    step: u64,
    /// Words actually sent.
    pub sent: u64,
}

impl SequenceSource {
    /// Starts at `start`, incrementing by `step` per transmitted word.
    pub fn new(start: u64, step: u64) -> Self {
        SequenceSource {
            next: start,
            step,
            sent: 0,
        }
    }
}

impl SyncLogic for SequenceSource {
    fn tick(&mut self, _cycle: u64, io: &mut SbIo<'_>) {
        if io.num_outputs() > 0 && io.can_send(0) {
            io.send(0, self.next);
            self.next = self.next.wrapping_add(self.step);
            self.sent += 1;
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut b = Vec::with_capacity(24);
        push_u64(&mut b, self.next);
        push_u64(&mut b, self.step);
        push_u64(&mut b, self.sent);
        Some(b)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let Some([next, step, sent]) = fixed_u64s::<3>(bytes) else {
            return false;
        };
        self.next = next;
        self.step = step;
        self.sent = sent;
        true
    }
}

/// Collects every word received on every input, in arrival order, with
/// the local cycle it arrived on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SinkCollect {
    /// `(input index, local cycle, word)` triples.
    pub received: Vec<(usize, u64, u64)>,
}

impl SinkCollect {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The words received on input `idx`, in order.
    pub fn words_on(&self, idx: usize) -> Vec<u64> {
        self.received
            .iter()
            .filter(|(i, _, _)| *i == idx)
            .map(|(_, _, w)| *w)
            .collect()
    }
}

impl SyncLogic for SinkCollect {
    fn tick(&mut self, cycle: u64, io: &mut SbIo<'_>) {
        for i in 0..io.num_inputs() {
            if let Some(w) = io.recv(i) {
                self.received.push((i, cycle, w));
            }
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut b = Vec::with_capacity(8 + 24 * self.received.len());
        push_u64(&mut b, self.received.len() as u64);
        for &(idx, cycle, word) in &self.received {
            push_u64(&mut b, idx as u64);
            push_u64(&mut b, cycle);
            push_u64(&mut b, word);
        }
        Some(b)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        if bytes.len() < 8 {
            return false;
        }
        let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        if bytes.len() != 8 + 24 * n {
            return false;
        }
        self.received.clear();
        for chunk in bytes[8..].chunks_exact(24) {
            let idx = u64::from_le_bytes(chunk[..8].try_into().unwrap()) as usize;
            let cycle = u64::from_le_bytes(chunk[8..16].try_into().unwrap());
            let word = u64::from_le_bytes(chunk[16..24].try_into().unwrap());
            self.received.push((idx, cycle, word));
        }
        true
    }
}

/// Forwards input 0 to output 0 through a deterministic function, with a
/// small internal queue for cycles where the output is blocked.
pub struct PipeTransform {
    f: Box<dyn Fn(u64) -> u64>,
    queue: std::collections::VecDeque<u64>,
    /// Words forwarded so far.
    pub forwarded: u64,
    /// Words dropped because the internal queue overflowed.
    pub dropped: u64,
    capacity: usize,
}

impl std::fmt::Debug for PipeTransform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipeTransform")
            .field("queued", &self.queue.len())
            .field("forwarded", &self.forwarded)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl PipeTransform {
    /// A pipe applying `f` with an internal queue of `capacity` words.
    pub fn new(capacity: usize, f: impl Fn(u64) -> u64 + 'static) -> Self {
        PipeTransform {
            f: Box::new(f),
            queue: std::collections::VecDeque::new(),
            forwarded: 0,
            dropped: 0,
            capacity,
        }
    }
}

impl SyncLogic for PipeTransform {
    fn tick(&mut self, _cycle: u64, io: &mut SbIo<'_>) {
        if let Some(w) = io.recv(0) {
            if self.queue.len() < self.capacity {
                self.queue.push_back((self.f)(w));
            } else {
                self.dropped += 1;
            }
        }
        if io.num_outputs() > 0 && io.can_send(0) {
            if let Some(w) = self.queue.pop_front() {
                io.send(0, w);
                self.forwarded += 1;
            }
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        // `f` and `capacity` are construction-time; only the queue and
        // counters evolve.
        let mut b = Vec::with_capacity(24 + 8 * self.queue.len());
        push_u64(&mut b, self.queue.len() as u64);
        for &w in &self.queue {
            push_u64(&mut b, w);
        }
        push_u64(&mut b, self.forwarded);
        push_u64(&mut b, self.dropped);
        Some(b)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        if bytes.len() < 8 {
            return false;
        }
        let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        if bytes.len() != 24 + 8 * n {
            return false;
        }
        self.queue.clear();
        for chunk in bytes[8..8 + 8 * n].chunks_exact(8) {
            self.queue
                .push_back(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = &bytes[8 + 8 * n..];
        self.forwarded = u64::from_le_bytes(rest[..8].try_into().unwrap());
        self.dropped = u64::from_le_bytes(rest[8..16].try_into().unwrap());
        true
    }
}

/// Packs `lanes` consecutive 16-bit words of an arithmetic sequence
/// into each transmitted 64-bit channel word — the simulated form of the
/// §5 width-compensation trade-off (a widened channel carries several
/// base words per transfer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackingSource {
    next: u64,
    lanes: u32,
    /// Base words sent (lanes × transfers).
    pub base_words_sent: u64,
}

impl PackingSource {
    /// A source packing `lanes` (1–4) base words per transfer.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=4`.
    pub fn new(start: u64, lanes: u32) -> Self {
        assert!((1..=4).contains(&lanes), "lanes must be 1-4");
        PackingSource {
            next: start,
            lanes,
            base_words_sent: 0,
        }
    }
}

impl SyncLogic for PackingSource {
    fn tick(&mut self, _cycle: u64, io: &mut SbIo<'_>) {
        if io.num_outputs() > 0 && io.can_send(0) {
            let mut word = 0u64;
            for lane in 0..self.lanes {
                word |= (self.next & 0xFFFF) << (16 * lane);
                self.next = self.next.wrapping_add(1);
            }
            io.send(0, word);
            self.base_words_sent += u64::from(self.lanes);
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut b = Vec::with_capacity(24);
        push_u64(&mut b, self.next);
        push_u64(&mut b, u64::from(self.lanes));
        push_u64(&mut b, self.base_words_sent);
        Some(b)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let Some([next, lanes, sent]) = fixed_u64s::<3>(bytes) else {
            return false;
        };
        if lanes != u64::from(self.lanes) {
            return false;
        }
        self.next = next;
        self.base_words_sent = sent;
        true
    }
}

/// Unpacks the `lanes`-wide words of a [`PackingSource`] back into base
/// words, verifying the arithmetic sequence on the fly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnpackingSink {
    lanes: u32,
    expected_next: u64,
    /// Base words received in sequence.
    pub base_words_received: u64,
    /// Sequence violations observed (must stay zero).
    pub sequence_errors: u64,
}

impl UnpackingSink {
    /// A sink expecting `lanes` base words per transfer, starting at
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=4`.
    pub fn new(start: u64, lanes: u32) -> Self {
        assert!((1..=4).contains(&lanes), "lanes must be 1-4");
        UnpackingSink {
            lanes,
            expected_next: start,
            base_words_received: 0,
            sequence_errors: 0,
        }
    }
}

impl SyncLogic for UnpackingSink {
    fn tick(&mut self, _cycle: u64, io: &mut SbIo<'_>) {
        if io.num_inputs() == 0 {
            return;
        }
        if let Some(word) = io.recv(0) {
            for lane in 0..self.lanes {
                let got = (word >> (16 * lane)) & 0xFFFF;
                if got != self.expected_next & 0xFFFF {
                    self.sequence_errors += 1;
                }
                self.expected_next = self.expected_next.wrapping_add(1);
                self.base_words_received += 1;
            }
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut b = Vec::with_capacity(32);
        push_u64(&mut b, u64::from(self.lanes));
        push_u64(&mut b, self.expected_next);
        push_u64(&mut b, self.base_words_received);
        push_u64(&mut b, self.sequence_errors);
        Some(b)
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let Some([lanes, next, recv, errs]) = fixed_u64s::<4>(bytes) else {
            return false;
        };
        if lanes != u64::from(self.lanes) {
            return false;
        }
        self.expected_next = next;
        self.base_words_received = recv;
        self.sequence_errors = errs;
        true
    }
}

/// A block with no ports or nothing to do; useful as a placeholder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdleLogic;

impl SyncLogic for IdleLogic {
    fn tick(&mut self, _cycle: u64, _io: &mut SbIo<'_>) {}

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io_fixture<'a>(inputs: &'a [InputView], outputs: &'a mut [OutputSlot]) -> SbIo<'a> {
        SbIo::new(inputs, outputs)
    }

    #[test]
    fn send_reports_deliverability() {
        let inputs = [];
        let mut outputs = [
            OutputSlot {
                can_send: true,
                word: None,
            },
            OutputSlot {
                can_send: false,
                word: None,
            },
        ];
        let mut io = io_fixture(&inputs, &mut outputs);
        assert!(io.send(0, 42));
        assert!(!io.send(1, 43));
        assert_eq!(outputs[0].word, Some(42));
        assert_eq!(outputs[1].word, Some(43), "the attempt is still recorded");
    }

    #[test]
    fn sequence_source_only_advances_when_sendable() {
        let mut src = SequenceSource::new(100, 10);
        let inputs = [];
        let mut outputs = [OutputSlot::default()]; // cannot send
        src.tick(0, &mut io_fixture(&inputs, &mut outputs));
        assert_eq!(src.sent, 0);
        let mut outputs = [OutputSlot {
            can_send: true,
            word: None,
        }];
        src.tick(1, &mut io_fixture(&inputs, &mut outputs));
        assert_eq!(outputs[0].word, Some(100));
        src.tick(
            2,
            &mut io_fixture(
                &inputs,
                &mut [OutputSlot {
                    can_send: true,
                    word: None,
                }],
            ),
        );
        assert_eq!(src.sent, 2);
    }

    #[test]
    fn sink_records_arrival_cycles() {
        let mut sink = SinkCollect::new();
        let mut outputs = [];
        let inputs = [InputView {
            data: Some(7),
            enabled: true,
            empty: false,
        }];
        sink.tick(3, &mut io_fixture(&inputs, &mut outputs));
        let inputs = [InputView::default()];
        sink.tick(4, &mut io_fixture(&inputs, &mut outputs));
        assert_eq!(sink.received, vec![(0, 3, 7)]);
        assert_eq!(sink.words_on(0), vec![7]);
        assert!(sink.words_on(1).is_empty());
    }

    #[test]
    fn pipe_buffers_under_backpressure() {
        let mut pipe = PipeTransform::new(2, |w| w * 2);
        let mut blocked = [OutputSlot::default()];
        let input7 = [InputView {
            data: Some(7),
            enabled: true,
            empty: false,
        }];
        pipe.tick(0, &mut io_fixture(&input7, &mut blocked));
        let input8 = [InputView {
            data: Some(8),
            enabled: true,
            empty: false,
        }];
        pipe.tick(1, &mut io_fixture(&input8, &mut blocked));
        assert_eq!(pipe.queue.len(), 2);
        // Third word overflows the 2-deep queue.
        let input9 = [InputView {
            data: Some(9),
            enabled: true,
            empty: false,
        }];
        pipe.tick(2, &mut io_fixture(&input9, &mut blocked));
        assert_eq!(pipe.dropped, 1);
        // Unblock: words emerge doubled, in order.
        let none = [InputView::default()];
        let mut open = [OutputSlot {
            can_send: true,
            word: None,
        }];
        pipe.tick(3, &mut io_fixture(&none, &mut open));
        assert_eq!(open[0].word, Some(14));
        let mut open = [OutputSlot {
            can_send: true,
            word: None,
        }];
        pipe.tick(4, &mut io_fixture(&none, &mut open));
        assert_eq!(open[0].word, Some(16));
        assert_eq!(pipe.forwarded, 2);
    }

    #[test]
    fn packing_round_trip_through_views() {
        let mut src = PackingSource::new(100, 3);
        let mut slots = [OutputSlot {
            can_send: true,
            word: None,
        }];
        src.tick(0, &mut io_fixture(&[], &mut slots));
        let word = slots[0].word.expect("sent");
        let mut sink = UnpackingSink::new(100, 3);
        let inputs = [InputView {
            data: Some(word),
            enabled: true,
            empty: false,
        }];
        sink.tick(1, &mut io_fixture(&inputs, &mut []));
        assert_eq!(sink.base_words_received, 3);
        assert_eq!(sink.sequence_errors, 0);
        assert_eq!(src.base_words_sent, 3);
    }

    #[test]
    fn unpacking_detects_corruption() {
        let mut sink = UnpackingSink::new(0, 2);
        let inputs = [InputView {
            data: Some(0xFFFF_0000), // lane0 wrong, lane1 wrong
            enabled: true,
            empty: false,
        }];
        sink.tick(0, &mut io_fixture(&inputs, &mut []));
        assert!(sink.sequence_errors > 0);
    }

    #[test]
    #[should_panic(expected = "lanes must be 1-4")]
    fn packing_lane_bounds() {
        let _ = PackingSource::new(0, 5);
    }

    #[test]
    fn idle_logic_does_nothing() {
        let mut idle = IdleLogic;
        let inputs = [];
        let mut outputs = [];
        idle.tick(0, &mut io_fixture(&inputs, &mut outputs));
    }
}
