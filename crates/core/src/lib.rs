//! # synchro-tokens — deterministic GALS wrappers
//!
//! A Rust reproduction of *"Eliminating Nondeterminism to Enable
//! Chip-Level Test of Globally-Asynchronous Locally-Synchronous SoCs"*
//! (Heath, Burleson, Harris — DATE 2004).
//!
//! A GALS SoC built from synchronous blocks (SBs) with independent local
//! clocks is normally **nondeterministic**: synchronizers and arbiters
//! make the *local cycle at which each asynchronous input is sensed*
//! depend on clock phase, process variation and noise, so the known-good
//! response of a chip-level test is not unique. Synchro-tokens adds
//! parameterized wrapper logic — token rings with counting **nodes**, an
//! escapement **stoppable clock**, and channel **interfaces** — that
//! pins every asynchronous transition to a deterministic local cycle
//! while the system stays globally asynchronous.
//!
//! ## Crate layout
//!
//! * [`spec`] — declarative system description (Figure 1A) + validation,
//! * [`node`] — the token-ring node FSM (Figure 2), as a pure machine,
//! * [`wrapper`] — the per-SB wrapper component (Figure 1B),
//! * [`logic`] — the [`SyncLogic`] trait your SB
//!   behaviour implements, plus stock sources/sinks/pipes,
//! * [`system`] — building and running whole systems,
//! * [`iotrace`] — per-SB I/O sequence capture (the determinism witness),
//! * [`rules`] — determinism/performance design rules and the §5
//!   closed-form models,
//! * [`deadlock`] — deadlock analysis (wait-for cycles) and the
//!   prevention rule,
//! * [`formal`] — bounded exhaustive verification that the node pair's
//!   enabled-cycle schedule is interleaving-independent (the paper's
//!   "future work" formal-methods item),
//! * [`determinism`] — the E1 campaign harness (delay sweeps, trace
//!   comparison),
//! * [`campaign`] — deterministic parallel campaign execution: a
//!   `std::thread::scope` job fan-out whose canonical-order merge keeps
//!   reports byte-identical to sequential runs,
//! * [`scenarios`] — the canonical systems used across tests, examples
//!   and benches (including the paper's 3-SB / 6-FIFO test case),
//! * [`compiled_system`] — the compiled fast-path backend: a built
//!   system lowered once to a flat typed-event engine, byte-identical
//!   to the event kernel and roughly an order of magnitude faster,
//! * [`faults`] — deterministic fault injection (analog jitter/drift,
//!   protocol token/handshake attacks, state SEUs) and the chaos
//!   oracle that turns the paper's determinism claim into an
//!   executable check.
//!
//! ## Example
//!
//! ```
//! use st_sim::prelude::*;
//! use synchro_tokens::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two SBs, one token ring, one 16-bit channel with a 4-deep FIFO.
//! let mut spec = SystemSpec::default();
//! let tx = spec.add_sb("tx", SimDuration::ns(10));
//! let rx = spec.add_sb("rx", SimDuration::ns(12));
//! let ring = spec.add_ring(tx, rx, NodeParams::new(4, 12), SimDuration::ns(30));
//! spec.add_channel(tx, rx, ring, 16, 4, SimDuration::ns(1));
//!
//! let mut sys = SystemBuilder::new(spec)?
//!     .with_logic(tx, SequenceSource::new(0, 1))
//!     .with_logic(rx, SinkCollect::new())
//!     .build();
//! sys.run_until_cycles(100, SimDuration::us(100))?;
//! let sink: &SinkCollect = sys.logic(rx);
//! assert!(!sink.received.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod batched_system;
pub mod campaign;
pub mod checkpoint;
pub mod compiled_system;
pub mod deadlock;
pub mod determinism;
pub mod faults;
pub mod formal;
pub mod iotrace;
pub mod logic;
pub mod node;
pub mod rules;
pub mod scenarios;
pub mod spec;
pub mod system;
pub mod wrapper;

pub use batched_system::BatchedSystem;
pub use campaign::{
    batch_limit_from_env, default_threads, effective_threads, run_jobs, run_jobs_hooked,
    threads_from_env, CampaignStats, CancelToken, Cancelled, RunHooks, DEFAULT_BATCH_LIMIT,
};
pub use checkpoint::{
    config_hash, Checkpoint, CheckpointBackend, CheckpointError, DecodedCheckpoint,
};
pub use compiled_system::{AnySystem, Backend, BackendKind, CompiledSystem};
pub use faults::{
    classify, run_with_plan, run_with_plan_resumed, AnalogFault, ChaosOutcome, Fault, FaultClass,
    FaultPlan, SeuFault, SeuTarget,
};
pub use iotrace::{CanonError, SbIoTrace, TraceRow};
pub use logic::{
    IdleLogic, PackingSource, PipeTransform, SbIo, SequenceSource, SinkCollect, SyncLogic,
    UnpackingSink,
};
pub use node::{NodeFsm, NodePhase};
pub use spec::{ChannelId, NodeParams, RingId, SbId, SpecError, SystemSpec};
pub use system::{RunOutcome, System, SystemBuilder};
pub use wrapper::WrapperMode;

/// Convenient glob import.
pub mod prelude {
    pub use crate::batched_system::BatchedSystem;
    pub use crate::campaign::{
        batch_limit_from_env, default_threads, effective_threads, run_jobs, run_jobs_hooked,
        threads_from_env, CampaignStats, CancelToken, Cancelled, RunHooks, DEFAULT_BATCH_LIMIT,
    };
    pub use crate::checkpoint::{
        config_hash, Checkpoint, CheckpointBackend, CheckpointError, DecodedCheckpoint,
    };
    pub use crate::compiled_system::{AnySystem, Backend, BackendKind, CompiledSystem};
    pub use crate::faults::{
        classify, run_with_plan, run_with_plan_resumed, AnalogFault, ChaosOutcome, Fault,
        FaultClass, FaultPlan, SeuFault, SeuTarget,
    };
    pub use crate::iotrace::SbIoTrace;
    pub use crate::logic::{
        IdleLogic, PipeTransform, SbIo, SequenceSource, SinkCollect, SyncLogic,
    };
    pub use crate::node::{NodeFsm, NodePhase};
    pub use crate::rules::ScaleRange;
    pub use crate::spec::{ChannelId, NodeParams, RingId, SbId, SpecError, SystemSpec};
    pub use crate::system::{RunOutcome, System, SystemBuilder};
}
