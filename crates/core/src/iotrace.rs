//! Per-SB I/O sequence capture — the observable whose invariance defines
//! determinism.
//!
//! The paper's §5 experiment monitors "the data sequences on each SB's
//! I/Os … for the first 100 local clock cycles" and compares them across
//! delay configurations. [`SbIoTrace`] is that record: one row per local
//! cycle, carrying what every input presented and what every output
//! transmitted. Two runs are *deterministically equivalent* when the
//! traces of every SB match exactly.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Fast in-process hasher behind [`SbIoTrace::digest`] (FxHash-style
/// multiply-rotate with a splitmix64 finish). Campaign verdicts hash
/// every trace row, and SipHash (`DefaultHasher`) dominated sweep
/// profiles. Digest values are compared within a process and never
/// persisted — `st-serve`'s content keys use their own stable FNV
/// over canonical bytes.
#[derive(Default)]
pub(crate) struct DigestHasher(u64);

impl DigestHasher {
    const K: u64 = 0x517c_c1b7_2722_0a95;
}

impl Hasher for DigestHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Fold the tail length in so short writes of different
            // lengths cannot collide trivially.
            self.write_u64(u64::from_le_bytes(tail) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(Self::K);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 avalanche: every input bit reaches every output
        // bit even for single-row traces.
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// One local clock cycle's I/O, in channel order.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct TraceRow {
    /// 0-based local cycle index (never counts stopped-clock time).
    pub cycle: u64,
    /// Word presented by each input channel this cycle (`None` = nothing).
    pub reads: Vec<Option<u64>>,
    /// Word transmitted on each output channel this cycle.
    pub writes: Vec<Option<u64>>,
}

impl Clone for TraceRow {
    fn clone(&self) -> Self {
        TraceRow {
            cycle: self.cycle,
            reads: self.reads.clone(),
            writes: self.writes.clone(),
        }
    }

    // Reuses the existing channel buffers so checkpoint restore into a
    // warm engine never reallocates per row.
    fn clone_from(&mut self, source: &Self) {
        self.cycle = source.cycle;
        self.reads.clone_from(&source.reads);
        self.writes.clone_from(&source.writes);
    }
}

/// The captured I/O sequence of one synchronous block.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SbIoTrace {
    rows: Vec<TraceRow>,
    limit: usize,
}

impl Clone for SbIoTrace {
    fn clone(&self) -> Self {
        SbIoTrace {
            rows: self.rows.clone(),
            limit: self.limit,
        }
    }

    // `Vec::clone_from` clones element-wise over the shared prefix, so
    // this bottoms out in [`TraceRow::clone_from`] and stays
    // allocation-free once row capacity exists.
    fn clone_from(&mut self, source: &Self) {
        self.rows.clone_from(&source.rows);
        self.limit = source.limit;
    }
}

/// Magic prefix of the canonical trace encoding.
pub const CANON_MAGIC: &[u8; 4] = b"STIO";
/// Version byte of the canonical trace encoding.
pub const CANON_VERSION: u8 = 1;

/// Decoding failures for [`SbIoTrace::from_canonical_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanonError {
    /// The input ended before the encoding was complete.
    Truncated,
    /// The magic prefix is not `"STIO"`.
    BadMagic,
    /// An unknown format version byte.
    BadVersion(u8),
    /// An option tag other than 0 or 1.
    BadTag(u8),
    /// Well-formed encoding followed by extra bytes (count).
    TrailingBytes(usize),
}

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanonError::Truncated => write!(f, "canonical trace truncated"),
            CanonError::BadMagic => write!(f, "not a canonical trace (bad magic)"),
            CanonError::BadVersion(v) => write!(f, "unknown canonical trace version {v}"),
            CanonError::BadTag(t) => write!(f, "invalid option tag {t:#04x}"),
            CanonError::TrailingBytes(n) => write!(f, "{n} trailing bytes after trace"),
        }
    }
}

impl std::error::Error for CanonError {}

impl SbIoTrace {
    /// A trace that records at most `limit` cycles (0 = unlimited).
    pub fn with_limit(limit: usize) -> Self {
        SbIoTrace {
            rows: Vec::new(),
            limit,
        }
    }

    /// Appends a row if the limit allows.
    pub fn record(&mut self, row: TraceRow) {
        if self.limit == 0 || self.rows.len() < self.limit {
            self.rows.push(row);
        }
    }

    /// True when the limit is reached and further rows would be dropped
    /// (lets callers skip assembling rows that cannot be recorded).
    pub fn is_full(&self) -> bool {
        self.limit != 0 && self.rows.len() >= self.limit
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A 64-bit digest of the whole sequence (for campaign-scale
    /// comparison without keeping every trace in memory). Digests are
    /// deterministic within a process run; durable content addressing
    /// goes through [`to_canonical_bytes`](Self::to_canonical_bytes).
    pub fn digest(&self) -> u64 {
        let mut h = DigestHasher::default();
        for row in &self.rows {
            row.hash(&mut h);
        }
        h.finish()
    }

    /// First cycle index at which the traces differ, comparing the common
    /// prefix; `None` if the compared prefix matches (length differences
    /// over `min_len` are ignored).
    pub fn first_divergence(&self, other: &SbIoTrace) -> Option<u64> {
        self.rows
            .iter()
            .zip(&other.rows)
            .find(|(a, b)| a != b)
            .map(|(a, _)| a.cycle)
    }

    /// True when both traces recorded at least `cycles` rows and agree on
    /// all of the first `cycles`.
    pub fn matches_for(&self, other: &SbIoTrace, cycles: usize) -> bool {
        self.rows.len() >= cycles
            && other.rows.len() >= cycles
            && self.rows[..cycles] == other.rows[..cycles]
    }

    /// All words delivered on input `idx`, in cycle order.
    pub fn input_words(&self, idx: usize) -> Vec<u64> {
        self.rows
            .iter()
            .filter_map(|r| r.reads.get(idx).copied().flatten())
            .collect()
    }

    /// All words transmitted on output `idx`, in cycle order.
    pub fn output_words(&self, idx: usize) -> Vec<u64> {
        self.rows
            .iter()
            .filter_map(|r| r.writes.get(idx).copied().flatten())
            .collect()
    }

    /// Serializes the trace to its canonical byte form.
    ///
    /// The encoding is a pure function of the trace's value — fixed
    /// little-endian field widths, no padding, no platform-dependent
    /// content — so equal traces always produce equal bytes and the
    /// bytes are stable across processes and machines. That property is
    /// what makes cached campaign results *content-addressable*
    /// (`st-serve` keys its result store by a hash of canonical bytes)
    /// and served results byte-comparable to locally computed ones.
    ///
    /// Layout: magic `"STIO"`, version `1`, `limit: u64`,
    /// `row_count: u64`, then per row `cycle: u64`,
    /// `reads_len: u32`, per read a tag byte (`0` = `None`,
    /// `1` = `Some` followed by the `u64` word), `writes_len: u32`
    /// and the writes likewise. All integers little-endian.
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21 + self.rows.len() * 16);
        out.extend_from_slice(CANON_MAGIC);
        out.push(CANON_VERSION);
        out.extend_from_slice(&(self.limit as u64).to_le_bytes());
        out.extend_from_slice(&(self.rows.len() as u64).to_le_bytes());
        let put_words = |out: &mut Vec<u8>, words: &[Option<u64>]| {
            out.extend_from_slice(&(words.len() as u32).to_le_bytes());
            for w in words {
                match w {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        };
        for row in &self.rows {
            out.extend_from_slice(&row.cycle.to_le_bytes());
            put_words(&mut out, &row.reads);
            put_words(&mut out, &row.writes);
        }
        out
    }

    /// Decodes a trace from its canonical byte form
    /// (see [`to_canonical_bytes`](Self::to_canonical_bytes)).
    ///
    /// # Errors
    ///
    /// Rejects wrong magic/version, truncated input, invalid option
    /// tags, and trailing bytes. Decoding is exact: re-encoding the
    /// returned trace reproduces the input byte-for-byte.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<SbIoTrace, CanonError> {
        struct Reader<'a>(&'a [u8]);
        impl Reader<'_> {
            fn take<const N: usize>(&mut self) -> Result<[u8; N], CanonError> {
                if self.0.len() < N {
                    return Err(CanonError::Truncated);
                }
                let (head, rest) = self.0.split_at(N);
                self.0 = rest;
                Ok(head.try_into().expect("split_at guarantees length"))
            }
            fn u8(&mut self) -> Result<u8, CanonError> {
                Ok(self.take::<1>()?[0])
            }
            fn u32(&mut self) -> Result<u32, CanonError> {
                Ok(u32::from_le_bytes(self.take()?))
            }
            fn u64(&mut self) -> Result<u64, CanonError> {
                Ok(u64::from_le_bytes(self.take()?))
            }
            fn words(&mut self) -> Result<Vec<Option<u64>>, CanonError> {
                let n = self.u32()? as usize;
                // Cap pre-allocation by what the input could actually
                // hold (1 byte per element minimum): corrupt lengths
                // must not balloon memory before Truncated is hit.
                let mut v = Vec::with_capacity(n.min(self.0.len()));
                for _ in 0..n {
                    v.push(match self.u8()? {
                        0 => None,
                        1 => Some(self.u64()?),
                        tag => return Err(CanonError::BadTag(tag)),
                    });
                }
                Ok(v)
            }
        }
        let mut r = Reader(bytes);
        if r.take::<4>()? != *CANON_MAGIC {
            return Err(CanonError::BadMagic);
        }
        match r.u8()? {
            CANON_VERSION => {}
            v => return Err(CanonError::BadVersion(v)),
        }
        let limit = r.u64()? as usize;
        let row_count = r.u64()?;
        let mut rows = Vec::new();
        for _ in 0..row_count {
            rows.push(TraceRow {
                cycle: r.u64()?,
                reads: r.words()?,
                writes: r.words()?,
            });
        }
        if !r.0.is_empty() {
            return Err(CanonError::TrailingBytes(r.0.len()));
        }
        Ok(SbIoTrace { rows, limit })
    }

    /// A human-readable report of the first divergence against a
    /// reference trace, with `context` rows either side — what a debug
    /// engineer wants from a failed campaign run.
    pub fn diff_report(&self, reference: &SbIoTrace, context: usize) -> String {
        use std::fmt::Write as _;
        let Some(cycle) = reference.first_divergence(self) else {
            return "traces match over the compared prefix".to_owned();
        };
        let mut out = String::new();
        let _ = writeln!(out, "first divergence at local cycle {cycle}:");
        let idx = self
            .rows
            .iter()
            .position(|r| r.cycle == cycle)
            .unwrap_or(self.rows.len());
        let lo = idx.saturating_sub(context);
        let hi = (idx + context + 1)
            .min(self.rows.len())
            .min(reference.rows.len());
        for i in lo..hi {
            let (got, want) = (&self.rows[i], &reference.rows[i]);
            let marker = if got == want { ' ' } else { '>' };
            let _ = writeln!(
                out,
                "{marker} c{:>4}  got  in:{:?} out:{:?}",
                got.cycle, got.reads, got.writes
            );
            if got != want {
                let _ = writeln!(
                    out,
                    "{marker} c{:>4}  want in:{:?} out:{:?}",
                    want.cycle, want.reads, want.writes
                );
            }
        }
        out
    }
}

impl fmt::Display for SbIoTrace {
    /// Prints one line per *active* cycle (cycles with any I/O).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            let active =
                row.reads.iter().any(Option::is_some) || row.writes.iter().any(Option::is_some);
            if !active {
                continue;
            }
            write!(f, "c{:>4}  in:", row.cycle)?;
            for r in &row.reads {
                match r {
                    Some(w) => write!(f, " {w:>6}")?,
                    None => write!(f, "      -")?,
                }
            }
            write!(f, "  out:")?;
            for w in &row.writes {
                match w {
                    Some(w) => write!(f, " {w:>6}")?,
                    None => write!(f, "      -")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(cycle: u64, read: Option<u64>, write: Option<u64>) -> TraceRow {
        TraceRow {
            cycle,
            reads: vec![read],
            writes: vec![write],
        }
    }

    #[test]
    fn limit_caps_recording() {
        let mut t = SbIoTrace::with_limit(2);
        for c in 0..5 {
            t.record(row(c, None, None));
        }
        assert_eq!(t.len(), 2);
        let mut unlimited = SbIoTrace::with_limit(0);
        for c in 0..5 {
            unlimited.record(row(c, None, None));
        }
        assert_eq!(unlimited.len(), 5);
        assert!(!unlimited.is_empty());
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = SbIoTrace::with_limit(0);
        let mut b = SbIoTrace::with_limit(0);
        for c in 0..10 {
            a.record(row(c, Some(c), None));
            b.record(row(c, Some(c), None));
        }
        assert_eq!(a.digest(), b.digest());
        b.record(row(10, Some(999), None));
        // Prefix digest differs from longer trace digest.
        assert_ne!(a.digest(), b.digest());
        let mut c_trace = SbIoTrace::with_limit(0);
        for c in 0..10 {
            c_trace.record(row(c, Some(c + 1), None));
        }
        assert_ne!(a.digest(), c_trace.digest());
    }

    #[test]
    fn divergence_reports_first_mismatching_cycle() {
        let mut a = SbIoTrace::with_limit(0);
        let mut b = SbIoTrace::with_limit(0);
        for c in 0..10 {
            a.record(row(c, Some(c), None));
            b.record(row(c, Some(if c == 7 { 99 } else { c }), None));
        }
        assert_eq!(a.first_divergence(&b), Some(7));
        assert_eq!(a.first_divergence(&a.clone()), None);
    }

    #[test]
    fn matches_for_requires_full_prefix() {
        let mut a = SbIoTrace::with_limit(0);
        let mut b = SbIoTrace::with_limit(0);
        for c in 0..10 {
            a.record(row(c, Some(c), None));
        }
        for c in 0..5 {
            b.record(row(c, Some(c), None));
        }
        assert!(a.matches_for(&b, 5));
        assert!(!a.matches_for(&b, 6), "b is too short for 6 cycles");
    }

    #[test]
    fn word_extraction_skips_gaps() {
        let mut t = SbIoTrace::with_limit(0);
        t.record(row(0, Some(1), Some(10)));
        t.record(row(1, None, None));
        t.record(row(2, Some(3), Some(30)));
        assert_eq!(t.input_words(0), vec![1, 3]);
        assert_eq!(t.output_words(0), vec![10, 30]);
        assert!(t.input_words(5).is_empty());
    }

    #[test]
    fn diff_report_pinpoints_the_divergence() {
        let mut a = SbIoTrace::with_limit(0);
        let mut b = SbIoTrace::with_limit(0);
        for c in 0..10 {
            a.record(row(c, Some(c), None));
            b.record(row(c, Some(if c == 6 { 99 } else { c }), None));
        }
        let report = b.diff_report(&a, 2);
        assert!(report.contains("local cycle 6"));
        assert!(report.contains("99"));
        assert!(report.lines().any(|l| l.starts_with('>')));
        assert_eq!(
            a.diff_report(&a.clone(), 2),
            "traces match over the compared prefix"
        );
    }

    #[test]
    fn display_skips_idle_cycles() {
        let mut t = SbIoTrace::with_limit(0);
        t.record(row(0, Some(1), None));
        t.record(row(1, None, None));
        t.record(row(2, None, Some(5)));
        let s = t.to_string();
        assert!(s.contains("c   0"));
        assert!(!s.contains("c   1"));
        assert!(s.contains("c   2"));
    }
}
